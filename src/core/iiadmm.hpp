// IIADMM — the paper's contribution (Algorithm 1).
//
// Improvements over ICEADMM:
//  (i)  local primal updates use mini-batches of data (lines 12–19), not the
//       full batch, so local training matches SGD-style practice;
//  (ii) the dual update λ_p ← λ_p + ρ(w^{t+1} − z_p^{t+1}) is executed
//       *identically* at both the server (line 6) and the client (line 21).
//       Since (z¹, λ¹) is shared once at start and both sides apply the same
//       arithmetic to the same inputs every round, the two dual states stay
//       bit-identical — so duals never cross the wire. Per-round client
//       upload: m floats (like FedAvg) instead of ICEADMM's 2m.
//
// Server global update (line 3): w^{t+1} = (1/P) Σ_p (z_p^t − λ_p^t / ρ).
//
// DP note: the client perturbs z_p^{t+1} (line 20's "true output") *before*
// its own dual update and sends the same perturbed vector, so server and
// client dual updates still agree exactly under differential privacy.
#pragma once

#include "core/base.hpp"

namespace appfl::core {

class IIAdmmClient : public BaseClient {
 public:
  IIAdmmClient(std::uint32_t id, const RunConfig& config,
               const nn::Module& prototype, data::TensorDataset dataset);

  comm::Message update(std::span<const float> global,
                       std::uint32_t round) override;

  /// A lost uplink means the server never replayed this round's dual
  /// update — roll the speculative client-side dual back so both replicas
  /// keep the bit-identical-duals invariant (the round's local work is
  /// discarded, exactly as if the client had crashed before sending).
  void on_uplink_result(bool delivered) override;

  /// Client-side dual state (the dual-consistency test compares this with
  /// the server's replica).
  const std::vector<float>& dual() const { return lambda_; }

 protected:
  void export_algo_state(ClientStateCkpt& out) const override;
  void import_algo_state(const ClientStateCkpt& s) override;

 private:
  std::vector<float> lambda_;       // persistent local dual λ_p
  std::vector<float> lambda_prev_;  // pre-round λ_p, for uplink-loss rollback
};

class IIAdmmServer : public BaseServer {
 public:
  IIAdmmServer(const RunConfig& config, std::unique_ptr<nn::Module> model,
               data::TensorDataset test_set, std::size_t num_clients);

  std::vector<float> compute_global(std::uint32_t round) override;
  void update(const std::vector<comm::Message>& locals,
              std::span<const float> global, std::uint32_t round) override;
  /// Fused path (constant ρ only): per chunk, replays the server-side dual
  /// update from the wire-resident z_p, stores the fresh z_p, and
  /// accumulates next round's consensus — one pass over the bytes.
  /// Adaptive ρ falls back (needs the residual norms).
  bool absorb(const comm::GatherBatch& batch, std::span<const float> global,
              std::uint32_t round) override;
  float current_rho() const override { return rho_; }

  /// Server-side replica of client p's dual (1-based id; tests inspect it).
  const std::vector<float>& dual(std::uint32_t client) const;

  std::string checkpoint_kind() const override { return "iiadmm"; }
  ServerStateCkpt export_state() const override;
  void import_state(const ServerStateCkpt& s) override;

 private:
  std::vector<std::vector<float>> primal_;  // z_p^t
  std::vector<std::vector<float>> dual_;    // λ_p^t (server replica)
  float rho_;                               // ρ^t (adapts when enabled)
  // Consensus produced by the last absorb(); valid while ρ and the replica
  // state are untouched behind it.
  std::vector<float> fused_w_;
  bool fused_valid_ = false;
};

}  // namespace appfl::core
