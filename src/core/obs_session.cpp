#include "core/obs_session.hpp"

#include <cstdio>
#include <sstream>

#include "obs/critpath.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appfl::core {

ObsSession::ObsSession(const RunConfig& config)
    : opts_(obs_options_from_env(config)), previous_(obs::level()) {
  obs::set_level(opts_.level);
  if (opts_.level >= obs::Level::kMetrics) {
    // Artifacts describe this run only; instruments are zeroed in place so
    // references cached by hot paths (gemm, communicator) stay valid.
    obs::MetricsRegistry::global().reset();
    obs::Tracer::global().clear();
    obs::FlightRecorder::global().clear();
  }
  obs::FlightRecorder::global().set_dump_dir(opts_.flight_dir);
  if (!opts_.flight_dir.empty()) obs::FlightRecorder::install_crash_hooks();
  if (!opts_.metrics_out.empty()) writer_.emplace(opts_.metrics_out);
}

ObsSession::~ObsSession() { obs::set_level(previous_); }

void ObsSession::write_round(const RoundMetrics& m) {
  if (!writer_ || !writer_->ok()) return;
  std::ostringstream os;
  os << "{\"type\":\"round\",\"round\":" << m.round
     << ",\"train_loss\":" << obs::json_number(m.train_loss)
     << ",\"test_accuracy\":" << obs::json_optional(m.test_accuracy)
     << ",\"broadcast_s\":" << obs::json_number(m.broadcast_s)
     << ",\"gather_s\":" << obs::json_number(m.gather_s)
     << ",\"rho\":" << obs::json_number(m.rho)
     << ",\"participants\":" << m.participants
     << ",\"responders\":" << m.responders << ",\"drops\":" << m.drops
     << ",\"retries\":" << m.retries
     << ",\"crc_failures\":" << m.crc_failures
     << ",\"discards\":" << m.discards << ",\"timeouts\":" << m.timeouts
     << ",\"secagg_reconstructions\":" << m.secagg_reconstructions
     << ",\"secagg_degraded\":" << (m.secagg_degraded ? "true" : "false")
     << ",\"secagg_degrade_reason\":";
  if (m.secagg_degrade_reason == SecaggDegradeReason::kNone) {
    os << "null";
  } else {
    os << "\"" << to_string(m.secagg_degrade_reason) << "\"";
  }
  os << "}";
  writer_->line(os.str());
  const std::vector<obs::ClientHealth> clients = health_.snapshot();
  if (!clients.empty()) {
    writer_->line(obs::HealthLedger::round_json(m.round, clients));
  }
}

void ObsSession::write_line(const std::string& json) {
  if (!writer_ || !writer_->ok()) return;
  writer_->line(json);
}

void ObsSession::finish(const RunResult& result) {
  if (writer_ && writer_->ok()) {
    const comm::TrafficStats& t = result.traffic;
    std::ostringstream os;
    os << "{\"type\":\"summary\",\"rounds_completed\":" << result.rounds.size()
       << ",\"final_accuracy\":" << obs::json_number(result.final_accuracy)
       << ",\"mean_test_accuracy\":"
       << obs::json_optional(result.mean_test_accuracy())
       << ",\"best_test_accuracy\":"
       << obs::json_optional(result.best_test_accuracy())
       << ",\"sim_comm_seconds\":" << obs::json_number(result.sim_comm_seconds)
       << ",\"model_parameters\":" << result.model_parameters
       << ",\"dp_epsilon_spent\":" << obs::json_number(result.dp_epsilon_spent)
       << ",\"resumed_from_round\":" << result.resumed_from_round
       << ",\"checkpoints_written\":" << result.checkpoints_written
       << ",\"traffic\":{\"messages_up\":" << t.messages_up
       << ",\"messages_down\":" << t.messages_down
       << ",\"bytes_up\":" << t.bytes_up << ",\"bytes_down\":" << t.bytes_down
       << ",\"bytes_up_precodec\":" << t.bytes_up_precodec
       << ",\"drops\":" << t.drops << ",\"retries\":" << t.retries
       << ",\"crc_failures\":" << t.crc_failures
       << ",\"discards\":" << t.discards
       << ",\"gather_timeouts\":" << t.gather_timeouts
       << "},\"dropped_spans\":" << obs::Tracer::global().dropped() << "}";
    writer_->line(os.str());
  }
  finish();
}

void ObsSession::finish() {
  // Tracer self-telemetry (satellite): silent ring overwrites become
  // visible in the end-of-run metrics snapshot, not only via dropped().
  if (opts_.level >= obs::Level::kMetrics) {
    obs::Tracer& tracer = obs::Tracer::global();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("obs.spans_emitted").add(tracer.emitted());
    reg.counter("obs.spans_dropped").add(tracer.dropped());
    reg.gauge("obs.trace_threads")
        .set(static_cast<double>(tracer.ring_count()));
  }
  if (writer_ && writer_->ok()) {
    const std::vector<obs::ClientHealth> clients = health_.snapshot();
    if (!clients.empty()) {
      std::string line = obs::HealthLedger::round_json(0, clients);
      // Re-tag the final snapshot so consumers can tell it from a round line.
      line.replace(line.find("\"health\""), 8, "\"health_summary\"");
      writer_->line(line);
    }
    writer_->line(obs::metrics_snapshot_json(
        obs::MetricsRegistry::global().snapshot()));
    writer_->flush();
  }
  if (!opts_.health_out.empty()) {
    std::string error;
    if (!health_.write_csv(opts_.health_out, &error)) {
      std::fprintf(stderr, "warning: health CSV export failed: %s\n",
                   error.c_str());
    }
  }
  if (!opts_.trace_out.empty()) {
    std::string error;
    if (!obs::write_chrome_trace(obs::Tracer::global(), opts_.trace_out,
                                 &error)) {
      std::fprintf(stderr, "warning: trace export failed: %s\n",
                   error.c_str());
    }
  }
  if (!opts_.critpath_out.empty()) {
    const std::vector<obs::RoundCritPath> paths =
        obs::critical_paths(obs::Tracer::global().collect());
    std::string error;
    if (!obs::write_critpath_jsonl(paths, opts_.critpath_out, &error) ||
        !obs::write_critpath_csv(paths,
                                 obs::critpath_csv_path(opts_.critpath_out),
                                 &error)) {
      std::fprintf(stderr, "warning: critical-path export failed: %s\n",
                   error.c_str());
    }
  }
}

}  // namespace appfl::core
