// Gradient-leakage (gradient-inversion) attack.
//
// §II-A2's motivation for DP: "one can recover an original image with high
// accuracy using only gradients sent to the server" (Geiping et al., the
// paper's [13]). For a softmax-linear (logistic) model this recovery is
// *closed form*: with one sample (x, y),
//     ∂L/∂W[c,:] = (p_c − 1{c=y}) · x      ∂L/∂b[c] = p_c − 1{c=y}
// so the label is the unique class with negative bias gradient and
// x = ∂L/∂W[y,:] / ∂b[y] exactly. The attack demonstrates (a) why plain FL
// leaks training data and (b) how the paper's output/gradient perturbation
// destroys the reconstruction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace appfl::core {

struct LeakageResult {
  std::vector<float> reconstructed;  // x̂, length = input dimension
  std::size_t recovered_label = 0;
  double cosine_similarity = 0.0;  // vs the true input, if provided
  double mse = 0.0;                // vs the true input, if provided
};

/// Inverts a single-sample logistic-regression gradient.
/// `grad_flat` is the flat gradient of a logistic model (layout: W [C, D]
/// row-major followed by b [C]); `num_classes` = C, `input_dim` = D.
/// If `true_input` is non-empty the similarity metrics are filled in.
LeakageResult invert_logistic_gradient(std::span<const float> grad_flat,
                                       std::size_t num_classes,
                                       std::size_t input_dim,
                                       std::span<const float> true_input = {});

/// Cosine similarity between two equal-length vectors (0 when either is 0).
double cosine_similarity(std::span<const float> a, std::span<const float> b);

}  // namespace appfl::core
