#include "core/aggregate.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "tensor/accumulate.hpp"
#include "tensor/gemm.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace appfl::core {

namespace {

/// Serial block size: the output chunk a term sweep keeps cache-hot while
/// the (much larger) participant payloads stream through once. Also the
/// granule at which fp16 payloads are widened into the thread-local
/// scratch. 32768 floats = 128 KB — measured fastest at FEMNIST scale
/// (203 clients × 1 MB): long enough runs per payload to keep the
/// prefetchers streaming, small enough that the output block stays in L2.
constexpr std::size_t kSerialBlock = 32768;

}  // namespace

// Chunked across the kernel pool when the reduction is big enough to pay
// for the fan-out, in cache-sized serial blocks otherwise. fn must be safe
// to call on disjoint ranges concurrently (each output element is written
// by exactly one range). Because every range accumulates participants in
// caller order per element, the split never changes a single bit of the
// result.
void for_each_chunk(std::size_t n, std::size_t num_terms,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n >= kParallelAggregateThreshold && num_terms >= 2 &&
      !util::ThreadPool::on_worker_thread()) {
    const auto pool = tensor::kernel_pool();
    if (pool && pool->size() > 1) {
      pool->parallel_for_range(n, fn);
      return;
    }
  }
  // Serial: iterate output blocks with the term loop inside, so the output
  // chunk stays resident while each participant's bytes stream through.
  for (std::size_t lo = 0; lo < n; lo += kSerialBlock) {
    fn(lo, std::min(lo + kSerialBlock, n));
  }
}

namespace {

/// Scratch for widening fp16 sub-chunks; thread-local so pool workers never
/// contend. Sized lazily to kSerialBlock floats.
std::vector<float>& f16_scratch() {
  thread_local std::vector<float> scratch;
  if (scratch.size() < kSerialBlock) scratch.resize(kSerialBlock);
  return scratch;
}

/// Calls op(bytes, count) over [lo, hi) of `p` with f32-encoded bytes:
/// directly for f32 payloads, via exact sub-chunk widening for f16. The
/// op's per-element arithmetic therefore sees identical float inputs either
/// way, which is what keeps the fused path bit-identical per encoding.
template <typename Op>
void for_f32_bytes(const comm::WirePayload& p, std::size_t lo, std::size_t hi,
                   std::size_t out_off, const Op& op) {
  if (p.enc == comm::WireEncoding::kF32) {
    op(p.data + 4 * lo, out_off, hi - lo);
    return;
  }
  std::vector<float>& scratch = f16_scratch();
  for (std::size_t s = lo; s < hi; s += kSerialBlock) {
    const std::size_t count = std::min(kSerialBlock, hi - s);
    tensor::widen_f16(p.data + 2 * s, scratch.data(), count);
    op(reinterpret_cast<const std::uint8_t*>(scratch.data()),
       out_off + (s - lo), count);
  }
}

}  // namespace

void weighted_sum(std::span<const WeightedVec> terms, std::span<float> out) {
  for (const auto& t : terms) APPFL_CHECK(t.values.size() == out.size());
  std::fill(out.begin(), out.end(), 0.0F);
  for_each_chunk(out.size(), terms.size(), [&](std::size_t lo, std::size_t hi) {
    for (const auto& t : terms) {
      tensor::axpy_f32_bytes(
          t.weight,
          reinterpret_cast<const std::uint8_t*>(t.values.data() + lo),
          out.data() + lo, hi - lo);
    }
  });
}

void consensus_sum(std::span<const ConsensusTerm> terms, float inv_p,
                   float inv_rho, std::span<float> out) {
  for (const auto& t : terms) {
    APPFL_CHECK(t.primal.size() == out.size());
    APPFL_CHECK(t.dual.size() == out.size());
  }
  std::fill(out.begin(), out.end(), 0.0F);
  for_each_chunk(out.size(), terms.size(), [&](std::size_t lo, std::size_t hi) {
    for (const auto& t : terms) {
      tensor::consensus_f32_bytes(
          inv_p, inv_rho,
          reinterpret_cast<const std::uint8_t*>(t.primal.data() + lo),
          reinterpret_cast<const std::uint8_t*>(t.dual.data() + lo),
          out.data() + lo, hi - lo);
    }
  });
}

void weighted_delta(std::span<const DeltaTerm> terms,
                    std::span<const float> base, std::span<double> out) {
  APPFL_CHECK(base.size() == out.size());
  for (const auto& t : terms) APPFL_CHECK(t.values.size() == out.size());
  std::fill(out.begin(), out.end(), 0.0);
  for_each_chunk(out.size(), terms.size(), [&](std::size_t lo, std::size_t hi) {
    for (const auto& t : terms) {
      tensor::delta_f32_bytes(
          t.weight,
          reinterpret_cast<const std::uint8_t*>(t.values.data() + lo),
          base.data() + lo, out.data() + lo, hi - lo);
    }
  });
}

void weighted_sum_stream(std::span<const StreamTerm> terms,
                         std::span<float> out) {
  for (const auto& t : terms) APPFL_CHECK(t.values.count == out.size());
  std::fill(out.begin(), out.end(), 0.0F);
  for_each_chunk(out.size(), terms.size(), [&](std::size_t lo, std::size_t hi) {
    // Pair adjacent raw-f32 participants so the output block is swept once
    // per pair instead of once per term; bit-identical because the paired
    // kernel performs the same two rounded additions in caller order. f16
    // payloads take the single-term path through the widening scratch.
    std::size_t t = 0;
    while (t < terms.size()) {
      if (t + 1 < terms.size() &&
          terms[t].values.enc == comm::WireEncoding::kF32 &&
          terms[t + 1].values.enc == comm::WireEncoding::kF32) {
        tensor::axpy2_f32_bytes(terms[t].weight,
                                terms[t].values.data + 4 * lo,
                                terms[t + 1].weight,
                                terms[t + 1].values.data + 4 * lo,
                                out.data() + lo, hi - lo);
        t += 2;
        continue;
      }
      const auto& term = terms[t];
      for_f32_bytes(term.values, lo, hi, lo,
                    [&](const std::uint8_t* x, std::size_t off,
                        std::size_t n) {
                      tensor::axpy_f32_bytes(term.weight, x, out.data() + off,
                                             n);
                    });
      ++t;
    }
  });
}

void consensus_sum_stream(std::span<const ConsensusStreamTerm> terms,
                          float inv_p, float inv_rho, std::span<float> out) {
  for (const auto& t : terms) {
    APPFL_CHECK(t.primal.count == out.size());
    APPFL_CHECK(t.dual.count == out.size());
    // Codecs never apply to dual-shipping algorithms, so consensus payloads
    // arrive as raw float32 — the f16 sub-chunk machinery would need two
    // scratches here and has no caller.
    APPFL_CHECK(t.primal.enc == comm::WireEncoding::kF32 &&
                t.dual.enc == comm::WireEncoding::kF32);
  }
  std::fill(out.begin(), out.end(), 0.0F);
  for_each_chunk(out.size(), terms.size(), [&](std::size_t lo, std::size_t hi) {
    // Participants go through the paired kernel two at a time (bit-identical
    // to two single sweeps in the same order) so the output block is loaded
    // and stored half as often while 2P payload streams pass through once.
    std::size_t t = 0;
    for (; t + 2 <= terms.size(); t += 2) {
      tensor::consensus2_f32_bytes(
          inv_p, inv_rho, terms[t].primal.data + 4 * lo,
          terms[t].dual.data + 4 * lo, terms[t + 1].primal.data + 4 * lo,
          terms[t + 1].dual.data + 4 * lo, out.data() + lo, hi - lo);
    }
    for (; t < terms.size(); ++t) {
      tensor::consensus_f32_bytes(inv_p, inv_rho, terms[t].primal.data + 4 * lo,
                                  terms[t].dual.data + 4 * lo, out.data() + lo,
                                  hi - lo);
    }
  });
}

void weighted_delta_stream(std::span<const DeltaStreamTerm> terms,
                           std::span<const float> base,
                           std::span<double> out) {
  APPFL_CHECK(base.size() == out.size());
  for (const auto& t : terms) APPFL_CHECK(t.values.count == out.size());
  std::fill(out.begin(), out.end(), 0.0);
  for_each_chunk(out.size(), terms.size(), [&](std::size_t lo, std::size_t hi) {
    for (const auto& t : terms) {
      for_f32_bytes(t.values, lo, hi, lo,
                    [&](const std::uint8_t* x, std::size_t off,
                        std::size_t n) {
                      tensor::delta_f32_bytes(t.weight, x, base.data() + off,
                                              out.data() + off, n);
                    });
    }
  });
}

void materialize(const comm::WirePayload& payload, std::span<float> out) {
  APPFL_CHECK(payload.count == out.size());
  if (payload.count == 0) return;
  if (payload.enc == comm::WireEncoding::kF32) {
    std::memcpy(out.data(), payload.data, 4 * payload.count);
  } else {
    tensor::widen_f16(payload.data, out.data(), payload.count);
  }
}

void materialize_chunk(const comm::WirePayload& payload, std::size_t lo,
                       std::size_t hi, float* dst) {
  APPFL_CHECK(lo <= hi && hi <= payload.count);
  if (payload.enc == comm::WireEncoding::kF32) {
    std::memcpy(dst, payload.data + 4 * lo, 4 * (hi - lo));
  } else {
    tensor::widen_f16(payload.data + 2 * lo, dst, hi - lo);
  }
}

}  // namespace appfl::core
