#include "core/aggregate.hpp"

#include <algorithm>
#include <functional>

#include "tensor/gemm.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace appfl::core {

namespace {

/// Runs fn over [0, n) — chunked across the kernel pool when the reduction
/// is big enough to pay for the fan-out, serially otherwise. fn must be
/// safe to call on disjoint ranges concurrently (each output element is
/// written by exactly one range).
void run_chunked(std::size_t n, std::size_t num_terms,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n >= kParallelAggregateThreshold && num_terms >= 2 &&
      !util::ThreadPool::on_worker_thread()) {
    const auto pool = tensor::kernel_pool();
    if (pool && pool->size() > 1) {
      pool->parallel_for_range(n, fn);
      return;
    }
  }
  fn(0, n);
}

}  // namespace

void weighted_sum(std::span<const WeightedVec> terms, std::span<float> out) {
  for (const auto& t : terms) APPFL_CHECK(t.values.size() == out.size());
  std::fill(out.begin(), out.end(), 0.0F);
  run_chunked(out.size(), terms.size(),
              [&](std::size_t lo, std::size_t hi) {
                for (const auto& t : terms) {
                  const float weight = t.weight;
                  const float* x = t.values.data();
                  for (std::size_t i = lo; i < hi; ++i) {
                    out[i] += weight * x[i];
                  }
                }
              });
}

void consensus_sum(std::span<const ConsensusTerm> terms, float inv_p,
                   float inv_rho, std::span<float> out) {
  for (const auto& t : terms) {
    APPFL_CHECK(t.primal.size() == out.size());
    APPFL_CHECK(t.dual.size() == out.size());
  }
  std::fill(out.begin(), out.end(), 0.0F);
  run_chunked(out.size(), terms.size(),
              [&](std::size_t lo, std::size_t hi) {
                for (const auto& t : terms) {
                  const float* z = t.primal.data();
                  const float* l = t.dual.data();
                  for (std::size_t i = lo; i < hi; ++i) {
                    out[i] += inv_p * (z[i] - inv_rho * l[i]);
                  }
                }
              });
}

void weighted_delta(std::span<const DeltaTerm> terms,
                    std::span<const float> base, std::span<double> out) {
  APPFL_CHECK(base.size() == out.size());
  for (const auto& t : terms) APPFL_CHECK(t.values.size() == out.size());
  std::fill(out.begin(), out.end(), 0.0);
  run_chunked(out.size(), terms.size(),
              [&](std::size_t lo, std::size_t hi) {
                for (const auto& t : terms) {
                  const double weight = t.weight;
                  const float* z = t.values.data();
                  for (std::size_t i = lo; i < hi; ++i) {
                    out[i] += weight * (static_cast<double>(z[i]) - base[i]);
                  }
                }
              });
}

}  // namespace appfl::core
