// Parallel deterministic server-side aggregation.
//
// Every server algorithm reduces P client vectors into one model-sized
// output — the hot loop of the aggregation step at FEMNIST scale (203
// clients × the model dimension). These helpers parallelize that reduction
// over *index chunks* of the output while accumulating participants in the
// caller's order within each element. Chunking over the index axis never
// reorders any individual element's float additions, so the result is
// bit-identical to the serial loop for every thread count and chunk split —
// unlike a tree reduction over participants, which would re-associate the
// (non-associative) float sums. Work fans out over the shared kernel
// ThreadPool and degrades to serial inside pool workers, below a size
// threshold, or on a single-thread pool.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "comm/message.hpp"

namespace appfl::core {

/// One participant of a weighted sum.
struct WeightedVec {
  std::span<const float> values;
  float weight = 1.0F;
};

/// out[i] = Σ_p weight_p · values_p[i], terms accumulated in order — the
/// FedAvg/FedProx aggregate (same per-element expression as tensor::axpy).
void weighted_sum(std::span<const WeightedVec> terms, std::span<float> out);

/// One client's (z_p, λ_p) replica pair.
struct ConsensusTerm {
  std::span<const float> primal;  // z_p
  std::span<const float> dual;    // λ_p
};

/// out[i] = Σ_p inv_p · (z_p[i] − inv_rho · λ_p[i]) — the IIADMM/ICEADMM
/// consensus line (Line 3), terms accumulated in order.
void consensus_sum(std::span<const ConsensusTerm> terms, float inv_p,
                   float inv_rho, std::span<float> out);

/// One participant of a pseudo-gradient average.
struct DeltaTerm {
  std::span<const float> values;  // z_p
  double weight = 1.0;
};

/// out[i] = Σ_p weight_p · (double(z_p[i]) − double(base[i])) — FedOpt's
/// sample-weighted pseudo-gradient, accumulated in double.
void weighted_delta(std::span<const DeltaTerm> terms,
                    std::span<const float> base, std::span<double> out);

/// Elements below which the reductions stay serial (chunk setup would cost
/// more than the arithmetic saves).
constexpr std::size_t kParallelAggregateThreshold = 16384;

// -- Streaming (fused decode→aggregate) variants ------------------------------
//
// These consume comm::WirePayload views — the float bytes exactly as they
// sit in the wire (or codec-decoded) buffer — so the payload is read once,
// during aggregation, instead of decode-then-reduce touching it twice. The
// inner loops run through the AVX2 runtime-dispatch kernels in
// tensor/accumulate.*; fp16 payloads are widened sub-chunk by sub-chunk
// into a thread-local scratch (an exact conversion), so every variant stays
// bit-identical to decoding the payloads first and calling the span form —
// at any thread count, with the same index-chunk fan-out and caller-order
// accumulation guarantee as above.

/// One streamed participant of a weighted sum.
struct StreamTerm {
  comm::WirePayload values;
  float weight = 1.0F;
};

/// Streaming weighted_sum: out[i] = Σ_p weight_p · values_p[i].
void weighted_sum_stream(std::span<const StreamTerm> terms,
                         std::span<float> out);

/// One streamed (z_p, λ_p) replica pair.
struct ConsensusStreamTerm {
  comm::WirePayload primal;
  comm::WirePayload dual;
};

/// Streaming consensus_sum: out[i] = Σ_p inv_p · (z_p[i] − inv_rho · λ_p[i]).
void consensus_sum_stream(std::span<const ConsensusStreamTerm> terms,
                          float inv_p, float inv_rho, std::span<float> out);

/// One streamed participant of a pseudo-gradient average.
struct DeltaStreamTerm {
  comm::WirePayload values;
  double weight = 1.0;
};

/// Streaming weighted_delta: out[i] = Σ_p weight_p · (double(z_p[i]) −
/// double(base[i])), accumulated in double.
void weighted_delta_stream(std::span<const DeltaStreamTerm> terms,
                           std::span<const float> base, std::span<double> out);

/// Decodes a wire payload into `out` (sizes must match): memcpy for f32,
/// exact widening for f16 — the store-through primitive the fused server
/// paths use to refresh a replica while aggregating from it.
void materialize(const comm::WirePayload& payload, std::span<float> out);

/// Chunk of a wire payload: the [lo, hi) value range decoded into
/// `dst[0 .. hi-lo)` — materialize's ranged form, for fused loops that
/// refresh a replica chunk and immediately accumulate from it.
void materialize_chunk(const comm::WirePayload& payload, std::size_t lo,
                       std::size_t hi, float* dst);

/// Runs fn over disjoint index ranges covering [0, n) with the exact
/// fan-out policy (and therefore the exact bit-identity guarantee) the
/// reductions above use: parallel over the kernel pool when the reduction
/// is big enough, cache-sized serial blocks otherwise. For server absorb
/// loops that interleave replica refresh with accumulation. fn must write
/// each output element from exactly one range.
void for_each_chunk(std::size_t n, std::size_t num_terms,
                    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace appfl::core
