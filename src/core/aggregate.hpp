// Parallel deterministic server-side aggregation.
//
// Every server algorithm reduces P client vectors into one model-sized
// output — the hot loop of the aggregation step at FEMNIST scale (203
// clients × the model dimension). These helpers parallelize that reduction
// over *index chunks* of the output while accumulating participants in the
// caller's order within each element. Chunking over the index axis never
// reorders any individual element's float additions, so the result is
// bit-identical to the serial loop for every thread count and chunk split —
// unlike a tree reduction over participants, which would re-associate the
// (non-associative) float sums. Work fans out over the shared kernel
// ThreadPool and degrades to serial inside pool workers, below a size
// threshold, or on a single-thread pool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace appfl::core {

/// One participant of a weighted sum.
struct WeightedVec {
  std::span<const float> values;
  float weight = 1.0F;
};

/// out[i] = Σ_p weight_p · values_p[i], terms accumulated in order — the
/// FedAvg/FedProx aggregate (same per-element expression as tensor::axpy).
void weighted_sum(std::span<const WeightedVec> terms, std::span<float> out);

/// One client's (z_p, λ_p) replica pair.
struct ConsensusTerm {
  std::span<const float> primal;  // z_p
  std::span<const float> dual;    // λ_p
};

/// out[i] = Σ_p inv_p · (z_p[i] − inv_rho · λ_p[i]) — the IIADMM/ICEADMM
/// consensus line (Line 3), terms accumulated in order.
void consensus_sum(std::span<const ConsensusTerm> terms, float inv_p,
                   float inv_rho, std::span<float> out);

/// One participant of a pseudo-gradient average.
struct DeltaTerm {
  std::span<const float> values;  // z_p
  double weight = 1.0;
};

/// out[i] = Σ_p weight_p · (double(z_p[i]) − double(base[i])) — FedOpt's
/// sample-weighted pseudo-gradient, accumulated in double.
void weighted_delta(std::span<const DeltaTerm> terms,
                    std::span<const float> base, std::span<double> out);

/// Elements below which the reductions stay serial (chunk setup would cost
/// more than the arithmetic saves).
constexpr std::size_t kParallelAggregateThreshold = 16384;

}  // namespace appfl::core
