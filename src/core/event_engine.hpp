// Population-scale discrete-event client engine.
//
// The thread-per-client runner (core/runner) multiplexes P live clients
// over a thread pool, which caps P at a few hundred: every client owns a
// model replica, a mailbox, and a dataset for the whole run. This engine
// turns a round into a discrete-event simulation instead: a round samples
// `participants_per_round` clients from a `population`-sized lazy
// data::SyntheticPopulation, and each participant exists only while its
// events execute — built (dataset + model clone), trained, encoded,
// uplinked, destroyed. Non-participants cost nothing; memory tracks the
// sampled cohort, so a 100k-client population with 1k participants/round
// fits on one box.
//
// Mechanics: a priority event queue over comm::SimClock time drives the
// client state machine train → encode → uplink → idle. Consecutive
// same-kind events at the queue front are dispatched as one wave on the
// shared util::ThreadPool (heavy work writes only slot-indexed arrays, so
// results are independent of thread count); bookkeeping events run on the
// orchestration thread. Uplinks route through a core/agg_tree
// leader/sub-leader topology over a real comm::InProcNetwork — leaf
// leaders drain and validate their children's mailboxes in parallel — and
// the root reduces with ONE slot-ordered weighted_sum_stream, making tree
// output byte-identical to the flat gather (see agg_tree.hpp for why
// per-subtree partial sums could never be).
//
// Determinism contract: participant sets come from the checkpointable
// sampler stream derive_seed(seed, {79}); the final model is a pure
// function of (config, population) — identical across reruns, thread
// counts, tree fan-outs, and kill/resume at any round boundary (the v2
// checkpoint carries the sampler state and the sparse participation
// ledger).
#pragma once

#include <cstdint>
#include <vector>

#include "core/agg_tree.hpp"
#include "core/runner.hpp"
#include "data/synth.hpp"

namespace appfl::core {

/// Engine-side counters (the simulator's own performance, not the FL run's).
struct EngineStats {
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;        // real time spent in the round loop
  double events_per_second = 0.0;   // events_processed / wall_seconds
  std::uint64_t peak_rss_bytes = 0; // process VmHWM after the run (Linux)
  std::uint64_t mailbox_overflows = 0;
  std::size_t tree_depth = 1;
  std::size_t tree_leaf_groups = 1;
};

struct PopulationRunResult {
  RunResult run;
  EngineStats engine;
  /// Sampled participant ids (sorted, 1-based) for each round THIS process
  /// executed — what the sampler-determinism tests compare across reruns,
  /// thread counts, and resumes.
  std::vector<std::vector<std::uint32_t>> participants_by_round;
};

/// Peak resident set size of this process in bytes (/proc/self/status
/// VmHWM); 0 where the platform doesn't expose it.
std::uint64_t peak_rss_bytes();

/// Runs config.rounds sampled rounds of FedAvg/FedProx over `population`.
/// Requires config.population == population.size() (validate() enforces the
/// rest: algorithm, codec, participants_per_round, tree_fan_out,
/// mailbox_capacity). Honors the same checkpoint/halt/obs knobs as
/// run_federated. Notes vs the flat runner: the downlink is one canonical
/// encode accounted per participant (uplinks genuinely cross the network;
/// APPFL_FAULT_* faults therefore act on uplinks only, with dead/drop
/// entries keyed by participant SLOT endpoints 1..k, not client ids), and a
/// client's data-loader position restarts at each participation (clients
/// are transient by design).
PopulationRunResult run_population(const RunConfig& config,
                                   const data::SyntheticPopulation& population);

}  // namespace appfl::core
