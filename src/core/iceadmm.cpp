#include "core/iceadmm.hpp"

#include <cmath>

#include "core/adaptive.hpp"
#include "core/aggregate.hpp"
#include "obs/trace.hpp"
#include "tensor/accumulate.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::core {

IceAdmmClient::IceAdmmClient(std::uint32_t id, const RunConfig& config,
                             const nn::Module& prototype,
                             data::TensorDataset dataset)
    : BaseClient(id, config, prototype, std::move(dataset)) {
  z_ = model().flat_parameters();      // z¹ = shared initial point
  lambda_.assign(z_.size(), 0.0F);     // λ¹ = 0
}

comm::Message IceAdmmClient::update(std::span<const float> global,
                                    std::uint32_t round) {
  begin_round(round);
  const std::size_t m = z_.size();
  APPFL_CHECK(global.size() == m);
  const float rho = round_rho();  // the ρ^t announced with this broadcast
  const float zeta = config().zeta;
  const float inv = 1.0F / (rho + zeta);

  // All data points form one full batch ("all data points are used for
  // calculating a gradient in ICEADMM as implemented in [8]").
  const data::Batch full = dataset().all();

  for (std::size_t step = 0; step < config().local_steps; ++step) {
    const std::vector<float> g = batch_gradient(z_, full);
    for (std::size_t i = 0; i < m; ++i) {
      z_[i] = (rho * global[i] + zeta * z_[i] + lambda_[i] - g[i]) * inv;
    }
    for (std::size_t i = 0; i < m; ++i) {
      lambda_[i] += rho * (global[i] - z_[i]);
    }
  }

  // Output perturbation on the primal (the "true output" of §III-B).
  apply_dp(z_, round);

  comm::Message msg;
  msg.kind = comm::MessageKind::kLocalUpdate;
  msg.sender = id();
  msg.receiver = 0;
  msg.round = round;
  msg.primal = z_;
  msg.dual = lambda_;  // ICEADMM's extra traffic: duals ride along
  msg.sample_count = num_samples();
  msg.loss = last_loss();
  return msg;
}

IceAdmmServer::IceAdmmServer(const RunConfig& config,
                             std::unique_ptr<nn::Module> model,
                             data::TensorDataset test_set,
                             std::size_t num_clients)
    : BaseServer(config, std::move(model), std::move(test_set), num_clients),
      rho_(config.rho) {
  primal_.assign(num_clients, BaseServer::initial_parameters());
  dual_.assign(num_clients,
               std::vector<float>(primal_.front().size(), 0.0F));
}

std::vector<float> IceAdmmServer::compute_global(std::uint32_t) {
  if (fused_valid_) return fused_w_;
  const std::size_t m = primal_.front().size();
  const float inv_p = 1.0F / static_cast<float>(primal_.size());
  const float inv_rho = 1.0F / rho_;
  std::vector<float> w(m, 0.0F);
  std::vector<ConsensusTerm> terms(primal_.size());
  for (std::size_t p = 0; p < primal_.size(); ++p) {
    terms[p] = {primal_[p], dual_[p]};
  }
  consensus_sum(terms, inv_p, inv_rho, w);
  return w;
}

bool IceAdmmServer::absorb(const comm::GatherBatch& batch,
                           std::span<const float>, std::uint32_t round) {
  // Adaptive ρ consumes the residual norms update() computes on the side;
  // the fused loop skips them, so it only runs with a constant ρ (where
  // skipping is observably identical).
  if (config().adaptive_rho) return false;
  const std::span<const comm::GatherUpdate> updates = batch.updates();
  if (updates.empty()) return true;  // straggler policy: state untouched
  if (updates.size() > num_clients()) return false;
  const std::size_t n = primal_.front().size();
  for (const auto& u : updates) {
    if (u.round != round || u.sender < 1 || u.sender > num_clients() ||
        u.dual.empty() || u.dual.count != u.primal.count ||
        u.primal.count != n) {
      return false;  // unfused path reproduces the historical diagnostics
    }
  }
  for (std::size_t p = 0; p < primal_.size(); ++p) {
    if (primal_[p].size() != n || dual_[p].size() != n) return false;
  }
  obs::ScopedSpan span("fl.fused_absorb", "fl");
  span.set_arg("round", round);
  fused_w_.assign(n, 0.0F);
  const float inv_p = 1.0F / static_cast<float>(primal_.size());
  const float inv_rho = 1.0F / rho_;
  for_each_chunk(n, primal_.size(), [&](std::size_t lo, std::size_t hi) {
    // Refresh the fresh clients' replica chunks from the wire bytes...
    for (const auto& u : updates) {
      const std::size_t p = u.sender - 1;
      materialize_chunk(u.primal, lo, hi, primal_[p].data() + lo);
      materialize_chunk(u.dual, lo, hi, dual_[p].data() + lo);
    }
    // ...then accumulate next round's consensus over ALL P replicas (stale
    // pairs included), in the exact term order compute_global uses.
    std::size_t p = 0;
    for (; p + 2 <= primal_.size(); p += 2) {
      tensor::consensus2_f32_bytes(
          inv_p, inv_rho,
          reinterpret_cast<const std::uint8_t*>(primal_[p].data() + lo),
          reinterpret_cast<const std::uint8_t*>(dual_[p].data() + lo),
          reinterpret_cast<const std::uint8_t*>(primal_[p + 1].data() + lo),
          reinterpret_cast<const std::uint8_t*>(dual_[p + 1].data() + lo),
          fused_w_.data() + lo, hi - lo);
    }
    for (; p < primal_.size(); ++p) {
      tensor::consensus_f32_bytes(
          inv_p, inv_rho,
          reinterpret_cast<const std::uint8_t*>(primal_[p].data() + lo),
          reinterpret_cast<const std::uint8_t*>(dual_[p].data() + lo),
          fused_w_.data() + lo, hi - lo);
    }
  });
  fused_valid_ = true;  // ρ is constant here, so the cache cannot go stale
  return true;
}

void IceAdmmServer::update(const std::vector<comm::Message>& locals,
                           std::span<const float> global, std::uint32_t round) {
  fused_valid_ = false;
  // Straggler policy: absent clients keep their previous (z_p, λ_p) pair —
  // ICEADMM ships both on the wire, so a stale pair stays self-consistent.
  if (locals.empty()) return;
  APPFL_CHECK(locals.size() <= num_clients());
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  for (const auto& m : locals) {
    APPFL_CHECK_MSG(m.round == round, "stale update from client " << m.sender);
    APPFL_CHECK(m.sender >= 1 && m.sender <= num_clients());
    APPFL_CHECK_MSG(!m.dual.empty(),
                    "ICEADMM requires clients to ship dual variables");
    APPFL_CHECK(m.dual.size() == m.primal.size());
    const std::size_t p = m.sender - 1;
    double r2 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < m.primal.size(); ++i) {
      const double r = static_cast<double>(global[i]) - m.primal[i];
      const double s = static_cast<double>(m.primal[i]) - primal_[p][i];
      r2 += r * r;
      s2 += s * s;
    }
    primal_residual += std::sqrt(r2);
    dual_residual += static_cast<double>(rho_) * std::sqrt(s2);
    primal_[p] = m.primal;
    dual_[p] = m.dual;
  }
  if (config().adaptive_rho) {
    rho_ = adapt_rho(rho_, primal_residual, dual_residual, config());
  }
}

void IceAdmmClient::export_algo_state(ClientStateCkpt& out) const {
  out.primal = z_;
  out.dual = lambda_;
}

void IceAdmmClient::import_algo_state(const ClientStateCkpt& s) {
  APPFL_CHECK(s.primal.size() == z_.size() && s.dual.size() == lambda_.size());
  z_ = s.primal;
  lambda_ = s.dual;
}

ServerStateCkpt IceAdmmServer::export_state() const {
  ServerStateCkpt s = BaseServer::export_state();
  s.rho = rho_;
  s.primal = primal_;
  s.dual = dual_;
  return s;
}

void IceAdmmServer::import_state(const ServerStateCkpt& s) {
  fused_valid_ = false;
  BaseServer::import_state(s);
  APPFL_CHECK_MSG(s.primal.size() == num_clients() &&
                      s.dual.size() == num_clients(),
                  "ICEADMM checkpoint sized for " << s.primal.size()
                      << " clients, server has " << num_clients());
  rho_ = static_cast<float>(s.rho);
  primal_ = s.primal;
  dual_ = s.dual;
}

}  // namespace appfl::core
