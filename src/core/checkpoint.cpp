#include "core/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "comm/envelope.hpp"
#include "comm/protolite.hpp"
#include "util/check.hpp"

namespace appfl::core {

namespace {
constexpr std::uint32_t kFVersion = 1;
constexpr std::uint32_t kFAlgorithm = 2;
constexpr std::uint32_t kFDataset = 3;
constexpr std::uint32_t kFRounds = 4;
constexpr std::uint32_t kFAccuracy = 5;
constexpr std::uint32_t kFParameters = 6;
constexpr std::uint32_t kFModel = 7;
constexpr std::uint32_t kSupportedVersion = 1;
}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ckpt) {
  comm::ProtoWriter w;
  w.add_varint(kFVersion, ckpt.format_version);
  w.add_string(kFAlgorithm, ckpt.algorithm);
  w.add_string(kFDataset, ckpt.dataset);
  w.add_varint(kFRounds, ckpt.rounds_completed);
  w.add_double(kFAccuracy, ckpt.final_accuracy);
  w.add_packed_floats(kFParameters, ckpt.parameters);
  if (!ckpt.model.empty()) w.add_string(kFModel, ckpt.model);
  return w.take();
}

Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  Checkpoint ckpt;
  ckpt.format_version = 0;
  comm::ProtoReader r(bytes);
  comm::ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kFVersion:
        ckpt.format_version = static_cast<std::uint32_t>(f.varint);
        break;
      case kFAlgorithm: ckpt.algorithm = comm::ProtoReader::as_string(f); break;
      case kFDataset: ckpt.dataset = comm::ProtoReader::as_string(f); break;
      case kFRounds:
        ckpt.rounds_completed = static_cast<std::uint32_t>(f.varint);
        break;
      case kFAccuracy:
        ckpt.final_accuracy = comm::ProtoReader::as_double(f);
        break;
      case kFParameters:
        ckpt.parameters = comm::ProtoReader::as_packed_floats(f);
        break;
      case kFModel: ckpt.model = comm::ProtoReader::as_string(f); break;
      default:
        break;  // forward compatibility: skip unknown fields
    }
  }
  APPFL_CHECK_MSG(ckpt.format_version == kSupportedVersion,
                  "unsupported checkpoint version " << ckpt.format_version);
  APPFL_CHECK_MSG(!ckpt.parameters.empty(), "checkpoint carries no parameters");
  return ckpt;
}

namespace {

/// Writes `bytes` to `path` crash-consistently: temp file in the same
/// directory, flush + fsync, then atomic rename. A crash at any point
/// leaves either the old `path` content or the new one — never a torn mix.
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  APPFL_CHECK_MSG(f != nullptr, "cannot open " << tmp << " for writing");
  const std::size_t written = bytes.empty()
                                  ? 0
                                  : std::fwrite(bytes.data(), 1, bytes.size(),
                                                f);
  bool ok = written == bytes.size();
  ok = std::fflush(f) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    APPFL_CHECK_MSG(false, "write to " << tmp << " failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    APPFL_CHECK_MSG(false,
                    "rename " << tmp << " -> " << path << ": " << ec.message());
  }
#if defined(__unix__) || defined(__APPLE__)
  // Persist the rename itself (directory entry) so the new file survives a
  // machine crash, not just a process crash. Best-effort.
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return std::nullopt;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in.good()) return std::nullopt;
  return bytes;
}

}  // namespace

void save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  // Torn-write protection even for the legacy single-file API: overwriting
  // `path` in place would destroy the previous good checkpoint if the
  // process died mid-write.
  atomic_write_file(path, encode_checkpoint(ckpt));
}

Checkpoint load_checkpoint(const std::string& path) {
  const auto bytes = read_file(path);
  APPFL_CHECK_MSG(bytes.has_value(), "cannot read " << path);
  return decode_checkpoint(*bytes);
}

// ---------------------------------------------------------------------------
// v2 encoding
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kRoundCkptVersion = 2;
// Top-level flavor discriminator so a sync round checkpoint is never
// restored as an async one (or vice versa).
constexpr std::uint64_t kFlavorSyncRound = 1;
constexpr std::uint64_t kFlavorAsync = 2;

// Top-level fields (shared by both flavors where it makes sense).
constexpr std::uint32_t kTVersion = 1;
constexpr std::uint32_t kTFlavor = 2;
constexpr std::uint32_t kTAlgorithm = 3;
constexpr std::uint32_t kTSeed = 4;
constexpr std::uint32_t kTNumClients = 5;
constexpr std::uint32_t kTParamCount = 6;
constexpr std::uint32_t kTTotalRounds = 7;
constexpr std::uint32_t kTRoundsCompleted = 8;
constexpr std::uint32_t kTParameters = 9;
constexpr std::uint32_t kTServer = 10;
constexpr std::uint32_t kTClient = 11;      // repeated
constexpr std::uint32_t kTSamplerState = 12;  // repeated varint ×4
constexpr std::uint32_t kTComm = 13;
// Async-only top-level fields.
constexpr std::uint32_t kTTotalUpdates = 14;
constexpr std::uint32_t kTAppliedUpdates = 15;
constexpr std::uint32_t kTModelVersion = 16;
constexpr std::uint32_t kTDispatchCounter = 17;
constexpr std::uint32_t kTStalenessSum = 18;
constexpr std::uint32_t kTSimSeconds = 19;
constexpr std::uint32_t kTPending = 20;   // repeated
constexpr std::uint32_t kTInFlight = 21;  // repeated packed floats
// Async strategy state (optional: absent on pre-strategy checkpoints, and
// pre-strategy decoders skip them as unknown fields).
constexpr std::uint32_t kTStrategy = 22;       // string
constexpr std::uint32_t kTBufferVals = 23;     // repeated packed floats
constexpr std::uint32_t kTBufferWeight = 24;   // packed floats
constexpr std::uint32_t kTAssignedSteps = 25;  // repeated varint
constexpr std::uint32_t kTDropped = 26;        // varint
constexpr std::uint32_t kTFaultRng = 27;       // repeated varint ×4
constexpr std::uint32_t kTServerPrimal = 28;   // repeated packed floats
constexpr std::uint32_t kTServerDual = 29;     // repeated packed floats
constexpr std::uint32_t kTWSent = 30;          // repeated packed floats
// Population-engine extension (optional: absent on classic sync-runner
// checkpoints, and pre-population decoders skip them as unknown fields).
constexpr std::uint32_t kTPopulation = 31;            // varint
constexpr std::uint32_t kTParticipantsPerRound = 32;  // varint
// Sparse participation ledger: repeated (id, count) pairs, id always first.
constexpr std::uint32_t kTParticipationId = 33;     // varint 1-based client id
constexpr std::uint32_t kTParticipationCount = 34;  // varint rounds trained

// ClientStateCkpt fields.
constexpr std::uint32_t kCId = 1;
constexpr std::uint32_t kCLoaderEpochs = 2;
constexpr std::uint32_t kCPrimal = 3;
constexpr std::uint32_t kCDual = 4;
constexpr std::uint32_t kCDpSpent = 5;

// ServerStateCkpt fields.
constexpr std::uint32_t kSKind = 1;
constexpr std::uint32_t kSRho = 2;
constexpr std::uint32_t kSPrimal = 3;        // repeated packed floats
constexpr std::uint32_t kSDual = 4;          // repeated packed floats
constexpr std::uint32_t kSSampleCounts = 5;  // repeated varint
constexpr std::uint32_t kSParticipants = 6;  // repeated varint
constexpr std::uint32_t kSOptW = 7;
constexpr std::uint32_t kSOptM = 8;
constexpr std::uint32_t kSOptV = 9;

// CommStateCkpt fields.
constexpr std::uint32_t kMSimNow = 1;
constexpr std::uint32_t kMCounter = 2;  // repeated varint, fixed order below
constexpr std::uint32_t kMLinkKey = 3;  // repeated varint
constexpr std::uint32_t kMLinkSeq = 4;  // repeated varint
// Error-feedback residuals: repeated (id, values) pairs, id always first.
// Only non-empty residuals are written; pre-int8 decoders skip both fields.
constexpr std::uint32_t kMResidualId = 5;    // varint client index (0-based)
constexpr std::uint32_t kMResidualVals = 6;  // packed floats

// Pending fields (async in-flight dispatch).
constexpr std::uint32_t kPFinish = 1;
constexpr std::uint32_t kPClient = 2;
constexpr std::uint32_t kPVersion = 3;

/// TrafficStats <-> flat counter list, in a fixed documented order. The
/// decoder accepts longer lists (future counters) but requires at least
/// this many.
constexpr std::size_t kNumTrafficCounters = 14;

std::vector<std::uint64_t> pack_traffic(const comm::TrafficStats& s) {
  // mailbox_overflows rides as a 15th counter; kNumTrafficCounters stays 14
  // so pre-overflow checkpoints (exactly 14 counters) still decode.
  return {s.messages_up, s.messages_down,  s.bytes_up,      s.bytes_down,
          s.bytes_up_precodec, s.drops,    s.duplicates,    s.reorders,
          s.corruptions, s.delays,         s.retries,       s.crc_failures,
          s.discards,    s.gather_timeouts, s.mailbox_overflows};
}

comm::TrafficStats unpack_traffic(const std::vector<std::uint64_t>& c) {
  APPFL_CHECK_MSG(c.size() >= kNumTrafficCounters,
                  "checkpoint traffic ledger has " << c.size() << " counters, "
                  "expected >= " << kNumTrafficCounters);
  comm::TrafficStats s;
  s.messages_up = c[0];
  s.messages_down = c[1];
  s.bytes_up = c[2];
  s.bytes_down = c[3];
  s.bytes_up_precodec = c[4];
  s.drops = c[5];
  s.duplicates = c[6];
  s.reorders = c[7];
  s.corruptions = c[8];
  s.delays = c[9];
  s.retries = c[10];
  s.crc_failures = c[11];
  s.discards = c[12];
  s.gather_timeouts = c[13];
  if (c.size() > 14) s.mailbox_overflows = c[14];
  return s;
}

void encode_client(comm::ProtoWriter& w, const ClientStateCkpt& c) {
  comm::ProtoWriter cw;
  cw.add_varint(kCId, c.id);
  cw.add_varint(kCLoaderEpochs, c.loader_epochs);
  if (!c.primal.empty()) cw.add_packed_floats(kCPrimal, c.primal);
  if (!c.dual.empty()) cw.add_packed_floats(kCDual, c.dual);
  cw.add_double(kCDpSpent, c.dp_spent);
  w.add_bytes(kTClient, cw.view());
}

ClientStateCkpt decode_client(std::span<const std::uint8_t> bytes) {
  ClientStateCkpt c;
  comm::ProtoReader r(bytes);
  comm::ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kCId: c.id = static_cast<std::uint32_t>(f.varint); break;
      case kCLoaderEpochs: c.loader_epochs = f.varint; break;
      case kCPrimal: c.primal = comm::ProtoReader::as_packed_floats(f); break;
      case kCDual: c.dual = comm::ProtoReader::as_packed_floats(f); break;
      case kCDpSpent: c.dp_spent = comm::ProtoReader::as_double(f); break;
      default: break;
    }
  }
  APPFL_CHECK_MSG(c.id >= 1, "client checkpoint with invalid id " << c.id);
  return c;
}

void encode_server(comm::ProtoWriter& w, const ServerStateCkpt& s) {
  comm::ProtoWriter sw;
  sw.add_string(kSKind, s.kind);
  sw.add_double(kSRho, s.rho);
  for (const auto& v : s.primal) sw.add_packed_floats(kSPrimal, v);
  for (const auto& v : s.dual) sw.add_packed_floats(kSDual, v);
  for (std::uint64_t v : s.sample_counts) sw.add_varint(kSSampleCounts, v);
  for (std::uint64_t v : s.participants) sw.add_varint(kSParticipants, v);
  if (!s.opt_w.empty()) sw.add_packed_floats(kSOptW, s.opt_w);
  if (!s.opt_m.empty()) sw.add_packed_floats(kSOptM, s.opt_m);
  if (!s.opt_v.empty()) sw.add_packed_floats(kSOptV, s.opt_v);
  w.add_bytes(kTServer, sw.view());
}

ServerStateCkpt decode_server(std::span<const std::uint8_t> bytes) {
  ServerStateCkpt s;
  comm::ProtoReader r(bytes);
  comm::ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kSKind: s.kind = comm::ProtoReader::as_string(f); break;
      case kSRho: s.rho = comm::ProtoReader::as_double(f); break;
      case kSPrimal:
        s.primal.push_back(comm::ProtoReader::as_packed_floats(f));
        break;
      case kSDual:
        s.dual.push_back(comm::ProtoReader::as_packed_floats(f));
        break;
      case kSSampleCounts: s.sample_counts.push_back(f.varint); break;
      case kSParticipants: s.participants.push_back(f.varint); break;
      case kSOptW: s.opt_w = comm::ProtoReader::as_packed_floats(f); break;
      case kSOptM: s.opt_m = comm::ProtoReader::as_packed_floats(f); break;
      case kSOptV: s.opt_v = comm::ProtoReader::as_packed_floats(f); break;
      default: break;
    }
  }
  APPFL_CHECK_MSG(!s.kind.empty(), "server checkpoint carries no kind tag");
  return s;
}

void encode_comm(comm::ProtoWriter& w, const CommStateCkpt& c) {
  comm::ProtoWriter mw;
  mw.add_double(kMSimNow, c.sim_now);
  for (std::uint64_t v : pack_traffic(c.stats)) mw.add_varint(kMCounter, v);
  for (std::uint64_t v : c.link_keys) mw.add_varint(kMLinkKey, v);
  for (std::uint64_t v : c.link_seqs) mw.add_varint(kMLinkSeq, v);
  for (std::size_t i = 0; i < c.ef_residuals.size(); ++i) {
    if (c.ef_residuals[i].empty()) continue;
    mw.add_varint(kMResidualId, i);
    mw.add_packed_floats(kMResidualVals, c.ef_residuals[i]);
  }
  w.add_bytes(kTComm, mw.view());
}

CommStateCkpt decode_comm(std::span<const std::uint8_t> bytes) {
  CommStateCkpt c;
  std::vector<std::uint64_t> counters;
  std::optional<std::uint64_t> pending_residual;  // id awaiting its values
  comm::ProtoReader r(bytes);
  comm::ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kMSimNow: c.sim_now = comm::ProtoReader::as_double(f); break;
      case kMCounter: counters.push_back(f.varint); break;
      case kMLinkKey: c.link_keys.push_back(f.varint); break;
      case kMLinkSeq: c.link_seqs.push_back(f.varint); break;
      case kMResidualId:
        APPFL_CHECK_MSG(!pending_residual.has_value(),
                        "checkpoint residual id without values");
        APPFL_CHECK_MSG(f.varint < 1U << 20,
                        "checkpoint residual id out of range");
        pending_residual = f.varint;
        break;
      case kMResidualVals: {
        APPFL_CHECK_MSG(pending_residual.has_value(),
                        "checkpoint residual values without an id");
        const auto id = static_cast<std::size_t>(*pending_residual);
        if (c.ef_residuals.size() <= id) c.ef_residuals.resize(id + 1);
        c.ef_residuals[id] = comm::ProtoReader::as_packed_floats(f);
        pending_residual.reset();
        break;
      }
      default: break;
    }
  }
  APPFL_CHECK_MSG(!pending_residual.has_value(),
                  "checkpoint residual id without values");
  c.stats = unpack_traffic(counters);
  APPFL_CHECK_MSG(c.link_keys.size() == c.link_seqs.size(),
                  "checkpoint link counters are unpaired: "
                      << c.link_keys.size() << " keys vs "
                      << c.link_seqs.size() << " sequences");
  return c;
}

/// Seals an encoded body in the comm plane's CRC32 envelope.
std::vector<std::uint8_t> seal(comm::ProtoWriter&& w) {
  return comm::seal_envelope(w.take());
}

/// Opens the envelope (throwing on damage, like a counted wire corruption
/// would be at the comm layer — here the caller wants a hard verdict) and
/// returns the body.
std::span<const std::uint8_t> unseal(std::span<const std::uint8_t> bytes) {
  const auto body = comm::open_envelope(bytes);
  APPFL_CHECK_MSG(body.has_value(),
                  "checkpoint envelope damaged (bad magic or CRC32 mismatch)");
  return *body;
}

}  // namespace

std::vector<std::uint8_t> encode_round_checkpoint(const RoundCheckpoint& ckpt) {
  comm::ProtoWriter w;
  w.add_varint(kTVersion, ckpt.format_version);
  w.add_varint(kTFlavor, kFlavorSyncRound);
  w.add_string(kTAlgorithm, ckpt.algorithm);
  w.add_varint(kTSeed, ckpt.seed);
  w.add_varint(kTNumClients, ckpt.num_clients);
  w.add_varint(kTParamCount, ckpt.param_count);
  w.add_varint(kTTotalRounds, ckpt.total_rounds);
  w.add_varint(kTRoundsCompleted, ckpt.rounds_completed);
  w.add_packed_floats(kTParameters, ckpt.parameters);
  encode_server(w, ckpt.server);
  for (const auto& c : ckpt.clients) encode_client(w, c);
  for (std::uint64_t s : ckpt.sampler_state) w.add_varint(kTSamplerState, s);
  encode_comm(w, ckpt.comm);
  if (ckpt.population > 0) {
    w.add_varint(kTPopulation, ckpt.population);
    w.add_varint(kTParticipantsPerRound, ckpt.participants_per_round);
    for (const auto& [id, count] : ckpt.participation) {
      w.add_varint(kTParticipationId, id);
      w.add_varint(kTParticipationCount, count);
    }
  }
  return seal(std::move(w));
}

RoundCheckpoint decode_round_checkpoint(std::span<const std::uint8_t> bytes) {
  const auto body = unseal(bytes);
  RoundCheckpoint ckpt;
  ckpt.format_version = 0;
  std::uint64_t flavor = 0;
  std::vector<std::uint64_t> sampler;
  bool have_server = false;
  bool have_comm = false;
  std::optional<std::uint32_t> pending_participation;
  comm::ProtoReader r(body);
  comm::ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kTVersion:
        ckpt.format_version = static_cast<std::uint32_t>(f.varint);
        break;
      case kTFlavor: flavor = f.varint; break;
      case kTAlgorithm: ckpt.algorithm = comm::ProtoReader::as_string(f); break;
      case kTSeed: ckpt.seed = f.varint; break;
      case kTNumClients:
        ckpt.num_clients = static_cast<std::uint32_t>(f.varint);
        break;
      case kTParamCount: ckpt.param_count = f.varint; break;
      case kTTotalRounds:
        ckpt.total_rounds = static_cast<std::uint32_t>(f.varint);
        break;
      case kTRoundsCompleted:
        ckpt.rounds_completed = static_cast<std::uint32_t>(f.varint);
        break;
      case kTParameters:
        ckpt.parameters = comm::ProtoReader::as_packed_floats(f);
        break;
      case kTServer:
        ckpt.server = decode_server(f.bytes);
        have_server = true;
        break;
      case kTClient: ckpt.clients.push_back(decode_client(f.bytes)); break;
      case kTSamplerState: sampler.push_back(f.varint); break;
      case kTComm:
        ckpt.comm = decode_comm(f.bytes);
        have_comm = true;
        break;
      case kTPopulation: ckpt.population = f.varint; break;
      case kTParticipantsPerRound:
        ckpt.participants_per_round = static_cast<std::uint32_t>(f.varint);
        break;
      case kTParticipationId:
        APPFL_CHECK_MSG(!pending_participation,
                        "participation id without a following count");
        pending_participation = static_cast<std::uint32_t>(f.varint);
        break;
      case kTParticipationCount:
        APPFL_CHECK_MSG(pending_participation,
                        "participation count without a preceding id");
        ckpt.participation.emplace_back(
            *pending_participation, static_cast<std::uint32_t>(f.varint));
        pending_participation.reset();
        break;
      default: break;  // forward compatibility
    }
  }
  APPFL_CHECK_MSG(!pending_participation,
                  "participation id without a following count");
  APPFL_CHECK_MSG(ckpt.format_version == kRoundCkptVersion,
                  "unsupported round-checkpoint version "
                      << ckpt.format_version);
  APPFL_CHECK_MSG(flavor == kFlavorSyncRound,
                  "checkpoint flavor " << flavor
                                       << " is not a sync round checkpoint");
  APPFL_CHECK_MSG(have_server, "round checkpoint carries no server state");
  APPFL_CHECK_MSG(have_comm, "round checkpoint carries no comm state");
  APPFL_CHECK_MSG(sampler.size() == 4, "round checkpoint sampler state has "
                                           << sampler.size()
                                           << " words, expected 4");
  for (std::size_t i = 0; i < 4; ++i) ckpt.sampler_state[i] = sampler[i];
  APPFL_CHECK_MSG(ckpt.num_clients >= 1, "round checkpoint has no clients");
  if (ckpt.population > 0) {
    // Population-engine checkpoint: clients are transient (rebuilt per
    // participation), so no per-client states ride along.
    APPFL_CHECK_MSG(ckpt.clients.empty(),
                    "population checkpoint carries per-client states");
    APPFL_CHECK_MSG(ckpt.participants_per_round >= 1 &&
                        ckpt.participants_per_round <= ckpt.population,
                    "population checkpoint samples "
                        << ckpt.participants_per_round << " of "
                        << ckpt.population);
    for (const auto& [id, count] : ckpt.participation) {
      APPFL_CHECK_MSG(id >= 1 && id <= ckpt.population,
                      "participation ledger has out-of-range client " << id);
      APPFL_CHECK_MSG(count >= 1, "participation ledger has idle client "
                                      << id);
    }
  } else {
    APPFL_CHECK_MSG(ckpt.clients.size() == ckpt.num_clients,
                    "round checkpoint carries " << ckpt.clients.size()
                        << " client states for " << ckpt.num_clients
                        << " clients");
  }
  APPFL_CHECK_MSG(ckpt.rounds_completed >= 1 &&
                      ckpt.rounds_completed <= ckpt.total_rounds,
                  "round checkpoint at round " << ckpt.rounds_completed
                      << " of " << ckpt.total_rounds << " is inconsistent");
  return ckpt;
}

std::vector<std::uint8_t> encode_async_checkpoint(const AsyncCheckpoint& ckpt) {
  comm::ProtoWriter w;
  w.add_varint(kTVersion, ckpt.format_version);
  w.add_varint(kTFlavor, kFlavorAsync);
  w.add_varint(kTSeed, ckpt.seed);
  w.add_varint(kTNumClients, ckpt.num_clients);
  w.add_varint(kTParamCount, ckpt.param_count);
  w.add_varint(kTTotalUpdates, ckpt.total_updates);
  w.add_varint(kTAppliedUpdates, ckpt.applied_updates);
  w.add_varint(kTModelVersion, ckpt.version);
  w.add_varint(kTDispatchCounter, ckpt.dispatch_counter);
  w.add_double(kTStalenessSum, ckpt.staleness_sum);
  w.add_double(kTSimSeconds, ckpt.sim_seconds);
  w.add_packed_floats(kTParameters, ckpt.w);
  for (std::uint64_t s : ckpt.jitter_state) w.add_varint(kTSamplerState, s);
  for (const auto& p : ckpt.queue) {
    comm::ProtoWriter pw;
    pw.add_double(kPFinish, p.finish_time);
    pw.add_varint(kPClient, p.client);
    pw.add_varint(kPVersion, p.version);
    w.add_bytes(kTPending, pw.view());
  }
  for (const auto& z : ckpt.in_flight) w.add_packed_floats(kTInFlight, z);
  for (const auto& c : ckpt.clients) encode_client(w, c);
  if (!ckpt.strategy.empty()) w.add_string(kTStrategy, ckpt.strategy);
  for (const auto& d : ckpt.buffer) w.add_packed_floats(kTBufferVals, d);
  if (!ckpt.buffer_weights.empty()) {
    w.add_packed_floats(kTBufferWeight, ckpt.buffer_weights);
  }
  for (std::uint64_t s : ckpt.assigned_steps) w.add_varint(kTAssignedSteps, s);
  if (ckpt.dropped_updates != 0) w.add_varint(kTDropped, ckpt.dropped_updates);
  bool fault_rng_used = false;
  for (std::uint64_t word : ckpt.fault_rng) fault_rng_used |= word != 0;
  if (fault_rng_used) {
    for (std::uint64_t word : ckpt.fault_rng) w.add_varint(kTFaultRng, word);
  }
  for (const auto& v : ckpt.server_primal) w.add_packed_floats(kTServerPrimal, v);
  for (const auto& v : ckpt.server_dual) w.add_packed_floats(kTServerDual, v);
  for (const auto& v : ckpt.w_sent) w.add_packed_floats(kTWSent, v);
  return seal(std::move(w));
}

AsyncCheckpoint decode_async_checkpoint(std::span<const std::uint8_t> bytes) {
  const auto body = unseal(bytes);
  AsyncCheckpoint ckpt;
  ckpt.format_version = 0;
  std::uint64_t flavor = 0;
  std::vector<std::uint64_t> jitter;
  std::vector<std::uint64_t> fault_rng;
  comm::ProtoReader r(body);
  comm::ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kTVersion:
        ckpt.format_version = static_cast<std::uint32_t>(f.varint);
        break;
      case kTFlavor: flavor = f.varint; break;
      case kTSeed: ckpt.seed = f.varint; break;
      case kTNumClients:
        ckpt.num_clients = static_cast<std::uint32_t>(f.varint);
        break;
      case kTParamCount: ckpt.param_count = f.varint; break;
      case kTTotalUpdates: ckpt.total_updates = f.varint; break;
      case kTAppliedUpdates: ckpt.applied_updates = f.varint; break;
      case kTModelVersion: ckpt.version = f.varint; break;
      case kTDispatchCounter: ckpt.dispatch_counter = f.varint; break;
      case kTStalenessSum:
        ckpt.staleness_sum = comm::ProtoReader::as_double(f);
        break;
      case kTSimSeconds:
        ckpt.sim_seconds = comm::ProtoReader::as_double(f);
        break;
      case kTParameters: ckpt.w = comm::ProtoReader::as_packed_floats(f); break;
      case kTSamplerState: jitter.push_back(f.varint); break;
      case kTPending: {
        AsyncCheckpoint::Pending p;
        comm::ProtoReader pr(f.bytes);
        comm::ProtoField pf;
        while (pr.next(pf)) {
          switch (pf.field) {
            case kPFinish:
              p.finish_time = comm::ProtoReader::as_double(pf);
              break;
            case kPClient: p.client = static_cast<std::uint32_t>(pf.varint); break;
            case kPVersion: p.version = pf.varint; break;
            default: break;
          }
        }
        ckpt.queue.push_back(p);
        break;
      }
      case kTInFlight:
        ckpt.in_flight.push_back(comm::ProtoReader::as_packed_floats(f));
        break;
      case kTClient: ckpt.clients.push_back(decode_client(f.bytes)); break;
      case kTStrategy: ckpt.strategy = comm::ProtoReader::as_string(f); break;
      case kTBufferVals:
        ckpt.buffer.push_back(comm::ProtoReader::as_packed_floats(f));
        break;
      case kTBufferWeight:
        ckpt.buffer_weights = comm::ProtoReader::as_packed_floats(f);
        break;
      case kTAssignedSteps: ckpt.assigned_steps.push_back(f.varint); break;
      case kTDropped: ckpt.dropped_updates = f.varint; break;
      case kTFaultRng: fault_rng.push_back(f.varint); break;
      case kTServerPrimal:
        ckpt.server_primal.push_back(comm::ProtoReader::as_packed_floats(f));
        break;
      case kTServerDual:
        ckpt.server_dual.push_back(comm::ProtoReader::as_packed_floats(f));
        break;
      case kTWSent:
        ckpt.w_sent.push_back(comm::ProtoReader::as_packed_floats(f));
        break;
      default: break;
    }
  }
  APPFL_CHECK_MSG(ckpt.format_version == kRoundCkptVersion,
                  "unsupported async-checkpoint version "
                      << ckpt.format_version);
  APPFL_CHECK_MSG(flavor == kFlavorAsync,
                  "checkpoint flavor " << flavor
                                       << " is not an async checkpoint");
  APPFL_CHECK_MSG(jitter.size() == 4, "async checkpoint jitter state has "
                                          << jitter.size()
                                          << " words, expected 4");
  for (std::size_t i = 0; i < 4; ++i) ckpt.jitter_state[i] = jitter[i];
  APPFL_CHECK_MSG(ckpt.num_clients >= 1, "async checkpoint has no clients");
  APPFL_CHECK_MSG(ckpt.clients.size() == ckpt.num_clients,
                  "async checkpoint carries " << ckpt.clients.size()
                      << " client states for " << ckpt.num_clients
                      << " clients");
  APPFL_CHECK_MSG(ckpt.in_flight.size() == ckpt.num_clients,
                  "async checkpoint in-flight table has "
                      << ckpt.in_flight.size() << " entries for "
                      << ckpt.num_clients << " clients");
  APPFL_CHECK_MSG(fault_rng.empty() || fault_rng.size() == 4,
                  "async checkpoint fault-rng state has " << fault_rng.size()
                                                          << " words");
  for (std::size_t i = 0; i < fault_rng.size(); ++i) {
    ckpt.fault_rng[i] = fault_rng[i];
  }
  APPFL_CHECK_MSG(ckpt.buffer.size() == ckpt.buffer_weights.size(),
                  "async checkpoint buffer has " << ckpt.buffer.size()
                      << " deltas but " << ckpt.buffer_weights.size()
                      << " weights");
  APPFL_CHECK_MSG(ckpt.assigned_steps.empty() ||
                      ckpt.assigned_steps.size() == ckpt.num_clients,
                  "async checkpoint step plan has "
                      << ckpt.assigned_steps.size() << " entries for "
                      << ckpt.num_clients << " clients");
  APPFL_CHECK_MSG(ckpt.server_primal.size() == ckpt.server_dual.size() &&
                      ckpt.server_primal.size() == ckpt.w_sent.size(),
                  "async checkpoint ADMM replica tables are unpaired");
  return ckpt;
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kSeqHeaderBytes = 8;

void put_seq(std::vector<std::uint8_t>& out, std::uint64_t seq) {
  for (std::size_t i = 0; i < kSeqHeaderBytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
  }
}

std::uint64_t get_seq(std::span<const std::uint8_t> body) {
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < kSeqHeaderBytes; ++i) {
    seq |= static_cast<std::uint64_t>(body[i]) << (8 * i);
  }
  return seq;
}
}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  APPFL_CHECK_MSG(!dir_.empty(), "checkpoint directory path is empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  APPFL_CHECK_MSG(!ec, "cannot create checkpoint directory " << dir_ << ": "
                                                             << ec.message());
  // Decide which slot the next save overwrites: the one NOT holding the
  // newest complete checkpoint (corrupt or missing slots are fair game).
  const Slot a = read_slot(kSlotA, nullptr);
  const Slot b = read_slot(kSlotB, nullptr);
  if (a.valid && (!b.valid || a.sequence >= b.sequence)) {
    write_slot_ = 1;
  } else if (b.valid) {
    write_slot_ = 0;
  } else {
    write_slot_ = 0;
  }
}

CheckpointStore::Slot CheckpointStore::read_slot(const char* name,
                                                 const Validator& valid) const {
  Slot slot;
  const std::string path = dir_ + "/" + name;
  const auto bytes = read_file(path);
  if (!bytes.has_value()) return slot;  // missing: not corrupt, just absent
  slot.present = true;
  const auto body = comm::open_envelope(*bytes);
  if (!body.has_value()) {
    slot.why = "bad magic or CRC32 mismatch (torn or corrupted write)";
    return slot;
  }
  if (body->size() < kSeqHeaderBytes) {
    slot.why = "envelope body shorter than the sequence header";
    return slot;
  }
  slot.sequence = get_seq(*body);
  slot.payload.assign(body->begin() + kSeqHeaderBytes, body->end());
  if (valid && !valid(slot.payload)) {
    slot.why = "payload rejected by validator (undecodable or mismatched run)";
    return slot;
  }
  slot.valid = true;
  return slot;
}

void CheckpointStore::quarantine(const char* name, const std::string& why) {
  const std::string path = dir_ + "/" + name;
  const std::string dest = path + ".quarantined";
  std::error_code ec;
  std::filesystem::rename(path, dest, ec);  // overwrites a prior quarantine
  ++report_.corrupt_quarantined;
  report_.diagnostics.push_back(std::string(name) + ": " + why +
                                (ec ? " (quarantine rename failed: " +
                                          ec.message() + ")"
                                    : " -> quarantined"));
}

void CheckpointStore::save(std::span<const std::uint8_t> payload,
                           std::uint64_t sequence) {
  std::vector<std::uint8_t> body;
  body.reserve(kSeqHeaderBytes + payload.size());
  put_seq(body, sequence);
  body.insert(body.end(), payload.begin(), payload.end());
  const std::vector<std::uint8_t> sealed =
      comm::seal_envelope(std::move(body));
  const char* name = write_slot_ == 0 ? kSlotA : kSlotB;
  atomic_write_file(dir_ + "/" + name, sealed);
  write_slot_ ^= 1;
}

std::optional<CheckpointStore::Loaded> CheckpointStore::load_latest(
    const Validator& valid) {
  const char* names[2] = {kSlotA, kSlotB};
  Slot slots[2];
  for (int i = 0; i < 2; ++i) {
    slots[i] = read_slot(names[i], valid);
    if (slots[i].present && !slots[i].valid) {
      quarantine(names[i], slots[i].why);
    }
  }
  int best = -1;
  for (int i = 0; i < 2; ++i) {
    if (slots[i].valid &&
        (best < 0 || slots[i].sequence > slots[best].sequence)) {
      best = i;
    }
  }
  if (best < 0) return std::nullopt;
  // The next save must overwrite the OTHER slot, preserving what we loaded.
  write_slot_ = best ^ 1;
  Loaded out;
  out.payload = std::move(slots[best].payload);
  out.sequence = slots[best].sequence;
  out.slot = names[best];
  return out;
}

void save_round_checkpoint(CheckpointStore& store, const RoundCheckpoint& ckpt) {
  store.save(encode_round_checkpoint(ckpt), ckpt.rounds_completed);
}

std::optional<RoundCheckpoint> load_latest_round_checkpoint(
    CheckpointStore& store) {
  const auto loaded = store.load_latest([](std::span<const std::uint8_t> p) {
    try {
      (void)decode_round_checkpoint(p);
      return true;
    } catch (const appfl::Error&) {
      return false;
    }
  });
  if (!loaded.has_value()) return std::nullopt;
  return decode_round_checkpoint(loaded->payload);
}

void save_async_checkpoint(CheckpointStore& store, const AsyncCheckpoint& ckpt) {
  store.save(encode_async_checkpoint(ckpt), ckpt.applied_updates);
}

std::optional<AsyncCheckpoint> load_latest_async_checkpoint(
    CheckpointStore& store) {
  const auto loaded = store.load_latest([](std::span<const std::uint8_t> p) {
    try {
      (void)decode_async_checkpoint(p);
      return true;
    } catch (const appfl::Error&) {
      return false;
    }
  });
  if (!loaded.has_value()) return std::nullopt;
  return decode_async_checkpoint(loaded->payload);
}

}  // namespace appfl::core
