#include "core/checkpoint.hpp"

#include <fstream>

#include "comm/protolite.hpp"
#include "util/check.hpp"

namespace appfl::core {

namespace {
constexpr std::uint32_t kFVersion = 1;
constexpr std::uint32_t kFAlgorithm = 2;
constexpr std::uint32_t kFDataset = 3;
constexpr std::uint32_t kFRounds = 4;
constexpr std::uint32_t kFAccuracy = 5;
constexpr std::uint32_t kFParameters = 6;
constexpr std::uint32_t kFModel = 7;
constexpr std::uint32_t kSupportedVersion = 1;
}  // namespace

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ckpt) {
  comm::ProtoWriter w;
  w.add_varint(kFVersion, ckpt.format_version);
  w.add_string(kFAlgorithm, ckpt.algorithm);
  w.add_string(kFDataset, ckpt.dataset);
  w.add_varint(kFRounds, ckpt.rounds_completed);
  w.add_double(kFAccuracy, ckpt.final_accuracy);
  w.add_packed_floats(kFParameters, ckpt.parameters);
  if (!ckpt.model.empty()) w.add_string(kFModel, ckpt.model);
  return w.take();
}

Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  Checkpoint ckpt;
  ckpt.format_version = 0;
  comm::ProtoReader r(bytes);
  comm::ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kFVersion:
        ckpt.format_version = static_cast<std::uint32_t>(f.varint);
        break;
      case kFAlgorithm: ckpt.algorithm = comm::ProtoReader::as_string(f); break;
      case kFDataset: ckpt.dataset = comm::ProtoReader::as_string(f); break;
      case kFRounds:
        ckpt.rounds_completed = static_cast<std::uint32_t>(f.varint);
        break;
      case kFAccuracy:
        ckpt.final_accuracy = comm::ProtoReader::as_double(f);
        break;
      case kFParameters:
        ckpt.parameters = comm::ProtoReader::as_packed_floats(f);
        break;
      case kFModel: ckpt.model = comm::ProtoReader::as_string(f); break;
      default:
        break;  // forward compatibility: skip unknown fields
    }
  }
  APPFL_CHECK_MSG(ckpt.format_version == kSupportedVersion,
                  "unsupported checkpoint version " << ckpt.format_version);
  APPFL_CHECK_MSG(!ckpt.parameters.empty(), "checkpoint carries no parameters");
  return ckpt;
}

void save_checkpoint(const std::string& path, const Checkpoint& ckpt) {
  const auto bytes = encode_checkpoint(ckpt);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  APPFL_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  APPFL_CHECK_MSG(out.good(), "write to " << path << " failed");
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  APPFL_CHECK_MSG(in.good(), "cannot open " << path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  APPFL_CHECK_MSG(in.good(), "read from " << path << " failed");
  return decode_checkpoint(bytes);
}

}  // namespace appfl::core
