// Residual-balancing adaptive penalty (paper future work 2).
//
// Classic ADMM adaptation (Boyd et al. §3.4.1; Xu et al. "Adaptive Consensus
// ADMM", the paper's [23]): grow ρ when the primal residual dominates the
// dual residual, shrink it when the reverse holds, clamp to [ρ_min, ρ_max].
// The server adapts AFTER absorbing a round and announces the new ρ^t with
// the next broadcast, so both sides always apply identical arithmetic.
#pragma once

#include "core/config.hpp"

namespace appfl::core {

/// One adaptation step. `primal_residual` = Σ_p ‖w − z_p‖₂ over the round's
/// updates; `dual_residual` = ρ·Σ_p ‖z_p − z_p_prev‖₂.
float adapt_rho(float rho, double primal_residual, double dual_residual,
                const RunConfig& config);

}  // namespace appfl::core
