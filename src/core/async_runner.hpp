// Asynchronous federated aggregation (paper future work 1).
//
// §IV-C/D/E all point at the same weakness of synchronous rounds: the server
// waits for the slowest client (stragglers from heterogeneous GPUs or
// congested gRPC links). This module implements the asynchronous server the
// paper proposes to investigate, as a discrete-event simulation:
//
//   * every client runs on its own DeviceProfile (e.g. a mixed A100/V100
//     fleet, §IV-E) and its own gRPC/MPI link;
//   * an AsyncStrategy (core/async_strategy.hpp) decides what the server
//     does with each arriving update — FedAsync mixes it in immediately
//     with a staleness-damped step, FedBuff buffers K deltas per commit,
//     and the FedCompass-style scheduler additionally sizes each client's
//     local work so arrivals cluster;
//   * the client is immediately re-dispatched with the fresh w.
//
// The simulation advances a virtual clock from the hardware and network
// cost models, so sync-vs-async comparisons are apples-to-apples in
// simulated seconds while all updates are computed for real. When the run's
// FaultConfig has a positive drop rate, arrivals are dropped from their own
// deterministic RNG stream and the client re-dispatched — async FL's
// natural retransmit — with the loss counted in dropped_updates.
#pragma once

#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "core/async_strategy.hpp"
#include "core/base.hpp"
#include "core/config.hpp"
#include "data/synth.hpp"
#include "hw/device.hpp"

namespace appfl::core {

struct AsyncConfig {
  RunConfig run;                 // model/local-solver/DP settings
  float mixing_alpha = 0.6F;     // base mixing rate α
  std::size_t total_updates = 0; // 0 ⇒ run.rounds × num_clients
  /// Device of client p: devices[p % devices.size()]. Default: all V100.
  std::vector<hw::DeviceProfile> devices;
  /// Validate the global model every k-th applied update (0 = only at end).
  std::size_t validate_every = 0;
  /// Server absorb rule + dispatch policy. Defaults to FedAsync with
  /// polynomial staleness weighting — the historical behavior, bit-exact.
  AsyncStrategyOptions strategy;
};

struct AsyncEvent {
  double sim_time = 0.0;        // when the update was absorbed
  std::uint32_t client = 0;     // 1-based
  std::size_t staleness = 0;    // server versions elapsed while training
  double mixing = 0.0;          // α_s actually applied
  double test_accuracy = -1.0;  // −1 when not validated at this event
  bool committed = true;        // false: buffered only (FedBuff, pre-K)
};

struct AsyncRunResult {
  std::vector<AsyncEvent> events;
  double final_accuracy = 0.0;
  double sim_seconds = 0.0;       // virtual time to finish all updates
  std::size_t applied_updates = 0;   // arrivals absorbed (incl. buffered)
  std::size_t committed_updates = 0; // model-version advances
  std::size_t dropped_updates = 0;   // arrivals lost to the fault plane
  double mean_staleness = 0.0;
  std::string strategy;           // to_string of the strategy that ran

  /// The final global model (chaos tests byte-compare it across resumes).
  std::vector<float> final_w;
  /// Applied-update count the run resumed after (0 = fresh start).
  std::uint64_t resumed_from_update = 0;
  /// Async checkpoints written by this process.
  std::size_t checkpoints_written = 0;
};

/// Runs the asynchronous scheme on a federated split.
///
/// Crash recovery mirrors the sync runner, at update granularity: with
/// run.checkpoint_dir set an AsyncCheckpoint is stored every
/// run.checkpoint_every_n_rounds *applied updates*, run.resume_from restores
/// the newest valid one (bit-identical continuation — FedBuff's partially
/// filled buffer and the scheduler's step plan included), and
/// run.halt_after_round stops after that many applied updates.
AsyncRunResult run_async(const AsyncConfig& config,
                         const data::FederatedSplit& split);

/// Baseline for comparison: the *synchronous* schedule on the same
/// heterogeneous fleet — every round costs the slowest client's compute +
/// a gather — returning the simulated seconds for the same total number of
/// client updates and the final accuracy (via the standard runner). A
/// positive drop rate charges each lost uplink an ack timeout + retransmit,
/// the sync runner's recovery path.
struct SyncBaselineResult {
  double sim_seconds = 0.0;
  double final_accuracy = 0.0;
  double straggler_idle_fraction = 0.0;  // mean idle share of fast clients
  /// Cumulative simulated seconds at the end of each round (time-to-accuracy
  /// curves read round r's clock from round_seconds[r]).
  std::vector<double> round_seconds;
};

SyncBaselineResult run_sync_baseline(const AsyncConfig& config,
                                     const data::FederatedSplit& split);

/// Asynchronous IIADMM — the paper's algorithm under its future-work
/// schedule. The server keeps per-client (z_p, λ_p) replicas; each arriving
/// update triggers the dual step λ_p ← λ_p + ρ(w_sent_p − z_p^{new}) using
/// the SAME w the client trained against, so the dual-replication invariant
/// (no duals on the wire) survives asynchrony exactly. The global model is
/// recomputed from line 3's closed form after every absorption, and the
/// client is immediately re-dispatched with it. Honors the same
/// checkpoint/halt/resume contract as run_async (the replicas and w_sent
/// snapshots ride in the AsyncCheckpoint's ADMM fields). Result fields
/// carry the extra invariant check: duals_consistent is true iff every
/// client's dual matched the server replica bit-for-bit at the end.
struct AsyncIIAdmmResult {
  AsyncRunResult base;
  bool duals_consistent = false;
};

AsyncIIAdmmResult run_async_iiadmm(const AsyncConfig& config,
                                   const data::FederatedSplit& split);

}  // namespace appfl::core
