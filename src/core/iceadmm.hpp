// ICEADMM (Zhou & Li 2021, the paper's baseline [8]).
//
// Inexact consensus ADMM with L *paired* local primal/dual updates per round,
// each using the FULL-batch gradient (B_p = 1 in the paper's terminology):
//   repeat L times:
//     g ← (clipped) full-batch gradient at z
//     z ← (ρ·w + ζ·z + λ − g) / (ρ + ζ)       — closed form of eq. (4)
//     λ ← λ + ρ·(w − z)                        — eq. (3c)
// Because the client-side dual evolves with local information the server
// cannot replay, the client must ship BOTH z and λ every round — the 2×
// traffic §III-A and bench/table_comm_volume quantify.
// Server: w^{t+1} = (1/P) Σ_p (z_p − λ_p/ρ) — closed form of eq. (3a).
#pragma once

#include "core/base.hpp"

namespace appfl::core {

class IceAdmmClient : public BaseClient {
 public:
  IceAdmmClient(std::uint32_t id, const RunConfig& config,
                const nn::Module& prototype, data::TensorDataset dataset);

  comm::Message update(std::span<const float> global,
                       std::uint32_t round) override;

  /// Client-side dual state (tests inspect it).
  const std::vector<float>& dual() const { return lambda_; }

  /// ICEADMM runs L full-batch solves per round, not L×B batched ones.
  std::size_t dp_steps_per_round() const override {
    return config().local_steps;
  }

 protected:
  void export_algo_state(ClientStateCkpt& out) const override;
  void import_algo_state(const ClientStateCkpt& s) override;

 private:
  std::vector<float> z_;       // persistent local primal
  std::vector<float> lambda_;  // persistent local dual
};

class IceAdmmServer : public BaseServer {
 public:
  IceAdmmServer(const RunConfig& config, std::unique_ptr<nn::Module> model,
                data::TensorDataset test_set, std::size_t num_clients);

  std::vector<float> compute_global(std::uint32_t round) override;
  void update(const std::vector<comm::Message>& locals,
              std::span<const float> global, std::uint32_t round) override;
  /// Fused path (constant ρ only): refreshes each fresh (z_p, λ_p) pair
  /// from the wire bytes and accumulates next round's consensus in the same
  /// pass. Adaptive ρ needs the residual norms the fused loop does not
  /// compute, so it falls back — observably identical either way.
  bool absorb(const comm::GatherBatch& batch, std::span<const float> global,
              std::uint32_t round) override;
  float current_rho() const override { return rho_; }

  std::string checkpoint_kind() const override { return "iceadmm"; }
  ServerStateCkpt export_state() const override;
  void import_state(const ServerStateCkpt& s) override;

 private:
  std::vector<std::vector<float>> primal_;  // z_p received
  std::vector<std::vector<float>> dual_;    // λ_p received
  float rho_;                               // ρ^t (adapts when enabled)
  // Consensus produced by the last absorb(); valid while ρ and the replica
  // state are untouched behind it.
  std::vector<float> fused_w_;
  bool fused_valid_ = false;
};

}  // namespace appfl::core
