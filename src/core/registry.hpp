// Framework capability registry — the data behind Table I.
//
// The rows for OpenFL / FedML / TFF / PySyft are transcribed from the paper;
// the APPFL row is *derived from this codebase* (which algorithms, privacy
// mechanisms, and protocols are actually registered), so the printed table
// stays honest as the implementation evolves.
#pragma once

#include <string>
#include <vector>

namespace appfl::core {

struct FrameworkCapabilities {
  std::string name;
  bool data_privacy = false;
  bool mpi = false;
  bool grpc = false;
  bool mqtt = false;
};

/// Capabilities of THIS implementation, probed from the registered
/// components (protocols in comm::Protocol, mechanisms in appfl::dp,
/// algorithms in core::Algorithm).
FrameworkCapabilities this_framework();

/// The full Table I: OpenFL, FedML, TFF, PySyft (from the paper) + APPFL
/// (derived).
std::vector<FrameworkCapabilities> comparison_table();

/// Names of the FL algorithms available through build_server/build_client.
std::vector<std::string> registered_algorithms();

/// Names of the DP mechanisms available.
std::vector<std::string> registered_mechanisms();

}  // namespace appfl::core
