// Run configuration for a federated experiment — the knobs of §IV-A/B:
// algorithm, model, rounds T, local steps L, batch size, optimizer and ADMM
// hyper-parameters, privacy budget ε, and communication protocol.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "comm/communicator.hpp"
#include "nn/sgd.hpp"
#include "obs/obs.hpp"

namespace appfl::core {

enum class Algorithm {
  kFedAvg,   // McMahan et al. 2017; SGD+momentum local solver
  kIceAdmm,  // Zhou & Li 2021; full-batch, ships primal + dual
  kIIAdmm,   // this paper (Algorithm 1); batched, ships primal only
  kFedProx,  // Li et al. 2020; FedAvg + proximal pull (extension)
};

std::string to_string(Algorithm a);

enum class ModelKind {
  kPaperCnn,  // the paper's 2-conv CNN (§IV-A)
  kMlp,       // one-hidden-layer MLP (fast stand-in for scaled-down runs)
  kLogistic,  // convex instance, used by convergence tests
};

std::string to_string(ModelKind m);

enum class DpMode {
  kOutput,    // the paper's §III-B scheme: perturb z_p before sending
  kGradient,  // extension: perturb every clipped batch gradient (DP-SGD
              // style); the per-round ε splits evenly over the local steps
};

std::string to_string(DpMode m);

struct RunConfig {
  Algorithm algorithm = Algorithm::kFedAvg;
  ModelKind model = ModelKind::kMlp;
  std::size_t mlp_hidden = 64;

  std::size_t rounds = 10;       // T communication rounds
  std::size_t local_steps = 2;   // L local epochs per round
  std::size_t batch_size = 64;   // ≤64 per the paper; ICEADMM ignores this

  // FedAvg local solver. The schedule decays the base lr over rounds
  // (constant by default); weight decay is decoupled L2.
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 0.0F;
  nn::LrSchedule lr_schedule = nn::LrSchedule::kConstant;

  // FedProx proximal coefficient μ ≥ 0 (0 recovers FedAvg).
  float fedprox_mu = 0.1F;

  // IADMM-family hyper-parameters (eq. (4)).
  float rho = 5.0F;   // penalty ρ
  float zeta = 5.0F;  // proximity ζ

  // Adaptive penalty ρ^t (paper future work 2; residual balancing after
  // Boyd §3.4.1 / Xu et al.). The server adapts ρ from the primal/dual
  // residuals and broadcasts the value in force with each global model, so
  // server- and client-side arithmetic stays consistent.
  bool adaptive_rho = false;
  float adapt_tau = 2.0F;    // multiplicative step when residuals unbalance
  float adapt_mu = 10.0F;    // imbalance threshold ‖r‖ vs ‖s‖
  float rho_min = 0.1F;      // adaptation clamp
  float rho_max = 100.0F;

  // Differential privacy (§III-B). clip == 0 disables gradient clipping;
  // epsilon == ∞ disables perturbation.
  float clip = 1.0F;
  double epsilon = std::numeric_limits<double>::infinity();
  DpMode dp_mode = DpMode::kOutput;

  comm::Protocol protocol = comm::Protocol::kMpi;
  std::uint64_t seed = 1;

  /// Lossy uplink compression applied inside the communicator. Restricted
  /// to FedAvg/FedProx: the IADMM family's server-side dual replicas would
  /// silently diverge under lossy reconstruction.
  comm::UplinkCodec uplink_codec = comm::UplinkCodec::kNone;
  double topk_fraction = 0.1;

  /// Fused decode→aggregate data path: the server consumes gathered wire
  /// payloads directly (BaseServer::absorb) instead of materializing every
  /// client update into an owning Message first. Bit-identical to the
  /// unfused path by construction; servers that cannot fuse a given round
  /// (e.g. adaptive ρ) fall back transparently. APPFL_FUSED_AGG=0/1
  /// overrides at run start (invalid values are warned about and ignored).
  bool fused_aggregation = true;

  /// FedAvg aggregation weights: I_p/I when true (objective (1)), 1/P when
  /// false (Algorithm 1's plain average). IADMM servers always use 1/P.
  bool weighted_aggregation = true;

  /// Fraction of clients sampled each round (McMahan et al.'s C parameter).
  /// 1.0 = full participation (the paper's setting). With f < 1 the runner
  /// draws ⌈f·P⌉ distinct clients per round from a seed-derived stream;
  /// FedAvg averages that round's participants, the IADMM servers update
  /// only the participants' (z_p, λ_p) and keep the rest.
  double client_fraction = 1.0;

  /// Population engine (core/event_engine.hpp). population > 0 switches
  /// run_population on: each round samples `participants_per_round` distinct
  /// clients from a `population`-sized lazy synthetic population
  /// (data::SyntheticPopulation) and drives them through the discrete-event
  /// scheduler instead of thread-per-client. Restricted to FedAvg/FedProx
  /// with the codec off (participants are transient, so server-side dual
  /// replicas and per-client codec residuals have nowhere to live) and
  /// adaptive_rho off. The sync/async runners ignore these fields.
  std::size_t population = 0;
  std::size_t participants_per_round = 0;

  /// Aggregation-tree fan-out for the population engine: 0 = flat gather
  /// (every participant feeds the server root directly), F >= 2 = a
  /// leader/sub-leader tree with F children per node (core/agg_tree.hpp).
  /// Routing and simulated cost change; the reduced model is byte-identical
  /// either way. APPFL_TREE_FANOUT overrides at run start.
  std::size_t tree_fan_out = 0;

  /// Per-mailbox high-water mark handed to the communicator / engine
  /// network (0 = unbounded; see comm::ReliabilityConfig::mailbox_capacity).
  /// APPFL_MAILBOX_CAP overrides at run start. The population engine
  /// requires 0 or >= the tree's maximum fan-in, so backpressure can never
  /// decide which participant's update survives.
  std::size_t mailbox_capacity = 0;

  /// Dropout-resilient secure aggregation (dp/secure_agg.hpp): clients
  /// upload double-masked fixed-point updates plus Shamir share packets;
  /// the server recovers the exact survivor sum as long as at least
  /// `secure_agg_threshold` uploads arrive, and otherwise degrades the
  /// round to a counted skip (model unchanged). Restricted to
  /// FedAvg/FedProx with the uplink codec off (masked words are opaque
  /// bit patterns — lossy codecs would destroy them; ADMM servers need
  /// per-client updates the masked sum cannot provide). Works in both the
  /// sync runner and the population engine. Off by default; when off every
  /// code path is bit-identical to a build without the feature.
  bool secure_agg = false;
  /// Shamir reconstruction threshold t (2 <= t <= round cohort size).
  /// 0 = auto: majority of the round's cohort (⌊n/2⌋ + 1).
  std::size_t secure_agg_threshold = 0;

  std::size_t validate_batch = 256;
  bool validate_every_round = true;

  /// Fault injection on the in-process network (comm robustness plane).
  /// All-zero (the default) keeps the injector off; wire bytes, sim-clock
  /// times, and results are then bit-identical to a fault-free build.
  /// APPFL_FAULT_* environment variables override these at run start (see
  /// comm::fault_config_from_env). Client endpoint ids listed in
  /// faults.dead are permanently failed.
  comm::FaultConfig faults;
  /// Sim-seconds the server's deadline gather waits before proceeding with
  /// whatever arrived (fault plane only).
  double gather_timeout_s = 30.0;
  /// Uplink retransmit policy (fault plane only): base ack timeout that
  /// doubles per retry up to max_uplink_retries attempts.
  double ack_timeout_s = 0.25;
  std::size_t max_uplink_retries = 4;

  /// Crash recovery (core/checkpoint.hpp). An empty checkpoint_dir (the
  /// default) disables checkpointing entirely, leaving the run bit-identical
  /// to a checkpoint-less build; otherwise a round checkpoint is written to
  /// the directory's A/B slot store every checkpoint_every_n_rounds rounds.
  /// resume_from names a store directory whose newest valid checkpoint is
  /// restored before the first round — the resumed run continues to a
  /// bit-identical final model. APPFL_CKPT_DIR / APPFL_CKPT_EVERY /
  /// APPFL_CKPT_RESUME override these at run start (unparseable values are
  /// warned about on stderr and ignored, like APPFL_FAULT_*).
  std::string checkpoint_dir;
  std::size_t checkpoint_every_n_rounds = 1;
  std::string resume_from;
  /// Chaos-harness hook: stop after completing (and, when a store is
  /// configured, checkpointing) round k — WITHOUT changing `rounds`, so
  /// round-count-dependent lr schedules stay pinned to the full run.
  /// 0 = run to completion. The async runner reads it as "halt after k
  /// applied updates".
  std::size_t halt_after_round = 0;

  /// Kernel execution engine (tensor substrate). "auto" leaves the
  /// process-wide setting untouched (env APPFL_KERNEL_BACKEND, default
  /// tiled); "reference" forces the scalar baseline loops, "tiled" the
  /// packed parallel GEMM. kernel_threads 0 = keep current (default:
  /// hardware concurrency). The runner applies these once per run; the
  /// kernel pool is shared process-wide and nested inside the runner's
  /// per-client parallelism (clients outer, kernels inner).
  std::string kernel_backend = "auto";
  std::size_t kernel_threads = 0;

  /// Observability plane (src/obs). obs_level selects how much the run
  /// records: "off" (default — zero instrumentation, output bit-identical
  /// to a build without the plane), "metrics" (registry counters and
  /// histograms only), "trace" (metrics plus per-phase spans exported as
  /// Chrome trace JSON). trace_out names the trace file (requires "trace");
  /// metrics_out names a JSONL stream with one line per round plus a final
  /// summary (requires at least "metrics"). APPFL_OBS_LEVEL /
  /// APPFL_OBS_TRACE_OUT / APPFL_OBS_METRICS_OUT override these at run
  /// start; invalid values are warned about on stderr and ignored, like
  /// APPFL_FAULT_* and APPFL_CKPT_*. The plane only reads clocks and
  /// counters — never RNG, sim time, or wire bytes — so enabling it does
  /// not change results.
  std::string obs_level = "off";
  std::string trace_out;
  std::string metrics_out;
  /// Causal-analysis outputs (same level rules, same APPFL_OBS_* override
  /// convention): health_out writes the per-client health ledger CSV at end
  /// of run (requires at least "metrics"); critpath_out writes the
  /// critical-path analyzer's per-round JSONL plus a `.csv` sibling
  /// (requires "trace" — the analyzer consumes span records); flight_dir
  /// names a directory the flight recorder dumps into on secure-agg
  /// degraded rounds, unfillable gathers, and fatal-signal/terminate hooks
  /// (requires at least "metrics").
  std::string health_out;
  std::string critpath_out;
  std::string flight_dir;

  /// Per-round DP sensitivity Δ̄ for this config (algorithm-dependent).
  double sensitivity() const;

  /// Throws appfl::Error on inconsistent settings.
  void validate() const;
};

/// Checkpoint policy after APPFL_CKPT_* environment overrides.
struct CheckpointOptions {
  std::string dir;          // empty ⇒ checkpointing off
  std::size_t every = 1;    // save cadence in rounds (>= 1)
  std::string resume_from;  // empty ⇒ fresh start
};

/// Resolves the run's checkpoint policy: config fields overridden by
/// APPFL_CKPT_DIR, APPFL_CKPT_EVERY (positive integer), APPFL_CKPT_RESUME.
/// Unparseable env values are warned about on stderr and ignored, matching
/// the APPFL_FAULT_* convention.
CheckpointOptions checkpoint_options_from_env(const RunConfig& config);

/// Resolves whether the fused decode→aggregate path is enabled:
/// config.fused_aggregation overridden by APPFL_FUSED_AGG (0 or 1; anything
/// else is warned about on stderr and ignored, matching APPFL_FAULT_*).
bool fused_aggregation_from_env(const RunConfig& config);

/// Returns `config` with APPFL_TREE_FANOUT / APPFL_MAILBOX_CAP applied
/// (non-negative integers; unparseable values are warned about on stderr
/// and ignored, matching APPFL_FAULT_*). Callers re-validate afterwards.
RunConfig scaling_config_from_env(RunConfig config);

/// Resolves the run's observability policy: config fields (obs_level /
/// trace_out / metrics_out) overridden by APPFL_OBS_LEVEL /
/// APPFL_OBS_TRACE_OUT / APPFL_OBS_METRICS_OUT. Assumes config.validate()
/// passed, so config.obs_level parses; env values are warned about on
/// stderr and ignored when invalid.
obs::ObsOptions obs_options_from_env(const RunConfig& config);

}  // namespace appfl::core
