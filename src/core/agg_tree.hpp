// Hierarchical aggregation topology for the population engine: participant
// slots feed leaf leaders, leaf leaders feed sub-leaders, and so on up to
// the server root — the leader/sub-leader reduce tree the Advances-in-APPFL
// scaling work uses to break the server's flat O(N) gather.
//
// The tree shapes ROUTING and COST, never ARITHMETIC. What is hierarchical:
// which mailbox each uplink lands in, which node validates/acknowledges it,
// and the simulated gather time (per-level fan-in cost, levels sequential,
// nodes within a level concurrent). What is NOT hierarchical: the numeric
// reduce. Floating-point addition is non-associative, so per-subtree partial
// sums could never be bit-identical to the flat gather; instead every
// payload ref is forwarded (zero-copy) to the root and reduced by ONE
// weighted_sum_stream over the slot-ordered terms — the same index-chunked,
// caller-order accumulation used by the flat path. Tree output is therefore
// byte-identical to the flat gather for any fan-out, depth, or thread
// count, by construction rather than by luck.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "comm/cost_model.hpp"

namespace appfl::core {

class AggTree {
 public:
  /// `num_slots` participant slots reduced with `fan_out` children per
  /// node. fan_out 0 = flat topology (every slot feeds the root directly);
  /// otherwise fan_out must be >= 2. Leaf groups are contiguous slot ranges
  /// [g·F, min((g+1)·F, k)) — slot order, and therefore reduce order, is
  /// independent of the topology.
  AggTree(std::size_t num_slots, std::size_t fan_out);

  bool flat() const { return fan_out_ == 0; }
  std::size_t num_slots() const { return num_slots_; }
  std::size_t fan_out() const { return fan_out_; }

  /// Sequential gather stages between a slot's uplink and the root holding
  /// every payload: 1 for flat, and for a tree the leaf stage plus one per
  /// sub-leader level (e.g. 1000 slots at fan-out 8 → depth 4).
  std::size_t depth() const { return level_fan_ins_.size(); }

  /// Leaf groups — one per leaf-leader mailbox.
  std::size_t num_leaf_groups() const { return num_leaf_groups_; }
  /// Slot range [begin, end) owned by leaf group `g`.
  std::pair<std::size_t, std::size_t> leaf_group(std::size_t g) const;
  /// Leaf group owning `slot`.
  std::size_t group_of(std::size_t slot) const;

  /// Per-level maximum fan-in, leaf level first, root last. Flat: {k}.
  const std::vector<std::size_t>& level_fan_ins() const {
    return level_fan_ins_;
  }
  /// Per-level node counts, leaf level first (the root level is 1).
  const std::vector<std::size_t>& level_widths() const {
    return level_widths_;
  }

  /// Simulated seconds for the full reduce under `model`: levels run
  /// sequentially, nodes within a level concurrently, so each level costs
  /// one gather at its maximum fan-in. Flat reproduces the classic
  /// gather_seconds(k, bytes) — the Fig 3 baseline — while a tree pays
  /// depth · O(fan_out) instead of O(k), which is the whole point.
  double reduce_seconds(const comm::MpiCostModel& model,
                        std::size_t bytes_per_rank) const;

 private:
  std::size_t num_slots_ = 0;
  std::size_t fan_out_ = 0;
  std::size_t num_leaf_groups_ = 1;
  std::vector<std::size_t> level_fan_ins_;
  std::vector<std::size_t> level_widths_;
};

}  // namespace appfl::core
