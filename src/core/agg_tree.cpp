#include "core/agg_tree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace appfl::core {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

AggTree::AggTree(std::size_t num_slots, std::size_t fan_out)
    : num_slots_(num_slots), fan_out_(fan_out) {
  APPFL_CHECK_MSG(num_slots >= 1, "an aggregation tree needs participants");
  APPFL_CHECK_MSG(fan_out == 0 || fan_out >= 2,
                  "tree fan-out must be 0 (flat) or >= 2, got " << fan_out);
  if (fan_out_ == 0) {
    num_leaf_groups_ = 1;
    level_fan_ins_ = {num_slots_};
    level_widths_ = {1};
    return;
  }
  num_leaf_groups_ = ceil_div(num_slots_, fan_out_);
  // Leaf stage, then sub-leader stages until one node holds everything.
  // A level of `width` nodes reducing into ceil(width / F) parents has
  // maximum fan-in min(width, F); the last (possibly partial) node never
  // exceeds that.
  std::size_t width = num_slots_;
  do {
    level_fan_ins_.push_back(std::min(width, fan_out_));
    width = ceil_div(width, fan_out_);
    level_widths_.push_back(width);
  } while (width > 1);
}

std::pair<std::size_t, std::size_t> AggTree::leaf_group(std::size_t g) const {
  APPFL_CHECK(g < num_leaf_groups_);
  if (fan_out_ == 0) return {0, num_slots_};
  const std::size_t begin = g * fan_out_;
  return {begin, std::min(begin + fan_out_, num_slots_)};
}

std::size_t AggTree::group_of(std::size_t slot) const {
  APPFL_CHECK(slot < num_slots_);
  return fan_out_ == 0 ? 0 : slot / fan_out_;
}

double AggTree::reduce_seconds(const comm::MpiCostModel& model,
                               std::size_t bytes_per_rank) const {
  double total = 0.0;
  for (const std::size_t fan_in : level_fan_ins_) {
    total += model.gather_seconds(fan_in, bytes_per_rank);
  }
  return total;
}

}  // namespace appfl::core
