#include "core/fedavg.hpp"

#include "core/aggregate.hpp"
#include "obs/trace.hpp"
#include "tensor/accumulate.hpp"
#include "util/check.hpp"

namespace appfl::core {

comm::Message FedAvgClient::update(std::span<const float> global,
                                   std::uint32_t round) {
  begin_round(round);
  model().set_flat_parameters(global);
  // Fresh optimizer each round: momentum state does not persist across
  // communication rounds (matching the APPFL reference implementation).
  // The lr schedule decays over rounds; the DP sensitivity bound uses the
  // base lr, which upper-bounds every decayed value.
  nn::Sgd opt(nn::scheduled_lr(config().lr_schedule, config().lr, round,
                               config().rounds),
              config().momentum, config().weight_decay);

  std::vector<float> z(global.begin(), global.end());
  for (std::size_t epoch = 0; epoch < config().local_steps; ++epoch) {
    for (std::size_t b = 0; b < loader().num_batches(); ++b) {
      const data::Batch batch = loader().batch(b);
      // batch_gradient sets model params to z and leaves clipped grads in
      // the model; the optimizer then steps the model parameters in place.
      (void)batch_gradient(z, batch);
      opt.step(model());
      z = model().flat_parameters();
    }
    loader().next_epoch();
  }
  apply_dp(z, round);

  comm::Message m;
  m.kind = comm::MessageKind::kLocalUpdate;
  m.sender = id();
  m.receiver = 0;
  m.round = round;
  m.primal = std::move(z);
  m.sample_count = num_samples();
  m.loss = last_loss();
  return m;
}

FedAvgServer::FedAvgServer(const RunConfig& config,
                           std::unique_ptr<nn::Module> model,
                           data::TensorDataset test_set,
                           std::size_t num_clients)
    : BaseServer(config, std::move(model), std::move(test_set), num_clients) {
  // Every client starts from the shared initial point (z¹ exchange).
  primal_.assign(num_clients, BaseServer::initial_parameters());
  sample_counts_.assign(num_clients, 1);
  last_participants_.resize(num_clients);
  for (std::size_t p = 0; p < num_clients; ++p) last_participants_[p] = p;
}

std::vector<float> FedAvgServer::compute_global(std::uint32_t) {
  if (fused_valid_) return fused_global_;
  const std::size_t m = primal_.front().size();
  APPFL_CHECK(!last_participants_.empty());
  std::vector<float> w(m, 0.0F);
  std::vector<WeightedVec> terms;
  terms.reserve(last_participants_.size());
  if (config().weighted_aggregation) {
    std::uint64_t total = 0;
    for (std::size_t p : last_participants_) total += sample_counts_[p];
    APPFL_CHECK(total > 0);
    for (std::size_t p : last_participants_) {
      const float weight = static_cast<float>(
          static_cast<double>(sample_counts_[p]) / static_cast<double>(total));
      terms.push_back({primal_[p], weight});
    }
  } else {
    const float inv = 1.0F / static_cast<float>(last_participants_.size());
    for (std::size_t p : last_participants_) terms.push_back({primal_[p], inv});
  }
  weighted_sum(terms, w);
  return w;
}

bool FedAvgServer::absorb(const comm::GatherBatch& batch,
                          std::span<const float>, std::uint32_t round) {
  const std::span<const comm::GatherUpdate> updates = batch.updates();
  // Straggler policy (same as update()): an empty round leaves all state
  // untouched, so a previously cached aggregate stays exactly right.
  if (updates.empty()) return true;
  if (updates.size() > num_clients()) return false;
  const std::size_t n = primal_.front().size();
  for (const auto& u : updates) {
    // Anything the fused loop cannot represent falls back to the unfused
    // path, which reproduces the historical behavior (including its error
    // diagnostics) bit for bit.
    if (u.round != round || u.sender < 1 || u.sender > num_clients() ||
        !u.dual.empty() || u.primal.count != n ||
        primal_[u.sender - 1].size() != n) {
      return false;
    }
  }
  obs::ScopedSpan span("fl.fused_absorb", "fl");
  span.set_arg("round", round);
  last_participants_.clear();
  for (const auto& u : updates) {
    sample_counts_[u.sender - 1] = u.sample_count;
    last_participants_.push_back(u.sender - 1);
  }
  // Weights exactly as compute_global derives them; batch order is sorted
  // sender order, which is last_participants_ order.
  std::vector<float> weights(updates.size());
  if (config().weighted_aggregation) {
    std::uint64_t total = 0;
    for (const auto& u : updates) total += u.sample_count;
    APPFL_CHECK(total > 0);
    for (std::size_t i = 0; i < updates.size(); ++i) {
      weights[i] = static_cast<float>(
          static_cast<double>(updates[i].sample_count) /
          static_cast<double>(total));
    }
  } else {
    const float inv = 1.0F / static_cast<float>(updates.size());
    for (auto& w : weights) w = inv;
  }
  fused_global_.assign(n, 0.0F);
  // The single pass: each chunk of each client's payload is decoded into
  // its replica slot and immediately accumulated into the next aggregate —
  // the wire bytes are touched exactly once.
  for_each_chunk(n, updates.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      float* replica = primal_[updates[i].sender - 1].data() + lo;
      materialize_chunk(updates[i].primal, lo, hi, replica);
      tensor::axpy_f32_bytes(weights[i],
                             reinterpret_cast<const std::uint8_t*>(replica),
                             fused_global_.data() + lo, hi - lo);
    }
  });
  fused_valid_ = true;
  return true;
}

void FedAvgServer::update(const std::vector<comm::Message>& locals,
                          std::span<const float>, std::uint32_t round) {
  fused_valid_ = false;
  // Straggler policy: a round where no update survived the network keeps
  // the previous aggregate untouched; otherwise the next compute_global
  // reweights by the sample counts of the clients that actually responded.
  if (locals.empty()) return;
  APPFL_CHECK(locals.size() <= num_clients());
  last_participants_.clear();
  for (const auto& m : locals) {
    APPFL_CHECK_MSG(m.round == round, "stale update from client " << m.sender);
    APPFL_CHECK(m.sender >= 1 && m.sender <= num_clients());
    APPFL_CHECK_MSG(m.dual.empty(),
                    "FedAvg updates must not carry dual variables");
    primal_[m.sender - 1] = m.primal;
    sample_counts_[m.sender - 1] = m.sample_count;
    last_participants_.push_back(m.sender - 1);
  }
}

ServerStateCkpt FedAvgServer::export_state() const {
  ServerStateCkpt s = BaseServer::export_state();
  s.primal = primal_;
  s.sample_counts = sample_counts_;
  s.participants.assign(last_participants_.begin(), last_participants_.end());
  return s;
}

void FedAvgServer::import_state(const ServerStateCkpt& s) {
  fused_valid_ = false;
  BaseServer::import_state(s);
  APPFL_CHECK_MSG(s.primal.size() == num_clients() &&
                      s.sample_counts.size() == num_clients(),
                  "FedAvg checkpoint sized for " << s.primal.size()
                      << " clients, server has " << num_clients());
  primal_ = s.primal;
  sample_counts_ = s.sample_counts;
  last_participants_.clear();
  for (std::uint64_t p : s.participants) {
    APPFL_CHECK(p < num_clients());
    last_participants_.push_back(static_cast<std::size_t>(p));
  }
  APPFL_CHECK(!last_participants_.empty());
}

}  // namespace appfl::core
