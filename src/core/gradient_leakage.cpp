#include "core/gradient_leakage.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::core {

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  APPFL_CHECK(a.size() == b.size());
  const double na = tensor::norm2(a);
  const double nb = tensor::norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return tensor::dot(a, b) / (na * nb);
}

LeakageResult invert_logistic_gradient(std::span<const float> grad_flat,
                                       std::size_t num_classes,
                                       std::size_t input_dim,
                                       std::span<const float> true_input) {
  APPFL_CHECK_MSG(grad_flat.size() == num_classes * input_dim + num_classes,
                  "gradient size " << grad_flat.size()
                                   << " does not match a logistic model with "
                                   << num_classes << " classes over "
                                   << input_dim << " inputs");
  const auto grad_w = grad_flat.first(num_classes * input_dim);
  const auto grad_b = grad_flat.subspan(num_classes * input_dim, num_classes);

  // The true class is the one whose bias gradient is most negative
  // (p_y − 1 < 0 while every other entry is p_c > 0).
  std::size_t label = 0;
  float most_negative = grad_b[0];
  for (std::size_t c = 1; c < num_classes; ++c) {
    if (grad_b[c] < most_negative) {
      most_negative = grad_b[c];
      label = c;
    }
  }

  LeakageResult result;
  result.recovered_label = label;
  result.reconstructed.resize(input_dim);
  // x = ∂L/∂W[y,:] / ∂L/∂b[y]. Guard the division for the noised case.
  const float denom = grad_b[label];
  if (std::abs(denom) > 1e-12F) {
    for (std::size_t i = 0; i < input_dim; ++i) {
      result.reconstructed[i] = grad_w[label * input_dim + i] / denom;
    }
  }

  if (!true_input.empty()) {
    APPFL_CHECK(true_input.size() == input_dim);
    result.cosine_similarity =
        cosine_similarity(result.reconstructed, true_input);
    double acc = 0.0;
    for (std::size_t i = 0; i < input_dim; ++i) {
      const double d = static_cast<double>(result.reconstructed[i]) -
                       true_input[i];
      acc += d * d;
    }
    result.mse = acc / static_cast<double>(input_dim);
  }
  return result;
}

}  // namespace appfl::core
