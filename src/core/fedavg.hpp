// FedAvg (McMahan et al. 2017).
//
// Server: w^{t+1} = Σ_p (I_p/I) z_p^t (or a plain 1/P average — Algorithm 1's
// form — when weighted_aggregation is off).
// Client: L epochs of mini-batch SGD with momentum starting from w^{t+1};
// ships the primal iterate only. §III-A notes FedAvg is the λ=0, ζ=0,
// ρ=1/η special case of the IADMM family — a property test pins this.
#pragma once

#include "core/base.hpp"
#include "nn/sgd.hpp"

namespace appfl::core {

class FedAvgClient : public BaseClient {
 public:
  using BaseClient::BaseClient;

  comm::Message update(std::span<const float> global,
                       std::uint32_t round) override;
};

class FedAvgServer : public BaseServer {
 public:
  FedAvgServer(const RunConfig& config, std::unique_ptr<nn::Module> model,
               data::TensorDataset test_set, std::size_t num_clients);

  std::vector<float> compute_global(std::uint32_t round) override;
  void update(const std::vector<comm::Message>& locals,
              std::span<const float> global, std::uint32_t round) override;
  /// Fused path: one pass over the wire-resident payloads refreshes each
  /// z_p replica AND accumulates next round's weighted average, which
  /// compute_global then serves from cache — 425 MB touched once instead
  /// of decode-then-store-then-reduce. Bit-identical to update() +
  /// compute_global() at any thread count.
  bool absorb(const comm::GatherBatch& batch, std::span<const float> global,
              std::uint32_t round) override;

  std::string checkpoint_kind() const override { return "fedavg"; }
  ServerStateCkpt export_state() const override;
  void import_state(const ServerStateCkpt& s) override;

 private:
  std::vector<std::vector<float>> primal_;     // z_p^t per client
  std::vector<std::uint64_t> sample_counts_;   // I_p per client
  // Clients that reported in the most recent round; under partial
  // participation FedAvg averages exactly these (McMahan et al.).
  std::vector<std::size_t> last_participants_;
  // Aggregate produced by the last absorb(); valid until the replica state
  // changes behind it (update() or import_state()).
  std::vector<float> fused_global_;
  bool fused_valid_ = false;
};

}  // namespace appfl::core
