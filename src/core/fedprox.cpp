#include "core/fedprox.hpp"

#include "nn/sgd.hpp"
#include "util/check.hpp"

namespace appfl::core {

comm::Message FedProxClient::update(std::span<const float> global,
                                    std::uint32_t round) {
  begin_round(round);
  const float mu = config().fedprox_mu;
  const float lr = nn::scheduled_lr(config().lr_schedule, config().lr, round,
                                    config().rounds);

  std::vector<float> z(global.begin(), global.end());
  for (std::size_t epoch = 0; epoch < config().local_steps; ++epoch) {
    for (std::size_t b = 0; b < loader().num_batches(); ++b) {
      const data::Batch batch = loader().batch(b);
      const std::vector<float> g = batch_gradient(z, batch);
      for (std::size_t i = 0; i < z.size(); ++i) {
        // SGD step on the proximal objective: g + μ(z − w).
        z[i] -= lr * (g[i] + mu * (z[i] - global[i]));
      }
    }
    loader().next_epoch();
  }
  apply_dp(z, round);

  comm::Message m;
  m.kind = comm::MessageKind::kLocalUpdate;
  m.sender = id();
  m.receiver = 0;
  m.round = round;
  m.primal = std::move(z);
  m.sample_count = num_samples();
  m.loss = last_loss();
  return m;
}

}  // namespace appfl::core
