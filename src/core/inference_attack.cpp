#include "core/inference_attack.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::core {

std::vector<double> per_sample_losses(nn::Module& model,
                                      std::span<const float> parameters,
                                      const data::Dataset& dataset,
                                      std::size_t batch_size) {
  APPFL_CHECK(batch_size >= 1);
  model.set_flat_parameters(parameters);
  const std::size_t n = dataset.size();
  std::vector<double> losses;
  losses.reserve(n);
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    idx.resize(count);
    for (std::size_t i = 0; i < count; ++i) idx[i] = start + i;
    const data::Batch batch = dataset.gather(idx);
    const nn::Tensor probs =
        tensor::softmax_rows(model.forward(batch.inputs));
    const std::size_t classes = probs.dim(1);
    for (std::size_t i = 0; i < count; ++i) {
      const double p = std::max(
          static_cast<double>(probs[i * classes + batch.labels[i]]), 1e-12);
      losses.push_back(-std::log(p));
    }
  }
  return losses;
}

AttackResult loss_threshold_attack(nn::Module& model,
                                   std::span<const float> parameters,
                                   const data::Dataset& members,
                                   const data::Dataset& nonmembers) {
  APPFL_CHECK_MSG(members.size() > 0 && nonmembers.size() > 0,
                  "attack needs non-empty member and non-member sets");
  const auto member_losses = per_sample_losses(model, parameters, members);
  const auto nonmember_losses =
      per_sample_losses(model, parameters, nonmembers);

  AttackResult result;
  for (double l : member_losses) result.mean_member_loss += l;
  result.mean_member_loss /= static_cast<double>(member_losses.size());
  for (double l : nonmember_losses) result.mean_nonmember_loss += l;
  result.mean_nonmember_loss /= static_cast<double>(nonmember_losses.size());

  // AUC by rank comparison (Mann–Whitney): P(member loss < non-member loss).
  std::size_t wins = 0, ties = 0;
  for (double lm : member_losses) {
    for (double ln : nonmember_losses) {
      if (lm < ln) ++wins;
      else if (lm == ln) ++ties;
    }
  }
  const double pairs = static_cast<double>(member_losses.size()) *
                       static_cast<double>(nonmember_losses.size());
  result.auc = (static_cast<double>(wins) + 0.5 * static_cast<double>(ties)) /
               pairs;

  // Advantage: sweep thresholds over the pooled loss values.
  std::vector<double> thresholds = member_losses;
  thresholds.insert(thresholds.end(), nonmember_losses.begin(),
                    nonmember_losses.end());
  std::sort(thresholds.begin(), thresholds.end());
  double best = 0.0;
  for (double tau : thresholds) {
    const auto below = [tau](const std::vector<double>& v) {
      std::size_t c = 0;
      for (double l : v) {
        if (l <= tau) ++c;
      }
      return static_cast<double>(c) / static_cast<double>(v.size());
    };
    best = std::max(best, below(member_losses) - below(nonmember_losses));
  }
  result.advantage = best;
  return result;
}

}  // namespace appfl::core
