#include "core/server_opt.hpp"

#include <cmath>

#include "core/aggregate.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace appfl::core {

std::string to_string(ServerOpt opt) {
  switch (opt) {
    case ServerOpt::kNone: return "none";
    case ServerOpt::kAdagrad: return "FedAdagrad";
    case ServerOpt::kAdam: return "FedAdam";
    case ServerOpt::kYogi: return "FedYogi";
  }
  return "?";
}

FedOptServer::FedOptServer(const RunConfig& config, ServerOptConfig opt,
                           std::unique_ptr<nn::Module> model,
                           data::TensorDataset test_set,
                           std::size_t num_clients)
    : BaseServer(config, std::move(model), std::move(test_set), num_clients),
      opt_(opt) {
  APPFL_CHECK_MSG(config.algorithm == Algorithm::kFedAvg ||
                      config.algorithm == Algorithm::kFedProx,
                  "FedOptServer expects FedAvg-style (primal-only) clients");
  APPFL_CHECK(opt_.lr > 0.0F);
  APPFL_CHECK(opt_.beta1 >= 0.0F && opt_.beta1 < 1.0F);
  APPFL_CHECK(opt_.beta2 >= 0.0F && opt_.beta2 < 1.0F);
  APPFL_CHECK(opt_.tau > 0.0F);
  w_ = BaseServer::initial_parameters();
  m_.assign(w_.size(), 0.0F);
  v_.assign(w_.size(), 0.0F);
}

std::vector<float> FedOptServer::compute_global(std::uint32_t) { return w_; }

void FedOptServer::update(const std::vector<comm::Message>& locals,
                          std::span<const float> global, std::uint32_t round) {
  // Straggler policy: no surviving updates ⇒ no pseudo-gradient step.
  if (locals.empty()) return;
  APPFL_CHECK(locals.size() <= num_clients());
  const std::size_t n = w_.size();

  // Pseudo-gradient: sample-weighted mean of (z_p − w) over this round's
  // participants (global == w_ at broadcast time).
  std::vector<double> delta(n, 0.0);
  std::uint64_t total_samples = 0;
  for (const auto& msg : locals) {
    APPFL_CHECK_MSG(msg.round == round, "stale update from " << msg.sender);
    APPFL_CHECK_MSG(msg.dual.empty(), "FedOpt expects primal-only updates");
    APPFL_CHECK(msg.primal.size() == n);
    total_samples += msg.sample_count;
  }
  APPFL_CHECK(total_samples > 0);
  std::vector<DeltaTerm> terms;
  terms.reserve(locals.size());
  for (const auto& msg : locals) {
    const double weight = config().weighted_aggregation
                              ? static_cast<double>(msg.sample_count) /
                                    static_cast<double>(total_samples)
                              : 1.0 / static_cast<double>(locals.size());
    terms.push_back({msg.primal, weight});
  }
  weighted_delta(terms, global, delta);
  apply_pseudo_gradient(delta);
}

bool FedOptServer::absorb(const comm::GatherBatch& batch,
                          std::span<const float> global, std::uint32_t round) {
  const std::span<const comm::GatherUpdate> updates = batch.updates();
  if (updates.empty()) return true;  // no pseudo-gradient step
  if (updates.size() > num_clients()) return false;
  const std::size_t n = w_.size();
  std::uint64_t total_samples = 0;
  for (const auto& u : updates) {
    if (u.round != round || !u.dual.empty() || u.primal.count != n) {
      return false;  // unfused path reproduces the historical diagnostics
    }
    total_samples += u.sample_count;
  }
  if (total_samples == 0) return false;
  obs::ScopedSpan span("fl.fused_absorb", "fl");
  span.set_arg("round", round);
  std::vector<DeltaStreamTerm> terms;
  terms.reserve(updates.size());
  for (const auto& u : updates) {
    const double weight = config().weighted_aggregation
                              ? static_cast<double>(u.sample_count) /
                                    static_cast<double>(total_samples)
                              : 1.0 / static_cast<double>(updates.size());
    terms.push_back({u.primal, weight});
  }
  std::vector<double> delta(n, 0.0);
  weighted_delta_stream(terms, global, delta);
  apply_pseudo_gradient(delta);
  return true;
}

void FedOptServer::apply_pseudo_gradient(std::span<const double> delta) {
  const std::size_t n = w_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const float d = static_cast<float>(delta[i]);
    m_[i] = opt_.beta1 * m_[i] + (1.0F - opt_.beta1) * d;
    const float d2 = d * d;
    switch (opt_.kind) {
      case ServerOpt::kNone:
        // Plain (momentum-free when β₁ = 0) server step: w += η_s·Δ.
        w_[i] += opt_.lr * (opt_.beta1 > 0.0F ? m_[i] : d);
        continue;
      case ServerOpt::kAdagrad:
        v_[i] += d2;
        break;
      case ServerOpt::kAdam:
        v_[i] = opt_.beta2 * v_[i] + (1.0F - opt_.beta2) * d2;
        break;
      case ServerOpt::kYogi: {
        const float sign = v_[i] > d2 ? 1.0F : (v_[i] < d2 ? -1.0F : 0.0F);
        v_[i] -= (1.0F - opt_.beta2) * d2 * sign;
        break;
      }
    }
    w_[i] += opt_.lr * m_[i] / (std::sqrt(v_[i]) + opt_.tau);
  }
}

ServerStateCkpt FedOptServer::export_state() const {
  ServerStateCkpt s = BaseServer::export_state();
  s.opt_w = w_;
  s.opt_m = m_;
  s.opt_v = v_;
  return s;
}

void FedOptServer::import_state(const ServerStateCkpt& s) {
  BaseServer::import_state(s);
  APPFL_CHECK_MSG(s.opt_w.size() == w_.size() && s.opt_m.size() == m_.size() &&
                      s.opt_v.size() == v_.size(),
                  "FedOpt checkpoint holds " << s.opt_w.size()
                      << " parameters, server has " << w_.size());
  w_ = s.opt_w;
  m_ = s.opt_m;
  v_ = s.opt_v;
}

}  // namespace appfl::core
