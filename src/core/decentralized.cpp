#include "core/decentralized.hpp"

#include <algorithm>
#include <cmath>

#include "core/runner.hpp"
#include "tensor/ops.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace appfl::core {

std::size_t Topology::num_edges() const {
  std::size_t twice = 0;
  for (const auto& nbrs : adjacency) twice += nbrs.size();
  return twice / 2;
}

bool Topology::connected() const {
  if (adjacency.empty()) return false;
  std::vector<bool> seen(adjacency.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t p = stack.back();
    stack.pop_back();
    for (std::size_t q : adjacency[p]) {
      if (!seen[q]) {
        seen[q] = true;
        ++visited;
        stack.push_back(q);
      }
    }
  }
  return visited == adjacency.size();
}

void Topology::validate() const {
  for (std::size_t p = 0; p < adjacency.size(); ++p) {
    for (std::size_t q : adjacency[p]) {
      APPFL_CHECK_MSG(q < adjacency.size(), "neighbor out of range");
      APPFL_CHECK_MSG(q != p, "self-loop at node " << p);
      const auto& back = adjacency[q];
      APPFL_CHECK_MSG(std::find(back.begin(), back.end(), p) != back.end(),
                      "asymmetric edge " << p << " -> " << q);
    }
  }
}

Topology ring_topology(std::size_t num_nodes) {
  APPFL_CHECK(num_nodes >= 2);
  Topology t;
  t.adjacency.resize(num_nodes);
  for (std::size_t p = 0; p < num_nodes; ++p) {
    const std::size_t prev = (p + num_nodes - 1) % num_nodes;
    const std::size_t next = (p + 1) % num_nodes;
    t.adjacency[p] = prev == next ? std::vector<std::size_t>{prev}
                                  : std::vector<std::size_t>{std::min(prev, next),
                                                             std::max(prev, next)};
  }
  return t;
}

Topology complete_topology(std::size_t num_nodes) {
  APPFL_CHECK(num_nodes >= 2);
  Topology t;
  t.adjacency.resize(num_nodes);
  for (std::size_t p = 0; p < num_nodes; ++p) {
    for (std::size_t q = 0; q < num_nodes; ++q) {
      if (q != p) t.adjacency[p].push_back(q);
    }
  }
  return t;
}

Topology random_topology(std::size_t num_nodes, double target_degree,
                         std::uint64_t seed) {
  APPFL_CHECK(target_degree >= 2.0);
  Topology t = ring_topology(num_nodes);  // connectivity backbone
  rng::Rng rng(rng::derive_seed(seed, {0x70, num_nodes}));
  auto has_edge = [&](std::size_t a, std::size_t b) {
    const auto& nbrs = t.adjacency[a];
    return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
  };
  const std::size_t target_edges = static_cast<std::size_t>(
      target_degree * static_cast<double>(num_nodes) / 2.0);
  std::size_t guard = 0;
  while (t.num_edges() < target_edges && ++guard < 100 * target_edges) {
    const std::size_t a = rng.uniform_below(num_nodes);
    const std::size_t b = rng.uniform_below(num_nodes);
    if (a == b || has_edge(a, b)) continue;
    t.adjacency[a].push_back(b);
    t.adjacency[b].push_back(a);
  }
  for (auto& nbrs : t.adjacency) std::sort(nbrs.begin(), nbrs.end());
  return t;
}

std::vector<std::vector<double>> metropolis_weights(const Topology& topology) {
  topology.validate();
  APPFL_CHECK_MSG(topology.connected(),
                  "gossip mixing requires a connected topology");
  const std::size_t n = topology.num_nodes();
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t p = 0; p < n; ++p) {
    double off_diagonal = 0.0;
    for (std::size_t q : topology.adjacency[p]) {
      // Metropolis rule: 1 / (1 + max(deg_p, deg_q)).
      const double weight =
          1.0 / (1.0 + static_cast<double>(std::max(
                           topology.adjacency[p].size(),
                           topology.adjacency[q].size())));
      w[p][q] = weight;
      off_diagonal += weight;
    }
    w[p][p] = 1.0 - off_diagonal;
    APPFL_CHECK(w[p][p] > 0.0);
  }
  return w;
}

DecentralizedResult run_decentralized(const RunConfig& config,
                                      const data::FederatedSplit& split,
                                      const Topology& topology) {
  RunConfig cfg = config;
  cfg.algorithm = Algorithm::kFedAvg;  // gossip uses the SGD local solver
  cfg.validate();
  const std::size_t n = split.clients.size();
  APPFL_CHECK_MSG(topology.num_nodes() == n,
                  "topology has " << topology.num_nodes() << " nodes for "
                                  << n << " clients");
  const auto weights = metropolis_weights(topology);

  auto prototype = build_model(cfg, split.test);
  std::vector<std::unique_ptr<BaseClient>> nodes;
  nodes.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    nodes.push_back(build_client(static_cast<std::uint32_t>(p + 1), cfg,
                                 *prototype, split.clients[p]));
  }
  const std::size_t m = prototype->num_parameters();
  std::vector<std::vector<float>> x(n, prototype->flat_parameters());

  auto evaluate_mean = [&](appfl::nn::Module& model) {
    std::vector<float> mean(m, 0.0F);
    const float inv = 1.0F / static_cast<float>(n);
    for (const auto& xi : x) {
      for (std::size_t i = 0; i < m; ++i) mean[i] += inv * xi[i];
    }
    model.set_flat_parameters(mean);
    std::size_t correct = 0;
    const data::Batch all = split.test.all();
    const auto logits = model.forward(all.inputs);
    const auto preds = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == all.labels[i]) ++correct;
    }
    return std::make_pair(
        split.test.size() == 0
            ? 0.0
            : static_cast<double>(correct) / static_cast<double>(split.test.size()),
        mean);
  };

  DecentralizedResult result;
  const std::uint64_t bytes_per_exchange = 4ULL * m;

  for (std::uint32_t round = 1; round <= cfg.rounds; ++round) {
    // (i)+(ii): local solve + DP on every node's own iterate.
    std::vector<std::vector<float>> z(n);
    for (std::size_t p = 0; p < n; ++p) {
      z[p] = nodes[p]->update(x[p], round).primal;
    }
    // (iii): Metropolis gossip over perturbed iterates. Each edge carries
    // one model in each direction.
    for (std::size_t p = 0; p < n; ++p) {
      std::vector<float> mixed(m, 0.0F);
      tensor::axpy(static_cast<float>(weights[p][p]), z[p], mixed);
      for (std::size_t q : topology.adjacency[p]) {
        tensor::axpy(static_cast<float>(weights[p][q]), z[q], mixed);
        result.total_bytes += bytes_per_exchange;
      }
      x[p] = std::move(mixed);
    }

    auto [acc, mean] = evaluate_mean(*prototype);
    result.round_accuracy.push_back(acc);
    double disagreement = 0.0;
    for (const auto& xi : x) {
      double d2 = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const double d = static_cast<double>(xi[i]) - mean[i];
        d2 += d * d;
      }
      disagreement += std::sqrt(d2);
    }
    result.round_disagreement.push_back(disagreement /
                                        static_cast<double>(n));
  }
  result.final_accuracy = result.round_accuracy.back();
  return result;
}

}  // namespace appfl::core
