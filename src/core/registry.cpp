#include "core/registry.hpp"

#include "comm/communicator.hpp"
#include "core/config.hpp"
#include "dp/mechanism.hpp"

namespace appfl::core {

std::vector<std::string> registered_algorithms() {
  return {to_string(Algorithm::kFedAvg), to_string(Algorithm::kIceAdmm),
          to_string(Algorithm::kIIAdmm), to_string(Algorithm::kFedProx)};
}

std::vector<std::string> registered_mechanisms() {
  return {dp::NoOpMechanism{}.name(), dp::LaplaceMechanism{1.0}.name(),
          dp::GaussianMechanism{1.0}.name()};
}

FrameworkCapabilities this_framework() {
  FrameworkCapabilities caps;
  caps.name = "APPFL";
  caps.data_privacy = registered_mechanisms().size() > 1;  // beyond no-op
  caps.mpi = to_string(comm::Protocol::kMpi) == "MPI";
  caps.grpc = to_string(comm::Protocol::kGrpc) == "gRPC";
  caps.mqtt = false;  // listed as future work in the paper, and here
  return caps;
}

std::vector<FrameworkCapabilities> comparison_table() {
  return {
      {"OpenFL", false, false, true, false},
      {"FedML", false, true, true, true},
      {"TFF", true, false, false, false},
      {"PySyft", true, false, false, false},
      this_framework(),
  };
}

}  // namespace appfl::core
