#include "core/async_runner.hpp"

#include <bit>
#include <limits>
#include <optional>
#include <queue>
#include <sstream>

#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "core/checkpoint.hpp"
#include "core/iiadmm.hpp"
#include "core/obs_session.hpp"
#include "core/runner.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace appfl::core {

namespace {

struct PendingUpdate {
  double finish_time = 0.0;
  std::uint32_t client = 0;  // 1-based
  std::size_t version = 0;   // server version the client trained on

  bool operator>(const PendingUpdate& other) const {
    // Tie-break on client id for determinism.
    if (finish_time != other.finish_time) {
      return finish_time > other.finish_time;
    }
    return client > other.client;
  }
};

// Shared async-runner instrumentation: the staleness distribution is THE
// async-specific signal (how stale was each absorbed update), so every async
// scheme feeds the same registry histogram. Zero-anchored bounds: staleness
// 0 — the modal value in low-concurrency runs — must land in a visible
// bucket ([0, 1)), not the underflow counter.
void record_async_event_metrics(std::size_t staleness, bool committed) {
  if (!obs::metrics_on()) return;
  static obs::Histogram& staleness_h = obs::MetricsRegistry::global().histogram(
      "async.staleness", 0.0, 1024.0, 25);
  static obs::Counter& applied_c =
      obs::MetricsRegistry::global().counter("async.updates_applied");
  static obs::Counter& commits_c =
      obs::MetricsRegistry::global().counter("async.commits");
  staleness_h.record(static_cast<double>(staleness));
  applied_c.inc();
  if (committed) commits_c.inc();
}

void record_async_drop_metric() {
  if (!obs::metrics_on()) return;
  static obs::Counter& dropped_c =
      obs::MetricsRegistry::global().counter("async.dropped");
  dropped_c.inc();
}

std::string async_event_json(std::size_t index, const AsyncEvent& e) {
  std::ostringstream os;
  os << "{\"type\":\"async_event\",\"update\":" << index
     << ",\"sim_time\":" << obs::json_number(e.sim_time)
     << ",\"client\":" << e.client << ",\"staleness\":" << e.staleness
     << ",\"mixing\":" << obs::json_number(e.mixing)
     << ",\"committed\":" << (e.committed ? "true" : "false")
     << ",\"test_accuracy\":" << obs::json_optional(e.test_accuracy) << "}";
  return os.str();
}

/// The run's update budget: an explicit total_updates, else rounds × clients
/// for parity with the synchronous schedule. Guards the multiply — a silent
/// size_t wrap would hand the event loop a budget of 0 and the summary a
/// 0/0 = NaN mean staleness.
std::size_t resolve_total_updates(const AsyncConfig& config,
                                  const RunConfig& cfg,
                                  std::size_t num_clients) {
  std::size_t total = config.total_updates;
  if (total == 0) {
    APPFL_CHECK_MSG(
        cfg.rounds <= std::numeric_limits<std::size_t>::max() / num_clients,
        "rounds × clients overflows the async update budget");
    total = cfg.rounds * num_clients;
  }
  APPFL_CHECK_MSG(total >= 1, "async run needs total_updates >= 1");
  return total;
}

}  // namespace

AsyncRunResult run_async(const AsyncConfig& config,
                         const data::FederatedSplit& split) {
  RunConfig cfg = config.run;
  cfg.algorithm = Algorithm::kFedAvg;  // async mixing is server-side
  cfg.validate();
  APPFL_CHECK_MSG(cfg.population == 0,
                  "population sampling is a run_population feature; the "
                  "async runner drives the split's clients directly");
  ObsSession obs_session(cfg);
  APPFL_CHECK_MSG(config.mixing_alpha > 0.0F && config.mixing_alpha <= 1.0F,
                  "mixing alpha must be in (0, 1]");
  const std::size_t num_clients = split.clients.size();
  APPFL_CHECK(num_clients >= 1);
  const std::size_t total_updates =
      resolve_total_updates(config, cfg, num_clients);

  std::vector<hw::DeviceProfile> devices = config.devices;
  if (devices.empty()) devices.push_back(hw::v100());

  auto prototype = build_model(cfg, split.test);
  const double flops_one_pass = 3.0 * prototype->forward_flops(1);

  // The strategy decides the absorb rule and each client's per-dispatch
  // local work; the compute-aware scheduler needs the fleet's speeds.
  std::vector<double> seconds_per_step(num_clients);
  for (std::size_t p = 0; p < num_clients; ++p) {
    seconds_per_step[p] = devices[p % devices.size()].seconds_for(
        flops_one_pass * static_cast<double>(split.clients[p].size()));
  }
  const AsyncStrategyOptions strat_opts =
      async_strategy_options_from_env(config.strategy);
  std::unique_ptr<AsyncStrategy> strategy = AsyncStrategy::make(
      strat_opts, config.mixing_alpha, cfg.local_steps, seconds_per_step);

  std::vector<std::unique_ptr<BaseClient>> clients;
  clients.reserve(num_clients);
  for (std::size_t p = 0; p < num_clients; ++p) {
    RunConfig client_cfg = cfg;
    client_cfg.local_steps = strategy->local_steps(p);
    clients.push_back(build_client(static_cast<std::uint32_t>(p + 1),
                                   client_cfg, *prototype, split.clients[p]));
  }
  auto server =
      build_server(cfg, std::move(prototype), split.test, num_clients);
  std::vector<float> w = server->initial_parameters();
  const std::size_t payload_bytes = 4 * w.size() + 64;

  comm::GrpcCostModel net;
  rng::Rng jitter(rng::derive_seed(cfg.seed, {0xA5, 1}));
  // Drop faults get their own stream so fault-free runs stay bit-identical
  // to pre-fault builds (the stream is never drawn from when drop == 0).
  const comm::FaultConfig faults = comm::fault_config_from_env(cfg.faults);
  faults.validate();
  rng::Rng drop_rng(rng::derive_seed(cfg.seed, {0xA5, 4}));

  // Simulated duration of one dispatch for client p (compute + 2× link).
  auto duration_of = [&](std::size_t p) {
    const auto& dev = devices[p % devices.size()];
    const double compute = dev.seconds_for(
        flops_one_pass * static_cast<double>(clients[p]->num_samples()) *
        static_cast<double>(strategy->local_steps(p)));
    return compute + net.transfer_seconds(payload_bytes, jitter) +
           net.transfer_seconds(payload_bytes, jitter);
  };

  // Train-at-dispatch: the local result is a pure function of the w the
  // client received, so computing it eagerly and delivering it at
  // finish_time is equivalent to computing it on arrival. What rides in
  // flight is the strategy's payload (the model for mixing schemes, the
  // delta for FedBuff).
  std::vector<std::vector<float>> in_flight(num_clients);
  std::priority_queue<PendingUpdate, std::vector<PendingUpdate>,
                      std::greater<PendingUpdate>>
      queue;
  std::size_t version = 0;
  std::size_t dispatch_counter = 0;
  const bool track_health = obs_session.metrics_enabled();
  auto dispatch = [&](std::size_t p, double now) {
    obs::ScopedSpan span("async.dispatch", "async");
    span.set_arg("client", p + 1);
    const comm::Message update = clients[p]->update(
        w, static_cast<std::uint32_t>(++dispatch_counter));
    in_flight[p] = strategy->in_flight_payload(update.primal, w);
    const double dur = duration_of(p);
    // The dispatch's simulated duration (compute + both links) is the async
    // scheme's client latency — what the straggler score should rank by.
    if (track_health) {
      obs_session.health().observe_latency(static_cast<std::uint32_t>(p + 1),
                                           dur);
    }
    queue.push({now + dur, static_cast<std::uint32_t>(p + 1), version});
  };

  AsyncRunResult result;
  result.strategy = strategy->name();
  double staleness_sum = 0.0;

  const CheckpointOptions ckpt = checkpoint_options_from_env(cfg);
  std::optional<CheckpointStore> store;
  if (!ckpt.dir.empty()) store.emplace(ckpt.dir);
  if (!ckpt.resume_from.empty()) {
    APPFL_SPAN("ckpt.restore", "ckpt");
    std::optional<CheckpointStore> separate;
    CheckpointStore& resume_store =
        store && ckpt.resume_from == ckpt.dir
            ? *store
            : separate.emplace(ckpt.resume_from);
    const std::optional<AsyncCheckpoint> ac =
        load_latest_async_checkpoint(resume_store);
    APPFL_CHECK_MSG(ac.has_value(), "resume_from='" << ckpt.resume_from
                        << "' holds no loadable async checkpoint");
    APPFL_CHECK_MSG(
        ac->seed == cfg.seed && ac->num_clients == num_clients &&
            ac->param_count == w.size() && ac->total_updates == total_updates,
        "async checkpoint fingerprint mismatch");
    // Pre-strategy checkpoints carry no strategy tag; the only scheme that
    // could have written them is FedAsync.
    const std::string written_by =
        ac->strategy.empty() ? std::string("fedasync") : ac->strategy;
    APPFL_CHECK_MSG(written_by == result.strategy,
                    "async checkpoint was written by strategy '"
                        << written_by << "' but this run uses '"
                        << result.strategy << "'");
    strategy->import_state(*ac);
    w = ac->w;
    version = ac->version;
    dispatch_counter = ac->dispatch_counter;
    result.applied_updates = ac->applied_updates;
    result.resumed_from_update = ac->applied_updates;
    result.committed_updates = version;
    result.dropped_updates = ac->dropped_updates;
    result.sim_seconds = ac->sim_seconds;
    staleness_sum = ac->staleness_sum;
    jitter.set_state(ac->jitter_state);
    bool fault_rng_used = false;
    for (std::uint64_t word : ac->fault_rng) fault_rng_used |= word != 0;
    if (fault_rng_used) drop_rng.set_state(ac->fault_rng);
    for (std::size_t p = 0; p < num_clients; ++p) {
      clients[p]->import_state(ac->clients[p]);
      in_flight[p] = ac->in_flight[p];
    }
    // The pending dispatches were computed before the crash; their results
    // (in_flight) ride along, so nothing is re-trained or skipped.
    for (const AsyncCheckpoint::Pending& pend : ac->queue) {
      queue.push({pend.finish_time, pend.client,
                  static_cast<std::size_t>(pend.version)});
    }
  } else {
    for (std::size_t p = 0; p < num_clients; ++p) dispatch(p, 0.0);
  }

  while (result.applied_updates < total_updates) {
    APPFL_CHECK(!queue.empty());
    const PendingUpdate next = queue.top();
    queue.pop();
    const std::size_t p = next.client - 1;

    if (faults.drop > 0.0 && drop_rng.uniform01() < faults.drop) {
      // The uplink lost this result. Async FL's retransmit is simply the
      // next dispatch: the client restarts from the current w (so the
      // redone work is never staler than the original would have been).
      ++result.dropped_updates;
      record_async_drop_metric();
      if (track_health) {
        obs_session.health().add_dropped_frames(next.client, 1);
      }
      obs::flight_record("async.drop",
                         "{\"client\":" + std::to_string(next.client) + "}");
      dispatch(p, next.finish_time);
      continue;
    }

    const std::size_t staleness = version - next.version;
    const auto& z = in_flight[p];
    AsyncStrategy::Absorbed absorbed;
    {
      obs::ScopedSpan span("async.apply", "async");
      span.set_arg("client", next.client);
      absorbed = strategy->absorb(z, staleness, w);
    }
    if (absorbed.committed) {
      ++version;
      ++result.committed_updates;
    }
    ++result.applied_updates;
    staleness_sum += static_cast<double>(staleness);
    record_async_event_metrics(staleness, absorbed.committed);

    AsyncEvent event;
    event.sim_time = next.finish_time;
    event.client = next.client;
    event.staleness = staleness;
    event.mixing = absorbed.mixing;
    event.committed = absorbed.committed;
    if (config.validate_every > 0 &&
        result.applied_updates % config.validate_every == 0) {
      APPFL_SPAN("fl.validate", "fl");
      event.test_accuracy = server->validate(w);
    }
    result.sim_seconds = next.finish_time;
    result.events.push_back(event);
    if (obs_session.streaming()) {
      obs_session.write_line(
          async_event_json(result.applied_updates, event));
    }

    if (result.applied_updates + queue.size() < total_updates) {
      dispatch(p, next.finish_time);
    }

    const bool halt_here = cfg.halt_after_round > 0 &&
                           result.applied_updates == cfg.halt_after_round;
    if (store && (result.applied_updates % ckpt.every == 0 ||
                  result.applied_updates == total_updates || halt_here)) {
      APPFL_SPAN("ckpt.save", "ckpt");
      AsyncCheckpoint ac;
      ac.seed = cfg.seed;
      ac.num_clients = static_cast<std::uint32_t>(num_clients);
      ac.param_count = w.size();
      ac.total_updates = total_updates;
      ac.applied_updates = result.applied_updates;
      ac.version = version;
      ac.dispatch_counter = dispatch_counter;
      ac.staleness_sum = staleness_sum;
      ac.sim_seconds = result.sim_seconds;
      ac.w = w;
      ac.jitter_state = jitter.state();
      auto pending = queue;  // priority_queue has no iteration; drain a copy
      while (!pending.empty()) {
        const PendingUpdate& top = pending.top();
        ac.queue.push_back({top.finish_time, top.client, top.version});
        pending.pop();
      }
      ac.in_flight = in_flight;
      for (std::size_t cp = 0; cp < num_clients; ++cp) {
        ac.clients.push_back(clients[cp]->export_state());
      }
      ac.strategy = result.strategy;
      strategy->export_state(ac);
      ac.dropped_updates = result.dropped_updates;
      if (faults.drop > 0.0) ac.fault_rng = drop_rng.state();
      save_async_checkpoint(*store, ac);
      ++result.checkpoints_written;
    }
    if (halt_here) break;
  }

  result.final_accuracy = server->validate(w);
  result.final_w = w;
  result.mean_staleness =
      result.applied_updates > 0
          ? staleness_sum / static_cast<double>(result.applied_updates)
          : 0.0;
  if (obs_session.streaming()) {
    std::ostringstream os;
    os << "{\"type\":\"async_summary\",\"strategy\":\"" << result.strategy
       << "\",\"applied_updates\":" << result.applied_updates
       << ",\"committed_updates\":" << result.committed_updates
       << ",\"dropped_updates\":" << result.dropped_updates
       << ",\"sim_seconds\":" << obs::json_number(result.sim_seconds)
       << ",\"final_accuracy\":" << obs::json_number(result.final_accuracy)
       << ",\"mean_staleness\":" << obs::json_number(result.mean_staleness)
       << ",\"resumed_from_update\":" << result.resumed_from_update
       << ",\"checkpoints_written\":" << result.checkpoints_written << "}";
    obs_session.write_line(os.str());
  }
  obs_session.finish();
  return result;
}

AsyncIIAdmmResult run_async_iiadmm(const AsyncConfig& config,
                                   const data::FederatedSplit& split) {
  RunConfig cfg = config.run;
  cfg.algorithm = Algorithm::kIIAdmm;
  cfg.validate();
  APPFL_CHECK_MSG(cfg.population == 0,
                  "population sampling is a run_population feature; the "
                  "async runner drives the split's clients directly");
  ObsSession obs_session(cfg);
  APPFL_CHECK(config.mixing_alpha > 0.0F && config.mixing_alpha <= 1.0F);
  const std::size_t num_clients = split.clients.size();
  APPFL_CHECK(num_clients >= 1);
  const std::size_t total_updates =
      resolve_total_updates(config, cfg, num_clients);
  std::vector<hw::DeviceProfile> devices = config.devices;
  if (devices.empty()) devices.push_back(hw::v100());

  auto prototype = build_model(cfg, split.test);
  const double flops_one_pass = 3.0 * prototype->forward_flops(1);
  const std::size_t m = prototype->num_parameters();

  std::vector<std::unique_ptr<BaseClient>> clients;
  std::vector<IIAdmmClient*> admm_clients;
  for (std::size_t p = 0; p < num_clients; ++p) {
    auto client = std::make_unique<IIAdmmClient>(
        static_cast<std::uint32_t>(p + 1), cfg, *prototype, split.clients[p]);
    admm_clients.push_back(client.get());
    clients.push_back(std::move(client));
  }
  // Server-side state: z_p, λ_p replicas + a validator model.
  std::vector<std::vector<float>> z(num_clients, prototype->flat_parameters());
  std::vector<std::vector<float>> lambda(num_clients,
                                         std::vector<float>(m, 0.0F));
  auto validator =
      build_server(cfg, std::move(prototype), split.test, num_clients);

  // Line 3's closed form over ALL per-client state (stale included).
  const float rho = cfg.rho;
  auto recompute_w = [&] {
    std::vector<float> w(m, 0.0F);
    const float inv_p = 1.0F / static_cast<float>(num_clients);
    const float inv_rho = 1.0F / rho;
    for (std::size_t p = 0; p < num_clients; ++p) {
      for (std::size_t i = 0; i < m; ++i) {
        w[i] += inv_p * (z[p][i] - inv_rho * lambda[p][i]);
      }
    }
    return w;
  };
  std::vector<float> w = recompute_w();

  comm::GrpcCostModel net;
  rng::Rng jitter(rng::derive_seed(cfg.seed, {0xA5, 3}));
  const std::size_t payload_bytes = 4 * m + 64;
  auto duration_of = [&](std::size_t p) {
    const auto& dev = devices[p % devices.size()];
    const double compute = dev.seconds_for(
        flops_one_pass * static_cast<double>(clients[p]->num_samples()) *
        static_cast<double>(cfg.local_steps));
    return compute + net.transfer_seconds(payload_bytes, jitter) +
           net.transfer_seconds(payload_bytes, jitter);
  };

  // Train-at-dispatch, deliver-at-finish (see run_async). w_sent_p is the
  // exact vector the client consumed — the server's dual step reuses it.
  std::vector<std::vector<float>> in_flight_z(num_clients);
  std::vector<std::vector<float>> w_sent(num_clients);
  std::priority_queue<PendingUpdate, std::vector<PendingUpdate>,
                      std::greater<PendingUpdate>>
      queue;
  std::size_t version = 0;
  std::size_t dispatch_counter = 0;
  const bool track_health = obs_session.metrics_enabled();
  auto dispatch = [&](std::size_t p, double now) {
    w_sent[p] = w;
    const comm::Message update = clients[p]->update(
        w_sent[p], static_cast<std::uint32_t>(++dispatch_counter));
    in_flight_z[p] = update.primal;
    const double dur = duration_of(p);
    if (track_health) {
      obs_session.health().observe_latency(static_cast<std::uint32_t>(p + 1),
                                           dur);
    }
    queue.push({now + dur, static_cast<std::uint32_t>(p + 1), version});
  };

  AsyncIIAdmmResult result;
  result.base.strategy = "iiadmm";
  double staleness_sum = 0.0;

  // Checkpoint/halt honor the same contract as run_async: the server's
  // (z_p, λ_p) replicas and the w_sent snapshots ride in the checkpoint's
  // ADMM fields, tagged strategy="iiadmm" so cross-runner resumes fail fast.
  const CheckpointOptions ckpt = checkpoint_options_from_env(cfg);
  std::optional<CheckpointStore> store;
  if (!ckpt.dir.empty()) store.emplace(ckpt.dir);
  if (!ckpt.resume_from.empty()) {
    APPFL_SPAN("ckpt.restore", "ckpt");
    std::optional<CheckpointStore> separate;
    CheckpointStore& resume_store =
        store && ckpt.resume_from == ckpt.dir
            ? *store
            : separate.emplace(ckpt.resume_from);
    const std::optional<AsyncCheckpoint> ac =
        load_latest_async_checkpoint(resume_store);
    APPFL_CHECK_MSG(ac.has_value(), "resume_from='" << ckpt.resume_from
                        << "' holds no loadable async checkpoint");
    APPFL_CHECK_MSG(
        ac->seed == cfg.seed && ac->num_clients == num_clients &&
            ac->param_count == m && ac->total_updates == total_updates,
        "async checkpoint fingerprint mismatch");
    APPFL_CHECK_MSG(ac->strategy == "iiadmm",
                    "async checkpoint was written by strategy '"
                        << ac->strategy << "' but this run is async IIADMM");
    APPFL_CHECK_MSG(ac->server_primal.size() == num_clients &&
                        ac->w_sent.size() == num_clients,
                    "async IIADMM checkpoint replica tables are incomplete");
    w = ac->w;
    version = ac->version;
    dispatch_counter = ac->dispatch_counter;
    result.base.applied_updates = ac->applied_updates;
    result.base.resumed_from_update = ac->applied_updates;
    result.base.committed_updates = version;
    result.base.sim_seconds = ac->sim_seconds;
    staleness_sum = ac->staleness_sum;
    jitter.set_state(ac->jitter_state);
    z = ac->server_primal;
    lambda = ac->server_dual;
    w_sent = ac->w_sent;
    for (std::size_t p = 0; p < num_clients; ++p) {
      clients[p]->import_state(ac->clients[p]);
      in_flight_z[p] = ac->in_flight[p];
    }
    for (const AsyncCheckpoint::Pending& pend : ac->queue) {
      queue.push({pend.finish_time, pend.client,
                  static_cast<std::size_t>(pend.version)});
    }
  } else {
    for (std::size_t p = 0; p < num_clients; ++p) dispatch(p, 0.0);
  }

  while (result.base.applied_updates < total_updates) {
    APPFL_CHECK(!queue.empty());
    const PendingUpdate next = queue.top();
    queue.pop();
    const std::size_t p = next.client - 1;
    const std::size_t staleness = version - next.version;
    // Server-side replica of line 21, with the w this client trained on.
    for (std::size_t i = 0; i < m; ++i) {
      lambda[p][i] += rho * (w_sent[p][i] - in_flight_z[p][i]);
    }
    z[p] = in_flight_z[p];
    w = recompute_w();
    ++version;
    ++result.base.applied_updates;
    ++result.base.committed_updates;
    staleness_sum += static_cast<double>(staleness);
    record_async_event_metrics(staleness, /*committed=*/true);

    AsyncEvent event;
    event.sim_time = next.finish_time;
    event.client = next.client;
    event.staleness = staleness;
    event.mixing = 1.0;  // exact closed-form absorption, not damped mixing
    if (config.validate_every > 0 &&
        result.base.applied_updates % config.validate_every == 0) {
      event.test_accuracy = validator->validate(w);
    }
    result.base.sim_seconds = next.finish_time;
    result.base.events.push_back(event);
    if (obs_session.streaming()) {
      obs_session.write_line(
          async_event_json(result.base.applied_updates, event));
    }

    if (result.base.applied_updates + queue.size() < total_updates) {
      dispatch(p, next.finish_time);
    }

    const bool halt_here =
        cfg.halt_after_round > 0 &&
        result.base.applied_updates == cfg.halt_after_round;
    if (store && (result.base.applied_updates % ckpt.every == 0 ||
                  result.base.applied_updates == total_updates || halt_here)) {
      APPFL_SPAN("ckpt.save", "ckpt");
      AsyncCheckpoint ac;
      ac.seed = cfg.seed;
      ac.num_clients = static_cast<std::uint32_t>(num_clients);
      ac.param_count = m;
      ac.total_updates = total_updates;
      ac.applied_updates = result.base.applied_updates;
      ac.version = version;
      ac.dispatch_counter = dispatch_counter;
      ac.staleness_sum = staleness_sum;
      ac.sim_seconds = result.base.sim_seconds;
      ac.w = w;
      ac.jitter_state = jitter.state();
      auto pending = queue;
      while (!pending.empty()) {
        const PendingUpdate& top = pending.top();
        ac.queue.push_back({top.finish_time, top.client, top.version});
        pending.pop();
      }
      ac.in_flight = in_flight_z;
      for (std::size_t cp = 0; cp < num_clients; ++cp) {
        ac.clients.push_back(clients[cp]->export_state());
      }
      ac.strategy = "iiadmm";
      ac.server_primal = z;
      ac.server_dual = lambda;
      ac.w_sent = w_sent;
      save_async_checkpoint(*store, ac);
      ++result.base.checkpoints_written;
    }
    if (halt_here) break;
  }

  result.base.final_accuracy = validator->validate(w);
  result.base.final_w = w;
  result.base.mean_staleness =
      result.base.applied_updates > 0
          ? staleness_sum / static_cast<double>(result.base.applied_updates)
          : 0.0;

  // The invariant: every client's dual must equal the server replica
  // bit-for-bit, even though duals never crossed the wire and the schedule
  // was asynchronous.
  result.duals_consistent = true;
  for (std::size_t p = 0; p < num_clients; ++p) {
    const auto& cd = admm_clients[p]->dual();
    for (std::size_t i = 0; i < m; ++i) {
      if (std::bit_cast<std::uint32_t>(cd[i]) !=
          std::bit_cast<std::uint32_t>(lambda[p][i])) {
        result.duals_consistent = false;
      }
    }
  }
  obs_session.finish();
  return result;
}

SyncBaselineResult run_sync_baseline(const AsyncConfig& config,
                                     const data::FederatedSplit& split) {
  RunConfig cfg = config.run;
  cfg.algorithm = Algorithm::kFedAvg;
  cfg.validate();
  const std::size_t num_clients = split.clients.size();
  std::vector<hw::DeviceProfile> devices = config.devices;
  if (devices.empty()) devices.push_back(hw::v100());

  // Accuracy from the real synchronous runner.
  RunConfig sync_cfg = cfg;
  sync_cfg.validate_every_round = false;
  const RunResult learning = run_federated(sync_cfg, split);

  // Simulated time with the SAME per-client link model the async scheme
  // uses (compute + 2× gRPC transfer) — a synchronous round just barriers
  // on the slowest client instead of streaming updates in. A positive drop
  // rate charges lost uplinks an ack timeout + retransmit before the
  // barrier releases (the sync runner's recovery path); the drop stream is
  // separate so fault-free baselines stay bit-identical.
  rng::Rng jitter(rng::derive_seed(cfg.seed, {0xA5, 2}));
  const comm::FaultConfig faults = comm::fault_config_from_env(cfg.faults);
  faults.validate();
  rng::Rng drop_rng(rng::derive_seed(cfg.seed, {0xA5, 5}));
  auto prototype = build_model(cfg, split.test);
  const double flops_one_pass = 3.0 * prototype->forward_flops(1);
  comm::GrpcCostModel net;
  const std::size_t payload = 4 * prototype->num_parameters() + 64;

  SyncBaselineResult result;
  result.round_seconds.reserve(cfg.rounds);
  double total = 0.0;
  double idle_sum = 0.0;
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    double slowest = 0.0;
    std::vector<double> times(num_clients);
    for (std::size_t p = 0; p < num_clients; ++p) {
      const auto& dev = devices[p % devices.size()];
      times[p] = dev.seconds_for(
                     flops_one_pass *
                     static_cast<double>(split.clients[p].size()) *
                     static_cast<double>(cfg.local_steps)) +
                 net.transfer_seconds(payload, jitter) +
                 net.transfer_seconds(payload, jitter);
      if (faults.drop > 0.0) {
        while (drop_rng.uniform01() < faults.drop) {
          times[p] += cfg.ack_timeout_s + net.transfer_seconds(payload, jitter);
        }
      }
      slowest = std::max(slowest, times[p]);
    }
    for (double t : times) idle_sum += (slowest - t) / slowest;
    total += slowest;
    result.round_seconds.push_back(total);
  }

  result.sim_seconds = total;
  result.final_accuracy = learning.final_accuracy;
  result.straggler_idle_fraction =
      idle_sum / static_cast<double>(cfg.rounds * num_clients);
  return result;
}

}  // namespace appfl::core
