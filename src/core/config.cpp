#include "core/config.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "dp/sensitivity.hpp"
#include "util/check.hpp"

namespace appfl::core {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kFedAvg: return "FedAvg";
    case Algorithm::kIceAdmm: return "ICEADMM";
    case Algorithm::kIIAdmm: return "IIADMM";
    case Algorithm::kFedProx: return "FedProx";
  }
  return "?";
}

std::string to_string(DpMode m) {
  switch (m) {
    case DpMode::kOutput: return "output-perturbation";
    case DpMode::kGradient: return "gradient-perturbation";
  }
  return "?";
}

std::string to_string(ModelKind m) {
  switch (m) {
    case ModelKind::kPaperCnn: return "paper-cnn";
    case ModelKind::kMlp: return "mlp";
    case ModelKind::kLogistic: return "logistic";
  }
  return "?";
}

double RunConfig::sensitivity() const {
  APPFL_CHECK_MSG(clip > 0.0F,
                  "DP sensitivity requires gradient clipping (clip > 0)");
  if (algorithm == Algorithm::kFedAvg || algorithm == Algorithm::kFedProx) {
    // FedProx's proximal pull only shrinks the iterate displacement, so
    // FedAvg's 2Cη bound remains valid (and conservative) for it.
    return dp::fedavg_sensitivity(clip, lr);
  }
  return dp::iadmm_sensitivity(clip, rho, zeta);
}

namespace {
bool is_admm_family(Algorithm a) {
  return a == Algorithm::kIceAdmm || a == Algorithm::kIIAdmm;
}
}  // namespace

void RunConfig::validate() const {
  APPFL_CHECK(rounds >= 1);
  APPFL_CHECK(local_steps >= 1);
  APPFL_CHECK(batch_size >= 1);
  APPFL_CHECK(lr > 0.0F);
  APPFL_CHECK(momentum >= 0.0F && momentum < 1.0F);
  if (is_admm_family(algorithm)) {
    APPFL_CHECK_MSG(rho > 0.0F, "ADMM penalty rho must be positive");
    APPFL_CHECK_MSG(zeta >= 0.0F, "ADMM proximity zeta must be non-negative");
  }
  if (algorithm == Algorithm::kFedProx) {
    APPFL_CHECK_MSG(fedprox_mu >= 0.0F, "FedProx mu must be non-negative");
  }
  if (adaptive_rho) {
    APPFL_CHECK_MSG(is_admm_family(algorithm),
                    "adaptive rho applies to the IADMM family only");
    APPFL_CHECK(adapt_tau > 1.0F);
    APPFL_CHECK(adapt_mu > 1.0F);
    APPFL_CHECK(rho_min > 0.0F && rho_max >= rho_min);
    APPFL_CHECK(rho >= rho_min && rho <= rho_max);
    APPFL_CHECK_MSG(!std::isfinite(epsilon),
                    "adaptive rho with finite epsilon is unsupported: the DP "
                    "sensitivity 2C/(rho+zeta) would drift with rho");
  }
  APPFL_CHECK(clip >= 0.0F);
  APPFL_CHECK_MSG(epsilon > 0.0, "privacy budget must be positive");
  if (std::isfinite(epsilon)) {
    APPFL_CHECK_MSG(clip > 0.0F,
                    "finite epsilon requires clipping to bound sensitivity");
  }
  APPFL_CHECK_MSG(client_fraction > 0.0 && client_fraction <= 1.0,
                  "client_fraction must be in (0, 1]");
  if (uplink_codec != comm::UplinkCodec::kNone) {
    APPFL_CHECK_MSG(!is_admm_family(algorithm),
                    "lossy uplink codecs would desynchronize the IADMM "
                    "dual replicas — use FedAvg or FedProx");
    APPFL_CHECK(topk_fraction > 0.0 && topk_fraction <= 1.0);
  }
  APPFL_CHECK_MSG(tree_fan_out == 0 || tree_fan_out >= 2,
                  "tree_fan_out must be 0 (flat) or >= 2");
  if (population > 0) {
    APPFL_CHECK_MSG(algorithm == Algorithm::kFedAvg ||
                        algorithm == Algorithm::kFedProx,
                    "the population engine supports FedAvg/FedProx only: "
                    "transient participants leave the IADMM server-side "
                    "(z_p, lambda_p) replicas with no owner");
    APPFL_CHECK_MSG(uplink_codec == comm::UplinkCodec::kNone,
                    "the population engine requires uplink_codec=none: "
                    "per-client codec residuals cannot ride transient "
                    "participants");
    APPFL_CHECK_MSG(!adaptive_rho,
                    "adaptive rho has no population-engine path");
    APPFL_CHECK_MSG(participants_per_round >= 1 &&
                        participants_per_round <= population,
                    "participants_per_round must be in [1, population], got "
                        << participants_per_round << " of " << population);
    if (mailbox_capacity > 0) {
      // Bounded mailboxes under the engine's concurrent uplinks would let
      // timing decide WHICH datagrams land; requiring the cap to clear the
      // worst-case fan-in keeps the run deterministic while still bounding
      // a misconfigured network.
      const std::size_t max_fan_in =
          tree_fan_out == 0 ? participants_per_round : tree_fan_out;
      APPFL_CHECK_MSG(mailbox_capacity >= max_fan_in,
                      "mailbox_capacity " << mailbox_capacity
                          << " is below the aggregation fan-in " << max_fan_in
                          << " — overflow would drop participant updates "
                             "nondeterministically");
    }
  }
  if (secure_agg) {
    APPFL_CHECK_MSG(algorithm == Algorithm::kFedAvg ||
                        algorithm == Algorithm::kFedProx,
                    "secure aggregation supports FedAvg/FedProx only: the "
                    "server sees a masked SUM, never the per-client updates "
                    "the IADMM dual replicas need");
    APPFL_CHECK_MSG(uplink_codec == comm::UplinkCodec::kNone,
                    "secure aggregation requires uplink_codec=none: masked "
                    "words are opaque bit patterns a lossy codec would "
                    "destroy");
    APPFL_CHECK_MSG(secure_agg_threshold != 1,
                    "secure_agg_threshold 1 would let a single survivor "
                    "reconstruct every secret — use 0 (auto majority) or "
                    ">= 2");
    // The cohort the threshold must fit in: population mode samples
    // participants_per_round, the sync runner ceil(client_fraction * P).
    // P is unknown here for the sync runner, so the static check covers
    // population mode; run_federated re-checks against the real cohort.
    if (population > 0) {
      APPFL_CHECK_MSG(secure_agg_threshold <= participants_per_round,
                      "secure_agg_threshold " << secure_agg_threshold
                          << " exceeds participants_per_round "
                          << participants_per_round);
      APPFL_CHECK_MSG(participants_per_round >= 2,
                      "secure aggregation needs a cohort of at least 2");
    }
  }
  faults.validate();
  APPFL_CHECK_MSG(gather_timeout_s > 0.0, "gather_timeout_s must be positive");
  APPFL_CHECK_MSG(ack_timeout_s > 0.0, "ack_timeout_s must be positive");
  APPFL_CHECK(validate_batch >= 1);
  APPFL_CHECK_MSG(kernel_backend == "auto" || kernel_backend == "reference" ||
                      kernel_backend == "tiled",
                  "kernel_backend must be auto|reference|tiled, got '"
                      << kernel_backend << "'");
  APPFL_CHECK_MSG(checkpoint_every_n_rounds >= 1,
                  "checkpoint_every_n_rounds must be >= 1");
  APPFL_CHECK_MSG(obs::parse_level(obs_level).has_value(),
                  "obs_level must be off|metrics|trace, got '" << obs_level
                                                               << "'");
  const obs::Level lv = *obs::parse_level(obs_level);
  APPFL_CHECK_MSG(trace_out.empty() || lv >= obs::Level::kTrace,
                  "trace_out requires obs_level=trace");
  APPFL_CHECK_MSG(metrics_out.empty() || lv >= obs::Level::kMetrics,
                  "metrics_out requires obs_level=metrics or trace");
  APPFL_CHECK_MSG(critpath_out.empty() || lv >= obs::Level::kTrace,
                  "critpath_out requires obs_level=trace");
  APPFL_CHECK_MSG(health_out.empty() || lv >= obs::Level::kMetrics,
                  "health_out requires obs_level=metrics or trace");
  APPFL_CHECK_MSG(flight_dir.empty() || lv >= obs::Level::kMetrics,
                  "flight_dir requires obs_level=metrics or trace");
}

CheckpointOptions checkpoint_options_from_env(const RunConfig& config) {
  CheckpointOptions opts;
  opts.dir = config.checkpoint_dir;
  opts.every = config.checkpoint_every_n_rounds;
  opts.resume_from = config.resume_from;
  if (const char* value = std::getenv("APPFL_CKPT_DIR")) opts.dir = value;
  if (const char* value = std::getenv("APPFL_CKPT_RESUME")) {
    opts.resume_from = value;
  }
  if (const char* value = std::getenv("APPFL_CKPT_EVERY")) {
    // Same convention as APPFL_FAULT_*: garbage (non-numeric, zero, or
    // negative) is warned about and ignored instead of silently read as 0 —
    // a cadence of 0 would otherwise divide-by-zero or mean "never".
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 1) {
      std::fprintf(stderr,
                   "warning: ignoring invalid APPFL_CKPT_EVERY='%s' "
                   "(need a positive integer)\n",
                   value);
    } else {
      opts.every = static_cast<std::size_t>(parsed);
    }
  }
  return opts;
}

bool fused_aggregation_from_env(const RunConfig& config) {
  bool fused = config.fused_aggregation;
  if (const char* value = std::getenv("APPFL_FUSED_AGG")) {
    if (value == std::string_view("0")) {
      fused = false;
    } else if (value == std::string_view("1")) {
      fused = true;
    } else {
      std::fprintf(stderr,
                   "warning: ignoring invalid APPFL_FUSED_AGG='%s' "
                   "(need 0 or 1)\n",
                   value);
    }
  }
  return fused;
}

RunConfig scaling_config_from_env(RunConfig config) {
  const auto env_size = [](const char* name, std::size_t& field) {
    const char* value = std::getenv(name);
    if (!value) return;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0) {
      std::fprintf(stderr,
                   "warning: ignoring invalid %s='%s' "
                   "(need a non-negative integer)\n",
                   name, value);
      return;
    }
    field = static_cast<std::size_t>(parsed);
  };
  env_size("APPFL_TREE_FANOUT", config.tree_fan_out);
  env_size("APPFL_MAILBOX_CAP", config.mailbox_capacity);
  return config;
}

obs::ObsOptions obs_options_from_env(const RunConfig& config) {
  obs::ObsOptions opts;
  if (const auto lv = obs::parse_level(config.obs_level)) opts.level = *lv;
  opts.trace_out = config.trace_out;
  opts.metrics_out = config.metrics_out;
  opts.health_out = config.health_out;
  opts.critpath_out = config.critpath_out;
  opts.flight_dir = config.flight_dir;
  obs::apply_env_overrides(opts);
  return opts;
}

}  // namespace appfl::core
