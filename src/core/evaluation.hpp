// Evaluation beyond plain accuracy: loss, per-class recall, and a confusion
// matrix — what a user actually inspects before deploying a federated model
// (and what surfaces class-skew pathologies in non-IID runs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "nn/module.hpp"

namespace appfl::core {

struct EvalReport {
  double accuracy = 0.0;
  double mean_loss = 0.0;                 // cross-entropy
  std::vector<double> per_class_recall;   // −1 for classes with no samples
  /// confusion[true][predicted] = count.
  std::vector<std::vector<std::size_t>> confusion;
  std::size_t samples = 0;

  /// Balanced accuracy: mean recall over classes that have samples.
  double balanced_accuracy() const;
};

/// Evaluates `parameters` (flat vector, set into `model`) on `dataset` in
/// mini-batches of `batch_size`.
EvalReport evaluate(nn::Module& model, std::span<const float> parameters,
                    const data::Dataset& dataset, std::size_t batch_size = 256);

}  // namespace appfl::core
