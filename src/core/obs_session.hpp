// Per-run observability session. Owns the lifecycle the runners share:
// resolve the run's ObsOptions (config fields, then APPFL_OBS_* overrides),
// raise the process-wide level for the duration of the run, clear the global
// tracer and metrics registry so artifacts describe THIS run, stream one
// JSONL line per round, and at the end write the summary + metrics lines and
// the Chrome trace file.
//
// Resume semantics (the contract tests/test_resume.cpp pins): traffic
// counters CONTINUE across --resume because the JSONL summary reports
// comm.stats(), which the checkpoint restores; registry instruments and
// spans RESTART, because the session clears them at run start — a resumed
// run's trace covers only the rounds this process executed.
//
// The level is process-wide state, so concurrent runs in one process should
// not both enable observability; the last session to finish restores the
// level it found.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "core/runner.hpp"
#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"

namespace appfl::core {

class ObsSession {
 public:
  explicit ObsSession(const RunConfig& config);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  const obs::ObsOptions& options() const { return opts_; }
  bool metrics_enabled() const {
    return opts_.level >= obs::Level::kMetrics;
  }
  /// True when a JSONL stream is open — callers can skip building lines.
  bool streaming() const { return writer_.has_value() && writer_->ok(); }

  /// The run's per-client health ledger. Runners feed it (gated on
  /// metrics_enabled()); the session snapshots it per round into the JSONL
  /// stream and at finish into the summary + the --health-out CSV.
  obs::HealthLedger& health() { return health_; }

  /// One JSONL line for a completed round (no-op without a metrics stream),
  /// followed by the round's health-ledger snapshot line when the ledger
  /// has observations. test_accuracy's −1 sentinel serializes as null.
  void write_round(const RoundMetrics& metrics);

  /// Arbitrary pre-rendered JSONL line (the async runner's event stream).
  void write_line(const std::string& json);

  /// End of run: summary line (traffic from result.traffic — the counters
  /// that survive resume), registry-snapshot line, trace-file export.
  void finish(const RunResult& result);

  /// End of run without a sync-runner summary (async runners): health
  /// summary + CSV, tracer self-telemetry, registry snapshot line, trace
  /// export, critical-path artifacts.
  void finish();

 private:
  obs::ObsOptions opts_;
  obs::Level previous_ = obs::Level::kOff;
  std::optional<obs::JsonlWriter> writer_;
  obs::HealthLedger health_;
};

}  // namespace appfl::core
