#include "core/async_strategy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "comm/message.hpp"
#include "core/aggregate.hpp"
#include "core/checkpoint.hpp"
#include "util/check.hpp"

namespace appfl::core {

std::string to_string(AsyncStrategyKind k) {
  switch (k) {
    case AsyncStrategyKind::kFedAsync: return "fedasync";
    case AsyncStrategyKind::kFedBuff: return "fedbuff";
    case AsyncStrategyKind::kFedCompass: return "fedcompass";
  }
  return "?";
}

std::string to_string(StalenessWeight w) {
  switch (w) {
    case StalenessWeight::kConstant: return "constant";
    case StalenessWeight::kPolynomial: return "polynomial";
    case StalenessWeight::kHinge: return "hinge";
  }
  return "?";
}

std::optional<AsyncStrategyKind> parse_async_strategy(std::string_view name) {
  if (name == "fedasync") return AsyncStrategyKind::kFedAsync;
  if (name == "fedbuff") return AsyncStrategyKind::kFedBuff;
  if (name == "fedcompass") return AsyncStrategyKind::kFedCompass;
  return std::nullopt;
}

std::optional<StalenessWeight> parse_staleness_weight(std::string_view name) {
  if (name == "constant") return StalenessWeight::kConstant;
  if (name == "polynomial") return StalenessWeight::kPolynomial;
  if (name == "hinge") return StalenessWeight::kHinge;
  return std::nullopt;
}

void AsyncStrategyOptions::validate() const {
  APPFL_CHECK_MSG(buffer_k >= 1, "FedBuff buffer_k must be >= 1");
  APPFL_CHECK_MSG(buffer_k <= 4096, "FedBuff buffer_k " << buffer_k
                                        << " is implausibly large (max 4096)");
}

AsyncStrategyOptions async_strategy_options_from_env(
    const AsyncStrategyOptions& base) {
  AsyncStrategyOptions opts = base;
  if (const char* value = std::getenv("APPFL_ASYNC_STRATEGY")) {
    if (const auto kind = parse_async_strategy(value)) {
      opts.kind = *kind;
    } else {
      std::fprintf(stderr,
                   "warning: ignoring invalid APPFL_ASYNC_STRATEGY='%s' "
                   "(need fedasync|fedbuff|fedcompass)\n",
                   value);
    }
  }
  if (const char* value = std::getenv("APPFL_ASYNC_STALENESS_WEIGHT")) {
    if (const auto weight = parse_staleness_weight(value)) {
      opts.weight = *weight;
    } else {
      std::fprintf(stderr,
                   "warning: ignoring invalid APPFL_ASYNC_STALENESS_WEIGHT="
                   "'%s' (need constant|polynomial|hinge)\n",
                   value);
    }
  }
  if (const char* value = std::getenv("APPFL_ASYNC_BUFFER_K")) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 1) {
      std::fprintf(stderr,
                   "warning: ignoring invalid APPFL_ASYNC_BUFFER_K='%s' "
                   "(need a positive integer)\n",
                   value);
    } else {
      opts.buffer_k = static_cast<std::size_t>(parsed);
    }
  }
  if (const char* value = std::getenv("APPFL_ASYNC_HINGE_S0")) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 0) {
      std::fprintf(stderr,
                   "warning: ignoring invalid APPFL_ASYNC_HINGE_S0='%s' "
                   "(need a non-negative integer)\n",
                   value);
    } else {
      opts.hinge_s0 = static_cast<std::size_t>(parsed);
    }
  }
  return opts;
}

float AsyncStrategy::staleness_weight(std::size_t staleness) const {
  switch (weight_) {
    case StalenessWeight::kConstant:
      return alpha_;
    case StalenessWeight::kPolynomial:
      // The exact expression the pre-strategy runner used — the default
      // configuration must stay bit-identical across this refactor.
      return alpha_ / (1.0F + static_cast<float>(staleness));
    case StalenessWeight::kHinge:
      if (staleness <= hinge_s0_) return alpha_;
      return alpha_ / (1.0F + static_cast<float>(staleness - hinge_s0_));
  }
  return alpha_;
}

namespace {

/// FedAsync: every arrival is mixed into the model immediately,
/// w ← (1 − α_s)·w + α_s·z, and the model version advances.
class FedAsyncStrategy : public AsyncStrategy {
 public:
  FedAsyncStrategy(float alpha, StalenessWeight weight, std::size_t hinge_s0,
                   std::size_t base_steps)
      : AsyncStrategy(alpha, weight, hinge_s0, base_steps) {}

  AsyncStrategyKind kind() const override {
    return AsyncStrategyKind::kFedAsync;
  }

  Absorbed absorb(std::span<const float> payload, std::size_t staleness,
                  std::span<float> w) override {
    APPFL_CHECK_MSG(payload.size() == w.size(),
                    "async payload size " << payload.size()
                                          << " != model size " << w.size());
    const float mixing = staleness_weight(staleness);
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = (1.0F - mixing) * w[i] + mixing * payload[i];
    }
    return {.mixing = mixing, .committed = true};
  }
};

/// FedBuff: arrivals carry deltas Δ = z − w_sent; K of them are buffered
/// (each pre-weighted by its own α_s) and committed in one fused reduction
/// w ← w + (1/K) Σ α_s(τᵢ)·Δᵢ. Only commits advance the model version.
class FedBuffStrategy : public AsyncStrategy {
 public:
  FedBuffStrategy(float alpha, StalenessWeight weight, std::size_t hinge_s0,
                  std::size_t base_steps, std::size_t k)
      : AsyncStrategy(alpha, weight, hinge_s0, base_steps), k_(k) {}

  AsyncStrategyKind kind() const override { return AsyncStrategyKind::kFedBuff; }

  std::vector<float> in_flight_payload(
      std::vector<float> z, std::span<const float> w_sent) const override {
    APPFL_CHECK_MSG(z.size() == w_sent.size(),
                    "FedBuff delta: trained model size "
                        << z.size() << " != dispatched size " << w_sent.size());
    for (std::size_t i = 0; i < z.size(); ++i) z[i] -= w_sent[i];
    return z;  // the delta the server buffers on arrival
  }

  Absorbed absorb(std::span<const float> payload, std::size_t staleness,
                  std::span<float> w) override {
    APPFL_CHECK_MSG(payload.size() == w.size(),
                    "async payload size " << payload.size()
                                          << " != model size " << w.size());
    const float mixing = staleness_weight(staleness);
    buffer_.emplace_back(payload.begin(), payload.end());
    weights_.push_back(mixing);
    if (buffer_.size() < k_) return {.mixing = mixing, .committed = false};

    // Commit: one fused weighted reduction over the K buffered deltas via
    // the core/aggregate stream kernels (bit-identical at any kernel-pool
    // thread count), then an elementwise add into the global model.
    std::vector<StreamTerm> terms;
    terms.reserve(buffer_.size());
    const float inv_k = 1.0F / static_cast<float>(k_);
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      terms.push_back(StreamTerm{
          comm::WirePayload::f32(buffer_[i].data(), buffer_[i].size()),
          weights_[i] * inv_k});
    }
    std::vector<float> step(w.size(), 0.0F);
    weighted_sum_stream(terms, step);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] += step[i];
    buffer_.clear();
    weights_.clear();
    return {.mixing = mixing, .committed = true};
  }

  void export_state(AsyncCheckpoint& out) const override {
    out.buffer = buffer_;
    out.buffer_weights = weights_;
  }

  void import_state(const AsyncCheckpoint& in) override {
    APPFL_CHECK_MSG(in.buffer.size() == in.buffer_weights.size(),
                    "FedBuff checkpoint buffer/weights are unpaired");
    APPFL_CHECK_MSG(in.buffer.size() < k_,
                    "FedBuff checkpoint buffers " << in.buffer.size()
                        << " deltas, but commits fire at " << k_);
    buffer_ = in.buffer;
    weights_ = in.buffer_weights;
  }

 private:
  std::size_t k_;
  std::vector<std::vector<float>> buffer_;
  std::vector<float> weights_;
};

/// FedCompass-style compute-aware scheduler: assign each client the number
/// of local steps that makes its dispatch last about as long as the
/// slowest client's base pass, so arrivals cluster and staleness ≈ 0.
/// Absorption is FedAsync's staleness-damped mixing.
class FedCompassStrategy : public FedAsyncStrategy {
 public:
  FedCompassStrategy(float alpha, StalenessWeight weight, std::size_t hinge_s0,
                     std::size_t base_steps,
                     std::span<const double> seconds_per_step)
      : FedAsyncStrategy(alpha, weight, hinge_s0, base_steps) {
    APPFL_CHECK_MSG(!seconds_per_step.empty(),
                    "FedCompass needs per-client compute speeds");
    double slowest = 0.0;
    for (double s : seconds_per_step) {
      APPFL_CHECK_MSG(s > 0.0, "FedCompass needs positive per-step seconds");
      slowest = std::max(slowest, s);
    }
    // Everyone targets the wall-clock of the slowest client's base pass;
    // fast clients fill the window with extra local steps (capped at 8×
    // base so loosely-coupled fleets can't run away from the global model).
    const double target = static_cast<double>(base_steps) * slowest;
    steps_.reserve(seconds_per_step.size());
    for (double s : seconds_per_step) {
      const double ideal = target / s;
      const auto steps = static_cast<std::size_t>(std::llround(ideal));
      steps_.push_back(std::clamp<std::size_t>(steps, 1, 8 * base_steps));
    }
  }

  AsyncStrategyKind kind() const override {
    return AsyncStrategyKind::kFedCompass;
  }

  std::size_t local_steps(std::size_t client) const override {
    APPFL_CHECK_MSG(client < steps_.size(),
                    "FedCompass step plan has no client " << client);
    return steps_[client];
  }

  void export_state(AsyncCheckpoint& out) const override {
    out.assigned_steps.assign(steps_.begin(), steps_.end());
  }

  void import_state(const AsyncCheckpoint& in) override {
    // The plan is a pure function of the fleet + config, so a resumed run
    // re-derives it; the stored copy is a fingerprint that catches resuming
    // against a different fleet.
    std::vector<std::uint64_t> derived(steps_.begin(), steps_.end());
    APPFL_CHECK_MSG(in.assigned_steps == derived,
                    "FedCompass checkpoint step plan does not match this "
                    "fleet — resuming against different devices?");
  }

 private:
  std::vector<std::size_t> steps_;
};

}  // namespace

std::unique_ptr<AsyncStrategy> AsyncStrategy::make(
    const AsyncStrategyOptions& opts, float mixing_alpha,
    std::size_t base_local_steps, std::span<const double> seconds_per_step) {
  opts.validate();
  switch (opts.kind) {
    case AsyncStrategyKind::kFedAsync:
      return std::make_unique<FedAsyncStrategy>(mixing_alpha, opts.weight,
                                                opts.hinge_s0,
                                                base_local_steps);
    case AsyncStrategyKind::kFedBuff:
      return std::make_unique<FedBuffStrategy>(mixing_alpha, opts.weight,
                                               opts.hinge_s0, base_local_steps,
                                               opts.buffer_k);
    case AsyncStrategyKind::kFedCompass:
      return std::make_unique<FedCompassStrategy>(mixing_alpha, opts.weight,
                                                  opts.hinge_s0,
                                                  base_local_steps,
                                                  seconds_per_step);
  }
  APPFL_CHECK_MSG(false, "unreachable async strategy kind");
  return nullptr;
}

}  // namespace appfl::core
