#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <unordered_map>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace appfl::core {

std::vector<std::uint32_t> sample_fraction(rng::Rng& sampler,
                                           std::size_t num_clients,
                                           double fraction) {
  std::vector<std::uint32_t> participants(num_clients);
  for (std::size_t p = 0; p < num_clients; ++p) {
    participants[p] = static_cast<std::uint32_t>(p + 1);
  }
  if (fraction < 1.0) {
    rng::shuffle(sampler, std::span<std::uint32_t>(participants));
    const std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(fraction * static_cast<double>(num_clients))));
    participants.resize(count);
    std::sort(participants.begin(), participants.end());
  }
  return participants;
}

std::vector<std::uint32_t> sample_k_of_n(rng::Rng& sampler, std::size_t n,
                                         std::size_t k) {
  APPFL_CHECK_MSG(k >= 1 && k <= n,
                  "cannot sample " << k << " participants from a population "
                                   << "of " << n);
  // Partial Fisher–Yates: position j of the virtual identity array [0, n)
  // swaps with a uniform position in [j, n). Only touched positions live in
  // the overlay map, so memory is O(k) — the first k positions after the
  // partial shuffle are exactly a uniform k-subset (in uniform random
  // order, which the final sort normalizes away).
  std::unordered_map<std::uint64_t, std::uint64_t> overlay;
  overlay.reserve(2 * k);
  const auto value_at = [&](std::uint64_t pos) {
    const auto it = overlay.find(pos);
    return it == overlay.end() ? pos : it->second;
  };
  std::vector<std::uint32_t> picked(k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t r =
        static_cast<std::uint64_t>(j) + sampler.uniform_below(n - j);
    const std::uint64_t vj = value_at(j);
    const std::uint64_t vr = value_at(r);
    overlay[r] = vj;
    picked[j] = static_cast<std::uint32_t>(vr + 1);  // ids are 1-based
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace appfl::core
