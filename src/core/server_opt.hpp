// Server-side adaptive optimization (FedOpt family: Reddi et al. 2021).
//
// FedAvg treats the round average as the new global model. The FedOpt view
// treats Δ_t = avg_p(z_p) − w_t as a pseudo-gradient and feeds it to a
// server optimizer:
//     FedAvgM / none :  w ← w + η_s · Δ
//     FedAdagrad     :  v ← v + Δ²
//     FedYogi        :  v ← v − (1−β₂)·Δ²·sign(v − Δ²)
//     FedAdam        :  v ← β₂·v + (1−β₂)·Δ²
// all with m ← β₁·m + (1−β₁)·Δ and w ← w + η_s·m/(√v + τ).
// This addresses the paper's future-work theme of "enhancing learning
// performance by adaptively updating algorithm parameters" on the server.
#pragma once

#include "core/base.hpp"
#include "core/config.hpp"

namespace appfl::core {

enum class ServerOpt { kNone, kAdagrad, kAdam, kYogi };

std::string to_string(ServerOpt opt);

struct ServerOptConfig {
  ServerOpt kind = ServerOpt::kAdam;
  float lr = 0.1F;       // η_s
  float beta1 = 0.9F;    // momentum on Δ
  float beta2 = 0.99F;   // second-moment decay (Adam/Yogi)
  float tau = 1e-3F;     // adaptivity floor in the denominator
};

/// FedAvg clients + an adaptive server. Use with Algorithm::kFedAvg clients
/// (primal-only updates); plugs into run_federated like any BaseServer.
class FedOptServer : public BaseServer {
 public:
  FedOptServer(const RunConfig& config, ServerOptConfig opt,
               std::unique_ptr<nn::Module> model, data::TensorDataset test_set,
               std::size_t num_clients);

  std::vector<float> compute_global(std::uint32_t round) override;
  void update(const std::vector<comm::Message>& locals,
              std::span<const float> global, std::uint32_t round) override;
  /// Fused path: the pseudo-gradient Δ streams straight out of the
  /// wire-resident payloads (one pass), then the identical optimizer step
  /// runs. Bit-identical to update() on the same traffic.
  bool absorb(const comm::GatherBatch& batch, std::span<const float> global,
              std::uint32_t round) override;

  const ServerOptConfig& opt() const { return opt_; }

  std::string checkpoint_kind() const override { return "fedopt"; }
  ServerStateCkpt export_state() const override;
  void import_state(const ServerStateCkpt& s) override;

 private:
  /// The shared server-optimizer step on an already-reduced Δ.
  void apply_pseudo_gradient(std::span<const double> delta);

  ServerOptConfig opt_;
  std::vector<float> w_;        // the server-held global model
  std::vector<float> m_;        // first moment of Δ
  std::vector<float> v_;        // second moment of Δ
};

}  // namespace appfl::core
