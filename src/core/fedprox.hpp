// FedProx (Li et al. 2020) — FedAvg with a proximal term.
//
// Local objective: f_p(z) + (μ/2)‖z − w‖², solved by SGD steps
//     z ← z − η·(g + μ(z − w)).
// The proximal pull stabilizes heterogeneous (non-IID / variable-effort)
// clients, the systems problem §IV-E quantifies. Server side reuses
// FedAvg's aggregation; μ = 0 recovers FedAvg exactly (property-tested).
// Like FedAvg and IIADMM it ships primal-only updates.
#pragma once

#include "core/base.hpp"
#include "core/fedavg.hpp"

namespace appfl::core {

class FedProxClient : public BaseClient {
 public:
  using BaseClient::BaseClient;

  comm::Message update(std::span<const float> global,
                       std::uint32_t round) override;
};

/// FedProx reuses the FedAvg server: aggregation is identical.
using FedProxServer = FedAvgServer;

}  // namespace appfl::core
