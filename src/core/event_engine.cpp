#include "core/event_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <queue>
#include <span>
#include <unordered_map>
#include <utility>

#include "comm/cost_model.hpp"
#include "comm/envelope.hpp"
#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "comm/sim_clock.hpp"
#include "core/aggregate.hpp"
#include "core/checkpoint.hpp"
#include "core/evaluation.hpp"
#include "core/obs_session.hpp"
#include "core/sampling.hpp"
#include "dp/secure_agg.hpp"
#include "hw/device.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rng/rng.hpp"
#include "tensor/gemm.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace appfl::core {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  unsigned long long kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) break;
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kib) * 1024;
#else
  return 0;
#endif
}

namespace {

// RNG streams owned by the engine (see rng::derive_seed): 79 = population
// sampler (rides the checkpoint), 0x6A1/0x6A2 = per-(round, slot) gRPC
// down/uplink jitter, 77 = fault-injector seed (slot-link keyed).
constexpr std::uint64_t kSamplerStream = 79;
constexpr std::uint64_t kDownJitterStream = 0x6A1;
constexpr std::uint64_t kUpJitterStream = 0x6A2;
constexpr std::uint64_t kShareJitterStream = 0x6A3;
constexpr std::uint64_t kNetStream = 77;

enum class EventKind : std::uint8_t {
  kArrival = 0,      // broadcast model reaches a participant slot
  kUplink = 1,       // a slot's update lands in its leaf leader's mailbox
  kGroupReady = 2,   // a leaf leader has every surviving child update
  kRootReduce = 3,   // the root holds every group's payload refs
  kShareArrive = 4,  // secure agg: a slot's share packet lands at the root
};

struct Event {
  double t = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break at equal times (determinism)
  EventKind kind = EventKind::kArrival;
  std::uint32_t arg = 0;  // slot (kArrival/kUplink) or group (kGroupReady)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

struct SlotOutcome {
  bool delivered = false;
  double deliver_at = 0.0;
  std::uint64_t up_bytes = 0;
};

}  // namespace

PopulationRunResult run_population(const RunConfig& config,
                                   const data::SyntheticPopulation& population) {
  config.validate();
  APPFL_CHECK_MSG(config.population > 0,
                  "run_population needs config.population > 0");
  APPFL_CHECK_MSG(config.population == population.size(),
                  "config.population=" << config.population
                      << " does not match the population object's "
                      << population.size());
  APPFL_CHECK_MSG(config.population <=
                      std::numeric_limits<std::uint32_t>::max(),
                  "population exceeds the 32-bit id space");
  tensor::apply_kernel_config(config.kernel_backend, config.kernel_threads);

  const std::size_t n = population.size();
  const std::size_t k = config.participants_per_round;
  const AggTree tree(k, config.tree_fan_out);
  const std::size_t num_groups = tree.num_leaf_groups();
  // Endpoint layout: 0 = root, 1..k = participant slots (slot i carries the
  // i-th smallest sampled id this round), k+1..k+G = leaf-leader mailboxes.
  // One network serves the whole run — fault link sequence counters persist
  // across rounds and ride the checkpoint, exactly like the Communicator's.
  const auto leader_endpoint = [k](std::size_t g) {
    return static_cast<std::uint32_t>(1 + k + g);
  };
  const comm::FaultConfig faults = comm::fault_config_from_env(config.faults);
  const bool faults_on = faults.enabled();
  comm::InProcNetwork net(1 + k + num_groups, faults,
                          rng::derive_seed(config.seed, {kNetStream}),
                          config.mailbox_capacity);
  const std::size_t env_overhead = faults_on ? comm::kEnvelopeOverhead : 0;

  data::TensorDataset test_set = population.test_set();
  std::unique_ptr<nn::Module> prototype = build_model(config, test_set);
  std::vector<float> w = prototype->flat_parameters();
  const std::size_t param_count = prototype->num_parameters();
  // local_update_flops is linear in samples × steps, so one evaluation on
  // the prototype serves every transient client (and keeps pool tasks from
  // touching the shared module).
  const double flops_per_sample_step =
      hw::local_update_flops(*prototype, 1, 1);

  comm::SimClock clock;
  util::ThreadPool pool;
  rng::Rng sampler(rng::derive_seed(config.seed, {kSamplerStream}));
  ObsSession obs_session(config);
  const bool track_health = obs_session.metrics_enabled();
  const comm::MpiCostModel mpi;
  const comm::GrpcCostModel grpc;
  const hw::DeviceProfile device = hw::v100();
  const bool is_grpc = config.protocol == comm::Protocol::kGrpc;

  PopulationRunResult out;
  out.run.model_parameters = param_count;
  out.engine.tree_depth = tree.depth();
  out.engine.tree_leaf_groups = num_groups;

  // Engine-owned ledger. Fault/overflow counters live in the network; this
  // copy carries everything else plus restored pre-crash bases, and
  // current_stats() composes them exactly like Communicator::stats().
  comm::TrafficStats stats;
  const auto current_stats = [&] {
    comm::TrafficStats s = stats;
    const comm::FaultStats f = net.fault_stats();
    s.drops = f.drops;
    s.duplicates = f.duplicates;
    s.reorders = f.reorders;
    s.corruptions = f.corruptions;
    s.delays = f.delays;
    s.mailbox_overflows += net.mailbox_overflows();
    return s;
  };

  // Sparse DP ledger: id → rounds this client released an update. ε_p =
  // count × per-round ε under basic composition; memory is O(distinct
  // participants), never O(population).
  std::unordered_map<std::uint32_t, std::uint32_t> participation;
  const double round_epsilon =
      std::isfinite(config.epsilon) ? config.epsilon : 0.0;

  const CheckpointOptions ckpt = checkpoint_options_from_env(config);
  std::optional<CheckpointStore> store;
  if (!ckpt.dir.empty()) store.emplace(ckpt.dir);

  std::uint32_t start_round = 1;
  if (!ckpt.resume_from.empty()) {
    APPFL_SPAN("ckpt.restore", "ckpt");
    obs::flight_record("ckpt.restore");
    std::optional<CheckpointStore> separate;
    CheckpointStore& resume_store =
        store && ckpt.resume_from == ckpt.dir ? *store
                                              : separate.emplace(ckpt.resume_from);
    const std::optional<RoundCheckpoint> rc =
        load_latest_round_checkpoint(resume_store);
    for (const std::string& diag : resume_store.report().diagnostics) {
      std::fprintf(stderr, "warning: checkpoint recovery: %s\n", diag.c_str());
    }
    APPFL_CHECK_MSG(rc.has_value(), "resume_from='" << ckpt.resume_from
                        << "' holds no loadable checkpoint");
    APPFL_CHECK_MSG(
        rc->seed == config.seed && rc->num_clients == n &&
            rc->param_count == param_count &&
            rc->total_rounds == config.rounds && rc->population == n &&
            rc->participants_per_round == k,
        "checkpoint fingerprint mismatch: checkpoint is (seed="
            << rc->seed << ", population=" << rc->population
            << ", participants=" << rc->participants_per_round << ", params="
            << rc->param_count << ", rounds=" << rc->total_rounds
            << "), this run is (seed=" << config.seed << ", population=" << n
            << ", participants=" << k << ", params=" << param_count
            << ", rounds=" << config.rounds << ")");
    APPFL_CHECK_MSG(rc->server.kind == "population",
                    "checkpoint was written by a '" << rc->server.kind
                        << "' server, not the population engine");
    w = rc->parameters;
    APPFL_CHECK_MSG(w.size() == param_count, "checkpoint parameter size "
                        << w.size() << " != model " << param_count);
    sampler.set_state(rc->sampler_state);
    participation.clear();
    for (const auto& [id, count] : rc->participation) participation[id] = count;
    clock.sync_to(rc->comm.sim_now);
    stats = rc->comm.stats;
    comm::FaultInjector::PersistentState fs;
    fs.stats.drops = stats.drops;
    fs.stats.duplicates = stats.duplicates;
    fs.stats.reorders = stats.reorders;
    fs.stats.corruptions = stats.corruptions;
    fs.stats.delays = stats.delays;
    fs.link_keys = rc->comm.link_keys;
    fs.link_seqs = rc->comm.link_seqs;
    net.restore_fault_state(fs);
    start_round = rc->rounds_completed + 1;
    out.run.resumed_from_round = rc->rounds_completed;
  }

  // Secure aggregation (dp/secure_agg.hpp): the share fan-out rides the same
  // fault-injected network as the updates — slot endpoint → root (endpoint
  // 0), a link distinct from the slot → leaf-leader uplink — and the masked
  // uploads then flow through the ordinary tree pipeline. The root reduce
  // becomes an integer sum + unmask instead of weighted_sum_stream.
  const bool secure = config.secure_agg;
  const std::size_t secagg_threshold =
      secure ? (config.secure_agg_threshold != 0 ? config.secure_agg_threshold
                                                 : k / 2 + 1)
             : 0;
  const std::size_t expected_primal = secure ? 2 * param_count : param_count;

  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t events_processed = 0;

  for (std::uint32_t round = start_round; round <= config.rounds; ++round) {
    obs::ScopedSpan round_span("fl.round", "fl");
    round_span.set_arg("round", round);
    obs::flight_record("round.start",
                       "{\"round\":" + std::to_string(round) + "}");
    const double sim_round_start = clock.now();
    const comm::TrafficStats before = current_stats();

    const std::vector<std::uint32_t> participants =
        sample_k_of_n(sampler, n, k);
    out.participants_by_round.push_back(participants);

    // Broadcast: one canonical message; every slot reads the same bytes, so
    // the engine encodes once for size accounting and hands the message by
    // reference (the uplink direction is the one that really crosses the
    // network — that is where the tree lives).
    comm::Message global;
    global.kind = comm::MessageKind::kGlobalModel;
    global.sender = 0;
    global.round = round;
    global.primal = w;
    global.rho = config.rho;
    const std::size_t down_bytes =
        (is_grpc ? comm::proto_encoded_size(global)
                 : comm::raw_encoded_size(global)) +
        env_overhead;
    stats.messages_down += k;
    stats.bytes_down += static_cast<std::uint64_t>(k) * down_bytes;

    std::priority_queue<Event, std::vector<Event>, EventLater> queue;
    std::uint64_t seq = 0;
    double bcast_done = sim_round_start;
    if (is_grpc) {
      for (std::size_t i = 0; i < k; ++i) {
        rng::Rng jitter(
            rng::derive_seed(config.seed, {kDownJitterStream, round, i}));
        const double at =
            sim_round_start + grpc.transfer_seconds(down_bytes, jitter);
        bcast_done = std::max(bcast_done, at);
        queue.push({at, seq++, EventKind::kArrival,
                    static_cast<std::uint32_t>(i)});
      }
    } else {
      bcast_done = sim_round_start + mpi.broadcast_seconds(k, down_bytes);
      for (std::size_t i = 0; i < k; ++i) {
        queue.push({bcast_done, seq++, EventKind::kArrival,
                    static_cast<std::uint32_t>(i)});
      }
    }

    // Per-round slot-indexed state. Heavy handlers write only their own
    // slot/group entry, so results are independent of pool thread count.
    std::vector<SlotOutcome> slots(k);
    std::vector<std::vector<std::uint8_t>> update_frames(k);  // validated
    std::vector<std::uint32_t> group_arrived(num_groups, 0);
    std::vector<double> group_latest(num_groups, 0.0);
    std::vector<std::uint64_t> group_crc(num_groups, 0);
    std::vector<std::uint64_t> group_discards(num_groups, 0);
    std::size_t slots_outstanding = k;
    std::size_t uplinks_outstanding = 0;
    std::size_t groups_outstanding = 0;
    bool groups_scheduled = false;
    double root_ready = 0.0;
    double round_end = bcast_done;
    std::size_t responders = 0;
    double round_loss = 0.0;
    double gather_s = 0.0;

    // Secure-aggregation round state. Slot-indexed so parallel handlers
    // never share an entry; the sec server and U2 live on the orchestration
    // thread only.
    const std::uint64_t round_seed =
        secure ? rng::derive_seed(config.seed, {rng::stream::kSecureAgg, round})
               : 0;
    std::optional<dp::SecureAggServer> sec_server;
    if (secure) sec_server.emplace(participants, round_seed, secagg_threshold);
    std::vector<std::unique_ptr<dp::SecureAggClient>> sec_clients(
        secure ? k : 0);
    std::vector<comm::Message> pending_updates(secure ? k : 0);
    std::vector<SlotOutcome> share_slots(secure ? k : 0);
    std::size_t shares_outstanding = 0;
    double share_latest = bcast_done;
    bool masked_phase_done = !secure;  // plain mode: no share phase to wait on
    bool root_reduced = false;
    bool round_degraded = false;
    SecaggDegradeReason degrade_reason = SecaggDegradeReason::kNone;
    std::uint64_t round_reconstructions = 0;

    // Group readiness can only be decided once every training executed and
    // every surviving uplink's arrival has been observed — a late gRPC
    // arrival may interleave with another slot's uplink in event order.
    // Secure mode additionally gates on the masked-upload phase: group
    // mailboxes stay empty until the root has announced U2.
    const auto maybe_schedule_groups = [&] {
      if (!masked_phase_done || groups_scheduled || slots_outstanding > 0 ||
          uplinks_outstanding > 0)
        return;
      groups_scheduled = true;
      for (std::size_t g = 0; g < num_groups; ++g) {
        if (group_arrived[g] == 0) continue;
        queue.push({group_latest[g], seq++, EventKind::kGroupReady,
                    static_cast<std::uint32_t>(g)});
        ++groups_outstanding;
      }
    };

    // Secure mode, end of the share phase: every training ran and every
    // surviving share packet's arrival has been observed. The root drains
    // its mailbox to decide U2 and releases the masked uploads (U2 slots
    // only) into the ordinary uplink pipeline. Below threshold the round
    // degrades here — no masked upload is ever sent.
    const auto maybe_start_masked_phase = [&] {
      if (masked_phase_done || slots_outstanding > 0 || shares_outstanding > 0)
        return;
      masked_phase_done = true;
      obs::ScopedSpan span("fl.secagg_share_gather", "fl");
      std::size_t shares_sent = 0;
      for (std::size_t slot = 0; slot < k; ++slot) {
        if (sec_clients[slot]) ++shares_sent;
      }
      std::size_t deposited = 0;
      while (std::optional<comm::Datagram> d = net.try_recv(0)) {
        std::span<const std::uint8_t> body(d->bytes);
        if (faults_on) {
          const auto opened = comm::open_envelope(body);
          if (!opened) {
            ++stats.crc_failures;
            continue;
          }
          body = *opened;
        }
        if (d->from < 1 || d->from > k) {
          ++stats.discards;
          continue;
        }
        const std::size_t slot = d->from - 1;
        try {
          const comm::MessageView v = is_grpc ? comm::decode_proto_view(body)
                                              : comm::decode_raw_view(body);
          if (v.kind != comm::MessageKind::kSecAggShares || v.round != round ||
              v.sender != participants[slot]) {
            ++stats.discards;
            continue;
          }
          if (sec_server->deposit_share_packet(
                  v.sender, dp::unpack_bytes_from_floats(v.primal.to_vector()))) {
            ++deposited;
          } else {
            ++stats.discards;  // duplicate delivery or tampered packet
          }
        } catch (const Error&) {
          ++stats.discards;
        }
      }
      const std::vector<std::uint32_t> u2 = sec_server->share_survivors();
      span.set_arg("u2", u2.size());
      // A complete share phase ends with the last arrival; a lossy one runs
      // into the server's gather deadline before U2 is frozen.
      const double u2_time =
          deposited == shares_sent
              ? share_latest
              : std::max(share_latest, bcast_done + config.gather_timeout_s);
      round_end = std::max(round_end, u2_time);
      if (u2.size() < secagg_threshold) {
        // Too few share packets survived: nobody uploads this round.
        round_degraded = true;
        degrade_reason = SecaggDegradeReason::kShareWaveTimeout;
        maybe_schedule_groups();
        return;
      }
      std::vector<char> slot_in_u2(k, 0);
      for (std::uint32_t id : u2) {
        const auto it =
            std::lower_bound(participants.begin(), participants.end(), id);
        slot_in_u2[static_cast<std::size_t>(it - participants.begin())] = 1;
      }
      if (track_health) {
        // Trained slots outside U2: their share packet was lost, and their
        // update is discarded with it.
        for (std::size_t slot = 0; slot < k; ++slot) {
          if (sec_clients[slot] && !slot_in_u2[slot]) {
            obs_session.health().add_share_discards(participants[slot], 1);
          }
        }
      }
      pool.parallel_for(k, [&](std::size_t slot) {
        if (!slot_in_u2[slot] || !sec_clients[slot]) return;
        const comm::Message& update = pending_updates[slot];
        const double weight =
            config.weighted_aggregation
                ? static_cast<double>(update.sample_count)
                : 1.0;
        comm::Message masked;
        masked.kind = comm::MessageKind::kLocalUpdate;
        masked.sender = update.sender;
        masked.receiver = 0;
        masked.round = round;
        masked.sample_count = update.sample_count;
        masked.loss = update.loss;
        masked.primal = dp::pack_words_as_floats(sec_clients[slot]->mask(
            update.primal, u2, dp::kDefaultScale, weight));
        std::vector<std::uint8_t> bytes =
            is_grpc ? comm::encode_proto(masked) : comm::encode_raw(masked);
        double t_up = u2_time;
        if (is_grpc) {
          rng::Rng jitter(
              rng::derive_seed(config.seed, {kUpJitterStream, round, slot}));
          t_up += grpc.transfer_seconds(bytes.size() + env_overhead, jitter);
        }
        if (faults_on) bytes = comm::seal_envelope(std::move(bytes));
        SlotOutcome& so = slots[slot];
        so.up_bytes = bytes.size();
        const comm::InProcNetwork::SendOutcome outcome =
            net.send(static_cast<std::uint32_t>(1 + slot),
                     leader_endpoint(tree.group_of(slot)), std::move(bytes),
                     t_up);
        so.delivered = outcome.delivered;
        so.deliver_at = outcome.deliver_at;
        if (track_health && !outcome.delivered) {
          obs_session.health().add_dropped_frames(masked.sender, 1);
        }
      });
      for (std::size_t slot = 0; slot < k; ++slot) {
        if (!slot_in_u2[slot] || !sec_clients[slot]) continue;
        const SlotOutcome& so = slots[slot];
        stats.messages_up += 1;
        stats.bytes_up += so.up_bytes;
        stats.bytes_up_precodec += so.up_bytes;
        if (so.delivered) {
          queue.push({so.deliver_at, seq++, EventKind::kUplink,
                      static_cast<std::uint32_t>(slot)});
          ++uplinks_outstanding;
        }
      }
      maybe_schedule_groups();
    };

    while (!queue.empty()) {
      // Wave batching: consecutive same-kind events at the queue front run
      // as one pool dispatch. An event of another kind bounds the wave, so
      // cross-kind causality (uplink bookkeeping between arrival waves)
      // still executes in event order.
      const EventKind kind = queue.top().kind;
      std::vector<Event> wave;
      while (!queue.empty() && queue.top().kind == kind) {
        wave.push_back(queue.top());
        queue.pop();
      }
      events_processed += wave.size();

      switch (kind) {
        case EventKind::kArrival: {
          obs::ScopedSpan phase("fl.local_update_phase", "fl");
          phase.set_arg("participants", wave.size());
          // Pool workers have empty span stacks; hand the phase id across.
          const std::uint64_t phase_id = phase.id();
          pool.parallel_for(wave.size(), [&](std::size_t wi) {
            const std::uint32_t slot = wave[wi].arg;
            const std::uint32_t id = participants[slot];
            obs::ScopedSpan client_span("fl.client_update", "fl");
            client_span.set_parent(phase_id);
            client_span.set_arg("client", id);
            // The transient client: dataset and model replica exist only
            // for this participation.
            const std::unique_ptr<BaseClient> client = build_client(
                id, config, *prototype, population.materialize(id));
            comm::Message update = client->handle_global(global);
            update.receiver = 0;
            // Trace context rides the uplink frame (nonzero only at
            // obs=trace, so obs-off bytes are unchanged).
            update.trace_span = client_span.id();
            const double train_s = device.seconds_for(
                flops_per_sample_step *
                static_cast<double>(client->num_samples()) *
                static_cast<double>(config.local_steps));
            // The engine's client latency is its simulated training cost —
            // the quantity the straggler score should rank slots by.
            if (track_health) obs_session.health().observe_latency(id, train_s);
            const double t_send = wave[wi].t + train_s;
            if (secure) {
              // Hold the update; ship the Shamir share packet to the root
              // first. Losing it on this link keeps the slot out of U2.
              sec_clients[slot] = std::make_unique<dp::SecureAggClient>(
                  id, participants, round_seed, secagg_threshold);
              pending_updates[slot] = std::move(update);
              comm::Message shares;
              shares.kind = comm::MessageKind::kSecAggShares;
              shares.sender = id;
              shares.receiver = 0;
              shares.round = round;
              shares.primal = dp::pack_bytes_as_floats(
                  sec_clients[slot]->share_packet());
              std::vector<std::uint8_t> bytes = is_grpc
                                                    ? comm::encode_proto(shares)
                                                    : comm::encode_raw(shares);
              double t_up = t_send;
              if (is_grpc) {
                rng::Rng jitter(rng::derive_seed(
                    config.seed, {kShareJitterStream, round, slot}));
                t_up = t_send + grpc.transfer_seconds(
                                    bytes.size() + env_overhead, jitter);
              }
              if (faults_on) bytes = comm::seal_envelope(std::move(bytes));
              SlotOutcome& so = share_slots[slot];
              so.up_bytes = bytes.size();
              const comm::InProcNetwork::SendOutcome outcome = net.send(
                  static_cast<std::uint32_t>(1 + slot), 0, std::move(bytes),
                  t_up);
              so.delivered = outcome.delivered;
              so.deliver_at = outcome.deliver_at;
              if (track_health && !(outcome.delivered && !outcome.corrupted)) {
                obs_session.health().add_dropped_frames(id, 1);
              }
              client->on_uplink_result(outcome.delivered &&
                                       !outcome.corrupted);
              return;
            }
            double t_up = t_send;
            std::vector<std::uint8_t> bytes =
                is_grpc ? comm::encode_proto(update) : comm::encode_raw(update);
            if (is_grpc) {
              rng::Rng jitter(rng::derive_seed(
                  config.seed, {kUpJitterStream, round, slot}));
              t_up = t_send +
                     grpc.transfer_seconds(bytes.size() + env_overhead, jitter);
            }
            if (faults_on) bytes = comm::seal_envelope(std::move(bytes));
            SlotOutcome& so = slots[slot];
            so.up_bytes = bytes.size();
            const comm::InProcNetwork::SendOutcome outcome =
                net.send(static_cast<std::uint32_t>(1 + slot),
                         leader_endpoint(tree.group_of(slot)),
                         std::move(bytes), t_up);
            so.delivered = outcome.delivered;
            so.deliver_at = outcome.deliver_at;
            if (track_health && !(outcome.delivered && !outcome.corrupted)) {
              obs_session.health().add_dropped_frames(id, 1);
            }
            client->on_uplink_result(outcome.delivered && !outcome.corrupted);
          });
          // Fold on the orchestration thread, in wave (event) order.
          for (const Event& e : wave) {
            const SlotOutcome& so =
                secure ? share_slots[e.arg] : slots[e.arg];
            --slots_outstanding;
            stats.messages_up += 1;
            stats.bytes_up += so.up_bytes;
            stats.bytes_up_precodec += so.up_bytes;  // codec is always off
            ++participation[participants[e.arg]];    // trained ⇒ ε spent
            if (so.delivered) {
              queue.push({so.deliver_at, seq++,
                          secure ? EventKind::kShareArrive : EventKind::kUplink,
                          e.arg});
              secure ? ++shares_outstanding : ++uplinks_outstanding;
            }
          }
          if (secure) maybe_start_masked_phase();
          maybe_schedule_groups();
          break;
        }

        case EventKind::kShareArrive: {
          for (const Event& e : wave) {
            share_latest = std::max(share_latest, e.t);
            --shares_outstanding;
            (void)e;
          }
          maybe_start_masked_phase();
          break;
        }

        case EventKind::kUplink: {
          for (const Event& e : wave) {
            const std::size_t g = tree.group_of(e.arg);
            ++group_arrived[g];
            group_latest[g] = std::max(group_latest[g], e.t);
            --uplinks_outstanding;
          }
          maybe_schedule_groups();
          break;
        }

        case EventKind::kGroupReady: {
          obs::ScopedSpan span("fl.tree.leader", "fl");
          span.set_arg("leaders", wave.size());
          // Leaf leaders drain and validate their children's mailboxes in
          // parallel; payload buffers move into slot-indexed storage and
          // are NOT summed here (see agg_tree.hpp for the bit-identity
          // argument).
          pool.parallel_for(wave.size(), [&](std::size_t wi) {
            const std::uint32_t g = wave[wi].arg;
            const auto [lo, hi] = tree.leaf_group(g);
            while (std::optional<comm::Datagram> d =
                       net.try_recv(leader_endpoint(g))) {
              std::span<const std::uint8_t> body(d->bytes);
              if (faults_on) {
                const auto opened = comm::open_envelope(body);
                if (!opened) {
                  ++group_crc[g];
                  continue;
                }
                body = *opened;
              }
              if (d->from < 1 + lo || d->from >= 1 + hi) {
                ++group_discards[g];
                continue;
              }
              const std::size_t slot = d->from - 1;
              if (!update_frames[slot].empty()) {  // duplicate delivery
                ++group_discards[g];
                continue;
              }
              try {
                const comm::MessageView v = is_grpc
                                                ? comm::decode_proto_view(body)
                                                : comm::decode_raw_view(body);
                if (v.kind != comm::MessageKind::kLocalUpdate ||
                    v.round != round || v.sender != participants[slot] ||
                    v.primal.size() != expected_primal) {
                  ++group_discards[g];
                  continue;
                }
              } catch (const Error&) {
                ++group_discards[g];
                continue;
              }
              update_frames[slot] = std::move(d->bytes);
            }
          });
          for (const Event& e : wave) {
            --groups_outstanding;
            root_ready = std::max(root_ready, e.t);
          }
          if (groups_scheduled && groups_outstanding == 0) {
            queue.push({root_ready, seq++, EventKind::kRootReduce, 0});
          }
          break;
        }

        case EventKind::kRootReduce: {
          // The numeric reduce: slot-ordered terms, one weighted_sum_stream
          // — the tree contributed routing and cost, never float order.
          std::vector<comm::MessageView> views;
          std::vector<std::size_t> resp_slots;
          views.reserve(k);
          resp_slots.reserve(k);
          std::size_t max_up_bytes = 0;
          for (std::size_t slot = 0; slot < k; ++slot) {
            if (update_frames[slot].empty()) continue;
            std::span<const std::uint8_t> body(update_frames[slot]);
            if (faults_on) body = *comm::open_envelope(body);
            views.push_back(is_grpc ? comm::decode_proto_view(body)
                                    : comm::decode_raw_view(body));
            resp_slots.push_back(slot);
            max_up_bytes = std::max(max_up_bytes, slots[slot].up_bytes);
          }
          responders = views.size();
          double total_samples = 0.0;
          double loss_acc = 0.0;
          std::uint64_t samples = 0;
          for (const comm::MessageView& v : views) {
            total_samples += static_cast<double>(v.sample_count);
            loss_acc += v.loss * static_cast<double>(v.sample_count);
            samples += v.sample_count;
          }
          round_loss =
              samples > 0 ? loss_acc / static_cast<double>(samples) : 0.0;
          root_reduced = true;
          if (secure) {
            // Integer reduce + unmask: U3 is the responder set, in slot
            // (ascending sender) order. The aggregation weights were folded
            // into the quantization scale client-side, so one division by
            // scale · Σweights recovers the weighted survivor mean exactly.
            APPFL_SPAN("fl.secagg_unmask", "fl");
            std::vector<std::uint32_t> u3;
            std::vector<std::vector<std::uint64_t>> uploads;
            u3.reserve(views.size());
            uploads.reserve(views.size());
            double total_weight = 0.0;
            for (const comm::MessageView& v : views) {
              u3.push_back(v.sender);
              std::vector<std::uint64_t> words(v.primal.size() / 2);
              std::memcpy(words.data(), v.primal.bytes(),
                          v.primal.size() * 4);
              uploads.push_back(std::move(words));
              total_weight += config.weighted_aggregation
                                  ? static_cast<double>(v.sample_count)
                                  : 1.0;
            }
            const dp::SecureAggServer::Recovery recovery =
                sec_server->unmask(u3, uploads);
            if (recovery.ok) {
              round_reconstructions = recovery.pair_keys_reconstructed;
              w = dp::dequantize_sum(recovery.sum,
                                     dp::kDefaultScale * total_weight);
            } else {
              round_degraded = true;  // |U3| < t: model unchanged
              degrade_reason = SecaggDegradeReason::kBelowThreshold;
            }
          } else if (!views.empty()) {
            std::vector<StreamTerm> terms;
            terms.reserve(views.size());
            for (const comm::MessageView& v : views) {
              const float weight =
                  config.weighted_aggregation && total_samples > 0.0
                      ? static_cast<float>(
                            static_cast<double>(v.sample_count) /
                            total_samples)
                      : 1.0F / static_cast<float>(views.size());
              terms.push_back({comm::WirePayload::f32_bytes(v.primal.bytes(),
                                                            v.primal.size()),
                               weight});
            }
            APPFL_SPAN("fl.aggregate", "fl");
            weighted_sum_stream(terms, std::span<float>(w));
          }
          // Hierarchical sim cost: levels sequential, nodes within a level
          // concurrent, one span per level.
          double t_level = wave.front().t;
          std::size_t level = 0;
          for (const std::size_t fan_in : tree.level_fan_ins()) {
            obs::ScopedSpan level_span("fl.tree.level", "fl");
            level_span.set_arg("level", level);
            level_span.set_arg("fan_in", fan_in);
            const double dur = mpi.gather_seconds(fan_in, max_up_bytes);
            level_span.set_sim(t_level, dur);
            t_level += dur;
            ++level;
          }
          gather_s = t_level - wave.front().t;
          round_end = std::max(round_end, t_level);
          break;
        }
      }
    }
    for (std::size_t g = 0; g < num_groups; ++g) {
      stats.crc_failures += group_crc[g];
      stats.discards += group_discards[g];
    }
    // Secure mode with every masked upload lost: the root reduce never
    // fired, so the below-threshold outcome is decided here.
    if (secure && !root_reduced && !round_degraded) {
      round_degraded = true;
      degrade_reason = SecaggDegradeReason::kRootUnreachable;
    }
    if (secure && obs::metrics_on()) {
      static obs::Counter& reconstructions =
          obs::MetricsRegistry::global().counter("secure_agg.reconstructions");
      static obs::Counter& degraded =
          obs::MetricsRegistry::global().counter("secure_agg.rounds_degraded");
      reconstructions.add(round_reconstructions);
      if (round_degraded) degraded.add(1);
    }
    if (round_degraded) {
      obs::flight_record("secagg.degraded",
                         "{\"round\":" + std::to_string(round) +
                             ",\"reason\":\"" + to_string(degrade_reason) +
                             "\"}");
      obs::FlightRecorder::global().dump("secagg-degraded-" +
                                         to_string(degrade_reason));
    }
    if (track_health) {
      for (std::size_t slot = 0; slot < k; ++slot) {
        const std::uint32_t id = participants[slot];
        // A slot whose update never reached the root went missing this
        // round, whatever the hop that lost it.
        if (update_frames[slot].empty()) obs_session.health().note_dropout(id);
        const auto it = participation.find(id);
        if (it != participation.end()) {
          obs_session.health().set_dp_epsilon(
              id, static_cast<double>(it->second) * round_epsilon);
        }
      }
    }
    clock.sync_to(round_end);
    const comm::TrafficStats after = current_stats();
    round_span.set_sim(sim_round_start, clock.now() - sim_round_start);

    RoundMetrics metrics;
    metrics.round = round;
    metrics.rho = config.rho;
    metrics.participants = k;
    metrics.responders = responders;
    metrics.train_loss = round_loss;
    metrics.broadcast_s = bcast_done - sim_round_start;
    metrics.gather_s = gather_s;
    metrics.drops = after.drops - before.drops;
    metrics.crc_failures = after.crc_failures - before.crc_failures;
    metrics.discards = after.discards - before.discards;
    metrics.secagg_reconstructions = round_reconstructions;
    metrics.secagg_degraded = round_degraded;
    metrics.secagg_degrade_reason = degrade_reason;
    out.run.secagg_reconstructions += round_reconstructions;
    if (round_degraded) ++out.run.secagg_rounds_degraded;
    if (config.validate_every_round || round == config.rounds) {
      APPFL_SPAN("fl.validate", "fl");
      metrics.test_accuracy =
          evaluate(*prototype, w, test_set, config.validate_batch).accuracy;
    } else {
      metrics.test_accuracy = -1.0;
    }
    out.run.rounds.push_back(metrics);
    comm::RoundCommRecord rec;
    rec.round = round;
    rec.broadcast_s = metrics.broadcast_s;
    rec.gather_s = metrics.gather_s;
    out.run.comm_rounds.push_back(std::move(rec));
    obs_session.write_round(metrics);
    obs::flight_record("round.done",
                       "{\"round\":" + std::to_string(round) +
                           ",\"responders\":" + std::to_string(responders) +
                           "}");

    const bool halt_here =
        config.halt_after_round > 0 && round == config.halt_after_round;
    if (store &&
        (round % ckpt.every == 0 || round == config.rounds || halt_here)) {
      APPFL_SPAN("ckpt.save", "ckpt");
      obs::flight_record("ckpt.save",
                         "{\"round\":" + std::to_string(round) + "}");
      RoundCheckpoint rc;
      rc.algorithm = to_string(config.algorithm);
      rc.seed = config.seed;
      rc.num_clients = static_cast<std::uint32_t>(n);
      rc.param_count = param_count;
      rc.total_rounds = static_cast<std::uint32_t>(config.rounds);
      rc.rounds_completed = round;
      rc.parameters = w;
      rc.server.kind = "population";
      rc.sampler_state = sampler.state();
      rc.population = n;
      rc.participants_per_round = static_cast<std::uint32_t>(k);
      rc.participation.assign(participation.begin(), participation.end());
      std::sort(rc.participation.begin(), rc.participation.end());
      rc.comm.sim_now = clock.now();
      rc.comm.stats = current_stats();
      const comm::FaultInjector::PersistentState fs =
          net.fault_persistent_state();
      rc.comm.link_keys = fs.link_keys;
      rc.comm.link_seqs = fs.link_seqs;
      save_round_checkpoint(*store, rc);
      ++out.run.checkpoints_written;
    }
    if (halt_here) break;
  }

  const auto wall_end = std::chrono::steady_clock::now();
  out.engine.events_processed = events_processed;
  out.engine.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  out.engine.events_per_second =
      out.engine.wall_seconds > 0.0
          ? static_cast<double>(events_processed) / out.engine.wall_seconds
          : 0.0;
  out.engine.peak_rss_bytes = peak_rss_bytes();
  out.engine.mailbox_overflows =
      stats.mailbox_overflows + net.mailbox_overflows();

  {
    APPFL_SPAN("fl.validate", "fl");
    out.run.final_accuracy =
        evaluate(*prototype, w, test_set, config.validate_batch).accuracy;
  }
  out.run.final_parameters = std::move(w);
  std::uint32_t max_count = 0;
  for (const auto& [id, count] : participation) {
    max_count = std::max(max_count, count);
  }
  out.run.dp_epsilon_spent = static_cast<double>(max_count) * round_epsilon;
  out.run.traffic = current_stats();
  out.run.sim_comm_seconds = clock.now();
  obs_session.finish(out.run);
  return out;
}

}  // namespace appfl::core
