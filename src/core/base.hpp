// BaseServer / BaseClient — the plug-in API of the framework (paper §II-A1):
// "Additional user-defined FL algorithms can be implemented by inheriting our
// class BaseServer and implementing the virtual function update()"; likewise
// for BaseClient. FedAvg/ICEADMM/IIADMM are implemented against exactly this
// interface, and examples/custom_algorithm.cpp shows a user-defined one.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/message.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "data/dataloader.hpp"
#include "data/dataset.hpp"
#include "dp/mechanism.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "rng/rng.hpp"

namespace appfl::core {

/// Client-side half of an FL algorithm. Owns a model replica and the
/// client's private dataset; produces one local update per round.
class BaseClient {
 public:
  /// `id` is the 1-based endpoint id; `prototype` provides the architecture
  /// and initial weights (cloned, never shared afterwards).
  BaseClient(std::uint32_t id, const RunConfig& config,
             const nn::Module& prototype, data::TensorDataset dataset);
  virtual ~BaseClient() = default;

  BaseClient(const BaseClient&) = delete;
  BaseClient& operator=(const BaseClient&) = delete;

  /// The algorithm step: consume the broadcast global parameters, train
  /// locally, and return the (possibly DP-perturbed) update message.
  virtual comm::Message update(std::span<const float> global,
                               std::uint32_t round) = 0;

  /// Entry point used by the runner: unpacks protocol metadata carried by
  /// the broadcast (e.g. the adaptive ρ^t in force this round) and then
  /// delegates to update().
  comm::Message handle_global(const comm::Message& global);

  /// Transport feedback, called by the runner after the uplink send with
  /// delivered = false when this round's update never reached the server
  /// (dropped after all retransmits, or landed past the gather deadline).
  /// Algorithms whose server keeps a bit-identical state replica override
  /// this to roll back speculative state — IIADMM reverts its client-side
  /// dual so both replicas stay in the last mutually-observed round.
  /// Default: no-op.
  virtual void on_uplink_result(bool /*delivered*/) {}

  std::uint32_t id() const { return id_; }
  std::size_t num_samples() const { return dataset_.size(); }
  std::size_t num_parameters() { return model_->num_parameters(); }

  /// Resumable snapshot at a round boundary: loader epoch counter plus the
  /// algorithm's persistent vectors (export_algo_state). dp_spent is owned
  /// by the runner's accountant and left at 0 here.
  ClientStateCkpt export_state() const;

  /// Restores a snapshot taken by export_state on an identically-constructed
  /// client (same id/config/data/seed). The data loader is fast-forwarded by
  /// replaying its epoch advances, which reproduces both its RNG state and
  /// its batch order exactly. Throws appfl::Error on an id mismatch or a
  /// snapshot older than this client's current position.
  void import_state(const ClientStateCkpt& s);

  /// Mean training loss observed during the most recent update().
  double last_loss() const { return last_loss_; }

 protected:
  /// Resets the per-round state (loss average, DP step counter). Algorithm
  /// implementations call this at the top of update().
  void begin_round(std::uint32_t round);

  /// Sets model parameters to `z`, runs forward/backward on `batch`, and
  /// returns the flat gradient (clipped to config.clip when enabled). In
  /// gradient-perturbation mode the clipped gradient is additionally
  /// noised with this step's share of the round's ε budget. Adds the
  /// batch's mean loss into the running last_loss_ average.
  std::vector<float> batch_gradient(std::span<const float> z,
                                    const data::Batch& batch);

  /// Output perturbation (§III-B): applies the configured mechanism to
  /// `values`. No-op when ε = ∞ or in gradient-perturbation mode (the noise
  /// was already injected per step). The noise stream is deterministic in
  /// (seed, client, round).
  void apply_dp(std::vector<float>& values, std::uint32_t round);

  /// Local solves per round for ε-splitting in gradient mode. Default:
  /// local_steps × batches-per-epoch; full-batch algorithms override.
  virtual std::size_t dp_steps_per_round() const;

  /// Algorithm-specific halves of export_state/import_state: fill/restore
  /// the persistent primal/dual vectors. Default: stateless client (FedAvg,
  /// FedProx — their momentum does not persist across rounds).
  virtual void export_algo_state(ClientStateCkpt& /*out*/) const {}
  virtual void import_algo_state(const ClientStateCkpt& /*s*/) {}

  const RunConfig& config() const { return config_; }
  nn::Module& model() { return *model_; }
  data::DataLoader& loader() { return loader_; }
  const data::TensorDataset& dataset() const { return dataset_; }

  /// Penalty ρ in force for the current round: the value broadcast by the
  /// server when adaptive ρ is on, the configured constant otherwise.
  float round_rho() const { return round_rho_; }

 private:
  void reset_loss_average();

  std::uint32_t id_;
  RunConfig config_;
  data::TensorDataset dataset_;
  std::unique_ptr<nn::Module> model_;
  data::DataLoader loader_;
  nn::CrossEntropyLoss criterion_;
  std::unique_ptr<dp::Mechanism> mechanism_;
  float round_rho_;
  double last_loss_ = 0.0;
  std::size_t loss_batches_ = 0;
  std::uint32_t current_round_ = 0;
  std::size_t dp_step_ = 0;  // per-round gradient-noise step counter
};

/// Server-side half. Maintains the global model and per-client state, and
/// validates against the server-held test set (§II-A5).
class BaseServer {
 public:
  BaseServer(const RunConfig& config, std::unique_ptr<nn::Module> model,
             data::TensorDataset test_set, std::size_t num_clients);
  virtual ~BaseServer() = default;

  BaseServer(const BaseServer&) = delete;
  BaseServer& operator=(const BaseServer&) = delete;

  /// Computes w^{t+1} from the server's current state (eq. (3a) for the
  /// ADMM family; the aggregation rule for FedAvg).
  virtual std::vector<float> compute_global(std::uint32_t round) = 0;

  /// Absorbs the gathered local updates into server state (z_p, λ_p, ...).
  /// `global` is the w^{t+1} that was broadcast this round.
  virtual void update(const std::vector<comm::Message>& locals,
                      std::span<const float> global, std::uint32_t round) = 0;

  /// Fused decode→aggregate entry point: consume a GatherBatch whose float
  /// payloads are still wire-resident, updating server state AND the next
  /// aggregate in one pass over the bytes. Returns true when the batch was
  /// absorbed (the runner then skips update()); false means this server (or
  /// this configuration — e.g. adaptive ρ needs the residual norms) has no
  /// fused path, and the runner falls back to take_messages() + update(),
  /// which is always bit-identical. The built-in servers override this.
  virtual bool absorb(const comm::GatherBatch& /*batch*/,
                      std::span<const float> /*global*/,
                      std::uint32_t /*round*/) {
    return false;
  }

  /// Accuracy of parameters `w` on the server-held test set.
  double validate(std::span<const float> w);

  /// Penalty ρ^t the server will announce with the next broadcast. The
  /// base implementation returns the configured constant; adaptive servers
  /// override it.
  virtual float current_rho() const;

  std::size_t num_clients() const { return num_clients_; }
  std::size_t num_parameters() { return model_->num_parameters(); }

  /// Tag naming this server's resumable-state schema ("fedavg", "iceadmm",
  /// "iiadmm", "fedopt"). Cross-checked on import so a checkpoint never
  /// restores into the wrong algorithm. Custom servers that do not override
  /// the state hooks keep the default and cannot be resumed.
  virtual std::string checkpoint_kind() const { return "custom"; }

  /// Resumable snapshot of server-side algorithm state at a round boundary.
  /// The default exports only the kind tag (stateless server).
  virtual ServerStateCkpt export_state() const;

  /// Restores a snapshot from export_state. Throws appfl::Error when the
  /// snapshot's kind does not match checkpoint_kind().
  virtual void import_state(const ServerStateCkpt& s);

  /// Initial flat parameters (the shared starting point z¹).
  std::vector<float> initial_parameters() { return model_->flat_parameters(); }

 protected:
  const RunConfig& config() const { return config_; }
  nn::Module& model() { return *model_; }

 private:
  RunConfig config_;
  std::unique_ptr<nn::Module> model_;
  data::TensorDataset test_set_;
  std::size_t num_clients_;
};

}  // namespace appfl::core
