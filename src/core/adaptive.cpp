#include "core/adaptive.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace appfl::core {

float adapt_rho(float rho, double primal_residual, double dual_residual,
                const RunConfig& config) {
  APPFL_CHECK(rho > 0.0F);
  APPFL_CHECK(primal_residual >= 0.0 && dual_residual >= 0.0);
  float next = rho;
  if (primal_residual > config.adapt_mu * dual_residual) {
    next = rho * config.adapt_tau;
  } else if (dual_residual > config.adapt_mu * primal_residual) {
    next = rho / config.adapt_tau;
  }
  return std::clamp(next, config.rho_min, config.rho_max);
}

}  // namespace appfl::core
