// Decentralized PPFL — neighbor-only communication without a central server
// (paper future work 1: "decentralized privacy-preserving algorithms that
// allow the neighboring communication without the central server").
//
// Implements decentralized FedAvg / gossip SGD over an undirected topology:
// every round each node (i) runs its local solver from its own iterate,
// (ii) applies its DP mechanism to the result, and (iii) replaces its
// iterate with the Metropolis-weighted average of its neighbors' perturbed
// iterates (and its own). With a connected topology the mixing matrix is
// doubly stochastic, so node iterates contract toward consensus while local
// training pulls the consensus toward the joint optimum.
#pragma once

#include <cstdint>
#include <vector>

#include "core/base.hpp"
#include "core/config.hpp"
#include "data/synth.hpp"

namespace appfl::core {

/// Undirected communication graph over P nodes.
struct Topology {
  /// adjacency[p] = sorted neighbor list of node p (no self-loops).
  std::vector<std::vector<std::size_t>> adjacency;

  std::size_t num_nodes() const { return adjacency.size(); }

  /// Total undirected edges.
  std::size_t num_edges() const;

  /// True if the graph is connected (gossip requires it to reach consensus).
  bool connected() const;

  /// Throws appfl::Error on asymmetric or self-looping adjacency.
  void validate() const;
};

/// Ring: node p ↔ p±1 (mod P).
Topology ring_topology(std::size_t num_nodes);

/// Complete graph: everyone ↔ everyone.
Topology complete_topology(std::size_t num_nodes);

/// Random connected graph: a ring plus extra random edges until the mean
/// degree reaches `target_degree`. Deterministic in `seed`.
Topology random_topology(std::size_t num_nodes, double target_degree,
                         std::uint64_t seed);

/// Metropolis–Hastings mixing weights for a topology: symmetric, doubly
/// stochastic, W[p][q] > 0 iff q ∈ N(p) ∪ {p}. Returned as a dense matrix.
std::vector<std::vector<double>> metropolis_weights(const Topology& topology);

struct DecentralizedResult {
  /// Accuracy of the network-average model after each round.
  std::vector<double> round_accuracy;
  /// Mean pairwise disagreement Σ‖x_p − x̄‖/P after each round.
  std::vector<double> round_disagreement;
  double final_accuracy = 0.0;
  /// Bytes exchanged over all edges, both directions, all rounds.
  std::uint64_t total_bytes = 0;
};

/// Runs decentralized FedAvg on `split` over `topology` (one node per
/// client shard; topology.num_nodes() must equal split.clients.size()).
DecentralizedResult run_decentralized(const RunConfig& config,
                                      const data::FederatedSplit& split,
                                      const Topology& topology);

}  // namespace appfl::core
