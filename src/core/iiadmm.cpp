#include "core/iiadmm.hpp"

#include <cmath>

#include "core/adaptive.hpp"
#include "core/aggregate.hpp"
#include "obs/trace.hpp"
#include "tensor/accumulate.hpp"
#include "util/check.hpp"

namespace appfl::core {

IIAdmmClient::IIAdmmClient(std::uint32_t id, const RunConfig& config,
                           const nn::Module& prototype,
                           data::TensorDataset dataset)
    : BaseClient(id, config, prototype, std::move(dataset)) {
  lambda_.assign(model().num_parameters(), 0.0F);  // λ¹ = 0
}

comm::Message IIAdmmClient::update(std::span<const float> global,
                                   std::uint32_t round) {
  begin_round(round);
  const std::size_t m = lambda_.size();
  APPFL_CHECK(global.size() == m);
  const float rho = round_rho();  // the ρ^t announced with this broadcast
  const float zeta = config().zeta;
  const float inv = 1.0F / (rho + zeta);

  // Line 11: z^{1,1} ← w^{t+1}.
  std::vector<float> z(global.begin(), global.end());

  // Lines 13–19: L sweeps over the mini-batches (lines 12's split is the
  // DataLoader's shuffled batching).
  for (std::size_t step = 0; step < config().local_steps; ++step) {
    for (std::size_t b = 0; b < loader().num_batches(); ++b) {
      const data::Batch batch = loader().batch(b);
      const std::vector<float> g = batch_gradient(z, batch);
      // Line 16: z ← z − (g − λ − ρ(w − z)) / (ρ + ζ).
      for (std::size_t i = 0; i < m; ++i) {
        z[i] -= (g[i] - lambda_[i] - rho * (global[i] - z[i])) * inv;
      }
    }
    loader().next_epoch();
  }

  // Line 20's output, perturbed (§III-B) BEFORE the dual update so server
  // and client duals remain identical under DP.
  apply_dp(z, round);

  // Line 21: client-side dual update. The pre-update dual is kept so a
  // lost uplink (on_uplink_result(false)) can rewind this speculation.
  lambda_prev_ = lambda_;
  for (std::size_t i = 0; i < m; ++i) {
    lambda_[i] += rho * (global[i] - z[i]);
  }

  comm::Message msg;
  msg.kind = comm::MessageKind::kLocalUpdate;
  msg.sender = id();
  msg.receiver = 0;
  msg.round = round;
  msg.primal = std::move(z);  // primal only — no dual on the wire
  msg.sample_count = num_samples();
  msg.loss = last_loss();
  return msg;
}

void IIAdmmClient::on_uplink_result(bool delivered) {
  if (!delivered && !lambda_prev_.empty()) lambda_ = lambda_prev_;
}

IIAdmmServer::IIAdmmServer(const RunConfig& config,
                           std::unique_ptr<nn::Module> model,
                           data::TensorDataset test_set,
                           std::size_t num_clients)
    : BaseServer(config, std::move(model), std::move(test_set), num_clients),
      rho_(config.rho) {
  primal_.assign(num_clients, BaseServer::initial_parameters());
  dual_.assign(num_clients, std::vector<float>(primal_.front().size(), 0.0F));
}

std::vector<float> IIAdmmServer::compute_global(std::uint32_t) {
  if (fused_valid_) return fused_w_;
  // Line 3: w^{t+1} = (1/P) Σ (z_p^t − λ_p^t / ρ).
  const std::size_t m = primal_.front().size();
  const float inv_p = 1.0F / static_cast<float>(primal_.size());
  const float inv_rho = 1.0F / rho_;
  std::vector<float> w(m, 0.0F);
  std::vector<ConsensusTerm> terms(primal_.size());
  for (std::size_t p = 0; p < primal_.size(); ++p) {
    terms[p] = {primal_[p], dual_[p]};
  }
  consensus_sum(terms, inv_p, inv_rho, w);
  return w;
}

bool IIAdmmServer::absorb(const comm::GatherBatch& batch,
                          std::span<const float> global, std::uint32_t round) {
  // Adaptive ρ consumes the residual norms update() computes on the side;
  // the fused loop skips them, so it only runs with a constant ρ.
  if (config().adaptive_rho) return false;
  const std::span<const comm::GatherUpdate> updates = batch.updates();
  if (updates.empty()) return true;  // straggler policy: state untouched
  if (updates.size() > num_clients()) return false;
  const std::size_t n = primal_.front().size();
  if (global.size() != n) return false;
  for (const auto& u : updates) {
    if (u.round != round || u.sender < 1 || u.sender > num_clients() ||
        !u.dual.empty() || u.primal.count != n) {
      return false;  // unfused path reproduces the historical diagnostics
    }
  }
  for (std::size_t p = 0; p < primal_.size(); ++p) {
    if (primal_[p].size() != n || dual_[p].size() != n) return false;
  }
  obs::ScopedSpan span("fl.fused_absorb", "fl");
  span.set_arg("round", round);
  const float rho = rho_;
  fused_w_.assign(n, 0.0F);
  const float inv_p = 1.0F / static_cast<float>(primal_.size());
  const float inv_rho = 1.0F / rho_;
  for_each_chunk(n, primal_.size(), [&](std::size_t lo, std::size_t hi) {
    for (const auto& u : updates) {
      const std::size_t p = u.sender - 1;
      // Store the fresh z_p chunk, then replay line 6's dual update from it
      // — identical arithmetic, same float inputs as the unfused loop.
      float* z = primal_[p].data() + lo;
      materialize_chunk(u.primal, lo, hi, z);
      tensor::dual_step(rho, global.data() + lo, z, dual_[p].data() + lo,
                        hi - lo);
    }
    // Next round's consensus over ALL P replicas, in compute_global's
    // term order.
    std::size_t p = 0;
    for (; p + 2 <= primal_.size(); p += 2) {
      tensor::consensus2_f32_bytes(
          inv_p, inv_rho,
          reinterpret_cast<const std::uint8_t*>(primal_[p].data() + lo),
          reinterpret_cast<const std::uint8_t*>(dual_[p].data() + lo),
          reinterpret_cast<const std::uint8_t*>(primal_[p + 1].data() + lo),
          reinterpret_cast<const std::uint8_t*>(dual_[p + 1].data() + lo),
          fused_w_.data() + lo, hi - lo);
    }
    for (; p < primal_.size(); ++p) {
      tensor::consensus_f32_bytes(
          inv_p, inv_rho,
          reinterpret_cast<const std::uint8_t*>(primal_[p].data() + lo),
          reinterpret_cast<const std::uint8_t*>(dual_[p].data() + lo),
          fused_w_.data() + lo, hi - lo);
    }
  });
  fused_valid_ = true;  // ρ is constant here, so the cache cannot go stale
  return true;
}

void IIAdmmServer::update(const std::vector<comm::Message>& locals,
                          std::span<const float> global, std::uint32_t round) {
  fused_valid_ = false;
  // Straggler policy: an absent client's (z_p, λ_p) stay at their previous
  // values — sound because the dual update is duplicated on both sides, and
  // a client whose uplink was lost rolls its own dual back to match
  // (IIAdmmClient::on_uplink_result). compute_global then reuses the stale
  // primal exactly as under partial participation.
  if (locals.empty()) return;
  APPFL_CHECK(locals.size() <= num_clients());
  const float rho = rho_;  // the ρ^t the clients just used
  double primal_residual = 0.0;
  double dual_residual = 0.0;
  for (const auto& m : locals) {
    APPFL_CHECK_MSG(m.round == round, "stale update from client " << m.sender);
    APPFL_CHECK(m.sender >= 1 && m.sender <= num_clients());
    APPFL_CHECK_MSG(m.dual.empty(),
                    "IIADMM clients must not ship duals — that is the point");
    const std::size_t p = m.sender - 1;
    auto& l = dual_[p];
    APPFL_CHECK(m.primal.size() == l.size());
    // Line 6: the server's replica of the dual update, computed from the
    // same (w^{t+1}, z_p^{t+1}) the client used — bit-identical by design.
    double r2 = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < l.size(); ++i) {
      const double r = static_cast<double>(global[i]) - m.primal[i];
      const double s = static_cast<double>(m.primal[i]) - primal_[p][i];
      r2 += r * r;
      s2 += s * s;
      l[i] += rho * (global[i] - m.primal[i]);
    }
    primal_residual += std::sqrt(r2);
    dual_residual += static_cast<double>(rho) * std::sqrt(s2);
    primal_[p] = m.primal;
  }
  if (config().adaptive_rho) {
    rho_ = adapt_rho(rho_, primal_residual, dual_residual, config());
  }
}

const std::vector<float>& IIAdmmServer::dual(std::uint32_t client) const {
  APPFL_CHECK(client >= 1 && client <= dual_.size());
  return dual_[client - 1];
}

void IIAdmmClient::export_algo_state(ClientStateCkpt& out) const {
  out.dual = lambda_;
}

void IIAdmmClient::import_algo_state(const ClientStateCkpt& s) {
  APPFL_CHECK(s.dual.size() == lambda_.size());
  lambda_ = s.dual;
  // lambda_prev_ only matters between update() and on_uplink_result()
  // within one round; a round-boundary snapshot never carries it.
  lambda_prev_.clear();
}

ServerStateCkpt IIAdmmServer::export_state() const {
  ServerStateCkpt s = BaseServer::export_state();
  s.rho = rho_;
  s.primal = primal_;
  s.dual = dual_;
  return s;
}

void IIAdmmServer::import_state(const ServerStateCkpt& s) {
  fused_valid_ = false;
  BaseServer::import_state(s);
  APPFL_CHECK_MSG(s.primal.size() == num_clients() &&
                      s.dual.size() == num_clients(),
                  "IIADMM checkpoint sized for " << s.primal.size()
                      << " clients, server has " << num_clients());
  rho_ = static_cast<float>(s.rho);
  primal_ = s.primal;
  dual_ = s.dual;
}

}  // namespace appfl::core
