// Membership-inference attack (Shokri et al., the paper's [25]; Yeom et
// al.'s loss-threshold instantiation).
//
// This is the threat §III-B defends against: an adversary who sees a model
// (e.g. any intercepted global or local update) guesses whether a specific
// record was in the training data. The loss-threshold attack predicts
// "member" when the per-sample loss is below a threshold; its strength is
// summarized by the membership advantage max_τ (TPR − FPR) and the AUC of
// loss-ranking. Output perturbation should push both toward chance (0 / 0.5)
// as ε decreases — quantified by bench/sec3b_inference_attack.
#pragma once

#include <span>

#include "data/dataset.hpp"
#include "nn/module.hpp"

namespace appfl::core {

struct AttackResult {
  /// max over thresholds of (member TPR − non-member FPR) ∈ [0, 1].
  double advantage = 0.0;
  /// Probability a random member scores lower loss than a random
  /// non-member (0.5 = chance).
  double auc = 0.0;
  double mean_member_loss = 0.0;
  double mean_nonmember_loss = 0.0;
};

/// Per-sample cross-entropy losses of `model` (with `parameters` installed)
/// on every sample of `dataset`.
std::vector<double> per_sample_losses(nn::Module& model,
                                      std::span<const float> parameters,
                                      const data::Dataset& dataset,
                                      std::size_t batch_size = 256);

/// Runs the loss-threshold attack: `members` were in training,
/// `nonmembers` were not (fresh draws from the same distribution).
AttackResult loss_threshold_attack(nn::Module& model,
                                   std::span<const float> parameters,
                                   const data::Dataset& members,
                                   const data::Dataset& nonmembers);

}  // namespace appfl::core
