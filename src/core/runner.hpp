// FederatedRunner: the orchestration loop (paper Fig. 1's outer structure).
//
// Per round t = 1..T:
//   1. server computes w^{t+1} and broadcasts it through the Communicator;
//   2. every client (in parallel, on the thread pool — the MPI-rank
//      multiplexing of §IV-C) receives w^{t+1}, runs its local update, and
//      sends the result;
//   3. the server gathers all P updates (advancing the simulated comm clock)
//      and absorbs them;
//   4. optional validation of w^{t+1} on the server-held test set.
// All parameter exchange genuinely crosses the Communicator (encode/decode),
// so the traffic and timing ledgers are measurements, not estimates.
#pragma once

#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "core/base.hpp"
#include "core/config.hpp"
#include "data/synth.hpp"
#include "util/thread_pool.hpp"

namespace appfl::core {

/// Why a secure-aggregation round degraded to a counted skip. Attached to
/// RoundMetrics (and the per-round JSONL line) so a post-mortem names the
/// failure instead of just counting it.
enum class SecaggDegradeReason : std::uint8_t {
  kNone = 0,             // round did not degrade
  kBelowThreshold,       // |U3| < t: too few survivor uploads to unmask
  kShareWaveTimeout,     // share packets lost/late: U2 fell below t
  kRootUnreachable,      // tree root never produced a reduced sum
};

std::string to_string(SecaggDegradeReason r);

/// One row of the learning curve.
struct RoundMetrics {
  std::uint32_t round = 0;
  double train_loss = 0.0;     // sample-weighted mean of client losses
  double test_accuracy = 0.0;  // −1 when validation was skipped this round
  double broadcast_s = 0.0;    // simulated
  double gather_s = 0.0;       // simulated
  double rho = 0.0;            // penalty ρ^t broadcast this round
  std::size_t participants = 0;  // clients sampled this round
  std::size_t responders = 0;    // updates that survived the network
  // Per-round deltas of the fault-plane counters (all zero when the fault
  // plane is inactive).
  std::uint64_t drops = 0;
  std::uint64_t retries = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t discards = 0;
  std::uint64_t timeouts = 0;
  // Secure-aggregation outcomes (zero when RunConfig::secure_agg is off).
  /// Dropped clients (U2 \ U3) whose pairwise masks were reconstructed.
  std::uint64_t secagg_reconstructions = 0;
  /// True when fewer than t uploads survived: the round was skipped
  /// (model unchanged) instead of unmasked.
  bool secagg_degraded = false;
  /// Why (kNone unless secagg_degraded).
  SecaggDegradeReason secagg_degrade_reason = SecaggDegradeReason::kNone;
};

struct RunResult {
  std::vector<RoundMetrics> rounds;
  comm::TrafficStats traffic;
  std::vector<comm::RoundCommRecord> comm_rounds;
  double final_accuracy = 0.0;
  double sim_comm_seconds = 0.0;
  std::size_t model_parameters = 0;

  /// The final global model (what chaos tests byte-compare across resumes).
  std::vector<float> final_parameters;

  /// Largest cumulative ε spent by any client (0 when ε = ∞ throughout).
  double dp_epsilon_spent = 0.0;
  /// Round the run resumed after (0 = fresh start).
  std::uint32_t resumed_from_round = 0;
  /// Round checkpoints written by this process.
  std::size_t checkpoints_written = 0;

  /// Secure-aggregation run totals (sums of the per-round fields).
  std::uint64_t secagg_reconstructions = 0;
  std::uint64_t secagg_rounds_degraded = 0;

  /// Cumulative simulated communication time after each round (Fig 4a).
  std::vector<double> cumulative_comm_seconds() const;

  /// Mean / best of the per-round test accuracies over the rounds that
  /// actually validated. RoundMetrics::test_accuracy uses −1 as the
  /// "validation skipped" sentinel; those rounds are MISSING data, not
  /// zeros, and must never enter an average. Returns −1 when no round
  /// validated (the same sentinel, so exporters render it as null).
  double mean_test_accuracy() const;
  double best_test_accuracy() const;
};

/// Builds the model prescribed by `config` for the given data shape.
std::unique_ptr<nn::Module> build_model(const RunConfig& config,
                                        const data::TensorDataset& reference);

/// Factory for the algorithm's server (plug-in point for Table I's rows).
std::unique_ptr<BaseServer> build_server(const RunConfig& config,
                                         std::unique_ptr<nn::Module> model,
                                         data::TensorDataset test_set,
                                         std::size_t num_clients);

/// Factory for one client.
std::unique_ptr<BaseClient> build_client(std::uint32_t id,
                                         const RunConfig& config,
                                         const nn::Module& prototype,
                                         data::TensorDataset dataset);

/// Runs a full federated experiment on a federated split.
RunResult run_federated(const RunConfig& config,
                        const data::FederatedSplit& split);

/// As above, but with caller-provided server/clients (for user-defined
/// algorithms built on BaseServer/BaseClient — see examples/).
RunResult run_federated(const RunConfig& config, BaseServer& server,
                        std::vector<std::unique_ptr<BaseClient>>& clients);

}  // namespace appfl::core
