// Server-side asynchronous FL strategies ("Advances in APPFL", arXiv
// 2409.11585). The async runner is a discrete-event scheduler; WHAT it does
// with an arriving update — and how much work it hands a client per
// dispatch — is this interface:
//
//   * **FedAsync** (Xie et al.): absorb every arrival immediately with a
//     staleness-damped mixing step w ← (1 − α_s)·w + α_s·z. The damping
//     rule α_s is selectable: constant (α), polynomial (α / (1 + s), the
//     historical default — bit-identical to the pre-strategy runner), or
//     hinge (full α up to a staleness knee s₀, polynomial decay past it).
//
//   * **FedBuff** (Nguyen et al.): buffer the staleness-weighted model
//     *deltas* of K arrivals, then commit their average in one step:
//     w ← w + (1/K) Σᵢ α_s(τᵢ)·Δᵢ. The commit reduction reuses the fused
//     core/aggregate stream kernels (weighted_sum_stream), so it is
//     bit-identical at every kernel-pool thread count. The server model
//     version advances only on commits, so staleness counts commits — not
//     raw arrivals — exactly as the algorithm defines it.
//
//   * **FedCompass-style scheduler** (Li et al.): read each client's
//     simulated compute speed (hw::DeviceProfile × its dataset size) and
//     assign *variable local steps* so every dispatch lasts about as long
//     as the slowest client's base pass — arrivals then cluster into
//     near-synchronous groups and staleness stays near zero. Absorption is
//     the same staleness-damped mixing as FedAsync (which the clustering
//     makes almost undamped).
//
// Strategies are deterministic plain state machines: no RNG, no clocks.
// Their mutable state (FedBuff's partially-filled buffer, the scheduler's
// step plan) exports into AsyncCheckpoint so a killed run resumes
// bit-identically mid-buffer.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace appfl::core {

struct AsyncCheckpoint;

enum class AsyncStrategyKind {
  kFedAsync,   // immediate staleness-damped mixing (the historical scheme)
  kFedBuff,    // buffered-K delta aggregation
  kFedCompass, // compute-aware variable local steps + damped mixing
};

enum class StalenessWeight {
  kConstant,    // α_s = α
  kPolynomial,  // α_s = α / (1 + s)   (FedAsync's a=1 polynomial family)
  kHinge,       // α_s = α for s ≤ s₀, α / (1 + s − s₀) past the knee
};

std::string to_string(AsyncStrategyKind k);
std::string to_string(StalenessWeight w);
/// nullopt on an unrecognized name ("fedasync"|"fedbuff"|"fedcompass",
/// "constant"|"polynomial"|"hinge").
std::optional<AsyncStrategyKind> parse_async_strategy(std::string_view name);
std::optional<StalenessWeight> parse_staleness_weight(std::string_view name);

/// The async-plane strategy knobs carried by AsyncConfig. APPFL_ASYNC_*
/// environment variables override them at run start (warn-and-ignore on
/// garbage, like APPFL_FAULT_* / APPFL_CKPT_*).
struct AsyncStrategyOptions {
  AsyncStrategyKind kind = AsyncStrategyKind::kFedAsync;
  StalenessWeight weight = StalenessWeight::kPolynomial;
  std::size_t buffer_k = 4;  // FedBuff: arrivals per commit
  std::size_t hinge_s0 = 4;  // hinge weighting: full-α staleness knee

  /// Throws appfl::Error on inconsistent settings (e.g. buffer_k == 0).
  void validate() const;
};

/// Returns `base` with APPFL_ASYNC_STRATEGY, APPFL_ASYNC_STALENESS_WEIGHT,
/// APPFL_ASYNC_BUFFER_K, and APPFL_ASYNC_HINGE_S0 overrides applied.
/// Unparseable values are warned about on stderr and ignored.
AsyncStrategyOptions async_strategy_options_from_env(
    const AsyncStrategyOptions& base);

class AsyncStrategy {
 public:
  virtual ~AsyncStrategy() = default;

  virtual AsyncStrategyKind kind() const = 0;
  std::string name() const { return to_string(kind()); }

  /// The vector the dispatcher retains for an in-flight dispatch that
  /// trained from `w_sent` and produced `z`: z itself for mixing schemes,
  /// the delta z − w_sent for FedBuff. Also the payload absorb() receives.
  virtual std::vector<float> in_flight_payload(
      std::vector<float> z, std::span<const float> w_sent) const {
    (void)w_sent;
    return z;
  }

  /// Local steps client p (0-based) runs per dispatch. The runner builds
  /// client p with this step count and bills its simulated compute by it.
  virtual std::size_t local_steps(std::size_t client) const {
    (void)client;
    return base_steps_;
  }

  struct Absorbed {
    float mixing = 0.0F;    // staleness weight applied to this update
    bool committed = true;  // did the global model (and its version) advance?
  };

  /// Absorbs one arrived payload into `w`. `staleness` is the number of
  /// model versions committed since the producing dispatch left.
  virtual Absorbed absorb(std::span<const float> payload,
                          std::size_t staleness, std::span<float> w) = 0;

  /// Checkpoint halves: fill / restore the strategy's resumable state
  /// (FedBuff's partial buffer, the scheduler's step plan). Defaults:
  /// stateless.
  virtual void export_state(AsyncCheckpoint& out) const { (void)out; }
  virtual void import_state(const AsyncCheckpoint& in) { (void)in; }

  /// Builds a strategy. `seconds_per_step[p]` is the simulated compute
  /// seconds one local step costs client p — the FedCompass scheduler
  /// input (ignored by the other strategies).
  static std::unique_ptr<AsyncStrategy> make(
      const AsyncStrategyOptions& opts, float mixing_alpha,
      std::size_t base_local_steps, std::span<const double> seconds_per_step);

 protected:
  AsyncStrategy(float alpha, StalenessWeight weight, std::size_t hinge_s0,
                std::size_t base_steps)
      : alpha_(alpha), weight_(weight), hinge_s0_(hinge_s0),
        base_steps_(base_steps) {}

  /// α_s under the configured weighting rule. The polynomial branch is the
  /// exact float expression the pre-strategy runner used, so the default
  /// configuration stays bit-identical.
  float staleness_weight(std::size_t staleness) const;

  float alpha_;
  StalenessWeight weight_;
  std::size_t hinge_s0_;
  std::size_t base_steps_;
};

}  // namespace appfl::core
