#include "core/evaluation.hpp"

#include <algorithm>

#include "nn/loss.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::core {

double EvalReport::balanced_accuracy() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (double r : per_class_recall) {
    if (r >= 0.0) {
      sum += r;
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

EvalReport evaluate(nn::Module& model, std::span<const float> parameters,
                    const data::Dataset& dataset, std::size_t batch_size) {
  APPFL_CHECK(batch_size >= 1);
  model.set_flat_parameters(parameters);

  const std::size_t n = dataset.size();
  const std::size_t classes = dataset.num_classes();
  EvalReport report;
  report.samples = n;
  report.confusion.assign(classes, std::vector<std::size_t>(classes, 0));
  report.per_class_recall.assign(classes, -1.0);
  if (n == 0) return report;

  nn::CrossEntropyLoss criterion;
  std::size_t correct = 0;
  double loss_sum = 0.0;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < n; start += batch_size) {
    const std::size_t count = std::min(batch_size, n - start);
    idx.resize(count);
    for (std::size_t i = 0; i < count; ++i) idx[i] = start + i;
    const data::Batch batch = dataset.gather(idx);
    const nn::Tensor logits = model.forward(batch.inputs);
    loss_sum += criterion.compute(logits, batch.labels).loss *
                static_cast<double>(count);
    const auto preds = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t truth = batch.labels[i];
      ++report.confusion[truth][preds[i]];
      if (preds[i] == truth) ++correct;
    }
  }
  report.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  report.mean_loss = loss_sum / static_cast<double>(n);
  for (std::size_t c = 0; c < classes; ++c) {
    std::size_t total = 0;
    for (std::size_t p = 0; p < classes; ++p) total += report.confusion[c][p];
    if (total > 0) {
      report.per_class_recall[c] = static_cast<double>(report.confusion[c][c]) /
                                   static_cast<double>(total);
    }
  }
  return report;
}

}  // namespace appfl::core
