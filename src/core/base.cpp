#include "core/base.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "obs/trace.hpp"
#include "rng/rng.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::core {

namespace {
constexpr std::uint64_t kLoaderStream = 11;
constexpr std::uint64_t kDpStream = 13;
}  // namespace

BaseClient::BaseClient(std::uint32_t id, const RunConfig& config,
                       const nn::Module& prototype, data::TensorDataset dataset)
    : id_(id),
      config_(config),
      dataset_(std::move(dataset)),
      model_(prototype.clone()),
      loader_(dataset_, config.batch_size, /*shuffle=*/true,
              rng::derive_seed(config.seed, {kLoaderStream, id})) {
  APPFL_CHECK_MSG(id >= 1, "client ids are 1-based (0 is the server)");
  APPFL_CHECK_MSG(dataset_.size() > 0, "client " << id << " has no data");
  config_.validate();
  round_rho_ = config_.rho;
  if (std::isfinite(config_.epsilon) &&
      config_.dp_mode == DpMode::kOutput) {
    mechanism_ =
        dp::make_laplace_for_budget(config_.epsilon, config_.sensitivity());
  } else {
    mechanism_ = std::make_unique<dp::NoOpMechanism>();
  }
}

void BaseClient::begin_round(std::uint32_t round) {
  current_round_ = round;
  dp_step_ = 0;
  reset_loss_average();
}

std::size_t BaseClient::dp_steps_per_round() const {
  return config_.local_steps * loader_.num_batches();
}

comm::Message BaseClient::handle_global(const comm::Message& global) {
  round_rho_ = global.rho > 0.0 ? static_cast<float>(global.rho) : config_.rho;
  return update(global.primal, global.round);
}

std::vector<float> BaseClient::batch_gradient(std::span<const float> z,
                                              const data::Batch& batch) {
  obs::ScopedSpan span("client.batch", "client");
  span.set_arg("client", id_);
  model_->set_flat_parameters(z);
  model_->zero_grad();
  nn::Tensor logits = model_->forward(batch.inputs);
  nn::LossResult lr = criterion_.compute(logits, batch.labels);
  model_->backward(lr.grad);
  std::vector<float> grad = model_->flat_gradients();
  if (config_.clip > 0.0F) {
    // Clip both the returned copy and the gradients stored in the model, so
    // optimizer-driven algorithms (FedAvg's SGD step reads model grads) see
    // the same clipped direction as closed-form algorithms (IADMM family).
    const float factor = tensor::clip_norm(std::span<float>(grad), config_.clip);
    if (factor < 1.0F) {
      for (nn::Param* p : model_->params()) {
        tensor::scal(factor, p->grad.data());
      }
    }
  }
  if (config_.dp_mode == DpMode::kGradient && std::isfinite(config_.epsilon)) {
    // Per-step Laplace noise. Swapping one sample moves the clipped batch
    // gradient by at most Δ = 2C; the round budget ε splits evenly over the
    // planned steps (basic composition), so b = Δ / (ε / steps).
    const double steps = static_cast<double>(std::max<std::size_t>(
        1, dp_steps_per_round()));
    const double scale =
        2.0 * static_cast<double>(config_.clip) * steps / config_.epsilon;
    rng::Rng noise(rng::derive_seed(
        config_.seed, {17, id_, current_round_, dp_step_++}));
    dp::LaplaceMechanism mech(scale);
    mech.apply(grad, noise);
    // Keep the model's stored gradients consistent with the returned copy.
    std::size_t off = 0;
    for (nn::Param* p : model_->params()) {
      auto d = p->grad.data();
      tensor::copy(std::span<const float>(grad).subspan(off, d.size()), d);
      off += d.size();
    }
  }
  // Running mean of batch losses across this round.
  last_loss_ = (last_loss_ * static_cast<double>(loss_batches_) + lr.loss) /
               static_cast<double>(loss_batches_ + 1);
  ++loss_batches_;
  return grad;
}

void BaseClient::apply_dp(std::vector<float>& values, std::uint32_t round) {
  obs::ScopedSpan span("dp.noise", "dp");
  span.set_arg("client", id_);
  // In gradient mode mechanism_ is the no-op: the budget was spent per step.
  rng::Rng noise(rng::derive_seed(config_.seed, {kDpStream, id_, round}));
  mechanism_->apply(values, noise);
}

void BaseClient::reset_loss_average() {
  last_loss_ = 0.0;
  loss_batches_ = 0;
}

ClientStateCkpt BaseClient::export_state() const {
  ClientStateCkpt s;
  s.id = id_;
  s.loader_epochs = loader_.epoch();
  export_algo_state(s);
  return s;
}

void BaseClient::import_state(const ClientStateCkpt& s) {
  APPFL_CHECK_MSG(s.id == id_, "checkpoint for client " << s.id
                                   << " applied to client " << id_);
  APPFL_CHECK_MSG(loader_.epoch() <= s.loader_epochs,
                  "client " << id_ << " is past the checkpoint (loader epoch "
                            << loader_.epoch() << " > " << s.loader_epochs
                            << ")");
  // Replaying the epoch advances reproduces the loader's RNG state and
  // permutation exactly — the shuffle stream is the only RNG it owns.
  while (loader_.epoch() < s.loader_epochs) loader_.next_epoch();
  import_algo_state(s);
}

BaseServer::BaseServer(const RunConfig& config,
                       std::unique_ptr<nn::Module> model,
                       data::TensorDataset test_set, std::size_t num_clients)
    : config_(config),
      model_(std::move(model)),
      test_set_(std::move(test_set)),
      num_clients_(num_clients) {
  APPFL_CHECK(model_ != nullptr);
  APPFL_CHECK(num_clients_ >= 1);
  config_.validate();
}

float BaseServer::current_rho() const { return config_.rho; }

ServerStateCkpt BaseServer::export_state() const {
  ServerStateCkpt s;
  s.kind = checkpoint_kind();
  return s;
}

void BaseServer::import_state(const ServerStateCkpt& s) {
  APPFL_CHECK_MSG(s.kind == checkpoint_kind(),
                  "checkpoint holds '" << s.kind << "' server state, this "
                  "server is '" << checkpoint_kind() << "'");
}

double BaseServer::validate(std::span<const float> w) {
  model_->set_flat_parameters(w);
  const std::size_t n = test_set_.size();
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  std::vector<std::size_t> idx;
  for (std::size_t start = 0; start < n; start += config_.validate_batch) {
    const std::size_t count = std::min(config_.validate_batch, n - start);
    idx.resize(count);
    for (std::size_t i = 0; i < count; ++i) idx[i] = start + i;
    data::Batch b = test_set_.gather(idx);
    nn::Tensor logits = model_->forward(b.inputs);
    const auto preds = tensor::argmax_rows(logits);
    for (std::size_t i = 0; i < count; ++i) {
      if (preds[i] == b.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace appfl::core
