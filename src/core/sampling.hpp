// Per-round client sampling. Both runners draw a round's participant set
// from a dedicated, checkpointable RNG stream (derive_seed(seed, {78}) in
// the sync runner, {79} in the population engine), so the sampled set is a
// pure function of the stream state: identical across reruns, across thread
// counts (the draws happen on the orchestration thread, never in a pool
// task), and across a kill/resume at any round boundary (the stream state
// rides the v2 checkpoint).
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace appfl::core {

/// The sync runner's rule, extracted verbatim: all of 1..num_clients at
/// fraction 1 (no draw — the stream does not advance), otherwise one full
/// shuffle truncated to ⌈fraction·num_clients⌉ ids, returned sorted.
/// O(num_clients) per round — fine at the star topology's scale.
std::vector<std::uint32_t> sample_fraction(rng::Rng& sampler,
                                           std::size_t num_clients,
                                           double fraction);

/// Draws k distinct 1-based ids from a population of n, returned sorted —
/// the population engine's rule. A partial Fisher–Yates over a virtual
/// identity array (sparse overlay) makes the draw O(k) in time and memory
/// regardless of n, so sampling 1k participants from 100k (or 1M) clients
/// never materializes the population. Always consumes exactly k draws from
/// `sampler`, so the stream position after a round is independent of n.
std::vector<std::uint32_t> sample_k_of_n(rng::Rng& sampler, std::size_t n,
                                         std::size_t k);

}  // namespace appfl::core
