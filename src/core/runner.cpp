#include "core/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/checkpoint.hpp"
#include "dp/secure_agg.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "core/fedavg.hpp"
#include "core/sampling.hpp"
#include "core/obs_session.hpp"
#include "dp/accountant.hpp"
#include "core/iceadmm.hpp"
#include "core/fedprox.hpp"
#include "core/iiadmm.hpp"
#include "nn/model_zoo.hpp"
#include "obs/trace.hpp"
#include "rng/distributions.hpp"
#include "tensor/gemm.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace appfl::core {

std::string to_string(SecaggDegradeReason r) {
  switch (r) {
    case SecaggDegradeReason::kNone: return "none";
    case SecaggDegradeReason::kBelowThreshold: return "below-threshold";
    case SecaggDegradeReason::kShareWaveTimeout: return "share-wave-timeout";
    case SecaggDegradeReason::kRootUnreachable: return "root-unreachable";
  }
  return "?";
}

std::vector<double> RunResult::cumulative_comm_seconds() const {
  std::vector<double> out;
  out.reserve(comm_rounds.size());
  double acc = 0.0;
  for (const auto& r : comm_rounds) {
    acc += r.total_s();
    out.push_back(acc);
  }
  return out;
}

double RunResult::mean_test_accuracy() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& m : rounds) {
    if (m.test_accuracy < 0.0) continue;  // skipped-validation sentinel
    sum += m.test_accuracy;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : -1.0;
}

double RunResult::best_test_accuracy() const {
  double best = -1.0;
  for (const auto& m : rounds) {
    if (m.test_accuracy < 0.0) continue;
    best = std::max(best, m.test_accuracy);
  }
  return best;
}

std::unique_ptr<nn::Module> build_model(const RunConfig& config,
                                        const data::TensorDataset& reference) {
  rng::Rng rng(rng::derive_seed(config.seed, {42}));
  const auto shape = reference.sample_shape();
  const std::size_t classes = reference.num_classes();
  std::size_t flat = 1;
  for (std::size_t d : shape) flat *= d;
  switch (config.model) {
    case ModelKind::kPaperCnn: {
      APPFL_CHECK_MSG(shape.size() == 3,
                      "paper CNN expects CHW samples, got rank " << shape.size());
      return nn::paper_cnn(shape[0], shape[1], shape[2], classes, rng);
    }
    case ModelKind::kMlp:
      return nn::mlp(flat, config.mlp_hidden, classes, rng);
    case ModelKind::kLogistic:
      return nn::logistic_regression(flat, classes, rng);
  }
  APPFL_CHECK(false);
  return nullptr;
}

std::unique_ptr<BaseServer> build_server(const RunConfig& config,
                                         std::unique_ptr<nn::Module> model,
                                         data::TensorDataset test_set,
                                         std::size_t num_clients) {
  switch (config.algorithm) {
    case Algorithm::kFedAvg:
      return std::make_unique<FedAvgServer>(config, std::move(model),
                                            std::move(test_set), num_clients);
    case Algorithm::kIceAdmm:
      return std::make_unique<IceAdmmServer>(config, std::move(model),
                                             std::move(test_set), num_clients);
    case Algorithm::kIIAdmm:
      return std::make_unique<IIAdmmServer>(config, std::move(model),
                                            std::move(test_set), num_clients);
    case Algorithm::kFedProx:
      // FedProx aggregates exactly like FedAvg.
      return std::make_unique<FedProxServer>(config, std::move(model),
                                             std::move(test_set), num_clients);
  }
  APPFL_CHECK(false);
  return nullptr;
}

std::unique_ptr<BaseClient> build_client(std::uint32_t id,
                                         const RunConfig& config,
                                         const nn::Module& prototype,
                                         data::TensorDataset dataset) {
  switch (config.algorithm) {
    case Algorithm::kFedAvg:
      return std::make_unique<FedAvgClient>(id, config, prototype,
                                            std::move(dataset));
    case Algorithm::kIceAdmm:
      return std::make_unique<IceAdmmClient>(id, config, prototype,
                                             std::move(dataset));
    case Algorithm::kIIAdmm:
      return std::make_unique<IIAdmmClient>(id, config, prototype,
                                            std::move(dataset));
    case Algorithm::kFedProx:
      return std::make_unique<FedProxClient>(id, config, prototype,
                                             std::move(dataset));
  }
  APPFL_CHECK(false);
  return nullptr;
}

RunResult run_federated(const RunConfig& config,
                        const data::FederatedSplit& split) {
  config.validate();
  APPFL_CHECK_MSG(!split.clients.empty(), "split has no clients");

  std::unique_ptr<nn::Module> model = build_model(config, split.test);
  // The prototype is cloned per client BEFORE the server takes ownership,
  // so everyone starts from the same z¹ (the one-time init exchange).
  std::vector<std::unique_ptr<BaseClient>> clients;
  clients.reserve(split.clients.size());
  for (std::size_t p = 0; p < split.clients.size(); ++p) {
    clients.push_back(build_client(static_cast<std::uint32_t>(p + 1), config,
                                   *model, split.clients[p]));
  }
  std::unique_ptr<BaseServer> server =
      build_server(config, std::move(model), split.test, clients.size());
  return run_federated(config, *server, clients);
}

RunResult run_federated(const RunConfig& config, BaseServer& server,
                        std::vector<std::unique_ptr<BaseClient>>& clients) {
  config.validate();
  tensor::apply_kernel_config(config.kernel_backend, config.kernel_threads);
  const std::size_t num_clients = clients.size();
  APPFL_CHECK(num_clients >= 1);
  APPFL_CHECK(server.num_clients() == num_clients);

  comm::ReliabilityConfig reliability;
  // Env overrides let fault campaigns wrap any existing binary unchanged.
  reliability.faults = comm::fault_config_from_env(config.faults);
  reliability.gather_timeout_s = config.gather_timeout_s;
  reliability.ack_timeout_s = config.ack_timeout_s;
  reliability.backoff_cap_s =
      std::max(config.ack_timeout_s, reliability.backoff_cap_s);
  reliability.max_retries = config.max_uplink_retries;
  reliability.mailbox_capacity = config.mailbox_capacity;
  // APPFL_WIRE_CODEC swaps the uplink codec without rebuilding the binary
  // (codec sweeps over existing benches). The env value bypasses the
  // caller's validate(), so the combination is re-checked here — an fp16
  // override on an ADMM run must fail just like a configured one.
  const comm::UplinkCodec wire_codec =
      comm::uplink_codec_from_env(config.uplink_codec);
  if (wire_codec != config.uplink_codec) {
    RunConfig overridden = config;
    overridden.uplink_codec = wire_codec;
    overridden.validate();
  }
  comm::CodecConfig codec_config{wire_codec, config.topk_fraction};
  if (wire_codec == comm::UplinkCodec::kInt8Ef && config.clip > 0.0F) {
    // Clip the pre-quantization deltas to the DP sensitivity bound — the
    // largest honest per-round displacement — so one outlier coordinate
    // cannot blow up a whole block's quantization scale.
    codec_config.int8_range = config.sensitivity();
  }
  comm::Communicator comm(config.protocol, num_clients,
                          rng::derive_seed(config.seed, {77}), codec_config,
                          reliability);
  const bool fused_aggregation = fused_aggregation_from_env(config);
  util::ThreadPool pool;
  rng::Rng sampler(rng::derive_seed(config.seed, {78}));

  // Observability session: raises the process level for this run, clears
  // the global tracer/registry when enabled, streams per-round JSONL lines,
  // and exports trace + summary at the end. At level off every hook below
  // is a single relaxed atomic load, and the run is bit-identical.
  ObsSession obs_session(config);

  RunResult result;
  result.model_parameters = server.num_parameters();

  // Crash recovery: an empty dir keeps every path below untouched, so a
  // checkpoint-free run stays bit-identical to a pre-checkpoint build.
  const CheckpointOptions ckpt = checkpoint_options_from_env(config);
  std::optional<CheckpointStore> store;
  if (!ckpt.dir.empty()) store.emplace(ckpt.dir);
  dp::PrivacyAccountant accountant(num_clients);
  // ε is spent once per round by each client that releases an update
  // (basic composition); ε = ∞ rounds are accounted as zero leakage.
  const double round_epsilon = std::isfinite(config.epsilon) ? config.epsilon : 0.0;

  // Per-client uplink fault attribution (retransmits, corrupt frames): the
  // communicator counts cumulatively, the ledger wants per-round deltas.
  std::vector<comm::Communicator::UplinkHealth> prev_uplink;

  std::uint32_t start_round = 1;
  if (!ckpt.resume_from.empty()) {
    APPFL_SPAN("ckpt.restore", "ckpt");
    obs::flight_record("ckpt.restore");
    // Resuming through the save store (same directory) keeps the A/B
    // alternation correct: the next save overwrites the slot we did NOT
    // load from.
    std::optional<CheckpointStore> separate;
    CheckpointStore& resume_store =
        store && ckpt.resume_from == ckpt.dir
            ? *store
            : separate.emplace(ckpt.resume_from);
    const std::optional<RoundCheckpoint> rc =
        load_latest_round_checkpoint(resume_store);
    for (const std::string& diag : resume_store.report().diagnostics) {
      std::fprintf(stderr, "warning: checkpoint recovery: %s\n", diag.c_str());
    }
    APPFL_CHECK_MSG(rc.has_value(), "resume_from='" << ckpt.resume_from
                        << "' holds no loadable checkpoint");
    APPFL_CHECK_MSG(
        rc->seed == config.seed && rc->num_clients == num_clients &&
            rc->param_count == server.num_parameters() &&
            rc->total_rounds == config.rounds,
        "checkpoint fingerprint mismatch: checkpoint is (seed="
            << rc->seed << ", clients=" << rc->num_clients << ", params="
            << rc->param_count << ", rounds=" << rc->total_rounds
            << "), this run is (seed=" << config.seed << ", clients="
            << num_clients << ", params=" << server.num_parameters()
            << ", rounds=" << config.rounds << ")");
    server.import_state(rc->server);  // also cross-checks the kind tag
    for (std::size_t p = 0; p < num_clients; ++p) {
      clients[p]->import_state(rc->clients[p]);
      accountant.restore_spent(p, rc->clients[p].dp_spent);
    }
    sampler.set_state(rc->sampler_state);
    comm::Communicator::PersistentState cs;
    cs.sim_now = rc->comm.sim_now;
    cs.stats = rc->comm.stats;
    cs.link_keys = rc->comm.link_keys;
    cs.link_seqs = rc->comm.link_seqs;
    cs.ef_residuals = rc->comm.ef_residuals;
    comm.restore_persistent_state(cs);
    start_round = rc->rounds_completed + 1;
    result.resumed_from_round = rc->rounds_completed;
  }

  for (std::uint32_t round = start_round; round <= config.rounds; ++round) {
    obs::ScopedSpan round_span("fl.round", "fl");
    round_span.set_arg("round", round);
    obs::flight_record("round.start",
                       "{\"round\":" + std::to_string(round) + "}");
    const double sim_round_start = comm.clock().now();
    // (0) Client sampling: all clients at fraction 1, otherwise ⌈f·P⌉
    // distinct ids drawn from the seed-derived stream.
    const std::vector<std::uint32_t> participants =
        sample_fraction(sampler, num_clients, config.client_fraction);

    // (1) Global update + broadcast to the round's participants. The stats
    // snapshot brackets the whole round, broadcast included, so the
    // per-round metric deltas add up to the run totals.
    const comm::TrafficStats before = comm.stats();
    const std::vector<float> w = [&] {
      APPFL_SPAN("fl.compute_global", "fl");
      return server.compute_global(round);
    }();
    comm::Message global;
    global.kind = comm::MessageKind::kGlobalModel;
    global.sender = 0;
    global.round = round;
    global.primal = w;
    global.rho = server.current_rho();  // ρ^t in force (adaptive-ρ support)
    comm.broadcast_global(global, participants);

    // (2) Parallel client updates. Each participant pulls w from its
    // mailbox (already delivered, so no deadlock with a small pool),
    // trains, sends. A client whose downlink was lost sits the round out;
    // one whose uplink was lost is told so (ADMM clients roll their
    // speculative dual update back).
    //
    // Secure-aggregation mode splits the uplink into a share-distribution
    // phase (kSecAggShares → U2) and a masked-upload phase (U2 members
    // only → U3); see dp/secure_agg.hpp for the protocol.
    std::vector<char> trained(num_clients, 0);
    std::uint64_t round_reconstructions = 0;
    bool round_degraded = false;
    SecaggDegradeReason degrade_reason = SecaggDegradeReason::kNone;
    bool shares_below_threshold = false;
    const bool track_health = obs_session.metrics_enabled();
    std::size_t secagg_threshold = 0;
    std::uint64_t round_seed = 0;
    std::vector<std::optional<comm::Message>> pending_updates;
    std::vector<std::unique_ptr<dp::SecureAggClient>> sec_clients;
    if (config.secure_agg) {
      APPFL_CHECK_MSG(participants.size() >= 2,
                      "secure aggregation needs a cohort of at least 2, got "
                          << participants.size());
      secagg_threshold = config.secure_agg_threshold != 0
                             ? config.secure_agg_threshold
                             : participants.size() / 2 + 1;
      APPFL_CHECK_MSG(secagg_threshold <= participants.size(),
                      "secure_agg_threshold " << secagg_threshold
                          << " exceeds the round cohort of "
                          << participants.size());
      round_seed =
          rng::derive_seed(config.seed, {rng::stream::kSecureAgg, round});
      pending_updates.resize(participants.size());
      sec_clients.resize(participants.size());
    }
    {
      // The wall time of this block is the round's parallel local-update
      // phase — the numerator's complement in the Fig 3b gather-share
      // breakdown (bench/phase_breakdown).
      obs::ScopedSpan phase_span("fl.local_update_phase", "fl");
      phase_span.set_arg("participants", participants.size());
      // Pool workers have their own (empty) span stacks, so the lexical
      // parent link does not cross the dispatch; hand the phase's id in.
      const std::uint64_t phase_id = phase_span.id();
      pool.parallel_for(participants.size(), [&](std::size_t i) {
        const std::uint32_t id = participants[i];
        obs::ScopedSpan client_span("fl.client_update", "fl");
        client_span.set_parent(phase_id);
        client_span.set_arg("client", id);
        const std::optional<comm::Message> incoming =
            comm.try_recv_global(id, round);
        if (!incoming) {
          // Downlink loss: the client never saw this round.
          if (track_health) obs_session.health().note_dropout(id);
          return;
        }
        trained[id - 1] = 1;
        const auto train_start = std::chrono::steady_clock::now();
        comm::Message update = clients[id - 1]->handle_global(*incoming);
        if (track_health) {
          obs_session.health().observe_latency(
              id, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - train_start)
                      .count());
        }
        if (!config.secure_agg) {
          const bool delivered = comm.send_update(id, update);
          if (track_health && !delivered) {
            obs_session.health().add_dropped_frames(id, 1);
          }
          clients[id - 1]->on_uplink_result(delivered);
          return;
        }
        // Secure mode: hold the update, distribute Shamir shares first.
        // The share uplink rides the same reliability plane (retransmit,
        // deadline) as any update; losing it drops this client from U2.
        sec_clients[i] = std::make_unique<dp::SecureAggClient>(
            id, participants, round_seed, secagg_threshold);
        pending_updates[i] = std::move(update);
        comm::Message shares;
        shares.kind = comm::MessageKind::kSecAggShares;
        shares.sender = id;
        shares.round = round;
        shares.primal =
            dp::pack_bytes_as_floats(sec_clients[i]->share_packet());
        comm.send_update(id, shares);
      });
    }

    std::optional<dp::SecureAggServer> sec_server;
    if (config.secure_agg) {
      // Share gather decides U2 (share-distribution survivors); the server
      // then releases the masked-upload phase for exactly that set. A
      // trained client outside U2 is told its uplink failed — its masks
      // could never be removed, so its update must not enter the sum.
      sec_server.emplace(participants, round_seed, secagg_threshold);
      for (const comm::Message& m :
           comm.gather_secagg_shares(round, participants.size())) {
        sec_server->deposit_share_packet(
            m.sender, dp::unpack_bytes_from_floats(m.primal));
      }
      const std::vector<std::uint32_t> u2 = sec_server->share_survivors();
      std::vector<char> in_u2(num_clients, 0);
      for (std::uint32_t id : u2) in_u2[id - 1] = 1;
      const bool recoverable = u2.size() >= secagg_threshold;
      shares_below_threshold = !recoverable;
      obs::ScopedSpan phase_span("fl.masked_upload_phase", "fl");
      phase_span.set_arg("u2", u2.size());
      const std::uint64_t phase_id = phase_span.id();
      pool.parallel_for(participants.size(), [&](std::size_t i) {
        const std::uint32_t id = participants[i];
        if (!trained[id - 1]) return;
        obs::ScopedSpan client_span("fl.masked_upload", "fl");
        client_span.set_parent(phase_id);
        client_span.set_arg("client", id);
        if (!recoverable || !in_u2[id - 1]) {
          // This client's share packet never reached the server: its masks
          // could not be removed, so its update is discarded with it.
          if (track_health && !in_u2[id - 1]) {
            obs_session.health().add_share_discards(id, 1);
          }
          clients[id - 1]->on_uplink_result(false);
          return;
        }
        const comm::Message& update = *pending_updates[i];
        const double weight =
            config.weighted_aggregation
                ? static_cast<double>(update.sample_count)
                : 1.0;
        comm::Message masked;
        masked.kind = comm::MessageKind::kLocalUpdate;
        masked.sender = id;
        masked.round = round;
        masked.sample_count = update.sample_count;
        masked.loss = update.loss;
        masked.primal = dp::pack_words_as_floats(sec_clients[i]->mask(
            update.primal, u2, dp::kDefaultScale, weight));
        const bool delivered = comm.send_update(id, masked);
        if (track_health && !delivered) {
          obs_session.health().add_dropped_frames(id, 1);
        }
        clients[id - 1]->on_uplink_result(delivered);
      });
    }

    // (3) Gather + server-side absorption (tolerates partial rounds). The
    // batch keeps the decoded wire payloads alive so the server can absorb
    // them in place; only when a server declines (adaptive ρ, malformed
    // round) are owning Messages materialized for the classic update().
    // Secure mode gathers MASKED uploads: the expected count is |U2| (only
    // U2 members send), and the gather still runs when the round already
    // degraded so the round keeps its comm record and timeline.
    const std::size_t expected_uploads =
        config.secure_agg
            ? std::max<std::size_t>(sec_server->share_survivors().size(), 1)
            : participants.size();
    const comm::GatherBatch batch = [&] {
      APPFL_SPAN("fl.gather_phase", "fl");
      return comm.gather_batch(round, expected_uploads);
    }();
    if (!config.secure_agg) {
      APPFL_SPAN("fl.aggregate", "fl");
      const bool absorbed =
          fused_aggregation && server.absorb(batch, w, round);
      if (!absorbed) {
        const std::vector<comm::Message> locals = batch.take_messages();
        server.update(locals, w, round);
      }
    } else {
      APPFL_SPAN("fl.secagg_unmask", "fl");
      // U3 = upload survivors. Sum their masked words, reconstruct the
      // self-masks of U3 and the pairwise keys of U2 \ U3 from the shares,
      // and recover the exact fixed-point survivor sum.
      std::vector<std::uint32_t> u3;
      std::vector<std::vector<std::uint64_t>> uploads;
      double total_weight = 0.0;
      std::uint64_t total_samples = 0;
      double loss_acc = 0.0;
      for (const auto& u : batch.updates()) {
        APPFL_CHECK(u.primal.enc == comm::WireEncoding::kF32 &&
                    u.primal.count % 2 == 0);
        u3.push_back(u.sender);
        std::vector<std::uint64_t> words(u.primal.count / 2);
        std::memcpy(words.data(), u.primal.data, u.primal.count * 4);
        uploads.push_back(std::move(words));
        total_weight += config.weighted_aggregation
                            ? static_cast<double>(u.sample_count)
                            : 1.0;
        total_samples += u.sample_count;
        loss_acc += u.loss * static_cast<double>(u.sample_count);
      }
      const dp::SecureAggServer::Recovery recovery =
          sec_server->unmask(u3, uploads);
      if (recovery.ok) {
        round_reconstructions = recovery.pair_keys_reconstructed;
        // One synthesized update carrying the recovered survivor mean:
        // FedAvg/FedProx's weighted mean of a single message is that
        // message, so the server classes need no secure-agg awareness.
        comm::Message synth;
        synth.kind = comm::MessageKind::kLocalUpdate;
        synth.sender = u3.front();
        synth.round = round;
        synth.sample_count = total_samples;
        synth.loss = total_samples > 0
                         ? loss_acc / static_cast<double>(total_samples)
                         : 0.0;
        synth.primal = dp::dequantize_sum(recovery.sum,
                                          dp::kDefaultScale * total_weight);
        std::vector<comm::Message> locals;
        locals.push_back(std::move(synth));
        server.update(locals, w, round);
      } else {
        // Below threshold: skip the model update, count the round, keep
        // running — graceful degradation, never a partial unmask. The
        // reason distinguishes WHERE the cohort thinned: the share wave
        // (U2 < t, nobody even uploaded) or the masked uploads (U3 < t).
        round_degraded = true;
        degrade_reason = shares_below_threshold
                             ? SecaggDegradeReason::kShareWaveTimeout
                             : SecaggDegradeReason::kBelowThreshold;
      }
      if (obs::metrics_on()) {
        static obs::Counter& reconstructions =
            obs::MetricsRegistry::global().counter(
                "secure_agg.reconstructions");
        static obs::Counter& degraded =
            obs::MetricsRegistry::global().counter(
                "secure_agg.rounds_degraded");
        reconstructions.add(round_reconstructions);
        if (round_degraded) degraded.add(1);
      }
    }
    if (round_degraded) {
      // Degraded rounds are a flight-recorder trigger: dump the black box
      // now, while the events leading here are still in the ring.
      obs::flight_record("secagg.degraded",
                         "{\"round\":" + std::to_string(round) +
                             ",\"reason\":\"" + to_string(degrade_reason) +
                             "\"}");
      obs::FlightRecorder::global().dump("secagg-degraded-" +
                                         to_string(degrade_reason));
    }
    const comm::TrafficStats after = comm.stats();
    round_span.set_sim(sim_round_start,
                      comm.clock().now() - sim_round_start);
    // Every client that trained released a perturbed update, so it spent
    // this round's ε whether or not the network delivered it.
    for (std::size_t p = 0; p < num_clients; ++p) {
      if (trained[p]) accountant.spend(p, round_epsilon);
    }
    if (track_health) {
      for (std::size_t p = 0; p < num_clients; ++p) {
        if (trained[p]) {
          obs_session.health().set_dp_epsilon(
              static_cast<std::uint32_t>(p + 1), accountant.spent(p));
        }
      }
      // Fold this round's communicator-attributed faults into the ledger.
      std::vector<comm::Communicator::UplinkHealth> uh = comm.uplink_health();
      for (std::size_t p = 0; p < uh.size(); ++p) {
        const comm::Communicator::UplinkHealth base =
            p < prev_uplink.size() ? prev_uplink[p]
                                   : comm::Communicator::UplinkHealth{};
        const std::uint32_t id = static_cast<std::uint32_t>(p + 1);
        if (uh[p].retransmits > base.retransmits) {
          obs_session.health().add_retransmits(
              id, uh[p].retransmits - base.retransmits);
        }
        if (uh[p].corrupt > base.corrupt) {
          obs_session.health().add_corrupt_frames(id,
                                                  uh[p].corrupt - base.corrupt);
        }
      }
      prev_uplink = std::move(uh);
    }

    // (4) Metrics.
    RoundMetrics metrics;
    metrics.round = round;
    metrics.rho = global.rho;
    metrics.participants = participants.size();
    metrics.responders = batch.size();
    metrics.drops = after.drops - before.drops;
    metrics.retries = after.retries - before.retries;
    metrics.crc_failures = after.crc_failures - before.crc_failures;
    metrics.discards = after.discards - before.discards;
    metrics.timeouts = after.gather_timeouts - before.gather_timeouts;
    metrics.secagg_reconstructions = round_reconstructions;
    metrics.secagg_degraded = round_degraded;
    metrics.secagg_degrade_reason = degrade_reason;
    result.secagg_reconstructions += round_reconstructions;
    if (round_degraded) ++result.secagg_rounds_degraded;
    double loss_acc = 0.0;
    std::uint64_t samples = 0;
    for (const auto& u : batch.updates()) {
      loss_acc += u.loss * static_cast<double>(u.sample_count);
      samples += u.sample_count;
    }
    metrics.train_loss = samples > 0 ? loss_acc / static_cast<double>(samples) : 0.0;
    const auto& rec = comm.round_log().back();
    metrics.broadcast_s = rec.broadcast_s;
    metrics.gather_s = rec.gather_s;
    if (config.validate_every_round || round == config.rounds) {
      APPFL_SPAN("fl.validate", "fl");
      metrics.test_accuracy = server.validate(w);
    } else {
      metrics.test_accuracy = -1.0;
    }
    if (comm.fault_plane_active()) {
      APPFL_LOG_DEBUG(to_string(config.algorithm)
                      << " round " << round << ": loss=" << metrics.train_loss
                      << " acc=" << metrics.test_accuracy << " responders="
                      << metrics.responders << "/" << metrics.participants
                      << " drops=" << metrics.drops << " retries="
                      << metrics.retries << " crc=" << metrics.crc_failures
                      << " discards=" << metrics.discards
                      << " timeouts=" << metrics.timeouts);
    } else {
      APPFL_LOG_DEBUG(to_string(config.algorithm)
                      << " round " << round << ": loss=" << metrics.train_loss
                      << " acc=" << metrics.test_accuracy);
    }
    result.rounds.push_back(metrics);
    obs_session.write_round(metrics);
    obs::flight_record("round.done",
                       "{\"round\":" + std::to_string(round) +
                           ",\"responders\":" +
                           std::to_string(metrics.responders) + "}");

    // (5) Round checkpoint: captured after the server absorbed the round,
    // so a restart replays nothing and skips nothing.
    const bool halt_here =
        config.halt_after_round > 0 && round == config.halt_after_round;
    if (store &&
        (round % ckpt.every == 0 || round == config.rounds || halt_here)) {
      APPFL_SPAN("ckpt.save", "ckpt");
      obs::flight_record("ckpt.save",
                         "{\"round\":" + std::to_string(round) + "}");
      RoundCheckpoint rc;
      rc.algorithm = to_string(config.algorithm);
      rc.seed = config.seed;
      rc.num_clients = static_cast<std::uint32_t>(num_clients);
      rc.param_count = server.num_parameters();
      rc.total_rounds = static_cast<std::uint32_t>(config.rounds);
      rc.rounds_completed = round;
      rc.parameters = w;
      rc.server = server.export_state();
      for (std::size_t p = 0; p < num_clients; ++p) {
        rc.clients.push_back(clients[p]->export_state());
        rc.clients.back().dp_spent = accountant.spent(p);
      }
      rc.sampler_state = sampler.state();
      const comm::Communicator::PersistentState cs = comm.persistent_state();
      rc.comm.sim_now = cs.sim_now;
      rc.comm.stats = cs.stats;
      rc.comm.link_keys = cs.link_keys;
      rc.comm.link_seqs = cs.link_seqs;
      rc.comm.ef_residuals = cs.ef_residuals;
      save_round_checkpoint(*store, rc);
      ++result.checkpoints_written;
    }
    if (halt_here) break;
  }

  // Final validation on the post-absorption global parameters.
  const std::vector<float> w_final =
      server.compute_global(static_cast<std::uint32_t>(config.rounds + 1));
  {
    APPFL_SPAN("fl.validate", "fl");
    result.final_accuracy = server.validate(w_final);
  }
  result.final_parameters = w_final;
  result.dp_epsilon_spent = accountant.max_spent();
  result.traffic = comm.stats();
  result.comm_rounds = comm.round_log();
  result.sim_comm_seconds = comm.clock().now();
  obs_session.finish(result);
  return result;
}

}  // namespace appfl::core
