// Checkpointing: persist training state to disk and restore it later.
//
// Two layers live here:
//
//  * The legacy v1 `Checkpoint` — a final trained model plus provenance,
//    the deploy artifact a framework user keeps after a long run. The file
//    format reuses the protolite wire encoding, so the same parser that
//    guards the network guards the disk.
//
//  * The v2 `RoundCheckpoint` — a *resumable* snapshot taken at a round
//    boundary, carrying everything a killed process needs to continue the
//    run to a bit-identical result: global parameters, server-optimizer
//    state (FedOpt moments), per-client ADMM primal/dual replicas, data-
//    loader epoch counters, the client-sampler RNG state, DP budget spent,
//    fault-plane link counters, and the simulated clock. v2 payloads are
//    sealed in the comm plane's CRC32 envelope (comm/envelope.hpp), so disk
//    corruption is detected exactly like wire corruption.
//
// Persistence of v2 snapshots is crash-consistent via `CheckpointStore`:
// write-to-temp + flush + fsync + atomic rename into a two-slot A/B layout,
// so a crash at ANY instant — including mid-save — always leaves the newest
// previously-completed checkpoint loadable. Recovery scans both slots,
// loads the newest valid one and quarantines torn/corrupt slots with a
// counted diagnostic instead of throwing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"

namespace appfl::core {

struct Checkpoint {
  std::uint32_t format_version = 1;
  std::string algorithm;          // e.g. "IIADMM"
  std::string dataset;            // e.g. "mnist-like"
  std::string model;              // e.g. "mlp" — architecture provenance
  std::uint32_t rounds_completed = 0;
  double final_accuracy = 0.0;
  std::vector<float> parameters;  // flat global model

  bool operator==(const Checkpoint&) const = default;
};

/// Serializes to protolite bytes (exposed for tests).
std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ckpt);

/// Parses protolite bytes; throws appfl::Error on malformed input or an
/// unsupported format version.
Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// Writes the checkpoint to `path`. Crash-consistent: the bytes land in a
/// temporary file first and are atomically renamed over `path`, so a crash
/// mid-write can never destroy a previous good checkpoint. Throws on I/O
/// failure.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Reads a checkpoint from `path`. Throws on I/O failure or bad content.
Checkpoint load_checkpoint(const std::string& path);

// ---------------------------------------------------------------------------
// v2: resumable round checkpoints.
// ---------------------------------------------------------------------------

/// Per-client resumable state. The algorithm-specific vectors are filled by
/// BaseClient::export_state overrides (empty when the algorithm keeps no
/// such state client-side).
struct ClientStateCkpt {
  std::uint32_t id = 0;            // 1-based endpoint id
  std::uint64_t loader_epochs = 0; // DataLoader epochs consumed so far
  std::vector<float> primal;       // ICEADMM's persistent local z_p
  std::vector<float> dual;         // ADMM family's persistent local λ_p
  double dp_spent = 0.0;           // cumulative ε spent by this client

  bool operator==(const ClientStateCkpt&) const = default;
};

/// Server-side resumable state; filled by BaseServer::export_state
/// overrides. `kind` names the exporting server ("fedavg", "iceadmm",
/// "iiadmm", "fedopt") and is cross-checked on import so a checkpoint never
/// restores into the wrong algorithm.
struct ServerStateCkpt {
  std::string kind;
  double rho = 0.0;                          // ρ^t in force (adaptive-ρ)
  std::vector<std::vector<float>> primal;    // per-client z_p replicas
  std::vector<std::vector<float>> dual;      // per-client λ_p replicas
  std::vector<std::uint64_t> sample_counts;  // FedAvg I_p
  std::vector<std::uint64_t> participants;   // FedAvg last responders
  std::vector<float> opt_w;                  // FedOpt server-held w
  std::vector<float> opt_m;                  // FedOpt first moment
  std::vector<float> opt_v;                  // FedOpt second moment

  bool operator==(const ServerStateCkpt&) const = default;
};

/// Communication-plane state that survives a restart: the simulated clock,
/// the cumulative traffic/fault ledger, and the fault injector's per-link
/// sequence counters (the schedule is a pure function of seed + counters,
/// so restoring them continues the fault schedule with no replayed or
/// skipped events).
struct CommStateCkpt {
  double sim_now = 0.0;
  comm::TrafficStats stats;
  std::vector<std::uint64_t> link_keys;
  std::vector<std::uint64_t> link_seqs;
  /// Per-client int8 error-feedback residuals (index = client − 1; empty
  /// vectors when the codec is off). Encoded as (id, values) pairs so
  /// pre-int8 decoders skip them as unknown fields — format_version stays 2.
  std::vector<std::vector<float>> ef_residuals;

  bool operator==(const CommStateCkpt&) const = default;
};

/// A full resumable snapshot at a synchronous round boundary.
struct RoundCheckpoint {
  std::uint32_t format_version = 2;
  std::string algorithm;           // to_string(config.algorithm), diagnostic
  std::uint64_t seed = 0;          // run fingerprint ↓ — checked on resume
  std::uint32_t num_clients = 0;
  std::uint64_t param_count = 0;
  std::uint32_t total_rounds = 0;  // lr schedules depend on T, so T must match
  std::uint32_t rounds_completed = 0;
  std::vector<float> parameters;   // the round's broadcast w (inspection)
  ServerStateCkpt server;
  std::vector<ClientStateCkpt> clients;
  std::array<std::uint64_t, 4> sampler_state{};  // client-sampling stream
  CommStateCkpt comm;

  // Population-engine extension (core/event_engine). All encoded as optional
  // tags that pre-population decoders skip as unknown fields, so
  // format_version stays 2. `population == 0` means a classic sync-runner
  // checkpoint. Clients in a population run are transient (rebuilt per
  // participation), so `clients` stays empty there; per-client DP spend is
  // carried by `participation` (id → rounds participated) instead.
  std::uint64_t population = 0;
  std::uint32_t participants_per_round = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> participation;

  bool operator==(const RoundCheckpoint&) const = default;
};

/// A resumable snapshot at an asynchronous update boundary (run_async).
struct AsyncCheckpoint {
  std::uint32_t format_version = 2;
  std::uint64_t seed = 0;
  std::uint32_t num_clients = 0;
  std::uint64_t param_count = 0;
  std::uint64_t total_updates = 0;
  std::uint64_t applied_updates = 0;
  std::uint64_t version = 0;           // server model version
  std::uint64_t dispatch_counter = 0;
  double staleness_sum = 0.0;
  double sim_seconds = 0.0;
  std::vector<float> w;                // server-held global model
  std::array<std::uint64_t, 4> jitter_state{};
  struct Pending {
    double finish_time = 0.0;
    std::uint32_t client = 0;          // 1-based
    std::uint64_t version = 0;         // version the client trained on
    bool operator==(const Pending&) const = default;
  };
  std::vector<Pending> queue;          // in-flight dispatches
  std::vector<std::vector<float>> in_flight;  // payloads computed at dispatch
  std::vector<ClientStateCkpt> clients;

  // Strategy-resumable state. All encoded as optional tags that pre-strategy
  // decoders skip as unknown fields, so format_version stays 2. An empty
  // `strategy` means a legacy checkpoint: FedAsync with polynomial weighting
  // (the only scheme that existed when those files were written).
  std::string strategy;                // "fedasync"|"fedbuff"|"fedcompass"|
                                       // "iiadmm"; cross-checked on resume
  std::vector<std::vector<float>> buffer;  // FedBuff: buffered deltas
  std::vector<float> buffer_weights;       // FedBuff: α_s per buffered delta
  std::vector<std::uint64_t> assigned_steps;  // FedCompass per-client steps
  std::uint64_t dropped_updates = 0;   // fault-plane ledger
  std::array<std::uint64_t, 4> fault_rng{};   // drop stream; all-zero = unused
  std::vector<std::vector<float>> server_primal;  // IIADMM z_p replicas
  std::vector<std::vector<float>> server_dual;    // IIADMM λ_p replicas
  std::vector<std::vector<float>> w_sent;  // IIADMM per-client broadcast w

  bool operator==(const AsyncCheckpoint&) const = default;
};

/// Serializes to protolite bytes sealed in the CRC32 envelope. decode_*
/// throws appfl::Error on a bad checksum, malformed body, a flavor
/// mismatch (sync vs async), or an unsupported format version — never
/// crashes (fuzzed in tests/test_fuzz.cpp).
std::vector<std::uint8_t> encode_round_checkpoint(const RoundCheckpoint& ckpt);
RoundCheckpoint decode_round_checkpoint(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> encode_async_checkpoint(const AsyncCheckpoint& ckpt);
AsyncCheckpoint decode_async_checkpoint(std::span<const std::uint8_t> bytes);

/// Crash-consistent two-slot (A/B) checkpoint directory.
///
/// save() alternates between the slots, always overwriting the OLDER one,
/// via temp file + flush + fsync + atomic rename — so at every instant at
/// least one slot holds a complete previously-saved checkpoint. load_latest()
/// scans both slots and returns the newest valid payload; slots that are
/// torn, truncated, checksum-damaged, or rejected by the caller's validator
/// are renamed to `<slot>.quarantined` and counted in report(), never fatal.
class CheckpointStore {
 public:
  /// Opaque payload validator (e.g. "does this decode as a RoundCheckpoint
  /// for my run"). Must return false — not throw — to reject.
  using Validator = std::function<bool(std::span<const std::uint8_t>)>;

  struct Loaded {
    std::vector<std::uint8_t> payload;
    std::uint64_t sequence = 0;
    std::string slot;  // filename the payload came from
  };

  struct Report {
    std::size_t corrupt_quarantined = 0;
    std::vector<std::string> diagnostics;
  };

  /// Creates `dir` if missing and scans existing slots to decide which one
  /// the next save overwrites. Throws appfl::Error if the directory cannot
  /// be created.
  explicit CheckpointStore(std::string dir);

  /// Persists `payload` under monotonically increasing `sequence` (the
  /// round / update counter). Throws appfl::Error on I/O failure; on any
  /// failure or crash the previously saved slot remains intact.
  void save(std::span<const std::uint8_t> payload, std::uint64_t sequence);

  /// Newest valid slot's payload, or nullopt when no slot is loadable.
  /// Invalid slots are quarantined and counted in report().
  std::optional<Loaded> load_latest(const Validator& valid = nullptr);

  const Report& report() const { return report_; }
  const std::string& dir() const { return dir_; }

  static constexpr const char* kSlotA = "slot_a.ckpt";
  static constexpr const char* kSlotB = "slot_b.ckpt";

 private:
  struct Slot {
    bool present = false;
    bool valid = false;
    std::uint64_t sequence = 0;
    std::vector<std::uint8_t> payload;
    std::string why;  // diagnostic when invalid
  };
  Slot read_slot(const char* name, const Validator& valid) const;
  void quarantine(const char* name, const std::string& why);

  std::string dir_;
  Report report_;
  int write_slot_ = 0;  // 0 ⇒ kSlotA next, 1 ⇒ kSlotB next
};

/// Typed convenience wrappers over CheckpointStore.
void save_round_checkpoint(CheckpointStore& store, const RoundCheckpoint& ckpt);
std::optional<RoundCheckpoint> load_latest_round_checkpoint(
    CheckpointStore& store);
void save_async_checkpoint(CheckpointStore& store, const AsyncCheckpoint& ckpt);
std::optional<AsyncCheckpoint> load_latest_async_checkpoint(
    CheckpointStore& store);

}  // namespace appfl::core
