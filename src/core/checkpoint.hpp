// Checkpointing: persist a trained global model (and where it came from) to
// disk and restore it later — the deploy/resume path a framework user needs
// after a long federated run. The file format reuses the protolite wire
// encoding, so the same parser that guards the network guards the disk.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace appfl::core {

struct Checkpoint {
  std::uint32_t format_version = 1;
  std::string algorithm;          // e.g. "IIADMM"
  std::string dataset;            // e.g. "mnist-like"
  std::string model;              // e.g. "mlp" — architecture provenance
  std::uint32_t rounds_completed = 0;
  double final_accuracy = 0.0;
  std::vector<float> parameters;  // flat global model

  bool operator==(const Checkpoint&) const = default;
};

/// Serializes to protolite bytes (exposed for tests).
std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& ckpt);

/// Parses protolite bytes; throws appfl::Error on malformed input or an
/// unsupported format version.
Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// Writes the checkpoint to `path` (overwrites). Throws on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& ckpt);

/// Reads a checkpoint from `path`. Throws on I/O failure or bad content.
Checkpoint load_checkpoint(const std::string& path);

}  // namespace appfl::core
