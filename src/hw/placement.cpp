#include "hw/placement.hpp"

#include "util/check.hpp"

namespace appfl::hw {

std::vector<std::size_t> Placement::clients_of_rank(std::size_t rank) const {
  APPFL_CHECK(rank < num_ranks);
  std::vector<std::size_t> out;
  for (std::size_t c = rank; c < num_clients; c += num_ranks) out.push_back(c);
  return out;
}

std::size_t Placement::max_clients_per_rank() const {
  APPFL_CHECK(num_ranks > 0);
  return (num_clients + num_ranks - 1) / num_ranks;
}

std::size_t Placement::num_nodes() const {
  APPFL_CHECK(gpus_per_node > 0);
  return (num_ranks + gpus_per_node - 1) / gpus_per_node;
}

double round_compute_seconds(const Placement& placement,
                             const DeviceProfile& device,
                             double flops_per_client) {
  const double per_client = device.seconds_for(flops_per_client);
  return per_client * static_cast<double>(placement.max_clients_per_rank());
}

}  // namespace appfl::hw
