// Device compute model (stand-in for real A100/V100 GPUs, §IV-E).
//
// A device is characterized by an *effective* training throughput — FLOP/s
// actually sustained by the paper's Python/PyTorch stack on small federated
// batches, far below peak. The presets are calibrated so that one FEMNIST
// local update (L=10 epochs over ~180 samples of the paper CNN) costs the
// times the paper reports: 6.96 s on a V100 and 4.24 s on an A100 (a 1.64×
// ratio). Any other workload then scales by its FLOP count.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace appfl::hw {

struct DeviceProfile {
  std::string name;
  double effective_flops = 1.0e9;  // sustained training FLOP/s

  /// Seconds to run `total_flops` of training work on this device.
  double seconds_for(double total_flops) const;
};

/// Presets calibrated to §IV-E (see device.cpp for the arithmetic).
DeviceProfile a100();
DeviceProfile v100();
DeviceProfile laptop_cpu();

/// Training FLOPs for one local update: forward + backward ≈ 3× forward,
/// over `samples`·`local_steps` sample passes of `model`.
double local_update_flops(const nn::Module& model, std::size_t samples,
                          std::size_t local_steps);

/// The reference workload the presets are calibrated against: FLOPs of one
/// FEMNIST local update (paper CNN, 62 classes, 180 samples, L=10).
double reference_femnist_local_update_flops();

}  // namespace appfl::hw
