// Cluster placement: how logical FL clients map onto MPI ranks and nodes.
//
// The Summit experiments (§IV-C/D) divide 203 clients equally over N MPI
// processes, each pinned to one GPU, 6 GPUs per node. A rank executes its
// clients *sequentially*; ranks run in parallel; a round's compute time is
// therefore the busiest rank's total. This module reproduces that timing
// arithmetic for the strong-scaling figure.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/device.hpp"

namespace appfl::hw {

struct Placement {
  std::size_t num_clients = 0;
  std::size_t num_ranks = 0;
  std::size_t gpus_per_node = 6;  // Summit: 6 V100s per node

  /// Clients assigned to rank r (round-robin residue classes, so counts
  /// differ by at most one — "equally divided" as in the paper).
  std::vector<std::size_t> clients_of_rank(std::size_t rank) const;

  /// max_r |clients(r)|.
  std::size_t max_clients_per_rank() const;

  /// Number of nodes needed at gpus_per_node ranks per node.
  std::size_t num_nodes() const;
};

/// Compute time of one round: the busiest rank runs its clients back to
/// back on `device`, each client costing `flops_per_client`.
double round_compute_seconds(const Placement& placement,
                             const DeviceProfile& device,
                             double flops_per_client);

}  // namespace appfl::hw
