#include "hw/device.hpp"

#include "nn/model_zoo.hpp"
#include "util/check.hpp"

namespace appfl::hw {

double DeviceProfile::seconds_for(double total_flops) const {
  APPFL_CHECK(effective_flops > 0.0);
  APPFL_CHECK(total_flops >= 0.0);
  return total_flops / effective_flops;
}

double local_update_flops(const nn::Module& model, std::size_t samples,
                          std::size_t local_steps) {
  // Backward costs ≈ 2× forward (grad-input + grad-weight passes), so one
  // training pass ≈ 3× forward.
  return 3.0 * model.forward_flops(1) * static_cast<double>(samples) *
         static_cast<double>(local_steps);
}

double reference_femnist_local_update_flops() {
  // Paper CNN on 1×28×28 inputs with 62 classes; ~180 samples/client, L=10.
  rng::Rng rng(0);
  const auto model = nn::paper_cnn(1, 28, 28, 62, rng);
  return local_update_flops(*model, 180, 10);
}

namespace {
// §IV-E anchors: one reference local update costs 4.24 s (A100) and 6.96 s
// (V100). Deriving throughput from the anchor keeps the ratio exactly 1.64
// regardless of how the FLOP estimate evolves.
constexpr double kA100ReferenceSeconds = 4.24;
constexpr double kV100ReferenceSeconds = 6.96;
}  // namespace

DeviceProfile a100() {
  return {"A100", reference_femnist_local_update_flops() / kA100ReferenceSeconds};
}

DeviceProfile v100() {
  return {"V100", reference_femnist_local_update_flops() / kV100ReferenceSeconds};
}

DeviceProfile laptop_cpu() {
  return {"laptop-cpu", 2.0e9};
}

}  // namespace appfl::hw
