// Model zoo: the paper's CNN plus smaller models used by tests and benches.
#pragma once

#include <cstddef>
#include <memory>

#include "nn/sequential.hpp"
#include "rng/rng.hpp"

namespace appfl::nn {

/// The paper's demonstration model (§IV-A): two 2-D convolution layers, a
/// 2-D max-pooling layer, elementwise ReLU, and two linear layers.
/// Works for any (channels, height, width) input, e.g. MNIST-like 1×28×28 or
/// CIFAR10-like 3×32×32.
std::unique_ptr<Sequential> paper_cnn(std::size_t in_channels,
                                      std::size_t height, std::size_t width,
                                      std::size_t num_classes, rng::Rng& rng,
                                      std::size_t conv1_channels = 8,
                                      std::size_t conv2_channels = 16,
                                      std::size_t hidden = 64);

/// One-hidden-layer MLP over flattened inputs (the fast model for the
/// scaled-down Fig 2 runs).
std::unique_ptr<Sequential> mlp(std::size_t in_features, std::size_t hidden,
                                std::size_t num_classes, rng::Rng& rng);

/// Multinomial logistic regression — the convex instance of objective (1);
/// used by the ADMM convergence tests where the optimum is well defined.
std::unique_ptr<Sequential> logistic_regression(std::size_t in_features,
                                                std::size_t num_classes,
                                                rng::Rng& rng);

}  // namespace appfl::nn
