// Batch normalization over NCHW feature maps (Ioffe & Szegedy).
//
// Training: normalizes each channel by the batch statistics over (N, H, W),
// applies learned scale γ and shift β, and updates running estimates with
// momentum. Evaluation: uses the running estimates. The backward pass
// implements the full batch-statistics gradient (the mean/variance terms,
// not the frozen approximation) and is finite-difference checked.
#pragma once

#include "nn/module.hpp"

namespace appfl::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1F,
                       float eps = 1e-5F);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override;
  std::vector<Param*> params() override;
  double forward_flops(std::size_t batch) const override;
  void set_training(bool training) override { training_ = training; }

  bool training() const { return training_; }
  std::span<const float> running_mean() const { return running_mean_; }
  std::span<const float> running_var() const { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_;
  float eps_;
  bool training_ = true;
  Param gamma_;
  Param beta_;
  std::vector<float> running_mean_;
  std::vector<float> running_var_;
  // Forward cache for backward (training mode).
  Tensor cached_xhat_;              // normalized activations
  std::vector<float> cached_mean_;  // batch mean per channel
  std::vector<float> cached_istd_;  // 1/√(var + ε) per channel
  tensor::Shape cached_shape_;
};

}  // namespace appfl::nn
