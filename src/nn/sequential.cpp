#include "nn/sequential.hpp"

#include <sstream>

#include "util/check.hpp"

namespace appfl::nn {

Sequential::Sequential(std::vector<std::unique_ptr<Module>> layers)
    : layers_(std::move(layers)) {
  for (const auto& l : layers_) APPFL_CHECK(l != nullptr);
}

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  APPFL_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::unique_ptr<Module> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& l : layers_) copy->add(l->clone());
  return copy;
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "Sequential(";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) os << ", ";
    os << layers_[i]->name();
  }
  os << ")";
  return os.str();
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    auto child = l->params();
    out.insert(out.end(), child.begin(), child.end());
  }
  return out;
}

double Sequential::forward_flops(std::size_t batch) const {
  double total = 0.0;
  for (const auto& l : layers_) total += l->forward_flops(batch);
  return total;
}

void Sequential::set_training(bool training) {
  for (auto& l : layers_) l->set_training(training);
}

Module& Sequential::layer(std::size_t i) {
  APPFL_CHECK(i < layers_.size());
  return *layers_[i];
}

}  // namespace appfl::nn
