#include "nn/dropout.hpp"

#include <sstream>

#include "util/check.hpp"

namespace appfl::nn {

Dropout::Dropout(float p, std::uint64_t seed)
    : p_(p), seed_(seed), rng_(seed) {
  APPFL_CHECK_MSG(p >= 0.0F && p < 1.0F, "dropout p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || p_ == 0.0F) {
    mask_ = Tensor();  // identity: backward passes grads through unchanged
    return input;
  }
  const float keep = 1.0F - p_;
  const float scale = 1.0F / keep;
  mask_ = Tensor(input.shape());
  Tensor out = input;
  auto md = mask_.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) {
    const bool kept = rng_.uniform01() >= p_;
    md[i] = kept ? scale : 0.0F;
    od[i] *= md[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.size() == 0) return grad_output;  // eval mode / p = 0
  APPFL_CHECK_MSG(grad_output.shape() == mask_.shape(),
                  "Dropout.backward shape mismatch — forward not called?");
  Tensor out = grad_output;
  auto od = out.data();
  const auto md = mask_.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] *= md[i];
  return out;
}

std::unique_ptr<Module> Dropout::clone() const {
  auto copy = std::make_unique<Dropout>(p_, seed_);
  copy->training_ = training_;
  return copy;
}

std::string Dropout::name() const {
  std::ostringstream os;
  os << "Dropout(p=" << p_ << ")";
  return os.str();
}

double Dropout::forward_flops(std::size_t batch) const {
  return static_cast<double>(mask_.size() == 0 ? batch : mask_.size());
}

}  // namespace appfl::nn
