// Max-pooling layer wrapping the tensor maxpool kernels.
#pragma once

#include "nn/module.hpp"
#include "tensor/pool.hpp"

namespace appfl::nn {

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::size_t kernel = 2, std::size_t stride = 2);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override;
  double forward_flops(std::size_t batch) const override;

 private:
  tensor::MaxPool2dSpec spec_;
  tensor::Shape cached_input_shape_;
  std::vector<std::size_t> cached_argmax_;
  mutable std::size_t last_elems_ = 0;
};

}  // namespace appfl::nn
