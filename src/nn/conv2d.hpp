// Convolution layer wrapping the tensor conv2d kernels.
#pragma once

#include "nn/module.hpp"
#include "rng/rng.hpp"
#include "tensor/conv.hpp"

namespace appfl::nn {

class Conv2d : public Module {
 public:
  /// Kernel selection for this layer's compute. kAuto defers to the
  /// process-wide kernel engine config (tensor::kernel_config): the tiled
  /// backend runs the im2col+GEMM lowering, the reference backend the
  /// direct loops — so conv compute follows the engine selection without
  /// every model-construction site knowing about it.
  enum class Backend { kDirect, kGemm, kAuto };

  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         rng::Rng& rng, std::size_t stride = 1, std::size_t padding = 0,
         Backend backend = Backend::kAuto);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override;
  std::vector<Param*> params() override;
  double forward_flops(std::size_t batch) const override;

  const tensor::Conv2dSpec& spec() const { return spec_; }
  Backend backend() const { return backend_; }

  /// The backend this layer's next forward/backward will actually run
  /// (kAuto resolved against the current engine config).
  Backend resolved_backend() const;

 private:
  Conv2d(const Conv2d&) = default;

  tensor::Conv2dSpec spec_;
  Backend backend_ = Backend::kAuto;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  // Spatial extent seen by the most recent forward; forward_flops needs a
  // representative input size, so we remember it (28×28 before first use).
  mutable std::size_t last_h_ = 28;
  mutable std::size_t last_w_ = 28;
};

}  // namespace appfl::nn
