// Loss functions. CrossEntropyLoss fuses log-softmax with negative
// log-likelihood (like torch.nn.CrossEntropyLoss): it takes raw logits.
#pragma once

#include <cstddef>
#include <span>

#include "nn/module.hpp"

namespace appfl::nn {

/// Result of a loss evaluation: the scalar mean loss and dLoss/dLogits.
struct LossResult {
  double loss = 0.0;
  Tensor grad;  // same shape as logits
};

class CrossEntropyLoss {
 public:
  /// logits: [N, C]; labels: N class indices in [0, C).
  /// Returns mean loss over the batch and the gradient (softmax − onehot)/N.
  LossResult compute(const Tensor& logits,
                     std::span<const std::size_t> labels) const;
};

class MseLoss {
 public:
  /// predictions and targets: same shape. Mean over all elements.
  LossResult compute(const Tensor& predictions, const Tensor& targets) const;
};

/// Fraction of rows whose argmax equals the label — the paper's test metric.
double accuracy(const Tensor& logits, std::span<const std::size_t> labels);

}  // namespace appfl::nn
