#include "nn/batchnorm2d.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace appfl::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("gamma", Tensor::full({channels}, 1.0F)),
      beta_("beta", Tensor({channels})),
      running_mean_(channels, 0.0F),
      running_var_(channels, 1.0F) {
  APPFL_CHECK(channels >= 1);
  APPFL_CHECK(momentum > 0.0F && momentum <= 1.0F);
  APPFL_CHECK(eps > 0.0F);
}

Tensor BatchNorm2d::forward(const Tensor& input) {
  APPFL_CHECK_MSG(input.rank() == 4 && input.dim(1) == channels_,
                  name() << " got " << tensor::to_string(input.shape()));
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t plane = h * w;
  const std::size_t count = n * plane;  // samples per channel
  APPFL_CHECK(count >= 1);
  cached_shape_ = input.shape();

  Tensor out(input.shape());
  cached_xhat_ = Tensor(input.shape());
  cached_mean_.assign(channels_, 0.0F);
  cached_istd_.assign(channels_, 0.0F);

  const float* X = input.raw();
  float* Y = out.raw();
  float* XH = cached_xhat_.raw();
  const float* G = gamma_.value.raw();
  const float* B = beta_.value.raw();

  for (std::size_t c = 0; c < channels_; ++c) {
    float mean, istd;
    if (training_) {
      double sum = 0.0, sum2 = 0.0;
      for (std::size_t img = 0; img < n; ++img) {
        const float* x = X + (img * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          sum += x[i];
          sum2 += static_cast<double>(x[i]) * x[i];
        }
      }
      const double m = sum / static_cast<double>(count);
      const double var = sum2 / static_cast<double>(count) - m * m;
      mean = static_cast<float>(m);
      istd = static_cast<float>(1.0 / std::sqrt(std::max(var, 0.0) + eps_));
      running_mean_[c] = (1.0F - momentum_) * running_mean_[c] + momentum_ * mean;
      running_var_[c] = (1.0F - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      istd = 1.0F / std::sqrt(running_var_[c] + eps_);
    }
    cached_mean_[c] = mean;
    cached_istd_[c] = istd;
    for (std::size_t img = 0; img < n; ++img) {
      const float* x = X + (img * channels_ + c) * plane;
      float* y = Y + (img * channels_ + c) * plane;
      float* xh = XH + (img * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        xh[i] = (x[i] - mean) * istd;
        y[i] = G[c] * xh[i] + B[c];
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(grad_output.shape() == cached_shape_,
                  name() << ".backward shape mismatch — forward not called?");
  const std::size_t n = cached_shape_[0], h = cached_shape_[2],
                    w = cached_shape_[3];
  const std::size_t plane = h * w;
  const std::size_t count = n * plane;

  Tensor grad_input(cached_shape_);
  const float* GY = grad_output.raw();
  const float* XH = cached_xhat_.raw();
  float* GX = grad_input.raw();
  float* GG = gamma_.grad.raw();
  float* GB = beta_.grad.raw();
  const float* G = gamma_.value.raw();

  for (std::size_t c = 0; c < channels_; ++c) {
    // Reductions: Σ gy and Σ gy·x̂ over the channel.
    double sum_gy = 0.0, sum_gy_xhat = 0.0;
    for (std::size_t img = 0; img < n; ++img) {
      const float* gy = GY + (img * channels_ + c) * plane;
      const float* xh = XH + (img * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_gy += gy[i];
        sum_gy_xhat += static_cast<double>(gy[i]) * xh[i];
      }
    }
    GG[c] += static_cast<float>(sum_gy_xhat);
    GB[c] += static_cast<float>(sum_gy);

    if (training_) {
      // dL/dx = γ·istd/count · (count·gy − Σgy − x̂·Σ(gy·x̂)).
      const float scale = G[c] * cached_istd_[c] / static_cast<float>(count);
      for (std::size_t img = 0; img < n; ++img) {
        const float* gy = GY + (img * channels_ + c) * plane;
        const float* xh = XH + (img * channels_ + c) * plane;
        float* gx = GX + (img * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          gx[i] = scale * (static_cast<float>(count) * gy[i] -
                           static_cast<float>(sum_gy) -
                           xh[i] * static_cast<float>(sum_gy_xhat));
        }
      }
    } else {
      // Eval: statistics are constants, so dL/dx = γ·istd·gy.
      const float scale = G[c] * cached_istd_[c];
      for (std::size_t img = 0; img < n; ++img) {
        const float* gy = GY + (img * channels_ + c) * plane;
        float* gx = GX + (img * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) gx[i] = scale * gy[i];
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Module> BatchNorm2d::clone() const {
  auto copy = std::make_unique<BatchNorm2d>(channels_, momentum_, eps_);
  copy->gamma_.value = gamma_.value;
  copy->beta_.value = beta_.value;
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  copy->training_ = training_;
  return copy;
}

std::string BatchNorm2d::name() const {
  std::ostringstream os;
  os << "BatchNorm2d(" << channels_ << ")";
  return os.str();
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

double BatchNorm2d::forward_flops(std::size_t batch) const {
  const double elems = cached_shape_.empty()
                           ? static_cast<double>(batch * channels_)
                           : static_cast<double>(tensor::numel(cached_shape_));
  return 5.0 * elems;  // mean/var reductions + normalize + affine
}

}  // namespace appfl::nn
