#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::nn {

LossResult CrossEntropyLoss::compute(
    const Tensor& logits, std::span<const std::size_t> labels) const {
  APPFL_CHECK_MSG(logits.rank() == 2,
                  "CrossEntropyLoss expects [N, C] logits, got "
                      << tensor::to_string(logits.shape()));
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);
  APPFL_CHECK_MSG(labels.size() == n, "label count " << labels.size()
                                                     << " != batch " << n);
  APPFL_CHECK(n > 0);

  Tensor probs = tensor::softmax_rows(logits);
  double loss = 0.0;
  auto pd = probs.data();
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t y = labels[r];
    APPFL_CHECK_MSG(y < c, "label " << y << " out of range for " << c
                                    << " classes");
    // Clamp to avoid log(0) when the softmax saturates in float32.
    const double p = std::max(static_cast<double>(pd[r * c + y]), 1e-12);
    loss -= std::log(p);
  }
  loss /= static_cast<double>(n);

  // grad = (softmax − onehot) / N.
  Tensor grad = std::move(probs);
  auto gd = grad.data();
  const float inv_n = 1.0F / static_cast<float>(n);
  for (std::size_t r = 0; r < n; ++r) {
    gd[r * c + labels[r]] -= 1.0F;
    for (std::size_t j = 0; j < c; ++j) gd[r * c + j] *= inv_n;
  }
  return {loss, std::move(grad)};
}

LossResult MseLoss::compute(const Tensor& predictions,
                            const Tensor& targets) const {
  APPFL_CHECK_MSG(predictions.shape() == targets.shape(),
                  "MseLoss shape mismatch "
                      << tensor::to_string(predictions.shape()) << " vs "
                      << tensor::to_string(targets.shape()));
  APPFL_CHECK(predictions.size() > 0);
  const std::size_t n = predictions.size();
  double loss = 0.0;
  Tensor grad = predictions;
  auto gd = grad.data();
  const auto td = targets.data();
  const float scale = 2.0F / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(gd[i]) - static_cast<double>(td[i]);
    loss += d * d;
    gd[i] = static_cast<float>(d) * scale;
  }
  return {loss / static_cast<double>(n), std::move(grad)};
}

double accuracy(const Tensor& logits, std::span<const std::size_t> labels) {
  const auto preds = tensor::argmax_rows(logits);
  APPFL_CHECK(preds.size() == labels.size());
  if (preds.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace appfl::nn
