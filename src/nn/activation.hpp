// Elementwise activation layers.
#pragma once

#include "nn/module.hpp"

namespace appfl::nn {

/// Rectified linear unit: y = max(x, 0).
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override { return "ReLU"; }
  double forward_flops(std::size_t batch) const override;

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent (extension layer — not in the paper's model, useful
/// for user-defined models).
class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override { return "Tanh"; }
  double forward_flops(std::size_t batch) const override;

 private:
  Tensor cached_output_;
};

}  // namespace appfl::nn
