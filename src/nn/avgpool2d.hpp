// Average pooling (NCHW): forward takes the window mean, backward spreads
// the gradient uniformly over the window.
#pragma once

#include "nn/module.hpp"

namespace appfl::nn {

class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(std::size_t kernel = 2, std::size_t stride = 2);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override;
  double forward_flops(std::size_t batch) const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  tensor::Shape cached_input_shape_;
};

}  // namespace appfl::nn
