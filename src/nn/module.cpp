#include "nn/module.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::nn {

std::size_t Module::num_parameters() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.size();
  return n;
}

std::vector<float> Module::flat_parameters() {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  for (Param* p : params()) {
    auto d = p->value.data();
    flat.insert(flat.end(), d.begin(), d.end());
  }
  return flat;
}

void Module::set_flat_parameters(std::span<const float> flat) {
  std::size_t off = 0;
  for (Param* p : params()) {
    auto d = p->value.data();
    APPFL_CHECK_MSG(off + d.size() <= flat.size(),
                    "flat parameter vector too short at param " << p->name);
    tensor::copy(flat.subspan(off, d.size()), d);
    off += d.size();
  }
  APPFL_CHECK_MSG(off == flat.size(), "flat parameter vector too long: "
                                          << flat.size() << " vs " << off);
}

std::vector<float> Module::flat_gradients() {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  for (Param* p : params()) {
    auto d = p->grad.data();
    flat.insert(flat.end(), d.begin(), d.end());
  }
  return flat;
}

void Module::zero_grad() {
  for (Param* p : params()) p->grad.fill(0.0F);
}

}  // namespace appfl::nn
