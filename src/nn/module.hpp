// Module: the torch.nn.Module stand-in.
//
// A Module is a differentiable block with named parameters. The FL layer
// never looks inside a model — it exchanges *flat parameter vectors*
// (flat_parameters / set_flat_parameters), exactly how APPFL moves PyTorch
// state_dicts across the wire. forward() caches whatever backward() needs,
// so the usage protocol is strictly: forward → backward → (read grads).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace appfl::nn {

using tensor::Tensor;

/// A named parameter: value and its accumulated gradient (same shape).
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes the output for `input`, caching activations for backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Given dLoss/dOutput, accumulates parameter grads and returns
  /// dLoss/dInput. Must be called after forward() on the same input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Deep copy with identical parameter values and zeroed caches. Used to
  /// stamp out per-client model replicas from a prototype.
  virtual std::unique_ptr<Module> clone() const = 0;

  /// Short structural name, e.g. "Linear(784->64)".
  virtual std::string name() const = 0;

  /// Direct parameters of this module (empty for stateless layers).
  /// Containers (Sequential) return the concatenation over children.
  virtual std::vector<Param*> params() { return {}; }

  /// Estimated forward FLOPs for a batch of `batch` inputs. Containers sum
  /// over children. Used by the hardware cost model (Fig 3a, §IV-E).
  virtual double forward_flops(std::size_t batch) const = 0;

  /// Switches train/eval behaviour (Dropout, future BatchNorm). Stateless
  /// layers ignore it; containers propagate to children. Default: training.
  virtual void set_training(bool training) { (void)training; }

  // -- Flat-vector plumbing (implemented on top of params()) ------------------

  /// Total number of scalar parameters.
  std::size_t num_parameters();

  /// Concatenation of all parameter values, in params() order.
  std::vector<float> flat_parameters();

  /// Overwrites all parameters from a flat vector (size must match).
  void set_flat_parameters(std::span<const float> flat);

  /// Concatenation of all parameter gradients.
  std::vector<float> flat_gradients();

  /// Zeroes every parameter gradient.
  void zero_grad();
};

}  // namespace appfl::nn
