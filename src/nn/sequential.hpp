// Sequential container: runs children in order (forward) and in reverse
// (backward). Owns its children.
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace appfl::nn {

class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::unique_ptr<Module>> layers);

  /// Appends a layer (builder style).
  Sequential& add(std::unique_ptr<Module> layer);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override;
  std::vector<Param*> params() override;
  double forward_flops(std::size_t batch) const override;

  void set_training(bool training) override;

  std::size_t num_layers() const { return layers_.size(); }
  Module& layer(std::size_t i);

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace appfl::nn
