#include "nn/activation.hpp"

#include <cmath>

#include "util/check.hpp"

namespace appfl::nn {

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.data()) v = v > 0.0F ? v : 0.0F;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(grad_output.shape() == cached_input_.shape(),
                  "ReLU.backward shape mismatch — forward not called?");
  Tensor out = grad_output;
  auto od = out.data();
  const auto xd = cached_input_.data();
  for (std::size_t i = 0; i < od.size(); ++i) {
    if (xd[i] <= 0.0F) od[i] = 0.0F;
  }
  return out;
}

std::unique_ptr<Module> ReLU::clone() const { return std::make_unique<ReLU>(); }

double ReLU::forward_flops(std::size_t batch) const {
  return static_cast<double>(
      cached_input_.size() == 0 ? batch : cached_input_.size());
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (auto& v : out.data()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(grad_output.shape() == cached_output_.shape(),
                  "Tanh.backward shape mismatch — forward not called?");
  Tensor out = grad_output;
  auto od = out.data();
  const auto yd = cached_output_.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] *= 1.0F - yd[i] * yd[i];
  return out;
}

std::unique_ptr<Module> Tanh::clone() const { return std::make_unique<Tanh>(); }

double Tanh::forward_flops(std::size_t batch) const {
  // tanh ≈ a handful of FLOPs; count 8 per element.
  return 8.0 * static_cast<double>(
                   cached_output_.size() == 0 ? batch : cached_output_.size());
}

}  // namespace appfl::nn
