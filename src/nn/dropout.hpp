// Inverted dropout: during training each activation is zeroed with
// probability p and survivors are scaled by 1/(1−p), so evaluation needs no
// rescaling. In eval mode it is the identity. Masks are drawn from a
// deterministic per-layer stream, so runs remain reproducible.
#pragma once

#include "nn/module.hpp"
#include "rng/rng.hpp"

namespace appfl::nn {

class Dropout : public Module {
 public:
  /// p: drop probability in [0, 1); seed fixes the mask stream.
  explicit Dropout(float p, std::uint64_t seed = 0xD0D0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override;
  double forward_flops(std::size_t batch) const override;
  void set_training(bool training) override { training_ = training; }

  bool training() const { return training_; }
  float p() const { return p_; }

 private:
  float p_;
  std::uint64_t seed_;
  bool training_ = true;
  rng::Rng rng_;
  Tensor mask_;  // survivor scaling per element of the last forward
};

}  // namespace appfl::nn
