#include "nn/maxpool2d.hpp"

#include <sstream>

#include "util/check.hpp"

namespace appfl::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : spec_{kernel, stride} {}

Tensor MaxPool2d::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  last_elems_ = input.size();
  auto result = tensor::maxpool2d_forward(input, spec_);
  cached_argmax_ = std::move(result.argmax);
  return std::move(result.output);
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(!cached_argmax_.empty(),
                  name() << ".backward called before forward");
  return tensor::maxpool2d_backward(grad_output, cached_argmax_,
                                    cached_input_shape_);
}

std::unique_ptr<Module> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(spec_.kernel, spec_.stride);
}

std::string MaxPool2d::name() const {
  std::ostringstream os;
  os << "MaxPool2d(k=" << spec_.kernel << ", s=" << spec_.stride << ")";
  return os.str();
}

double MaxPool2d::forward_flops(std::size_t batch) const {
  // One comparison per input element; count comparisons as FLOPs.
  (void)batch;
  return static_cast<double>(last_elems_ == 0 ? batch : last_elems_);
}

}  // namespace appfl::nn
