// Flatten: [N, ...] → [N, prod(...)], the bridge from conv to linear layers.
#pragma once

#include "nn/module.hpp"

namespace appfl::nn {

class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override { return "Flatten"; }
  double forward_flops(std::size_t batch) const override;

 private:
  tensor::Shape cached_input_shape_;
};

}  // namespace appfl::nn
