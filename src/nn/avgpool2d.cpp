#include "nn/avgpool2d.hpp"

#include <sstream>

#include "util/check.hpp"

namespace appfl::nn {

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  APPFL_CHECK(kernel >= 1 && stride >= 1);
}

Tensor AvgPool2d::forward(const Tensor& input) {
  APPFL_CHECK_MSG(input.rank() == 4, "AvgPool2d input must be NCHW, got "
                                         << tensor::to_string(input.shape()));
  cached_input_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  APPFL_CHECK(h >= kernel_ && w >= kernel_);
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  Tensor out({n, c, oh, ow});
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  const float* X = input.raw();
  float* Y = out.raw();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* x = X + (img * c + ch) * h * w;
      float* y = Y + (img * c + ch) * oh * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0F;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += x[(oy * stride_ + ky) * w + ox * stride_ + kx];
            }
          }
          y[oy * ow + ox] = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(!cached_input_shape_.empty(),
                  "AvgPool2d.backward called before forward");
  const std::size_t n = cached_input_shape_[0], c = cached_input_shape_[1];
  const std::size_t h = cached_input_shape_[2], w = cached_input_shape_[3];
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_input(cached_input_shape_);
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  const float* GY = grad_output.raw();
  float* GX = grad_input.raw();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* gy = GY + (img * c + ch) * oh * ow;
      float* gx = GX + (img * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = gy[oy * ow + ox] * inv;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              gx[(oy * stride_ + ky) * w + ox * stride_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Module> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(kernel_, stride_);
}

std::string AvgPool2d::name() const {
  std::ostringstream os;
  os << "AvgPool2d(k=" << kernel_ << ", s=" << stride_ << ")";
  return os.str();
}

double AvgPool2d::forward_flops(std::size_t batch) const {
  const double elems =
      cached_input_shape_.empty()
          ? static_cast<double>(batch)
          : static_cast<double>(tensor::numel(cached_input_shape_));
  return elems;
}

}  // namespace appfl::nn
