#include "nn/linear.hpp"

#include <cmath>
#include <sstream>

#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, rng::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("weight",
              Tensor::rand_uniform({out_features, in_features}, rng,
                                   -1.0F / std::sqrt(static_cast<float>(in_features)),
                                   1.0F / std::sqrt(static_cast<float>(in_features)))),
      bias_("bias",
            Tensor::rand_uniform({out_features}, rng,
                                 -1.0F / std::sqrt(static_cast<float>(in_features)),
                                 1.0F / std::sqrt(static_cast<float>(in_features)))) {
  APPFL_CHECK(in_features > 0 && out_features > 0);
}

Tensor Linear::forward(const Tensor& input) {
  APPFL_CHECK_MSG(input.rank() == 2 && input.dim(1) == in_,
                  name() << " got input " << tensor::to_string(input.shape()));
  cached_input_ = input;
  Tensor out = tensor::matmul_bt(input, weight_.value);  // [N, out]
  auto od = out.data();
  const auto bd = bias_.value.data();
  const std::size_t n = out.dim(0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < out_; ++c) od[r * out_ + c] += bd[c];
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(grad_output.rank() == 2 && grad_output.dim(1) == out_,
                  name() << " got grad " << tensor::to_string(grad_output.shape()));
  APPFL_CHECK_MSG(cached_input_.dim(0) == grad_output.dim(0),
                  "backward batch mismatch — forward not called?");
  // dW = gyᵀ · x; db = Σ_rows gy; dx = gy · W.
  Tensor dw = tensor::matmul_at(grad_output, cached_input_);  // [out, in]
  tensor::add_inplace(weight_.grad, dw);
  auto gb = bias_.grad.data();
  const auto gy = grad_output.data();
  const std::size_t n = grad_output.dim(0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < out_; ++c) gb[c] += gy[r * out_ + c];
  }
  return tensor::matmul(grad_output, weight_.value);  // [N, in]
}

std::unique_ptr<Module> Linear::clone() const {
  auto copy = std::unique_ptr<Linear>(new Linear(*this));
  copy->cached_input_ = Tensor();
  copy->weight_.grad.fill(0.0F);
  copy->bias_.grad.fill(0.0F);
  return copy;
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_ << "->" << out_ << ")";
  return os.str();
}

std::vector<Param*> Linear::params() { return {&weight_, &bias_}; }

double Linear::forward_flops(std::size_t batch) const {
  // One multiply-add per (batch, out, in) triple, plus the bias add.
  return static_cast<double>(batch) *
         (2.0 * static_cast<double>(in_) * static_cast<double>(out_) +
          static_cast<double>(out_));
}

}  // namespace appfl::nn
