#include "nn/model_zoo.hpp"

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/maxpool2d.hpp"
#include "util/check.hpp"

namespace appfl::nn {

std::unique_ptr<Sequential> paper_cnn(std::size_t in_channels,
                                      std::size_t height, std::size_t width,
                                      std::size_t num_classes, rng::Rng& rng,
                                      std::size_t conv1_channels,
                                      std::size_t conv2_channels,
                                      std::size_t hidden) {
  APPFL_CHECK(height >= 8 && width >= 8);
  auto model = std::make_unique<Sequential>();
  // conv(3x3, pad 1) → ReLU → conv(3x3, pad 1) → ReLU → maxpool(2) → fc → fc.
  model->add(std::make_unique<Conv2d>(in_channels, conv1_channels, 3, rng,
                                      /*stride=*/1, /*padding=*/1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Conv2d>(conv1_channels, conv2_channels, 3, rng,
                                      /*stride=*/1, /*padding=*/1));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<MaxPool2d>(2, 2));
  model->add(std::make_unique<Flatten>());
  const std::size_t flat = conv2_channels * (height / 2) * (width / 2);
  model->add(std::make_unique<Linear>(flat, hidden, rng));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Linear>(hidden, num_classes, rng));
  return model;
}

std::unique_ptr<Sequential> mlp(std::size_t in_features, std::size_t hidden,
                                std::size_t num_classes, rng::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Linear>(in_features, hidden, rng));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Linear>(hidden, num_classes, rng));
  return model;
}

std::unique_ptr<Sequential> logistic_regression(std::size_t in_features,
                                                std::size_t num_classes,
                                                rng::Rng& rng) {
  auto model = std::make_unique<Sequential>();
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Linear>(in_features, num_classes, rng));
  return model;
}

}  // namespace appfl::nn
