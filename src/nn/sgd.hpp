// SGD optimizer with classical momentum (Qian 1999) — the local solver the
// paper uses for FedAvg clients.
//
//   g ← g + λ·w  (decoupled L2 weight decay, when enabled)
//   v ← μ·v + g;  w ← w − η·v
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace appfl::nn {

class Sgd {
 public:
  /// lr: learning rate η > 0; momentum: μ ∈ [0, 1);
  /// weight_decay: L2 coefficient λ ≥ 0.
  Sgd(float lr, float momentum = 0.0F, float weight_decay = 0.0F);

  /// Applies one update using the gradients currently accumulated in
  /// `model`. Velocity buffers are allocated lazily on first use and keyed
  /// to the model's parameter layout.
  void step(Module& model);

  /// Drops velocity state (e.g. when the model is re-initialized).
  void reset();

  float lr() const { return lr_; }
  void set_lr(float lr);
  float momentum() const { return momentum_; }
  float weight_decay() const { return weight_decay_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;  // one buffer per parameter
};

/// Per-round learning-rate schedules for the FL client solver.
enum class LrSchedule { kConstant, kStepDecay, kCosine };

/// lr at communication round `round` (1-based) out of `total_rounds`.
///   kConstant : base
///   kStepDecay: base · decay^⌊(round−1)/step⌋  (step = total/3, decay 0.5)
///   kCosine   : base · ½(1 + cos(π·(round−1)/total))
float scheduled_lr(LrSchedule schedule, float base, std::size_t round,
                   std::size_t total_rounds);

}  // namespace appfl::nn
