// Fully connected layer: y = x·Wᵀ + b, with W [out, in] and b [out].
#pragma once

#include "nn/module.hpp"
#include "rng/rng.hpp"

namespace appfl::nn {

class Linear : public Module {
 public:
  /// Kaiming-uniform initialization: W, b ~ U(−1/√in, 1/√in).
  Linear(std::size_t in_features, std::size_t out_features, rng::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> clone() const override;
  std::string name() const override;
  std::vector<Param*> params() override;
  double forward_flops(std::size_t batch) const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  Linear(const Linear&) = default;

  std::size_t in_;
  std::size_t out_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;  // [N, in], saved by forward for backward
};

}  // namespace appfl::nn
