#include "nn/conv2d.hpp"

#include <cmath>
#include <sstream>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace appfl::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, rng::Rng& rng, std::size_t stride,
               std::size_t padding, Backend backend)
    : spec_{in_channels, out_channels, kernel, stride, padding},
      backend_(backend),
      weight_("weight", Tensor()),
      bias_("bias", Tensor()) {
  APPFL_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0);
  const float bound =
      1.0F / std::sqrt(static_cast<float>(in_channels * kernel * kernel));
  weight_ = Param("weight",
                  Tensor::rand_uniform({out_channels, in_channels, kernel, kernel},
                                       rng, -bound, bound));
  bias_ = Param("bias", Tensor::rand_uniform({out_channels}, rng, -bound, bound));
}

Conv2d::Backend Conv2d::resolved_backend() const {
  if (backend_ != Backend::kAuto) return backend_;
  return tensor::kernel_config().backend == tensor::KernelBackend::kTiled
             ? Backend::kGemm
             : Backend::kDirect;
}

Tensor Conv2d::forward(const Tensor& input) {
  last_h_ = input.dim(2);
  last_w_ = input.dim(3);
  cached_input_ = input;
  if (resolved_backend() == Backend::kGemm) {
    return tensor::conv2d_forward_gemm(input, weight_.value, bias_.value,
                                       spec_);
  }
  return tensor::conv2d_forward(input, weight_.value, bias_.value, spec_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(cached_input_.rank() == 4,
                  name() << ".backward called before forward");
  const bool gemm = resolved_backend() == Backend::kGemm;
  Tensor dw = gemm ? tensor::conv2d_backward_weight_gemm(grad_output,
                                                         cached_input_, spec_)
                   : tensor::conv2d_backward_weight(grad_output,
                                                    cached_input_, spec_);
  tensor::add_inplace(weight_.grad, dw);
  Tensor db = tensor::conv2d_backward_bias(grad_output);
  tensor::add_inplace(bias_.grad, db);
  if (gemm) {
    return tensor::conv2d_backward_input_gemm(grad_output, weight_.value,
                                              cached_input_.shape(), spec_);
  }
  return tensor::conv2d_backward_input(grad_output, weight_.value,
                                       cached_input_.shape(), spec_);
}

std::unique_ptr<Module> Conv2d::clone() const {
  auto copy = std::unique_ptr<Conv2d>(new Conv2d(*this));
  copy->cached_input_ = Tensor();
  copy->weight_.grad.fill(0.0F);
  copy->bias_.grad.fill(0.0F);
  return copy;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << spec_.in_channels << "->" << spec_.out_channels << ", k="
     << spec_.kernel << ", s=" << spec_.stride << ", p=" << spec_.padding << ")";
  return os.str();
}

std::vector<Param*> Conv2d::params() { return {&weight_, &bias_}; }

double Conv2d::forward_flops(std::size_t batch) const {
  const double oh = static_cast<double>(spec_.out_extent(last_h_));
  const double ow = static_cast<double>(spec_.out_extent(last_w_));
  const double per_output = 2.0 * static_cast<double>(spec_.in_channels) *
                            static_cast<double>(spec_.kernel * spec_.kernel);
  return static_cast<double>(batch) * static_cast<double>(spec_.out_channels) *
         oh * ow * per_output;
}

}  // namespace appfl::nn
