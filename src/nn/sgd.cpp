#include "nn/sgd.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace appfl::nn {

Sgd::Sgd(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  APPFL_CHECK_MSG(lr > 0.0F, "learning rate must be positive");
  APPFL_CHECK_MSG(momentum >= 0.0F && momentum < 1.0F,
                  "momentum must be in [0, 1)");
  APPFL_CHECK_MSG(weight_decay >= 0.0F, "weight decay must be non-negative");
}

void Sgd::set_lr(float lr) {
  APPFL_CHECK(lr > 0.0F);
  lr_ = lr;
}

void Sgd::step(Module& model) {
  auto params = model.params();
  if (velocity_.empty()) {
    velocity_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      velocity_[i].assign(params[i]->value.size(), 0.0F);
    }
  }
  APPFL_CHECK_MSG(velocity_.size() == params.size(),
                  "optimizer bound to a different model layout");
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto w = params[i]->value.data();
    const auto g = params[i]->grad.data();
    auto& v = velocity_[i];
    APPFL_CHECK(v.size() == w.size());
    if (momentum_ > 0.0F) {
      for (std::size_t j = 0; j < w.size(); ++j) {
        v[j] = momentum_ * v[j] + g[j] + weight_decay_ * w[j];
        w[j] -= lr_ * v[j];
      }
    } else {
      for (std::size_t j = 0; j < w.size(); ++j) {
        w[j] -= lr_ * (g[j] + weight_decay_ * w[j]);
      }
    }
  }
}

void Sgd::reset() { velocity_.clear(); }

float scheduled_lr(LrSchedule schedule, float base, std::size_t round,
                   std::size_t total_rounds) {
  APPFL_CHECK(base > 0.0F);
  APPFL_CHECK(round >= 1 && total_rounds >= 1);
  switch (schedule) {
    case LrSchedule::kConstant:
      return base;
    case LrSchedule::kStepDecay: {
      const std::size_t step = std::max<std::size_t>(1, total_rounds / 3);
      const std::size_t drops = (round - 1) / step;
      float lr = base;
      for (std::size_t i = 0; i < drops; ++i) lr *= 0.5F;
      return lr;
    }
    case LrSchedule::kCosine: {
      const double progress = static_cast<double>(round - 1) /
                              static_cast<double>(total_rounds);
      return static_cast<float>(base * 0.5 * (1.0 + std::cos(M_PI * progress)));
    }
  }
  APPFL_CHECK(false);
  return base;
}

}  // namespace appfl::nn
