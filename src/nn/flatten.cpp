#include "nn/flatten.hpp"

#include "util/check.hpp"

namespace appfl::nn {

Tensor Flatten::forward(const Tensor& input) {
  APPFL_CHECK_MSG(input.rank() >= 1, "Flatten needs a batch axis");
  cached_input_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  const std::size_t rest = n == 0 ? 0 : input.size() / n;
  return input.reshaped({n, rest});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  APPFL_CHECK_MSG(!cached_input_shape_.empty(),
                  "Flatten.backward called before forward");
  return grad_output.reshaped(cached_input_shape_);
}

std::unique_ptr<Module> Flatten::clone() const {
  return std::make_unique<Flatten>();
}

double Flatten::forward_flops(std::size_t) const { return 0.0; }

}  // namespace appfl::nn
