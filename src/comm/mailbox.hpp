// In-process message transport: one Mailbox per endpoint, an InProcNetwork
// routing messages between them. This is the actual data plane under both
// simulated protocols — bytes really are encoded by the sender and decoded
// by the receiver, so a protocol bug cannot hide behind the cost model.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace appfl::comm {

/// A delivered datagram: opaque bytes plus the sender's endpoint id.
struct Datagram {
  std::uint32_t from = 0;
  std::vector<std::uint8_t> bytes;
};

/// Unbounded MPSC queue with blocking and non-blocking receive.
class Mailbox {
 public:
  void push(Datagram d);

  /// Blocks until a datagram arrives.
  Datagram pop();

  /// Returns immediately; nullopt when the box is empty.
  std::optional<Datagram> try_pop();

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Datagram> queue_;
};

/// A fixed set of endpoints (0 = server, 1..P = clients) with one mailbox
/// each. send() copies nothing extra: the byte buffer is moved through.
class InProcNetwork {
 public:
  explicit InProcNetwork(std::size_t num_endpoints);

  std::size_t num_endpoints() const { return boxes_.size(); }

  void send(std::uint32_t from, std::uint32_t to,
            std::vector<std::uint8_t> bytes);

  /// Blocking receive at endpoint `at`.
  Datagram recv(std::uint32_t at);

  /// Non-blocking receive at endpoint `at`.
  std::optional<Datagram> try_recv(std::uint32_t at);

  /// Pending datagram count at `at` (diagnostics).
  std::size_t pending(std::uint32_t at) const;

 private:
  std::vector<Mailbox> boxes_;
};

}  // namespace appfl::comm
