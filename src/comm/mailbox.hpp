// In-process message transport: one Mailbox per endpoint, an InProcNetwork
// routing messages between them. This is the actual data plane under both
// simulated protocols — bytes really are encoded by the sender and decoded
// by the receiver, so a protocol bug cannot hide behind the cost model.
//
// The network optionally carries a deterministic FaultInjector that drops,
// duplicates, reorders, delays (in sim-clock seconds), or corrupts messages
// per link. With the injector off (the default) every path below reduces to
// the fault-free transport, bit for bit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace appfl::comm {

/// A delivered datagram: opaque bytes plus the sender's endpoint id.
/// `deliver_at` is the simulated time the bytes become visible to the
/// receiver (0 unless the fault injector added latency).
struct Datagram {
  std::uint32_t from = 0;
  std::vector<std::uint8_t> bytes;
  double deliver_at = 0.0;
};

/// Per-link fault probabilities for the in-process network. All-zero with
/// no dead endpoints (the default) disables the injector entirely.
struct FaultConfig {
  double drop = 0.0;        // P(message silently lost in flight)
  double duplicate = 0.0;   // P(message delivered twice)
  double reorder = 0.0;     // P(message jumps ahead of queued traffic)
  double corrupt = 0.0;     // P(one payload bit flipped in flight)
  double delay = 0.0;       // P(extra delivery latency added)
  double delay_max_s = 0.5; // delay drawn uniformly from (0, delay_max_s]
  std::vector<std::uint32_t> dead;  // endpoints whose links are fully down

  bool enabled() const;
  /// Throws appfl::Error on out-of-range probabilities or delay bounds.
  void validate() const;
};

/// Counters of faults the injector actually applied.
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
};

/// Deterministic, seeded fault scheduler. Each (from, to) link keeps its own
/// message sequence counter, and every decision draws from a fresh Rng
/// seeded by (seed, stream::kCommFault, from, to, seq) — so the fault
/// schedule is a pure function of the seed and each link's send order,
/// independent of how threads on different links interleave.
class FaultInjector {
 public:
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;
    bool corrupt = false;
    std::size_t corrupt_offset = 0;  // byte to damage
    std::uint8_t corrupt_mask = 1;   // XOR mask (single bit)
    double delay_s = 0.0;            // extra sim-clock latency
  };

  FaultInjector(FaultConfig config, std::uint64_t seed);

  /// Decides the fate of the next message on link from→to.
  Verdict judge(std::uint32_t from, std::uint32_t to, std::size_t num_bytes);

  const FaultConfig& config() const { return config_; }
  FaultStats stats() const;

  /// Resumable snapshot: the applied-fault counters plus every link's
  /// sequence counter (keys = (from << 32) | to, parallel to seqs). Since
  /// the schedule is a pure function of (seed, from, to, seq), restoring
  /// these continues the fault schedule with no replayed or skipped events.
  struct PersistentState {
    FaultStats stats;
    std::vector<std::uint64_t> link_keys;
    std::vector<std::uint64_t> link_seqs;
  };
  PersistentState persistent_state() const;
  void restore_persistent_state(const PersistentState& s);

 private:
  FaultConfig config_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> link_seq_;
  FaultStats stats_;
};

/// Returns `base` with APPFL_FAULT_* environment overrides applied:
/// APPFL_FAULT_DROP, _DUPLICATE, _REORDER, _CORRUPT, _DELAY, _DELAY_MAX_S
/// (doubles) and APPFL_FAULT_DEAD (comma-separated endpoint ids). Unset
/// variables leave the corresponding field untouched; unparseable values
/// are warned about on stderr and ignored rather than silently read as 0.
FaultConfig fault_config_from_env(FaultConfig base);

/// MPSC queue with blocking and non-blocking receive. Unbounded by default;
/// set_capacity installs a high-water mark so a misconfigured sender burst
/// (e.g. a 100k-client fan-in aimed at one box) degrades into counted drops
/// instead of unbounded std::deque growth.
class Mailbox {
 public:
  /// High-water mark: pushes beyond `cap` queued datagrams are rejected and
  /// counted. 0 (the default) = unbounded, bit-identical to the pre-cap
  /// mailbox. Not thread-safe against concurrent push/pop — configure
  /// before traffic flows.
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  std::size_t capacity() const { return capacity_; }

  /// Datagrams rejected by the high-water mark since construction.
  std::uint64_t overflows() const;

  /// False when the high-water mark rejected the datagram (overflow
  /// counted, nothing queued).
  bool push(Datagram d);

  /// Front-of-queue insert, used by the injector's reorder fault. Subject
  /// to the same high-water mark as push.
  bool push_front(Datagram d);

  /// Blocks until a datagram arrives (ignores deliver_at stamps — the
  /// fault-free path, where every stamp is 0).
  Datagram pop();

  /// Returns immediately; nullopt when the box is empty.
  std::optional<Datagram> try_pop();

  /// First queued datagram with deliver_at <= now; nullopt when none is
  /// ready yet (later-stamped traffic stays queued, preserving FIFO order
  /// among ready messages).
  std::optional<Datagram> try_pop_ready(double now);

  /// Earliest deliver_at among queued datagrams; negative when empty.
  double next_deliver_at() const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Datagram> queue_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t overflows_ = 0;
};

/// A fixed set of endpoints (0 = server, 1..P = clients) with one mailbox
/// each. send() copies nothing extra: the byte buffer is moved through.
class InProcNetwork {
 public:
  /// What happened to a send: whether it was delivered at all, the
  /// simulated time at which the receiver can first see it, and whether the
  /// payload was damaged in flight. A corrupted delivery reaches the
  /// receiver's mailbox but fails CRC validation there, so senders modelling
  /// an ack must treat `delivered && !corrupted` as the ack condition.
  struct SendOutcome {
    bool delivered = true;
    double deliver_at = 0.0;
    bool corrupted = false;
  };

  /// `faults`/`seed` configure the optional injector; a disabled config
  /// builds the plain lossless network. `mailbox_capacity` is the per-box
  /// high-water mark (0 = unbounded; see Mailbox::set_capacity).
  explicit InProcNetwork(std::size_t num_endpoints, FaultConfig faults = {},
                         std::uint64_t seed = 0,
                         std::size_t mailbox_capacity = 0);

  std::size_t num_endpoints() const { return boxes_.size(); }

  /// Datagrams rejected by mailbox high-water marks, summed over all
  /// endpoints (0 with unbounded mailboxes). A rejected primary delivery
  /// also reports SendOutcome::delivered == false to the sender.
  std::uint64_t mailbox_overflows() const;

  /// `now` is the current simulated time (stamped on the datagram; the
  /// injector's delay fault adds to it).
  SendOutcome send(std::uint32_t from, std::uint32_t to,
                   std::vector<std::uint8_t> bytes, double now = 0.0);

  /// Blocking receive at endpoint `at`.
  Datagram recv(std::uint32_t at);

  /// Non-blocking receive at endpoint `at`.
  std::optional<Datagram> try_recv(std::uint32_t at);

  /// Non-blocking receive of the first datagram already deliverable at
  /// simulated time `now`.
  std::optional<Datagram> try_recv_ready(std::uint32_t at, double now);

  /// Earliest pending delivery time at `at`; negative when the box is empty.
  double next_deliver_at(std::uint32_t at) const;

  /// Pending datagram count at `at` (diagnostics).
  std::size_t pending(std::uint32_t at) const;

  bool faults_enabled() const { return injector_ != nullptr; }
  /// Injected-fault counters (all zero when the injector is off).
  FaultStats fault_stats() const;

  /// Injector snapshot / restore for crash recovery (empty state / no-op
  /// when the injector is off).
  FaultInjector::PersistentState fault_persistent_state() const;
  void restore_fault_state(const FaultInjector::PersistentState& s);

 private:
  std::vector<Mailbox> boxes_;
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace appfl::comm
