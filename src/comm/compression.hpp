// Lossy update compression: the orthogonal communication-efficiency lever to
// IIADMM's algorithmic one (ship fewer vectors) — ship *smaller* vectors.
//
// Three standard codecs, composable with any FL algorithm that tolerates
// approximate updates (FedAvg-family; the error is absorbed like DP noise):
//   • fp16: IEEE binary16 with round-to-nearest-even — 2× smaller, relative
//     error ≤ 2⁻¹¹ for values in the normal half range, the cheapest and
//     least lossy of the three;
//   • 8-bit linear quantization in blocks: each block of values is mapped to
//     [0, 255] over its own [min, max] range — int8 with a per-chunk scale,
//     4× smaller than float32;
//   • top-k sparsification: keep the k largest-|·| coordinates as
//     (index, value) pairs — the classic gradient-sparsification codec.
// All provide encode/decode plus exact wire sizes so benches can trade
// accuracy against bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace appfl::comm {

/// 8-bit block-quantized vector.
struct Quantized8 {
  std::size_t size = 0;           // original length
  std::size_t block = 1024;       // values per range block
  std::vector<float> mins;        // per-block minimum
  std::vector<float> scales;      // per-block (max − min) / 255
  std::vector<std::uint8_t> codes;

  /// Bytes this encoding needs on the wire.
  std::size_t wire_bytes() const;
};

/// Encodes with per-block ranges; block ≥ 2.
Quantized8 quantize8(std::span<const float> values, std::size_t block = 1024);

/// Reconstructs the (lossy) vector.
std::vector<float> dequantize8(const Quantized8& q);

/// Worst-case absolute error of a quantize8 round trip: half a step of the
/// widest block.
double quantize8_error_bound(const Quantized8& q);

/// Symmetric int8 block quantization — the error-feedback wire codec's
/// lossy core. Unlike Quantized8 (min/max affine), codes are signed with a
/// per-block scale = max|·|/127, so zero maps to code 0 exactly: the
/// near-zero-concentrated error-feedback deltas then entropy-code to a few
/// bits per value (see encode_int8's Rice layer).
struct Int8Ef {
  std::size_t size = 0;      // original length
  std::size_t block = 512;   // values per scale block
  std::vector<float> scales; // per-block max|·| / 127
  std::vector<std::int8_t> codes;
};

/// Quantizes with per-block symmetric ranges; block ≥ 2. clip_range > 0
/// first clips values to ±clip_range — the DP-sensitivity-derived bound
/// that caps any outlier's quantization step (0 = fully adaptive). The
/// caller computes its error-feedback residual against dequantize_int8 of
/// the returned value, which the receiver reproduces bit-exactly.
Int8Ef quantize_int8(std::span<const float> values, float clip_range = 0.0F,
                     std::size_t block = 512);

/// Reconstructs the (lossy) vector: scale_b · code_i.
std::vector<float> dequantize_int8(const Int8Ef& q);

/// Top-k sparsified vector: the k largest-magnitude entries.

/// Top-k sparsified vector: the k largest-magnitude entries.
struct TopK {
  std::size_t size = 0;  // original length
  std::vector<std::uint32_t> indices;
  std::vector<float> values;

  std::size_t wire_bytes() const;
};

/// Keeps the k largest-|·| coordinates (k clamped to the vector length).
/// Deterministic tie-break by index.
TopK sparsify_topk(std::span<const float> values, std::size_t k);

/// Densifies back to length `size` with zeros elsewhere.
std::vector<float> densify(const TopK& sparse);

// -- fp16 (IEEE binary16) ----------------------------------------------------

/// float32 → binary16 with round-to-nearest-even. NaN stays NaN (quieted,
/// top payload bits kept), ±inf stays ±inf, overflow rounds to ±inf,
/// values below the subnormal range flush to signed zero.
std::uint16_t float_to_half(float v);

/// binary16 → float32, exact (every half value is representable in float).
float half_to_float(std::uint16_t h);

/// Worst-case relative round-trip error for values in the normal binary16
/// range: half a ulp of the 11-bit significand.
constexpr double kFp16RelativeErrorBound = 1.0 / 2048.0;  // 2⁻¹¹

// -- Byte serialization (for carrying compressed payloads in Message.packed) --

std::vector<std::uint8_t> encode_quantized8(const Quantized8& q);
Quantized8 decode_quantized8(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_topk(const TopK& sparse);
TopK decode_topk(std::span<const std::uint8_t> bytes);

/// Entropy-coded int8 serialization. Header [size u64 | block u64 |
/// num_blocks u64], then per block [scale f32 | mode u8 | rice_k u8 |
/// payload_len u16 LE | payload]. mode 0 Rice-codes the zigzag-folded
/// codes (u = 2c or −2c−1 ∈ [0, 254]) with the per-block parameter k that
/// minimizes total bits; mode 1 is a raw-int8 escape taken whenever Rice
/// would not beat 1 byte/value, so the encoding never expands past
/// quant8's. Error-feedback deltas concentrate near zero, which is what
/// makes the Rice layer beat the 4-bytes→1-byte floor and clear a ≥4×
/// wire reduction including headers.
std::vector<std::uint8_t> encode_int8(const Int8Ef& q);

/// Fully bounds-checked decode: any truncation, oversized count, bad mode,
/// or trailing bytes throws appfl::Error (never crashes or over-reads).
Int8Ef decode_int8(std::span<const std::uint8_t> bytes);

/// [count u64 | count × half u16 LE] — 2 bytes per value on the wire.
std::vector<std::uint8_t> encode_fp16(std::span<const float> values);
std::vector<float> decode_fp16(std::span<const std::uint8_t> bytes);

}  // namespace appfl::comm
