// Checksum-framed wire envelope for the fault plane.
//
// When fault injection is active, every datagram crossing the in-process
// network is framed as
//
//     [magic u32 | crc32(payload) u32 | payload...]
//
// so in-flight byte corruption is *detected* at the receiver (counted as a
// CRC failure and discarded) instead of being fed into decode_raw /
// decode_proto, where a flipped length byte could abort the process. With
// fault injection off the envelope is skipped entirely, keeping the wire
// bytes bit-identical to a fault-free build.
//
// CRC engine: crc32() runs slicing-by-8 (eight bytes per table step instead
// of one), and payloads past a size threshold are chunked across the shared
// kernel ThreadPool with the partial CRCs stitched together by
// crc32_combine() — checksums stay bit-identical to the original bytewise
// loop (kept as crc32_bytewise for tests and benchmarks) for every input,
// thread count, and chunking.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace appfl::comm {

/// IEEE CRC-32 (polynomial 0xEDB88320, reflected), as used by Ethernet/zip.
/// Slicing-by-8 with transparent chunked-parallel computation for large
/// buffers; bit-identical to crc32_bytewise on every input.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// The original one-table bytewise loop, kept as the correctness baseline
/// (known-answer tests) and the "before" side of bench/comm_path.
std::uint32_t crc32_bytewise(std::span<const std::uint8_t> bytes);

/// CRC of the concatenation A‖B from crc32(A), crc32(B) and |B| alone
/// (zlib's crc32_combine, GF(2) matrix exponentiation) — what lets chunk
/// CRCs computed in parallel collapse into the whole-buffer checksum.
std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::size_t len_b);

/// Buffers at or above this size fan their CRC out over the kernel pool
/// (unless the caller is already inside a pool worker).
constexpr std::size_t kParallelCrcThreshold = std::size_t{1} << 20;  // 1 MiB

/// Bytes the envelope adds in front of the payload (magic + checksum).
constexpr std::size_t kEnvelopeOverhead = 8;

/// Wraps `payload` in a checksum frame (moves the buffer; no payload copy).
std::vector<std::uint8_t> seal_envelope(std::vector<std::uint8_t> payload);

/// In-place variant for pooled encode buffers: `buf` must hold
/// kEnvelopeOverhead placeholder bytes followed by the payload; the header
/// is written into the placeholder, avoiding seal_envelope's O(n) front
/// insertion. Wire bytes are identical to seal_envelope's.
void seal_envelope_in_place(std::vector<std::uint8_t>& buf);

/// Verifies the frame and returns a view of the payload, or nullopt when
/// the buffer is too short, the magic is wrong, or the checksum mismatches.
std::optional<std::span<const std::uint8_t>> open_envelope(
    std::span<const std::uint8_t> bytes);

}  // namespace appfl::comm
