// Checksum-framed wire envelope for the fault plane.
//
// When fault injection is active, every datagram crossing the in-process
// network is framed as
//
//     [magic u32 | crc32(payload) u32 | payload...]
//
// so in-flight byte corruption is *detected* at the receiver (counted as a
// CRC failure and discarded) instead of being fed into decode_raw /
// decode_proto, where a flipped length byte could abort the process. With
// fault injection off the envelope is skipped entirely, keeping the wire
// bytes bit-identical to a fault-free build.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace appfl::comm {

/// IEEE CRC-32 (polynomial 0xEDB88320, reflected), as used by Ethernet/zip.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Bytes the envelope adds in front of the payload (magic + checksum).
constexpr std::size_t kEnvelopeOverhead = 8;

/// Wraps `payload` in a checksum frame (moves the buffer; no payload copy).
std::vector<std::uint8_t> seal_envelope(std::vector<std::uint8_t> payload);

/// Verifies the frame and returns a view of the payload, or nullopt when
/// the buffer is too short, the magic is wrong, or the checksum mismatches.
std::optional<std::span<const std::uint8_t>> open_envelope(
    std::span<const std::uint8_t> bytes);

}  // namespace appfl::comm
