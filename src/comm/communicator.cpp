#include "comm/communicator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "comm/compression.hpp"
#include "comm/envelope.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace appfl::comm {

std::string to_string(Protocol p) {
  return p == Protocol::kMpi ? "MPI" : "gRPC";
}

std::string to_string(UplinkCodec codec) {
  switch (codec) {
    case UplinkCodec::kNone: return "none";
    case UplinkCodec::kQuant8: return "quant8";
    case UplinkCodec::kTopK: return "topk";
    case UplinkCodec::kFp16: return "fp16";
    case UplinkCodec::kInt8Ef: return "int8";
  }
  return "?";
}

UplinkCodec uplink_codec_from_env(UplinkCodec base) {
  const char* env = std::getenv("APPFL_WIRE_CODEC");
  if (env == nullptr || *env == '\0') return base;
  const std::string v(env);
  if (v == "none") return UplinkCodec::kNone;
  if (v == "fp16") return UplinkCodec::kFp16;
  if (v == "quant8") return UplinkCodec::kQuant8;
  if (v == "topk") return UplinkCodec::kTopK;
  if (v == "int8") return UplinkCodec::kInt8Ef;
  std::fprintf(stderr,
               "appfl: ignoring invalid APPFL_WIRE_CODEC='%s' "
               "(expected none|fp16|quant8|topk|int8)\n",
               env);
  return base;
}

namespace {
constexpr std::uint64_t kFaultNetStream = 0xFE;

// Registry handles for the comm data path, resolved once per process
// (registration locks; updates afterwards are sharded relaxed atomics).
// Every use is guarded by obs::metrics_on(), and the counters mirror — never
// replace — TrafficStats: the stats struct stays the checkpointed source of
// truth, the registry gives the live-export view.
struct CommInstruments {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& messages_up = reg.counter("comm.messages_up");
  obs::Counter& messages_down = reg.counter("comm.messages_down");
  obs::Counter& bytes_up = reg.counter("comm.bytes_up");
  obs::Counter& bytes_down = reg.counter("comm.bytes_down");
  obs::Counter& bytes_up_precodec = reg.counter("comm.bytes_up_precodec");
  obs::Counter& retries = reg.counter("comm.retries");
  obs::Counter& crc_failures = reg.counter("comm.crc_failures");
  obs::Counter& discards = reg.counter("comm.discards");
  obs::Counter& gather_timeouts = reg.counter("comm.gather_timeouts");
  obs::Histogram& encode_s = reg.histogram("comm.encode_s", 1e-7, 1.0, 32);
  obs::Histogram& decode_s = reg.histogram("comm.decode_s", 1e-7, 1.0, 32);
  obs::Histogram& uplink_sim_transfer_s =
      reg.histogram("comm.uplink.sim_transfer_s", 1e-6, 100.0, 40);
};

CommInstruments& instruments() {
  static CommInstruments* in = new CommInstruments();  // never destroyed
  return *in;
}
}  // namespace

Communicator::Communicator(Protocol protocol, std::size_t num_clients,
                           std::uint64_t seed, CodecConfig codec,
                           ReliabilityConfig reliability)
    : protocol_(protocol),
      num_clients_(num_clients),
      seed_(seed),
      codec_(codec),
      reliability_(std::move(reliability)),
      network_(num_clients + 1, reliability_.faults,
               rng::derive_seed(seed, {kFaultNetStream}),
               reliability_.mailbox_capacity) {
  APPFL_CHECK_MSG(num_clients >= 1, "need at least one client");
  APPFL_CHECK(codec_.topk_fraction > 0.0 && codec_.topk_fraction <= 1.0);
  APPFL_CHECK_MSG(codec_.int8_range >= 0.0,
                  "int8 clip range must be non-negative");
  ef_residual_.resize(num_clients_);
  uplink_health_.resize(num_clients_);
  APPFL_CHECK_MSG(reliability_.gather_timeout_s > 0.0,
                  "gather deadline must be positive");
  APPFL_CHECK_MSG(reliability_.ack_timeout_s > 0.0 &&
                      reliability_.backoff_cap_s >= reliability_.ack_timeout_s,
                  "retransmit backoff must be positive and capped above the "
                  "base timeout");
}

void Communicator::compress_update(Message& m) {
  if (codec_.codec == UplinkCodec::kNone ||
      m.kind != MessageKind::kLocalUpdate || m.primal.empty()) {
    return;
  }
  APPFL_CHECK_MSG(m.dual.empty(),
                  "uplink codecs are lossy and cannot carry dual state");
  if (codec_.codec == UplinkCodec::kFp16) {
    m.packed = encode_fp16(m.primal);
  } else if (codec_.codec == UplinkCodec::kQuant8) {
    m.packed = encode_quantized8(quantize8(m.primal));
  } else if (codec_.codec == UplinkCodec::kTopK) {
    APPFL_CHECK_MSG(last_broadcast_primal_.size() == m.primal.size(),
                    "kTopK needs a matching broadcast to delta against");
    std::vector<float> delta = m.primal;
    for (std::size_t i = 0; i < delta.size(); ++i) {
      delta[i] -= last_broadcast_primal_[i];
    }
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(codec_.topk_fraction *
                         static_cast<double>(delta.size()))));
    m.packed = encode_topk(sparsify_topk(delta, k));
  } else {
    // kInt8Ef: quantize (delta + carried residual), keep the new
    // quantization error in the sender's residual slot so next round's
    // update corrects it. The server reconstructs dequantize(q) + w from
    // the same stored scales, bit-exactly.
    APPFL_CHECK_MSG(last_broadcast_primal_.size() == m.primal.size(),
                    "kInt8Ef needs a matching broadcast to delta against");
    APPFL_CHECK(m.sender >= 1 && m.sender <= num_clients_);
    std::vector<float>& residual = ef_residual_[m.sender - 1];
    if (residual.size() != m.primal.size()) {
      residual.assign(m.primal.size(), 0.0F);
    }
    std::vector<float> carried(m.primal.size());
    for (std::size_t i = 0; i < carried.size(); ++i) {
      carried[i] = (m.primal[i] - last_broadcast_primal_[i]) + residual[i];
    }
    const Int8Ef q =
        quantize_int8(carried, static_cast<float>(codec_.int8_range));
    const std::vector<float> recon = dequantize_int8(q);
    for (std::size_t i = 0; i < carried.size(); ++i) {
      residual[i] = carried[i] - recon[i];
    }
    m.packed = encode_int8(q);
  }
  m.codec = static_cast<std::uint8_t>(codec_.codec);
  m.primal.clear();
}

std::vector<float> Communicator::decode_packed(
    std::uint8_t codec, std::span<const std::uint8_t> packed) const {
  if (codec == static_cast<std::uint8_t>(UplinkCodec::kFp16)) {
    return decode_fp16(packed);
  }
  if (codec == static_cast<std::uint8_t>(UplinkCodec::kQuant8)) {
    return dequantize8(decode_quantized8(packed));
  }
  if (codec == static_cast<std::uint8_t>(UplinkCodec::kTopK)) {
    const TopK sparse = decode_topk(packed);
    APPFL_CHECK_MSG(sparse.size == last_broadcast_primal_.size(),
                    "top-k payload size does not match the broadcast model");
    std::vector<float> primal = densify(sparse);
    for (std::size_t i = 0; i < primal.size(); ++i) {
      primal[i] += last_broadcast_primal_[i];
    }
    return primal;
  }
  if (codec == static_cast<std::uint8_t>(UplinkCodec::kInt8Ef)) {
    const Int8Ef q = decode_int8(packed);
    APPFL_CHECK_MSG(q.size == last_broadcast_primal_.size(),
                    "int8 payload size does not match the broadcast model");
    std::vector<float> primal = dequantize_int8(q);
    for (std::size_t i = 0; i < primal.size(); ++i) {
      primal[i] += last_broadcast_primal_[i];
    }
    return primal;
  }
  APPFL_CHECK_MSG(false, "unknown uplink codec " << int{codec});
  return {};
}

void Communicator::decompress_update(Message& m) const {
  if (m.codec == 0) return;
  APPFL_CHECK_MSG(m.primal.empty(), "packed update also carries raw primal");
  m.primal = decode_packed(m.codec, m.packed);
  m.codec = 0;
  m.packed.clear();
}

void Communicator::encode_into(const Message& m,
                               std::vector<std::uint8_t>& out) const {
  const bool timed = obs::metrics_on();
  const double t0 = timed ? obs::Tracer::global().now() : 0.0;
  out.clear();
  // The CRC frame exists to catch injected corruption; without the injector
  // it is skipped so the wire bytes match the fault-free format exactly.
  const bool framed = network_.faults_enabled();
  if (framed) out.resize(kEnvelopeOverhead);  // header placeholder
  if (protocol_ == Protocol::kMpi) {
    encode_raw_append(m, out);
  } else {
    encode_proto_append(m, out);
  }
  if (framed) seal_envelope_in_place(out);
  if (timed) instruments().encode_s.record(obs::Tracer::global().now() - t0);
}

Message Communicator::decode(std::span<const std::uint8_t> bytes) const {
  const bool timed = obs::metrics_on();
  const double t0 = timed ? obs::Tracer::global().now() : 0.0;
  Message m =
      protocol_ == Protocol::kMpi ? decode_raw(bytes) : decode_proto(bytes);
  if (timed) instruments().decode_s.record(obs::Tracer::global().now() - t0);
  return m;
}

std::optional<MessageView> Communicator::decode_frame_view(
    std::span<const std::uint8_t> bytes) {
  const bool timed = obs::metrics_on();
  const double t0 = timed ? obs::Tracer::global().now() : 0.0;
  const auto done = [&] {
    if (timed) instruments().decode_s.record(obs::Tracer::global().now() - t0);
  };
  if (!network_.faults_enabled()) {
    auto v = protocol_ == Protocol::kMpi ? decode_raw_view(bytes)
                                         : decode_proto_view(bytes);
    done();
    return v;
  }
  const auto payload = open_envelope(bytes);
  if (!payload) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.crc_failures;
    }
    if (timed) instruments().crc_failures.inc();
    done();
    return std::nullopt;
  }
  try {
    auto v = protocol_ == Protocol::kMpi ? decode_raw_view(*payload)
                                         : decode_proto_view(*payload);
    done();
    return v;
  } catch (const appfl::Error&) {
    // A CRC collision let damaged bytes through, or the payload was built
    // malformed; either way decoding must not take the process down.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.crc_failures;
    }
    if (timed) instruments().crc_failures.inc();
    done();
    return std::nullopt;
  }
}

void Communicator::broadcast_global(
    const Message& m, std::span<const std::uint32_t> participants) {
  obs::ScopedSpan span("comm.broadcast", "comm");
  span.set_arg("round", m.round);
  APPFL_CHECK_MSG(m.sender == 0, "broadcast must originate at the server");
  std::vector<std::uint32_t> all;
  if (participants.empty()) {
    all.resize(num_clients_);
    for (std::uint32_t c = 1; c <= num_clients_; ++c) all[c - 1] = c;
    participants = all;
  }
  const double now = clock_.now();
  std::size_t bytes_each = 0;
  for (std::uint32_t c : participants) {
    APPFL_CHECK_MSG(c >= 1 && c <= num_clients_,
                    "broadcast to bad client id " << c);
    Message copy = m;
    copy.receiver = c;
    std::vector<std::uint8_t> bytes = pool_.acquire();
    encode_into(copy, bytes);
    bytes_each = bytes.size();
    stats_.bytes_down += bytes.size();
    ++stats_.messages_down;
    if (obs::metrics_on()) {
      instruments().bytes_down.add(bytes.size());
      instruments().messages_down.inc();
    }
    // Lost downlinks are not retried: the client misses the round and the
    // deadline gather treats it as a straggler.
    (void)network_.send(0, c, std::move(bytes), now);
  }
  last_broadcast_primal_ = m.primal;  // kTopK delta reference
  const std::size_t count = participants.size();
  if (protocol_ == Protocol::kMpi) {
    pending_broadcast_s_ = mpi_model_.broadcast_seconds(count, bytes_each);
  } else {
    // Downlink: the server pushes `count` responses through its streams.
    rng::Rng jitter(rng::derive_seed(seed_, {0xB0, m.round}));
    std::vector<double> times(count);
    for (auto& t : times) t = grpc_model_.transfer_seconds(bytes_each, jitter);
    pending_broadcast_s_ = grpc_model_.round_seconds(times);
  }
  span.set_sim(now, pending_broadcast_s_);
  clock_.advance(pending_broadcast_s_);
}

bool Communicator::send_update(std::uint32_t client, const Message& m) {
  obs::ScopedSpan span("comm.uplink.send", "comm");
  span.set_arg("client", client);
  APPFL_CHECK_MSG(client >= 1 && client <= num_clients_,
                  "bad client id " << client);
  APPFL_CHECK_MSG(m.sender == client, "sender field must match client id");
  Message outgoing = m;
  // Trace context rides the wire only when this span is live (obs=trace):
  // obs-off encodings stay byte-identical.
  if (outgoing.trace_span == 0) outgoing.trace_span = span.id();
  // What this update costs with the codec off — the exact encoded size of
  // the uncompressed message (no need to build those bytes), envelope
  // included. Accounted per send attempt so bytes_up_precodec / bytes_up is
  // the codec's true wire saving even under retransmission.
  const std::size_t precodec_bytes =
      (protocol_ == Protocol::kMpi ? raw_encoded_size(outgoing)
                                   : proto_encoded_size(outgoing)) +
      (network_.faults_enabled() ? kEnvelopeOverhead : 0);
  compress_update(outgoing);
  std::vector<std::uint8_t> bytes = pool_.acquire();
  encode_into(outgoing, bytes);
  const double now = clock_.now();
  if (!network_.faults_enabled()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_up += bytes.size();
      stats_.bytes_up_precodec += precodec_bytes;
      ++stats_.messages_up;
    }
    if (obs::metrics_on()) {
      instruments().bytes_up.add(bytes.size());
      instruments().bytes_up_precodec.add(precodec_bytes);
      instruments().messages_up.inc();
    }
    (void)network_.send(client, 0, std::move(bytes), now);
    return true;
  }
  // Stop-and-wait retransmit: the client re-sends until the (free, assumed
  // reliable) ack arrives, backing off exponentially up to the cap. The ack
  // horizon is the gather deadline — a delivery past it will be discarded
  // server-side as stale, which the client observes as a missing ack.
  const double deadline = now + reliability_.gather_timeout_s;
  double backoff = 0.0;
  for (std::size_t attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.bytes_up += bytes.size();
      stats_.bytes_up_precodec += precodec_bytes;
      ++stats_.messages_up;
      if (attempt > 0) {
        ++stats_.retries;
        ++uplink_health_[client - 1].retransmits;
      }
    }
    if (obs::metrics_on()) {
      instruments().bytes_up.add(bytes.size());
      instruments().bytes_up_precodec.add(precodec_bytes);
      instruments().messages_up.inc();
      if (attempt > 0) instruments().retries.inc();
    }
    const auto outcome = network_.send(client, 0, bytes, now + backoff);
    if (outcome.delivered && outcome.corrupted) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++uplink_health_[client - 1].corrupt;
    }
    // A corrupted delivery reaches the server but is CRC-discarded there,
    // so the receiver never acks it — to the sender it is a drop.
    if (outcome.delivered && !outcome.corrupted) {
      const bool in_time = outcome.deliver_at <= deadline;
      pool_.release(std::move(bytes));
      return in_time;
    }
    if (attempt >= reliability_.max_retries) {
      pool_.release(std::move(bytes));
      return false;
    }
    backoff += std::min(reliability_.backoff_cap_s,
                        reliability_.ack_timeout_s *
                            static_cast<double>(std::uint64_t{1} << attempt));
  }
}

Message Communicator::recv_global(std::uint32_t client) {
  APPFL_CHECK(client >= 1 && client <= num_clients_);
  Datagram d = network_.recv(client);
  APPFL_CHECK_MSG(d.from == 0, "client received a non-server message");
  Message m = decode(d.bytes);
  pool_.release(std::move(d.bytes));
  return m;
}

std::optional<Message> Communicator::try_recv_global(std::uint32_t client,
                                                     std::uint32_t round) {
  APPFL_CHECK(client >= 1 && client <= num_clients_);
  const double now = clock_.now();
  while (auto d = network_.try_recv_ready(client, now)) {
    if (d->from != 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.discards;
      }
      if (obs::metrics_on()) instruments().discards.inc();
      pool_.release(std::move(d->bytes));
      continue;
    }
    // Zero-copy peek: kind/round checks run on a view into the datagram;
    // only an accepted broadcast materializes its payload.
    std::optional<MessageView> v = decode_frame_view(d->bytes);
    if (v && v->kind == MessageKind::kGlobalModel && v->round == round) {
      Message m = v->detach();
      pool_.release(std::move(d->bytes));
      return m;
    }
    if (v) {
      // A broadcast from an earlier round that was delayed past its window.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.discards;
      }
      if (obs::metrics_on()) instruments().discards.inc();
    }  // else: counted by decode_frame_view
    pool_.release(std::move(d->bytes));
  }
  return std::nullopt;
}

std::vector<Message> Communicator::gather_locals(std::uint32_t round,
                                                 std::size_t expected) {
  return gather_batch(round, expected).take_messages();
}

GatherBatch Communicator::gather_batch(std::uint32_t round,
                                       std::size_t expected) {
  obs::ScopedSpan span("comm.gather", "comm");
  span.set_arg("round", round);
  if (expected == 0) expected = num_clients_;
  APPFL_CHECK_MSG(expected <= num_clients_,
                  "cannot gather " << expected << " updates from "
                                   << num_clients_ << " clients");
  GatherBatch batch;
  batch.pool_ = &pool_;
  batch.updates_.reserve(expected);
  batch.buffers_.reserve(expected);
  std::vector<bool> seen(num_clients_ + 1, false);
  std::vector<std::size_t> upload_bytes;
  upload_bytes.reserve(expected);
  std::vector<std::uint32_t> upload_senders;
  upload_senders.reserve(expected);
  std::vector<std::uint64_t> upload_spans;  // sender-side trace context
  upload_spans.reserve(expected);

  // Validates one datagram: duplicates, stale rounds, unknown senders, and
  // damaged payloads are discarded and counted — never fatal. Validation
  // runs on a zero-copy view into the datagram, so a rejected message never
  // copies its (multi-MB) payload. An accepted datagram is retained by the
  // batch (its floats are read in place during fused aggregation); a
  // rejected one recycles into the pool immediately. Returns whether the
  // datagram was accepted into the gather.
  const auto consider = [&](Datagram& d) {
    bool accepted = false;
    std::optional<MessageView> v = decode_frame_view(d.bytes);
    if (!v) {
      // counted by decode_frame_view
    } else if (v->kind != MessageKind::kLocalUpdate || v->sender < 1 ||
               v->sender > num_clients_ || v->round != round ||
               seen[v->sender]) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.discards;
      }
      if (obs::metrics_on()) instruments().discards.inc();
    } else {
      GatherUpdate u;
      u.sender = v->sender;
      u.receiver = v->receiver;
      u.round = v->round;
      u.sample_count = v->sample_count;
      u.loss = v->loss;
      u.rho = v->rho;
      u.trace_span = v->trace_span;
      if (v->codec == 0) {
        // Raw floats: read them where they landed.
        u.primal = WirePayload::f32_bytes(v->primal.bytes(), v->primal.size());
        u.dual = WirePayload::f32_bytes(v->dual.bytes(), v->dual.size());
      } else {
        APPFL_CHECK_MSG(v->primal.empty(),
                        "packed update also carries raw primal");
        if (v->codec == static_cast<std::uint8_t>(UplinkCodec::kFp16)) {
          // fp16 stays packed: validate the frame exactly as decode_fp16
          // would, then aggregate straight from the half bytes (the
          // widening kernel is the same exact conversion).
          const std::span<const std::uint8_t> p = v->packed;
          APPFL_CHECK_MSG(p.size() >= 8, "truncated compressed payload");
          std::uint64_t count = 0;
          for (int i = 0; i < 8; ++i) count |= std::uint64_t{p[i]} << (8 * i);
          APPFL_CHECK_MSG(count <= (p.size() - 8) / 2,
                          "truncated fp16 payload");
          APPFL_CHECK_MSG(8 + 2 * count == p.size(),
                          "trailing bytes in fp16 payload");
          u.primal = WirePayload::f16_bytes(p.data() + 8, count);
        } else {
          // quant8/topk/int8 need real decoding; the result lives in the
          // batch so downstream aggregation still reads it exactly once.
          auto decoded = std::make_unique<std::vector<float>>(
              decode_packed(v->codec, v->packed));
          u.primal = WirePayload::f32(decoded->data(), decoded->size());
          batch.decoded_.push_back(std::move(decoded));
        }
      }
      seen[u.sender] = true;
      upload_bytes.push_back(d.bytes.size());
      upload_senders.push_back(u.sender);
      upload_spans.push_back(u.trace_span);
      batch.buffers_.push_back(
          std::make_unique<std::vector<std::uint8_t>>(std::move(d.bytes)));
      batch.updates_.push_back(u);
      accepted = true;
    }
    if (!accepted) pool_.release(std::move(d.bytes));
    return accepted;
  };
  auto& out = batch.updates_;

  const double start = clock_.now();
  double waited_s = 0.0;  // extra sim-time spent waiting on late deliveries
  if (!network_.faults_enabled()) {
    // Fault-free path: block until every expected update has arrived —
    // identical timing and byte accounting to the pre-fault communicator.
    // Discards are still tolerated (a caller may legitimately double-send),
    // but once one has consumed a datagram and the mailbox runs dry the
    // missing update can never be replaced: fail loudly instead of letting
    // the blocking recv turn a caller bug into a silent deadlock.
    std::size_t discarded = 0;
    while (out.size() < expected) {
      std::optional<Datagram> d = network_.try_recv(0);
      if (!d) {
        if (discarded > 0) {
          // Unfillable gather: a flight-recorder trigger — dump the black
          // box before the error unwinds (or takes the process down).
          obs::flight_record(
              "gather.unfillable",
              "{\"round\":" + std::to_string(round) +
                  ",\"discarded\":" + std::to_string(discarded) +
                  ",\"received\":" + std::to_string(out.size()) +
                  ",\"expected\":" + std::to_string(expected) + "}");
          obs::FlightRecorder::global().dump("unfillable-gather");
        }
        APPFL_CHECK_MSG(discarded == 0,
                        "gather(round " << round << ") would block forever: "
                            << discarded << " message(s) were discarded "
                            << "(stale round, duplicate sender, or bad kind) "
                            << "and only " << out.size() << " of " << expected
                            << " expected updates arrived");
        d = network_.recv(0);
      }
      if (!consider(*d)) ++discarded;
    }
  } else {
    // Deadline drain: consume everything deliverable "now", fast-forward to
    // the next scheduled delivery while it is within the deadline, and give
    // up on whoever is left once nothing more can arrive in time.
    const double deadline = start + reliability_.gather_timeout_s;
    double vt = start;
    while (out.size() < expected) {
      if (auto d = network_.try_recv_ready(0, vt)) {
        consider(*d);
        continue;
      }
      const double next = network_.next_deliver_at(0);
      if (next >= 0.0 && next <= deadline) {
        vt = std::max(vt, next);
        continue;
      }
      break;  // nothing else can make the deadline
    }
    if (out.size() < expected) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.gather_timeouts;
      }
      if (obs::metrics_on()) instruments().gather_timeouts.inc();
      vt = deadline;  // the server waited the round out
    }
    waited_s = vt - start;
  }
  std::sort(out.begin(), out.end(),
            [](const GatherUpdate& a, const GatherUpdate& b) {
              return a.sender < b.sender;
            });

  RoundCommRecord rec;
  rec.round = round;
  rec.broadcast_s = pending_broadcast_s_;
  pending_broadcast_s_ = 0.0;

  const std::size_t received = upload_bytes.size();
  double model_s = 0.0;
  if (protocol_ == Protocol::kMpi) {
    // MPI.gather with one rank per participant; the per-rank payload is the
    // (uniform) encoded update size.
    std::size_t bytes_per_rank = 0;
    for (std::size_t b : upload_bytes) {
      bytes_per_rank = std::max(bytes_per_rank, b);
    }
    if (received > 0) model_s = mpi_model_.gather_seconds(received, bytes_per_rank);
  } else if (received > 0) {
    rng::Rng jitter(rng::derive_seed(seed_, {0xA0, round}));
    rec.client_transfer_s.resize(received);
    for (std::size_t i = 0; i < received; ++i) {
      rec.client_transfer_s[i] =
          grpc_model_.transfer_seconds(upload_bytes[i], jitter);
    }
    model_s = grpc_model_.round_seconds(rec.client_transfer_s);
    // Per-client uplink transfers on the sim timeline (the Fig 4b per-round
    // distribution): one zero-wall-cost record per accepted upload, carrying
    // the gRPC-model transfer time and the sender id.
    if (obs::metrics_on()) {
      for (double t : rec.client_transfer_s) {
        instruments().uplink_sim_transfer_s.record(t);
      }
    }
    if (obs::trace_on()) {
      obs::Tracer& tracer = obs::Tracer::global();
      for (std::size_t i = 0; i < received; ++i) {
        obs::SpanRecord r;
        r.name = "comm.uplink.transfer";
        r.cat = "comm";
        r.wall_start_s = tracer.now();
        r.wall_dur_s = 0.0;
        r.sim_start_s = start;
        r.sim_dur_s = rec.client_transfer_s[i];
        r.arg_name = "sender";
        r.arg = upload_senders[i];
        // Message edge: the transfer record is a child of the client-side
        // uplink.send span when its context rode the wire, else of the
        // gather span it was observed in.
        r.span_id = obs::next_span_id();
        r.parent_id = upload_spans[i] != 0 ? upload_spans[i] : span.id();
        tracer.emit(r);
      }
    }
  }
  rec.gather_s = std::max(model_s, waited_s);
  span.set_sim(start, rec.gather_s);
  clock_.advance(rec.gather_s);
  round_log_.push_back(std::move(rec));
  return batch;
}

std::vector<Message> Communicator::gather_secagg_shares(std::uint32_t round,
                                                        std::size_t expected) {
  obs::ScopedSpan span("comm.gather_shares", "comm");
  span.set_arg("round", round);
  if (expected == 0) expected = num_clients_;
  APPFL_CHECK_MSG(expected <= num_clients_,
                  "cannot gather " << expected << " share packets from "
                                   << num_clients_ << " clients");
  std::vector<Message> out;
  out.reserve(expected);
  std::vector<bool> seen(num_clients_ + 1, false);

  // Validates one datagram: anything that is not this round's first
  // kSecAggShares packet from a known sender is discarded and counted
  // (e.g. a previous round's delayed update drifting in).
  const auto consider = [&](Datagram& d) {
    std::optional<MessageView> v = decode_frame_view(d.bytes);
    if (!v) {
      // counted by decode_frame_view
    } else if (v->kind != MessageKind::kSecAggShares || v->sender < 1 ||
               v->sender > num_clients_ || v->round != round ||
               seen[v->sender]) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.discards;
      }
      if (obs::metrics_on()) instruments().discards.inc();
    } else {
      Message m;
      m.kind = MessageKind::kSecAggShares;
      m.sender = v->sender;
      m.receiver = v->receiver;
      m.round = v->round;
      m.sample_count = v->sample_count;
      v->primal.copy_into(m.primal);
      seen[m.sender] = true;
      out.push_back(std::move(m));
    }
    pool_.release(std::move(d.bytes));
  };

  const double start = clock_.now();
  if (!network_.faults_enabled()) {
    // Fault-free path: every packet arrives; the deadlock guard mirrors
    // gather_batch.
    std::size_t discarded = 0;
    while (out.size() < expected) {
      std::optional<Datagram> d = network_.try_recv(0);
      if (!d) {
        if (discarded > 0) {
          obs::flight_record(
              "gather.unfillable",
              "{\"round\":" + std::to_string(round) +
                  ",\"discarded\":" + std::to_string(discarded) +
                  ",\"received\":" + std::to_string(out.size()) +
                  ",\"expected\":" + std::to_string(expected) + "}");
          obs::FlightRecorder::global().dump("unfillable-gather");
        }
        APPFL_CHECK_MSG(discarded == 0,
                        "share gather(round " << round
                            << ") would block forever: " << discarded
                            << " message(s) were discarded and only "
                            << out.size() << " of " << expected
                            << " expected packets arrived");
        d = network_.recv(0);
      }
      const std::size_t before = out.size();
      consider(*d);
      if (out.size() == before) ++discarded;
    }
  } else {
    const double deadline = start + reliability_.gather_timeout_s;
    double vt = start;
    while (out.size() < expected) {
      if (auto d = network_.try_recv_ready(0, vt)) {
        consider(*d);
        continue;
      }
      const double next = network_.next_deliver_at(0);
      if (next >= 0.0 && next <= deadline) {
        vt = std::max(vt, next);
        continue;
      }
      break;  // nothing else can make the deadline
    }
    if (out.size() < expected) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.gather_timeouts;
      }
      if (obs::metrics_on()) instruments().gather_timeouts.inc();
      vt = deadline;  // the server waited the share phase out
    }
    span.set_sim(start, vt - start);
    clock_.advance(vt - start);
  }
  std::sort(out.begin(), out.end(), [](const Message& a, const Message& b) {
    return a.sender < b.sender;
  });
  return out;
}

GatherBatch::~GatherBatch() { release_buffers(); }

GatherBatch& GatherBatch::operator=(GatherBatch&& other) noexcept {
  if (this != &other) {
    release_buffers();
    updates_ = std::move(other.updates_);
    buffers_ = std::move(other.buffers_);
    decoded_ = std::move(other.decoded_);
    pool_ = other.pool_;
    other.pool_ = nullptr;
  }
  return *this;
}

void GatherBatch::release_buffers() {
  if (pool_ != nullptr) {
    for (auto& b : buffers_) pool_->release(std::move(*b));
  }
  buffers_.clear();
  decoded_.clear();
  updates_.clear();
  pool_ = nullptr;
}

std::vector<Message> GatherBatch::take_messages() const {
  std::vector<Message> out;
  out.reserve(updates_.size());
  for (const GatherUpdate& u : updates_) {
    Message m;
    m.kind = MessageKind::kLocalUpdate;
    m.sender = u.sender;
    m.receiver = u.receiver;
    m.round = u.round;
    m.sample_count = u.sample_count;
    m.loss = u.loss;
    m.rho = u.rho;
    m.trace_span = u.trace_span;
    m.primal.resize(u.primal.count);
    if (u.primal.enc == WireEncoding::kF32) {
      if (u.primal.count > 0) {
        std::memcpy(m.primal.data(), u.primal.data, 4 * u.primal.count);
      }
    } else {
      // Same exact conversion the fused path's widening kernel performs, so
      // fused and unfused consumers see identical floats.
      for (std::size_t i = 0; i < u.primal.count; ++i) {
        const auto h = static_cast<std::uint16_t>(
            std::uint16_t{u.primal.data[2 * i]} |
            (std::uint16_t{u.primal.data[2 * i + 1]} << 8));
        m.primal[i] = half_to_float(h);
      }
    }
    m.dual.resize(u.dual.count);
    if (u.dual.count > 0) {
      std::memcpy(m.dual.data(), u.dual.data, 4 * u.dual.count);
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Communicator::UplinkHealth> Communicator::uplink_health() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return uplink_health_;
}

TrafficStats Communicator::stats() const {
  TrafficStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s = stats_;
  }
  const FaultStats f = network_.fault_stats();
  s.drops = f.drops;
  s.duplicates = f.duplicates;
  s.reorders = f.reorders;
  s.corruptions = f.corruptions;
  s.delays = f.delays;
  // stats_.mailbox_overflows only carries a restored pre-crash base (the
  // live count lives in the network's mailboxes), so add rather than assign.
  s.mailbox_overflows += network_.mailbox_overflows();
  return s;
}

Communicator::PersistentState Communicator::persistent_state() const {
  PersistentState s;
  s.sim_now = clock_.now();
  s.stats = stats();
  const FaultInjector::PersistentState fs = network_.fault_persistent_state();
  s.link_keys = fs.link_keys;
  s.link_seqs = fs.link_seqs;
  s.ef_residuals = ef_residual_;
  return s;
}

void Communicator::restore_persistent_state(const PersistentState& s) {
  clock_.sync_to(s.sim_now);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    // The injector-owned counters are restored into the injector below;
    // stats() composes them back on top of this copy either way.
    stats_ = s.stats;
  }
  FaultInjector::PersistentState fs;
  fs.stats.drops = s.stats.drops;
  fs.stats.duplicates = s.stats.duplicates;
  fs.stats.reorders = s.stats.reorders;
  fs.stats.corruptions = s.stats.corruptions;
  fs.stats.delays = s.stats.delays;
  fs.link_keys = s.link_keys;
  fs.link_seqs = s.link_seqs;
  network_.restore_fault_state(fs);
  ef_residual_ = s.ef_residuals;
  ef_residual_.resize(num_clients_);  // tolerate snapshots without residuals
}

}  // namespace appfl::comm
