#include "comm/communicator.hpp"

#include <algorithm>
#include <cmath>

#include "comm/compression.hpp"
#include "util/check.hpp"

namespace appfl::comm {

std::string to_string(Protocol p) {
  return p == Protocol::kMpi ? "MPI" : "gRPC";
}

std::string to_string(UplinkCodec codec) {
  switch (codec) {
    case UplinkCodec::kNone: return "none";
    case UplinkCodec::kQuant8: return "quant8";
    case UplinkCodec::kTopK: return "topk";
  }
  return "?";
}

Communicator::Communicator(Protocol protocol, std::size_t num_clients,
                           std::uint64_t seed, CodecConfig codec)
    : protocol_(protocol),
      num_clients_(num_clients),
      seed_(seed),
      codec_(codec) ,
      network_(num_clients + 1) {
  APPFL_CHECK_MSG(num_clients >= 1, "need at least one client");
  APPFL_CHECK(codec_.topk_fraction > 0.0 && codec_.topk_fraction <= 1.0);
}

void Communicator::compress_update(Message& m) const {
  if (codec_.codec == UplinkCodec::kNone ||
      m.kind != MessageKind::kLocalUpdate || m.primal.empty()) {
    return;
  }
  APPFL_CHECK_MSG(m.dual.empty(),
                  "uplink codecs are lossy and cannot carry dual state");
  if (codec_.codec == UplinkCodec::kQuant8) {
    m.packed = encode_quantized8(quantize8(m.primal));
  } else {
    APPFL_CHECK_MSG(last_broadcast_primal_.size() == m.primal.size(),
                    "kTopK needs a matching broadcast to delta against");
    std::vector<float> delta = m.primal;
    for (std::size_t i = 0; i < delta.size(); ++i) {
      delta[i] -= last_broadcast_primal_[i];
    }
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(codec_.topk_fraction *
                         static_cast<double>(delta.size()))));
    m.packed = encode_topk(sparsify_topk(delta, k));
  }
  m.codec = static_cast<std::uint8_t>(codec_.codec);
  m.primal.clear();
}

void Communicator::decompress_update(Message& m) const {
  if (m.codec == 0) return;
  APPFL_CHECK_MSG(m.primal.empty(), "packed update also carries raw primal");
  if (m.codec == static_cast<std::uint8_t>(UplinkCodec::kQuant8)) {
    m.primal = dequantize8(decode_quantized8(m.packed));
  } else if (m.codec == static_cast<std::uint8_t>(UplinkCodec::kTopK)) {
    const TopK sparse = decode_topk(m.packed);
    APPFL_CHECK_MSG(sparse.size == last_broadcast_primal_.size(),
                    "top-k payload size does not match the broadcast model");
    m.primal = densify(sparse);
    for (std::size_t i = 0; i < m.primal.size(); ++i) {
      m.primal[i] += last_broadcast_primal_[i];
    }
  } else {
    APPFL_CHECK_MSG(false, "unknown uplink codec " << int{m.codec});
  }
  m.codec = 0;
  m.packed.clear();
}

std::vector<std::uint8_t> Communicator::encode(const Message& m) const {
  return protocol_ == Protocol::kMpi ? encode_raw(m) : encode_proto(m);
}

Message Communicator::decode(std::span<const std::uint8_t> bytes) const {
  return protocol_ == Protocol::kMpi ? decode_raw(bytes) : decode_proto(bytes);
}

void Communicator::broadcast_global(
    const Message& m, std::span<const std::uint32_t> participants) {
  APPFL_CHECK_MSG(m.sender == 0, "broadcast must originate at the server");
  std::vector<std::uint32_t> all;
  if (participants.empty()) {
    all.resize(num_clients_);
    for (std::uint32_t c = 1; c <= num_clients_; ++c) all[c - 1] = c;
    participants = all;
  }
  std::size_t bytes_each = 0;
  for (std::uint32_t c : participants) {
    APPFL_CHECK_MSG(c >= 1 && c <= num_clients_,
                    "broadcast to bad client id " << c);
    Message copy = m;
    copy.receiver = c;
    auto bytes = encode(copy);
    bytes_each = bytes.size();
    stats_.bytes_down += bytes.size();
    ++stats_.messages_down;
    network_.send(0, c, std::move(bytes));
  }
  last_broadcast_primal_ = m.primal;  // kTopK delta reference
  const std::size_t count = participants.size();
  if (protocol_ == Protocol::kMpi) {
    pending_broadcast_s_ = mpi_model_.broadcast_seconds(count, bytes_each);
  } else {
    // Downlink: the server pushes `count` responses through its streams.
    rng::Rng jitter(rng::derive_seed(seed_, {0xB0, m.round}));
    std::vector<double> times(count);
    for (auto& t : times) t = grpc_model_.transfer_seconds(bytes_each, jitter);
    pending_broadcast_s_ = grpc_model_.round_seconds(times);
  }
  clock_.advance(pending_broadcast_s_);
}

void Communicator::send_update(std::uint32_t client, const Message& m) {
  APPFL_CHECK_MSG(client >= 1 && client <= num_clients_,
                  "bad client id " << client);
  APPFL_CHECK_MSG(m.sender == client, "sender field must match client id");
  Message outgoing = m;
  compress_update(outgoing);
  auto bytes = encode(outgoing);
  stats_.bytes_up += bytes.size();
  ++stats_.messages_up;
  network_.send(client, 0, std::move(bytes));
}

Message Communicator::recv_global(std::uint32_t client) {
  APPFL_CHECK(client >= 1 && client <= num_clients_);
  Datagram d = network_.recv(client);
  APPFL_CHECK_MSG(d.from == 0, "client received a non-server message");
  return decode(d.bytes);
}

std::vector<Message> Communicator::gather_locals(std::uint32_t round,
                                                 std::size_t expected) {
  if (expected == 0) expected = num_clients_;
  APPFL_CHECK_MSG(expected <= num_clients_,
                  "cannot gather " << expected << " updates from "
                                   << num_clients_ << " clients");
  std::vector<Message> out;
  out.reserve(expected);
  std::vector<bool> seen(num_clients_ + 1, false);
  std::vector<std::size_t> upload_bytes;
  upload_bytes.reserve(expected);
  for (std::size_t received = 0; received < expected; ++received) {
    Datagram d = network_.recv(0);
    Message m = decode(d.bytes);
    decompress_update(m);
    APPFL_CHECK_MSG(m.sender >= 1 && m.sender <= num_clients_,
                    "gather got message from bad sender " << m.sender);
    APPFL_CHECK_MSG(!seen[m.sender],
                    "duplicate update from client " << m.sender);
    APPFL_CHECK_MSG(m.round == round, "gather round mismatch: got "
                                          << m.round << ", expected " << round);
    seen[m.sender] = true;
    upload_bytes.push_back(d.bytes.size());
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const Message& a, const Message& b) { return a.sender < b.sender; });

  RoundCommRecord rec;
  rec.round = round;
  rec.broadcast_s = pending_broadcast_s_;
  pending_broadcast_s_ = 0.0;

  if (protocol_ == Protocol::kMpi) {
    // MPI.gather with one rank per participant; the per-rank payload is the
    // (uniform) encoded update size.
    std::size_t bytes_per_rank = 0;
    for (std::size_t b : upload_bytes) {
      bytes_per_rank = std::max(bytes_per_rank, b);
    }
    rec.gather_s = mpi_model_.gather_seconds(expected, bytes_per_rank);
  } else {
    rng::Rng jitter(rng::derive_seed(seed_, {0xA0, round}));
    rec.client_transfer_s.resize(expected);
    for (std::size_t i = 0; i < expected; ++i) {
      rec.client_transfer_s[i] =
          grpc_model_.transfer_seconds(upload_bytes[i], jitter);
    }
    rec.gather_s = grpc_model_.round_seconds(rec.client_transfer_s);
  }
  clock_.advance(rec.gather_s);
  round_log_.push_back(std::move(rec));
  return out;
}

}  // namespace appfl::comm
