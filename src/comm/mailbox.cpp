#include "comm/mailbox.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace appfl::comm {

bool FaultConfig::enabled() const {
  return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0 ||
         delay > 0.0 || !dead.empty();
}

void FaultConfig::validate() const {
  const auto check_prob = [](double p, const char* name) {
    APPFL_CHECK_MSG(p >= 0.0 && p <= 1.0,
                    "fault probability " << name << " must be in [0, 1], got "
                                         << p);
  };
  check_prob(drop, "drop");
  check_prob(duplicate, "duplicate");
  check_prob(reorder, "reorder");
  check_prob(corrupt, "corrupt");
  check_prob(delay, "delay");
  if (delay > 0.0) {
    APPFL_CHECK_MSG(delay_max_s > 0.0,
                    "delay faults need a positive delay_max_s");
  }
}

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  config_.validate();
}

FaultInjector::Verdict FaultInjector::judge(std::uint32_t from,
                                            std::uint32_t to,
                                            std::size_t num_bytes) {
  Verdict v;
  const bool link_dead =
      std::find(config_.dead.begin(), config_.dead.end(), from) !=
          config_.dead.end() ||
      std::find(config_.dead.begin(), config_.dead.end(), to) !=
          config_.dead.end();
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t key = (std::uint64_t{from} << 32) | to;
    seq = link_seq_[key]++;
    if (link_dead) {
      v.drop = true;
      ++stats_.drops;
      return v;
    }
  }
  rng::Rng r(rng::derive_seed(seed_, {rng::stream::kCommFault, from, to, seq}));
  // Fixed draw order so enabling one fault knob never shifts the schedule
  // of another: drop, duplicate, reorder, delay(+amount), corrupt(+where).
  v.drop = r.uniform01() < config_.drop;
  v.duplicate = r.uniform01() < config_.duplicate;
  v.reorder = r.uniform01() < config_.reorder;
  const bool delayed = r.uniform01() < config_.delay;
  v.delay_s = delayed ? config_.delay_max_s * r.uniform01_open() : 0.0;
  v.corrupt = r.uniform01() < config_.corrupt && num_bytes > 0;
  if (v.corrupt) {
    v.corrupt_offset = static_cast<std::size_t>(r.uniform_below(num_bytes));
    v.corrupt_mask = static_cast<std::uint8_t>(1U << r.uniform_below(8));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (v.drop) {
      ++stats_.drops;
    } else {
      if (v.duplicate) ++stats_.duplicates;
      if (v.reorder) ++stats_.reorders;
      if (delayed) ++stats_.delays;
      if (v.corrupt) ++stats_.corruptions;
    }
  }
  return v;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

FaultInjector::PersistentState FaultInjector::persistent_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PersistentState s;
  s.stats = stats_;
  s.link_keys.reserve(link_seq_.size());
  s.link_seqs.reserve(link_seq_.size());
  for (const auto& [key, seq] : link_seq_) {
    s.link_keys.push_back(key);
    s.link_seqs.push_back(seq);
  }
  return s;
}

void FaultInjector::restore_persistent_state(const PersistentState& s) {
  APPFL_CHECK(s.link_keys.size() == s.link_seqs.size());
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = s.stats;
  link_seq_.clear();
  for (std::size_t i = 0; i < s.link_keys.size(); ++i) {
    link_seq_[s.link_keys[i]] = s.link_seqs[i];
  }
}

FaultConfig fault_config_from_env(FaultConfig base) {
  // Garbage values are warned about and ignored (the field keeps its base
  // value) — silently reading "abc" as 0 would disable a fault campaign
  // without any hint that the knob never engaged.
  const auto env_double = [](const char* name, double& field) {
    const char* value = std::getenv(name);
    if (!value) return;
    char* end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value || *end != '\0') {
      std::fprintf(stderr, "warning: ignoring unparseable %s='%s'\n", name,
                   value);
      return;
    }
    field = parsed;
  };
  env_double("APPFL_FAULT_DROP", base.drop);
  env_double("APPFL_FAULT_DUPLICATE", base.duplicate);
  env_double("APPFL_FAULT_REORDER", base.reorder);
  env_double("APPFL_FAULT_CORRUPT", base.corrupt);
  env_double("APPFL_FAULT_DELAY", base.delay);
  env_double("APPFL_FAULT_DELAY_MAX_S", base.delay_max_s);
  if (const char* value = std::getenv("APPFL_FAULT_DEAD")) {
    base.dead.clear();
    std::string list(value);
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string token =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!token.empty()) {
        if (token.find_first_not_of("0123456789") == std::string::npos) {
          base.dead.push_back(static_cast<std::uint32_t>(
              std::strtoul(token.c_str(), nullptr, 10)));
        } else {
          std::fprintf(stderr,
                       "warning: ignoring bad APPFL_FAULT_DEAD token '%s'\n",
                       token.c_str());
        }
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return base;
}

bool Mailbox::push(Datagram d) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ > 0 && queue_.size() >= capacity_) {
      ++overflows_;
      return false;
    }
    queue_.push_back(std::move(d));
  }
  cv_.notify_one();
  return true;
}

bool Mailbox::push_front(Datagram d) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ > 0 && queue_.size() >= capacity_) {
      ++overflows_;
      return false;
    }
    queue_.push_front(std::move(d));
  }
  cv_.notify_one();
  return true;
}

std::uint64_t Mailbox::overflows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overflows_;
}

Datagram Mailbox::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  return d;
}

std::optional<Datagram> Mailbox::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  return d;
}

std::optional<Datagram> Mailbox::try_pop_ready(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->deliver_at <= now) {
      Datagram d = std::move(*it);
      queue_.erase(it);
      return d;
    }
  }
  return std::nullopt;
}

double Mailbox::next_deliver_at() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return -1.0;
  double earliest = queue_.front().deliver_at;
  for (const Datagram& d : queue_) earliest = std::min(earliest, d.deliver_at);
  return earliest;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

InProcNetwork::InProcNetwork(std::size_t num_endpoints, FaultConfig faults,
                             std::uint64_t seed, std::size_t mailbox_capacity)
    : boxes_(num_endpoints) {
  APPFL_CHECK_MSG(num_endpoints >= 2,
                  "a network needs at least a server and one client");
  if (mailbox_capacity > 0) {
    for (Mailbox& box : boxes_) box.set_capacity(mailbox_capacity);
  }
  if (faults.enabled()) {
    injector_ = std::make_unique<FaultInjector>(std::move(faults), seed);
  }
}

std::uint64_t InProcNetwork::mailbox_overflows() const {
  std::uint64_t total = 0;
  for (const Mailbox& box : boxes_) total += box.overflows();
  return total;
}

InProcNetwork::SendOutcome InProcNetwork::send(std::uint32_t from,
                                               std::uint32_t to,
                                               std::vector<std::uint8_t> bytes,
                                               double now) {
  APPFL_CHECK_MSG(from < boxes_.size(), "bad sender endpoint " << from);
  APPFL_CHECK_MSG(to < boxes_.size(), "bad receiver endpoint " << to);
  if (!injector_) {
    if (!boxes_[to].push({from, std::move(bytes), now})) return {false, now};
    return {true, now};
  }
  const FaultInjector::Verdict v = injector_->judge(from, to, bytes.size());
  if (v.drop) return {false, now};
  if (v.corrupt) bytes[v.corrupt_offset] ^= v.corrupt_mask;
  const double at = now + v.delay_s;
  Datagram d{from, std::move(bytes), at};
  std::optional<Datagram> dup;
  if (v.duplicate) dup = d;  // identical second delivery
  bool delivered;
  if (v.reorder) {
    delivered = boxes_[to].push_front(std::move(d));
  } else {
    delivered = boxes_[to].push(std::move(d));
  }
  // The duplicate is an extra delivery: losing it to the high-water mark
  // only costs the redundant copy, never the outcome the sender sees.
  if (dup) boxes_[to].push(std::move(*dup));
  if (!delivered) return {false, now};
  return {true, at, v.corrupt};
}

Datagram InProcNetwork::recv(std::uint32_t at) {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].pop();
}

std::optional<Datagram> InProcNetwork::try_recv(std::uint32_t at) {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].try_pop();
}

std::optional<Datagram> InProcNetwork::try_recv_ready(std::uint32_t at,
                                                      double now) {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].try_pop_ready(now);
}

double InProcNetwork::next_deliver_at(std::uint32_t at) const {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].next_deliver_at();
}

std::size_t InProcNetwork::pending(std::uint32_t at) const {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].size();
}

FaultStats InProcNetwork::fault_stats() const {
  return injector_ ? injector_->stats() : FaultStats{};
}

FaultInjector::PersistentState InProcNetwork::fault_persistent_state() const {
  return injector_ ? injector_->persistent_state()
                   : FaultInjector::PersistentState{};
}

void InProcNetwork::restore_fault_state(
    const FaultInjector::PersistentState& s) {
  if (injector_) injector_->restore_persistent_state(s);
}

}  // namespace appfl::comm
