#include "comm/mailbox.hpp"

#include "util/check.hpp"

namespace appfl::comm {

void Mailbox::push(Datagram d) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(d));
  }
  cv_.notify_one();
}

Datagram Mailbox::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !queue_.empty(); });
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  return d;
}

std::optional<Datagram> Mailbox::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  return d;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

InProcNetwork::InProcNetwork(std::size_t num_endpoints)
    : boxes_(num_endpoints) {
  APPFL_CHECK_MSG(num_endpoints >= 2,
                  "a network needs at least a server and one client");
}

void InProcNetwork::send(std::uint32_t from, std::uint32_t to,
                         std::vector<std::uint8_t> bytes) {
  APPFL_CHECK_MSG(from < boxes_.size(), "bad sender endpoint " << from);
  APPFL_CHECK_MSG(to < boxes_.size(), "bad receiver endpoint " << to);
  boxes_[to].push({from, std::move(bytes)});
}

Datagram InProcNetwork::recv(std::uint32_t at) {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].pop();
}

std::optional<Datagram> InProcNetwork::try_recv(std::uint32_t at) {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].try_pop();
}

std::size_t InProcNetwork::pending(std::uint32_t at) const {
  APPFL_CHECK(at < boxes_.size());
  return boxes_[at].size();
}

}  // namespace appfl::comm
