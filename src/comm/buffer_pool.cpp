#include "comm/buffer_pool.hpp"

namespace appfl::comm {

std::vector<std::uint8_t> BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.acquires;
  if (free_.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(free_.back());
  free_.pop_back();
  buf.clear();  // capacity survives; contents do not
  ++stats_.reuses;
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) {
  if (buf.capacity() == 0) return;  // nothing worth keeping
  std::lock_guard<std::mutex> lock(mutex_);
  if (free_.size() >= max_buffers_) {
    ++stats_.dropped;
    return;  // buf frees on scope exit
  }
  free_.push_back(std::move(buf));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t BufferPool::free_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return free_.size();
}

}  // namespace appfl::comm
