// Analytic communication-time models, calibrated to the paper's measurements.
//
// ── MPI on Summit (InfiniBand + GPU-direct RDMA, MPI.gather) ────────────────
// The paper's anchor facts (§IV-C): going from 5 to 203 MPI processes
// shrinks the per-rank gather payload by ~40× but shrinks the gather time by
// only ~8×, because per-rank synchronization/progress overhead grows with
// the participant count while the payload term shrinks. We model one
// round's gather as
//     t = c_fixed + c_rank·P + payload_per_rank / bandwidth
// and calibrate (c_fixed, c_rank, bandwidth) so that with the FEMNIST CNN
// payload the 5→203 ratio is exactly the paper's 8× (see cost_model.cpp).
// The per-rank term (≈8 ms/rank) also extrapolates sanely to small
// experiments, where RDMA-backed MPI must beat TCP gRPC — the model is
// U-shaped in P with its minimum near P ≈ 100 for the FEMNIST payload.
//
// ── gRPC across nodes (no RDMA, protocol buffers, TCP) ─────────────────────
// Per §IV-D, gRPC pays (i) protobuf serialize/deserialize, (ii) GPU→CPU
// copies, (iii) TCP transfer without RDMA, and (iv) traffic-dependent
// variance — the paper observes a ~30× spread of per-round client times and
// a ~10× cumulative disadvantage vs MPI. Each client transfer is
//     t = (ser + copy + net_latency + bytes/net_bw) · jitter
// with jitter ~ LogNormal(0, σ) mixed with an occasional congestion burst,
// and a round aggregates client transfers over a bounded number of
// concurrent server streams.
#pragma once

#include <cstddef>
#include <vector>

#include "rng/rng.hpp"

namespace appfl::comm {

/// Calibration payload: bytes of one client's encoded FEMNIST model update
/// (the paper's CNN state for 62 classes, ≈6.5M float32 parameters). The
/// MpiCostModel defaults are fit against this payload; see cost_model.cpp.
constexpr std::size_t kFemnistModelBytes = 26'000'000;

struct MpiCostModel {
  // Calibrated in cost_model.cpp to the paper's 40×-payload/8×-time anchor.
  double fixed_overhead_s = 0.02;     // collective setup cost
  double per_rank_s = 0.00782;        // per-participant progress/sync cost
  double bandwidth_bytes_per_s = 66.2e6;  // effective per-rank gather injection

  /// Time for one MPI.gather over `ranks` participants, each contributing
  /// `bytes_per_rank` (root included; payloads move via RDMA, no serialize).
  double gather_seconds(std::size_t ranks, std::size_t bytes_per_rank) const;

  /// Broadcast of `bytes` from the root to `ranks` ranks (tree pipeline).
  double broadcast_seconds(std::size_t ranks, std::size_t bytes) const;
};

struct GrpcCostModel {
  double serialize_bytes_per_s = 1.0e9;   // protobuf encode+decode throughput
  double copy_bytes_per_s = 4.0e9;        // GPU→CPU staging copy
  double net_latency_s = 2.0e-3;          // TCP RTT-ish setup per message
  double net_bandwidth_bytes_per_s = 0.15e9;  // TCP goodput, no RDMA
  double jitter_sigma = 0.55;             // lognormal σ of traffic noise
  double congestion_prob = 0.06;          // heavy-tail burst probability
  double congestion_min = 5.0;            // burst multiplier range
  double congestion_max = 18.0;
  std::size_t server_streams = 8;         // concurrent uploads the server absorbs

  /// One client→server (or server→client) transfer of `bytes`, jittered.
  double transfer_seconds(std::size_t bytes, rng::Rng& rng) const;

  /// Deterministic part of transfer_seconds (jitter factor = 1).
  double base_transfer_seconds(std::size_t bytes) const;

  /// Aggregates `client_times` (one per client) into the round's server-side
  /// communication time: sum/streams + the slowest single transfer.
  double round_seconds(const std::vector<double>& client_times) const;
};

}  // namespace appfl::comm
