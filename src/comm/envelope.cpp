#include "comm/envelope.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "tensor/gemm.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace appfl::comm {

namespace {

constexpr std::uint32_t kMagic = 0x41504643;  // "APFC" (APpfl Frame + Crc)
constexpr std::uint32_t kPoly = 0xEDB88320U;  // reflected CRC-32

// Slicing-by-8 tables: table[0] is the classic bytewise table; table[k]
// advances a byte through k additional zero bytes, so eight lookups retire
// eight input bytes per iteration.
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables make_crc_tables() {
  CrcTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = t[k - 1][i];
      t[k][i] = t[0][prev & 0xFFU] ^ (prev >> 8);
    }
  }
  return t;
}

const CrcTables& crc_tables() {
  static const CrcTables tables = make_crc_tables();
  return tables;
}

/// Sliced serial kernel over one contiguous range, starting from (and
/// returning) a raw register value (pre/post-conditioning is the caller's
/// job so chunks can be chained).
std::uint32_t crc32_sliced_raw(std::uint32_t crc, const std::uint8_t* p,
                               std::size_t n) {
  const CrcTables& t = crc_tables();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFU] ^ t[6][(lo >> 8) & 0xFFU] ^
          t[5][(lo >> 16) & 0xFFU] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFU] ^
          t[2][(hi >> 8) & 0xFFU] ^ t[1][(hi >> 16) & 0xFFU] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFU] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t crc32_serial(std::span<const std::uint8_t> bytes) {
  return crc32_sliced_raw(0xFFFFFFFFU, bytes.data(), bytes.size()) ^
         0xFFFFFFFFU;
}

// -- GF(2) matrix helpers for crc32_combine (zlib's algorithm) ---------------

std::uint32_t gf2_matrix_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if ((vec & 1U) != 0) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square, const std::uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = gf2_matrix_times(mat, mat[n]);
}

/// Fixed chunk width for the parallel path. Chunk boundaries depend only on
/// the buffer size — never on the thread count — and crc32_combine is exact,
/// so the result is identical to the serial CRC regardless of pool size.
constexpr std::size_t kCrcChunk = std::size_t{1} << 19;  // 512 KiB

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[i]} << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32_bytewise(std::span<const std::uint8_t> bytes) {
  const CrcTables& t = crc_tables();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t b : bytes) {
    crc = t[0][(crc ^ b) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::size_t len_b) {
  if (len_b == 0) return crc_a;
  std::uint32_t even[32];  // operator for 2^(2k) zero bytes
  std::uint32_t odd[32];   // operator for 2^(2k+1) zero bytes

  // odd = operator for one zero bit.
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two zero bits
  gf2_matrix_square(odd, even);  // four zero bits (one nibble)

  // Advance crc_a through len_b zero *bytes*, squaring as len_b's bits run
  // out, then add crc_b's effect.
  std::uint64_t len = len_b;
  do {
    gf2_matrix_square(even, odd);
    if ((len & 1U) != 0) crc_a = gf2_matrix_times(even, crc_a);
    len >>= 1;
    if (len == 0) break;
    gf2_matrix_square(odd, even);
    if ((len & 1U) != 0) crc_a = gf2_matrix_times(odd, crc_a);
    len >>= 1;
  } while (len != 0);
  return crc_a ^ crc_b;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kParallelCrcThreshold ||
      util::ThreadPool::on_worker_thread()) {
    return crc32_serial(bytes);
  }
  const auto pool = tensor::kernel_pool();
  if (pool->size() <= 1) return crc32_serial(bytes);

  const std::size_t chunks = (bytes.size() + kCrcChunk - 1) / kCrcChunk;
  std::vector<std::uint32_t> partial(chunks);
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * kCrcChunk;
    const std::size_t len = std::min(kCrcChunk, bytes.size() - begin);
    partial[c] = crc32_serial(bytes.subspan(begin, len));
  });
  std::uint32_t crc = partial[0];
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = c * kCrcChunk;
    const std::size_t len = std::min(kCrcChunk, bytes.size() - begin);
    crc = crc32_combine(crc, partial[c], len);
  }
  return crc;
}

std::vector<std::uint8_t> seal_envelope(std::vector<std::uint8_t> payload) {
  const std::uint32_t checksum = crc32(payload);
  // Grow in place and shift the payload up so callers keep move semantics.
  payload.insert(payload.begin(), kEnvelopeOverhead, 0);
  put_u32(payload.data(), kMagic);
  put_u32(payload.data() + 4, checksum);
  return payload;
}

void seal_envelope_in_place(std::vector<std::uint8_t>& buf) {
  APPFL_CHECK_MSG(buf.size() >= kEnvelopeOverhead,
                  "seal_envelope_in_place needs the header placeholder");
  const std::uint32_t checksum = crc32(
      std::span<const std::uint8_t>(buf).subspan(kEnvelopeOverhead));
  put_u32(buf.data(), kMagic);
  put_u32(buf.data() + 4, checksum);
}

std::optional<std::span<const std::uint8_t>> open_envelope(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kEnvelopeOverhead) return std::nullopt;
  if (get_u32(bytes.data()) != kMagic) return std::nullopt;
  const std::uint32_t stated = get_u32(bytes.data() + 4);
  const auto payload = bytes.subspan(kEnvelopeOverhead);
  if (crc32(payload) != stated) return std::nullopt;
  return payload;
}

}  // namespace appfl::comm
