#include "comm/envelope.hpp"

#include <array>

namespace appfl::comm {

namespace {

constexpr std::uint32_t kMagic = 0x41504643;  // "APFC" (APpfl Frame + Crc)

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[i]} << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t b : bytes) {
    crc = table[(crc ^ b) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::vector<std::uint8_t> seal_envelope(std::vector<std::uint8_t> payload) {
  const std::uint32_t checksum = crc32(payload);
  // Grow in place and shift the payload up so callers keep move semantics.
  payload.insert(payload.begin(), kEnvelopeOverhead, 0);
  put_u32(payload.data(), kMagic);
  put_u32(payload.data() + 4, checksum);
  return payload;
}

std::optional<std::span<const std::uint8_t>> open_envelope(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kEnvelopeOverhead) return std::nullopt;
  if (get_u32(bytes.data()) != kMagic) return std::nullopt;
  const std::uint32_t stated = get_u32(bytes.data() + 4);
  const auto payload = bytes.subspan(kEnvelopeOverhead);
  if (crc32(payload) != stated) return std::nullopt;
  return payload;
}

}  // namespace appfl::comm
