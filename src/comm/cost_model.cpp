#include "comm/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace appfl::comm {

// Calibration note (defaults in the header). With the FEMNIST-scale model of
// m ≈ 26 MB per client bundle:
//   payload_per_rank(P) = (203 / P) · m,   q := m / BW ≈ 0.393 s
//   t(5)   = 0.02 + 0.00782·5   + 40.6·q ≈ 16.0 s
//   t(203) = 0.02 + 0.00782·203 + 1.0·q  ≈  2.0 s
// giving the paper's ~8× time reduction for a ~40× payload reduction, and a
// gather share of local-update time that rises from ~5% (5 ranks) to ~22%
// (203 ranks), matching Fig 3b's shape. The per-rank coefficient makes the
// model U-shaped in P (minimum near P ≈ √(203·q/c_rank) ≈ 101 for this
// payload) and keeps small-message gathers in the millisecond range, so
// RDMA MPI stays faster than TCP gRPC at every scale. Unit tests pin the
// anchors and the U-shape.

double MpiCostModel::gather_seconds(std::size_t ranks,
                                    std::size_t bytes_per_rank) const {
  APPFL_CHECK(ranks >= 1);
  return fixed_overhead_s + per_rank_s * static_cast<double>(ranks) +
         static_cast<double>(bytes_per_rank) / bandwidth_bytes_per_s;
}

double MpiCostModel::broadcast_seconds(std::size_t ranks,
                                       std::size_t bytes) const {
  APPFL_CHECK(ranks >= 1);
  // Pipelined binomial tree: cheaper per rank than a gather (stages overlap)
  // and the payload term is paid ~once.
  return 0.5 * fixed_overhead_s +
         0.5 * per_rank_s * static_cast<double>(ranks) +
         static_cast<double>(bytes) / bandwidth_bytes_per_s;
}

double GrpcCostModel::base_transfer_seconds(std::size_t bytes) const {
  const double b = static_cast<double>(bytes);
  return b / serialize_bytes_per_s + b / copy_bytes_per_s + net_latency_s +
         b / net_bandwidth_bytes_per_s;
}

double GrpcCostModel::transfer_seconds(std::size_t bytes,
                                       rng::Rng& rng) const {
  double jitter = rng::lognormal(rng, 0.0, jitter_sigma);
  if (rng::bernoulli(rng, congestion_prob)) {
    jitter *= rng::uniform(rng, congestion_min, congestion_max);
  }
  return base_transfer_seconds(bytes) * jitter;
}

double GrpcCostModel::round_seconds(
    const std::vector<double>& client_times) const {
  APPFL_CHECK(!client_times.empty());
  APPFL_CHECK(server_streams >= 1);
  double sum = 0.0;
  double mx = 0.0;
  for (double t : client_times) {
    APPFL_CHECK(t >= 0.0);
    sum += t;
    mx = std::max(mx, t);
  }
  return sum / static_cast<double>(server_streams) + mx;
}

}  // namespace appfl::comm
