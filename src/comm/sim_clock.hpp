// Simulated time. The experiments that report time (Fig 3, Fig 4, §IV-E)
// advance these clocks from analytic cost models instead of reading the
// wall clock, which is what lets a laptop reproduce cluster-scale results.
#pragma once

#include <algorithm>

namespace appfl::comm {

/// A monotone accumulator of simulated seconds.
class SimClock {
 public:
  double now() const { return seconds_; }

  void advance(double seconds) {
    if (seconds > 0.0) seconds_ += seconds;
  }

  /// Jumps forward to `t` if `t` is later (barrier semantics).
  void sync_to(double t) { seconds_ = std::max(seconds_, t); }

  void reset() { seconds_ = 0.0; }

 private:
  double seconds_ = 0.0;
};

}  // namespace appfl::comm
