// Communicator: the protocol layer the FL server and clients talk through.
//
// One object serves both roles of a star topology (endpoint 0 = server,
// 1..P = clients), mirroring the paper's client-server architecture (§II).
// Protocol selection changes three real things:
//   • the wire encoding (raw/RDMA-style for MPI, protolite/protobuf for gRPC),
//   • the bytes accounted on each link,
//   • the cost model advancing simulated communication time.
// Every payload is genuinely encoded by the sender and decoded by the
// receiver through an in-process mailbox network.
//
// Fault tolerance: when the ReliabilityConfig's fault injector is enabled,
// payloads are CRC-framed (comm/envelope.hpp), uplinks retransmit with
// capped exponential backoff, and gather_locals drains against a sim-clock
// deadline, returning whatever arrived. With the injector off every one of
// those paths is bypassed — wire bytes and timing stay bit-identical to the
// fault-free communicator.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "comm/buffer_pool.hpp"
#include "comm/cost_model.hpp"
#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "comm/sim_clock.hpp"

namespace appfl::comm {

enum class Protocol { kMpi, kGrpc };

std::string to_string(Protocol p);

/// Optional lossy compression of client→server updates, applied INSIDE the
/// communicator (algorithms never see packed payloads). Only sound for
/// primal-only algorithms without server-side state replicas
/// (FedAvg/FedProx) — core::RunConfig::validate enforces that.
enum class UplinkCodec : std::uint8_t {
  kNone = 0,
  kQuant8 = 1,  // 8-bit block quantization of the update (≈4× fewer bytes)
  kTopK = 2,    // top-k of (z − w) vs the round's broadcast (k = f·m)
  kFp16 = 3,    // IEEE binary16 payload (2× fewer bytes, ≤2⁻¹¹ rel. error)
  // int8 + error feedback: symmetric int8 quantization of (z − w) plus the
  // client's residual from previous rounds, Rice-entropy-coded (compression
  // doc comment on encode_int8). The residual carries the quantization error
  // forward so it is corrected, not lost — the classic EF-SGD trick.
  kInt8Ef = 4,
};

std::string to_string(UplinkCodec codec);

/// APPFL_WIRE_CODEC env override of the configured uplink codec
/// (none | fp16 | quant8 | topk | int8). Returns `base` when the variable is
/// unset; an unrecognized value warns on stderr and keeps `base`, mirroring
/// fault_config_from_env. Callers must re-validate the run configuration
/// when the override changes the codec.
UplinkCodec uplink_codec_from_env(UplinkCodec base);

struct CodecConfig {
  UplinkCodec codec = UplinkCodec::kNone;
  double topk_fraction = 0.1;  // fraction of coordinates kTopK keeps
  /// kInt8Ef clipping range for the quantizer input (delta + residual),
  /// derived from the DP sensitivity bound when clipping is on — the same
  /// per-round update bound DP accounting relies on caps every outlier's
  /// quantization step. 0 = fully adaptive per-block ranges.
  double int8_range = 0.0;
};

/// Fault-tolerance knobs. The fault plane is active iff faults.enabled().
struct ReliabilityConfig {
  FaultConfig faults;
  /// Sim-seconds the server waits in gather_locals before proceeding with
  /// whatever arrived. Also the client's effective ack horizon: an uplink
  /// landing later than this is reported as undelivered to the sender.
  double gather_timeout_s = 30.0;
  /// Base retransmit backoff (sim-seconds); doubles per retry up to the cap.
  double ack_timeout_s = 0.25;
  double backoff_cap_s = 4.0;
  /// Retransmissions attempted after the first send of an update.
  std::size_t max_retries = 4;
  /// Per-mailbox high-water mark (queued datagrams); 0 = unbounded. Pushes
  /// beyond the mark are rejected and counted in
  /// TrafficStats::mailbox_overflows — a guardrail against unbounded
  /// std::deque growth under misconfigured fan-in, not a scheduling device.
  std::size_t mailbox_capacity = 0;
};

/// Byte/message counters, split by direction, plus fault-plane counters
/// (all zero in a fault-free run).
struct TrafficStats {
  std::uint64_t messages_up = 0;
  std::uint64_t messages_down = 0;
  std::uint64_t bytes_up = 0;    // client → server (retransmissions included)
  std::uint64_t bytes_down = 0;  // server → client
  /// Bytes the same uplink traffic would have cost with the codec off —
  /// pre-codec encoded size per send attempt, envelope included. Equals
  /// bytes_up when no codec is active; the gap is the codec's wire saving.
  std::uint64_t bytes_up_precodec = 0;

  std::uint64_t drops = 0;        // messages lost in flight (either direction)
  std::uint64_t duplicates = 0;   // duplicate deliveries injected
  std::uint64_t reorders = 0;     // deliveries that jumped the queue
  std::uint64_t corruptions = 0;  // payloads damaged in flight
  std::uint64_t delays = 0;       // deliveries given extra latency
  std::uint64_t retries = 0;        // client retransmission attempts
  std::uint64_t crc_failures = 0;   // corrupted envelopes caught at decode
  std::uint64_t discards = 0;       // duplicate/stale/malformed discards
  std::uint64_t gather_timeouts = 0;  // gathers that hit the deadline short
  std::uint64_t mailbox_overflows = 0;  // datagrams rejected by the high-water
                                        // mark (ReliabilityConfig::
                                        // mailbox_capacity)

  std::uint64_t total_bytes() const { return bytes_up + bytes_down; }

  bool operator==(const TrafficStats&) const = default;
};

/// Per-round simulated communication times.
struct RoundCommRecord {
  std::uint32_t round = 0;
  double broadcast_s = 0.0;
  double gather_s = 0.0;
  /// gRPC only: each client's upload transfer time this round (Fig 4b).
  std::vector<double> client_transfer_s;

  double total_s() const { return broadcast_s + gather_s; }
};

/// One gathered client update whose float payloads are still wire-resident
/// (or codec-materialized) — the fused decode→aggregate handoff. Header
/// fields are owned; `primal`/`dual` borrow from buffers the owning
/// GatherBatch keeps alive.
struct GatherUpdate {
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
  std::uint32_t round = 0;
  std::uint64_t sample_count = 0;
  double loss = 0.0;
  double rho = 0.0;
  /// Sender-side span id that rode in on the message (0 = none): lets
  /// server-side spans link back to the originating client span.
  std::uint64_t trace_span = 0;
  WirePayload primal;
  WirePayload dual;
};

/// The result of Communicator::gather_batch: validated updates ordered by
/// client id, each payload readable exactly where it landed. Raw and fp16
/// payloads point into the retained wire datagrams (zero copies); codec
/// payloads that need real decoding (quant8/topk/int8) point into
/// batch-owned float vectors. Buffers return to the communicator's pool
/// when the batch is destroyed — destroy it before the next broadcast so
/// they recycle.
class GatherBatch {
 public:
  GatherBatch() = default;
  ~GatherBatch();
  GatherBatch(GatherBatch&&) noexcept = default;
  GatherBatch& operator=(GatherBatch&&) noexcept;
  GatherBatch(const GatherBatch&) = delete;
  GatherBatch& operator=(const GatherBatch&) = delete;

  std::span<const GatherUpdate> updates() const { return updates_; }
  std::size_t size() const { return updates_.size(); }
  bool empty() const { return updates_.empty(); }

  /// Materializes owning Messages, bit-identical to what gather_locals
  /// returns for the same traffic — the unfused fallback and the reference
  /// the fused path is tested against.
  std::vector<Message> take_messages() const;

 private:
  friend class Communicator;
  void release_buffers();

  std::vector<GatherUpdate> updates_;
  /// Retained wire datagrams the zero-copy payloads point into. Each buffer
  /// is heap storage owned by a unique_ptr, so growing the outer vector
  /// never moves the bytes a WirePayload borrowed.
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> buffers_;
  /// Codec-materialized float storage (quant8/topk/int8 payloads).
  std::vector<std::unique_ptr<std::vector<float>>> decoded_;
  BufferPool* pool_ = nullptr;
};

class Communicator {
 public:
  /// `seed` drives the gRPC jitter stream (deterministic per round/client)
  /// and, when enabled, the fault-injection schedule.
  Communicator(Protocol protocol, std::size_t num_clients, std::uint64_t seed,
               CodecConfig codec = {}, ReliabilityConfig reliability = {});

  Protocol protocol() const { return protocol_; }
  std::size_t num_clients() const { return num_clients_; }
  bool fault_plane_active() const { return network_.faults_enabled(); }

  // -- Server role -------------------------------------------------------------

  /// Encodes `m` once per recipient and delivers it. `participants` empty ⇒
  /// all clients (full participation); otherwise only the listed client ids
  /// receive the broadcast (partial participation / client sampling).
  /// Advances simulated time by the protocol's broadcast cost. Under fault
  /// injection individual downlinks may be lost (counted, not retried —
  /// the affected client simply sits the round out).
  void broadcast_global(const Message& m,
                        std::span<const std::uint32_t> participants = {});

  /// Gathers local updates for `round` (0 ⇒ one from every client),
  /// advances simulated time, and appends a RoundCommRecord. Duplicate,
  /// stale-round, and malformed messages are discarded and counted, never
  /// fatal. Fault plane off: blocks until `expected` valid updates arrive
  /// (pre-fault behavior) — but if a discard has consumed a datagram and
  /// the mailbox runs dry short of `expected`, the missing update can never
  /// be replaced, so the caller bug is diagnosed with an appfl::Error
  /// instead of deadlocking. Fault plane on: drains against a sim-clock
  /// deadline of reliability.gather_timeout_s and returns whatever made it
  /// (possibly fewer than `expected`; a short return bumps gather_timeouts).
  /// Updates are returned ordered by client id.
  std::vector<Message> gather_locals(std::uint32_t round,
                                     std::size_t expected = 0);

  /// gather_locals' zero-copy sibling: identical draining, validation,
  /// accounting, and timing, but the returned batch keeps each update's
  /// float payload where it already is (wire buffer or codec decode) for
  /// the fused decode→aggregate data path. gather_locals is implemented as
  /// gather_batch(...).take_messages().
  GatherBatch gather_batch(std::uint32_t round, std::size_t expected = 0);

  /// Gathers the round's kSecAggShares packets (secure-aggregation share
  /// distribution). Same draining/validation/deadline rules as
  /// gather_batch, but it does NOT append a RoundCommRecord — the round's
  /// comm record still comes from the masked-update gather; the wait time
  /// advances the simulated clock directly. Returns the packets ordered by
  /// sender (primal carries the packed share bytes). Requires the fault
  /// plane's deadline machinery or full delivery (fault-free path blocks
  /// until `expected` arrive).
  std::vector<Message> gather_secagg_shares(std::uint32_t round,
                                            std::size_t expected = 0);

  // -- Client role -------------------------------------------------------------

  /// Client `client` (1..P) sends its update to the server. Returns true
  /// when the update will be seen by this round's gather. Under fault
  /// injection a dropped — or corrupted, since the server CRC-discards the
  /// damaged frame and so never acks it — uplink is retransmitted with
  /// capped exponential backoff (each attempt's bytes are accounted); false
  /// means the update was lost after all retries or landed past the gather
  /// deadline.
  bool send_update(std::uint32_t client, const Message& m);

  /// Client `client` receives the current global model (blocking; fault-free
  /// path only — under fault injection use try_recv_global).
  Message recv_global(std::uint32_t client);

  /// Non-blocking receive of the round-`round` broadcast. Stale or
  /// corrupted downlink traffic is discarded and counted; nullopt means the
  /// broadcast was lost or is still in flight — the client sits out.
  std::optional<Message> try_recv_global(std::uint32_t client,
                                         std::uint32_t round);

  // -- Accounting ----------------------------------------------------------------

  /// Aggregated traffic + fault counters (injector counters folded in).
  TrafficStats stats() const;
  const std::vector<RoundCommRecord>& round_log() const { return round_log_; }
  const SimClock& clock() const { return clock_; }

  /// The uplink codec in force — the negotiation record both endpoints
  /// honor. On the wire the agreement travels per message as Message.codec
  /// (inside the CRC frame), so a receiver never guesses the encoding.
  UplinkCodec negotiated_codec() const { return codec_.codec; }

  /// Encode-buffer recycling counters (see comm/buffer_pool.hpp).
  BufferPool::Stats pool_stats() const { return pool_.stats(); }

  /// Per-client uplink fault attribution (index = client − 1): retransmit
  /// attempts beyond the first send and corrupted deliveries, as observed
  /// by send_update. Feeds the per-client health ledger; all zeros when the
  /// fault plane is off.
  struct UplinkHealth {
    std::uint64_t retransmits = 0;
    std::uint64_t corrupt = 0;
  };
  std::vector<UplinkHealth> uplink_health() const;

  /// Resumable snapshot of the comm plane: the simulated clock, the
  /// composed traffic/fault ledger, and the fault injector's per-link
  /// sequence counters. Restoring it on a fresh Communicator (same
  /// protocol/seed/config) continues the simulated timeline and fault
  /// schedule exactly where the snapshot left off.
  struct PersistentState {
    double sim_now = 0.0;
    TrafficStats stats;
    std::vector<std::uint64_t> link_keys;
    std::vector<std::uint64_t> link_seqs;
    /// Per-client kInt8Ef error-feedback residuals (index = client − 1,
    /// empty vectors when unused). Losing these across a restart would
    /// silently drop the quantization error they carry, so they ride in
    /// every checkpoint.
    std::vector<std::vector<float>> ef_residuals;
  };
  PersistentState persistent_state() const;
  void restore_persistent_state(const PersistentState& s);

 private:
  /// Appends the encoded (and, fault plane on, CRC-framed) message to `out`
  /// — the pooled zero-realloc encode. `out` is cleared first; its capacity
  /// is what pooling recycles.
  void encode_into(const Message& m, std::vector<std::uint8_t>& out) const;
  Message decode(std::span<const std::uint8_t> bytes) const;
  /// Zero-copy decode of one datagram: verifies the CRC frame (fault plane
  /// only) and parses a view whose float payloads still live in `bytes`.
  /// Fault plane off, malformed bytes throw (caller bug, pre-fault
  /// behavior); fault plane on, damage is counted as a crc_failure and
  /// nullopt returned. The view borrows from `bytes`.
  std::optional<MessageView> decode_frame_view(
      std::span<const std::uint8_t> bytes);

  /// Packs m.primal into m.packed per the configured codec (send side).
  /// Non-const: kInt8Ef updates the sending client's error-feedback
  /// residual (its own slot, so concurrent senders never contend).
  void compress_update(Message& m);
  /// Restores m.primal from m.packed (gather side).
  void decompress_update(Message& m) const;
  /// Decodes one codec payload into the primal it represents (delta codecs
  /// add the broadcast reference back) — shared by decompress_update and
  /// the batch gather.
  std::vector<float> decode_packed(std::uint8_t codec,
                                   std::span<const std::uint8_t> packed) const;

  Protocol protocol_;
  std::size_t num_clients_;
  std::uint64_t seed_;
  CodecConfig codec_;
  ReliabilityConfig reliability_;
  InProcNetwork network_;
  /// Recycles wire buffers end to end: encode acquires, the mailbox carries
  /// the buffer as the datagram payload, the receiver releases after decode.
  mutable BufferPool pool_;
  MpiCostModel mpi_model_;
  GrpcCostModel grpc_model_;
  mutable std::mutex stats_mutex_;  // clients send concurrently
  TrafficStats stats_;
  std::vector<UplinkHealth> uplink_health_;  // slot per client
  std::vector<RoundCommRecord> round_log_;
  SimClock clock_;
  double pending_broadcast_s_ = 0.0;
  /// Reference for kTopK/kInt8Ef deltas.
  std::vector<float> last_broadcast_primal_;
  /// kInt8Ef error-feedback residuals, one slot per client (index =
  /// client − 1). Disjoint slots: concurrent send_update calls are safe.
  std::vector<std::vector<float>> ef_residual_;
};

}  // namespace appfl::comm
