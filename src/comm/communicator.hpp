// Communicator: the protocol layer the FL server and clients talk through.
//
// One object serves both roles of a star topology (endpoint 0 = server,
// 1..P = clients), mirroring the paper's client-server architecture (§II).
// Protocol selection changes three real things:
//   • the wire encoding (raw/RDMA-style for MPI, protolite/protobuf for gRPC),
//   • the bytes accounted on each link,
//   • the cost model advancing simulated communication time.
// Every payload is genuinely encoded by the sender and decoded by the
// receiver through an in-process mailbox network.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "comm/sim_clock.hpp"

namespace appfl::comm {

enum class Protocol { kMpi, kGrpc };

std::string to_string(Protocol p);

/// Optional lossy compression of client→server updates, applied INSIDE the
/// communicator (algorithms never see packed payloads). Only sound for
/// primal-only algorithms without server-side state replicas
/// (FedAvg/FedProx) — core::RunConfig::validate enforces that.
enum class UplinkCodec : std::uint8_t {
  kNone = 0,
  kQuant8 = 1,  // 8-bit block quantization of the update (≈4× fewer bytes)
  kTopK = 2,    // top-k of (z − w) vs the round's broadcast (k = f·m)
};

std::string to_string(UplinkCodec codec);

struct CodecConfig {
  UplinkCodec codec = UplinkCodec::kNone;
  double topk_fraction = 0.1;  // fraction of coordinates kTopK keeps
};

/// Byte/message counters, split by direction.
struct TrafficStats {
  std::uint64_t messages_up = 0;
  std::uint64_t messages_down = 0;
  std::uint64_t bytes_up = 0;    // client → server
  std::uint64_t bytes_down = 0;  // server → client

  std::uint64_t total_bytes() const { return bytes_up + bytes_down; }
};

/// Per-round simulated communication times.
struct RoundCommRecord {
  std::uint32_t round = 0;
  double broadcast_s = 0.0;
  double gather_s = 0.0;
  /// gRPC only: each client's upload transfer time this round (Fig 4b).
  std::vector<double> client_transfer_s;

  double total_s() const { return broadcast_s + gather_s; }
};

class Communicator {
 public:
  /// `seed` drives the gRPC jitter stream (deterministic per round/client).
  Communicator(Protocol protocol, std::size_t num_clients, std::uint64_t seed,
               CodecConfig codec = {});

  Protocol protocol() const { return protocol_; }
  std::size_t num_clients() const { return num_clients_; }

  // -- Server role -------------------------------------------------------------

  /// Encodes `m` once per recipient and delivers it. `participants` empty ⇒
  /// all clients (full participation); otherwise only the listed client ids
  /// receive the broadcast (partial participation / client sampling).
  /// Advances simulated time by the protocol's broadcast cost.
  void broadcast_global(const Message& m,
                        std::span<const std::uint32_t> participants = {});

  /// Receives exactly `expected` local updates (blocking; 0 ⇒ one from
  /// every client), advances simulated time by the protocol's gather cost,
  /// and appends a RoundCommRecord. Updates are returned ordered by client
  /// id; each sender may contribute at most one update per gather.
  std::vector<Message> gather_locals(std::uint32_t round,
                                     std::size_t expected = 0);

  // -- Client role -------------------------------------------------------------

  /// Client `client` (1..P) sends its update to the server.
  void send_update(std::uint32_t client, const Message& m);

  /// Client `client` receives the current global model (blocking).
  Message recv_global(std::uint32_t client);

  // -- Accounting ----------------------------------------------------------------

  const TrafficStats& stats() const { return stats_; }
  const std::vector<RoundCommRecord>& round_log() const { return round_log_; }
  const SimClock& clock() const { return clock_; }

 private:
  std::vector<std::uint8_t> encode(const Message& m) const;
  Message decode(std::span<const std::uint8_t> bytes) const;

  /// Packs m.primal into m.packed per the configured codec (send side).
  void compress_update(Message& m) const;
  /// Restores m.primal from m.packed (gather side).
  void decompress_update(Message& m) const;

  Protocol protocol_;
  std::size_t num_clients_;
  std::uint64_t seed_;
  CodecConfig codec_;
  InProcNetwork network_;
  MpiCostModel mpi_model_;
  GrpcCostModel grpc_model_;
  TrafficStats stats_;
  std::vector<RoundCommRecord> round_log_;
  SimClock clock_;
  double pending_broadcast_s_ = 0.0;
  std::vector<float> last_broadcast_primal_;  // reference for kTopK deltas
};

}  // namespace appfl::comm
