// protolite: a protocol-buffers-compatible wire encoding.
//
// The gRPC transport path pays a *real* serialization cost: every message is
// encoded into protobuf wire format (varint field tags, length-delimited
// payloads) and decoded on the other side, exactly the overhead the paper
// identifies for gRPC ("it performs serialization and deserialization of
// user-given data via protocol buffers", §IV-D). The MPI path skips this and
// memcpys raw buffers, matching RDMA semantics.
//
// Wire types implemented: 0 (varint), 1 (64-bit), 2 (length-delimited),
// 5 (32-bit). Field numbers 1..536870911.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace appfl::comm {

/// Streaming encoder. Append fields in any order; take() yields the buffer.
class ProtoWriter {
 public:
  ProtoWriter() = default;

  /// Adopts `buf` (keeping its contents and, more importantly, its
  /// capacity) and appends after the existing bytes — the pooled-buffer
  /// encode path, which also lets a frame header placeholder precede the
  /// payload without a later O(n) shift.
  explicit ProtoWriter(std::vector<std::uint8_t>&& buf) : buf_(std::move(buf)) {}

  /// Pre-sizes the buffer (see proto_encoded_size) so the varint-heavy
  /// append loop never reallocates mid-message.
  void reserve(std::size_t bytes) { buf_.reserve(buf_.size() + bytes); }

  /// Field of wire type 0: unsigned varint.
  void add_varint(std::uint32_t field, std::uint64_t value);

  /// Field of wire type 5: 32-bit float.
  void add_float(std::uint32_t field, float value);

  /// Field of wire type 1: 64-bit double.
  void add_double(std::uint32_t field, double value);

  /// Field of wire type 2: raw bytes.
  void add_bytes(std::uint32_t field, std::span<const std::uint8_t> bytes);

  /// Field of wire type 2: UTF-8 string.
  void add_string(std::uint32_t field, const std::string& s);

  /// Field of wire type 2: packed repeated float (protobuf `repeated float`
  /// with [packed=true]) — the encoding gRPC would use for a weight vector.
  void add_packed_floats(std::uint32_t field, std::span<const float> values);

  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::span<const std::uint8_t> view() const { return buf_; }

 private:
  void put_varint(std::uint64_t v);
  void put_tag(std::uint32_t field, std::uint32_t wire_type);

  std::vector<std::uint8_t> buf_;
};

/// One decoded field. For wire type 2 `bytes` views into the reader's buffer.
struct ProtoField {
  std::uint32_t field = 0;
  std::uint32_t wire_type = 0;
  std::uint64_t varint = 0;                  // wire types 0, 1, 5
  std::span<const std::uint8_t> bytes{};     // wire type 2
};

/// Streaming decoder over an encoded buffer. Call next() until it returns
/// false; malformed input throws appfl::Error.
class ProtoReader {
 public:
  explicit ProtoReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool next(ProtoField& out);

  /// Helpers to reinterpret a decoded field.
  static float as_float(const ProtoField& f);
  static double as_double(const ProtoField& f);
  static std::string as_string(const ProtoField& f);
  static std::vector<float> as_packed_floats(const ProtoField& f);

  /// Out-parameter flavor: decodes into `out`, reusing its capacity — no
  /// fresh vector per field on repeated decodes (the gather hot path).
  static void as_packed_floats_into(const ProtoField& f,
                                    std::vector<float>& out);

 private:
  std::uint64_t read_varint();

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace appfl::comm
