// FL wire messages and their two encodings.
//
// One message type covers the whole FL protocol: the server broadcasts the
// global model (kGlobalModel), clients reply with their local update
// (kLocalUpdate, primal only for FedAvg/IIADMM, primal+dual for ICEADMM —
// the traffic difference §III-A is about). Two encodings exist:
//   • raw   — header + memcpy'd floats, what MPI/RDMA moves (tensor/serialize
//             style, no per-field overhead);
//   • proto — protolite (protobuf wire format), what gRPC moves.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace appfl::comm {

enum class MessageKind : std::uint8_t {
  kInit = 0,         // one-time (z¹, λ¹) exchange at algorithm start
  kGlobalModel = 1,  // server → client: w^{t+1}
  kLocalUpdate = 2,  // client → server: z_p^{t+1} (+ λ_p^{t+1} if ICEADMM)
  kShutdown = 3,
};

std::string to_string(MessageKind kind);

struct Message {
  MessageKind kind = MessageKind::kGlobalModel;
  std::uint32_t sender = 0;    // 0 = server, clients are 1..P
  std::uint32_t receiver = 0;
  std::uint32_t round = 0;
  std::vector<float> primal;   // model parameters
  std::vector<float> dual;     // empty unless the algorithm ships duals
  std::uint64_t sample_count = 0;  // I_p, for weighted aggregation
  double loss = 0.0;               // training loss metadata
  // Penalty ρ^t in force this round (adaptive-ρ extension, paper future
  // work 2). 0 = unset: clients fall back to the configured constant ρ.
  double rho = 0.0;
  // Lossy-codec payload (uplink compression): when codec != 0, `primal` is
  // empty on the wire and `packed` holds the encoded vector. The
  // Communicator packs on send and unpacks on gather, so algorithms never
  // see this field populated.
  std::uint8_t codec = 0;
  std::vector<std::uint8_t> packed;

  /// Bitwise equality: float fields (loss, rho, primal, dual) compare by
  /// their bit patterns, not IEEE semantics, so a faithfully round-tripped
  /// NaN still compares equal and codec tests cannot silently pass or fail
  /// on NaN payloads.
  bool operator==(const Message& other) const;
};

/// Bit-pattern equality for floating-point values (NaN == NaN when the
/// payloads match; -0.0 != +0.0). The comparison Message::operator== uses.
bool same_bits(float a, float b);
bool same_bits(double a, double b);

/// Raw encoding (MPI path): fixed header + contiguous float payloads.
std::vector<std::uint8_t> encode_raw(const Message& m);
Message decode_raw(std::span<const std::uint8_t> bytes);

/// Protobuf encoding (gRPC path) via protolite.
std::vector<std::uint8_t> encode_proto(const Message& m);
Message decode_proto(std::span<const std::uint8_t> bytes);

/// Size in bytes each encoding would produce (raw is exact and cheap;
/// proto is exact too — computed without building the buffer).
std::size_t raw_encoded_size(const Message& m);
std::size_t proto_encoded_size(const Message& m);

}  // namespace appfl::comm
