// FL wire messages and their two encodings.
//
// One message type covers the whole FL protocol: the server broadcasts the
// global model (kGlobalModel), clients reply with their local update
// (kLocalUpdate, primal only for FedAvg/IIADMM, primal+dual for ICEADMM —
// the traffic difference §III-A is about). Two encodings exist:
//   • raw   — header + memcpy'd floats, what MPI/RDMA moves (tensor/serialize
//             style, no per-field overhead);
//   • proto — protolite (protobuf wire format), what gRPC moves.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace appfl::comm {

enum class MessageKind : std::uint8_t {
  kInit = 0,         // one-time (z¹, λ¹) exchange at algorithm start
  kGlobalModel = 1,  // server → client: w^{t+1}
  kLocalUpdate = 2,  // client → server: z_p^{t+1} (+ λ_p^{t+1} if ICEADMM)
  kShutdown = 3,
  kSecAggShares = 4,  // client → server: Shamir share packet (secure agg)
};

std::string to_string(MessageKind kind);

struct Message {
  MessageKind kind = MessageKind::kGlobalModel;
  std::uint32_t sender = 0;    // 0 = server, clients are 1..P
  std::uint32_t receiver = 0;
  std::uint32_t round = 0;
  std::vector<float> primal;   // model parameters
  std::vector<float> dual;     // empty unless the algorithm ships duals
  std::uint64_t sample_count = 0;  // I_p, for weighted aggregation
  double loss = 0.0;               // training loss metadata
  // Penalty ρ^t in force this round (adaptive-ρ extension, paper future
  // work 2). 0 = unset: clients fall back to the configured constant ρ.
  double rho = 0.0;
  // Lossy-codec payload (uplink compression): when codec != 0, `primal` is
  // empty on the wire and `packed` holds the encoded vector. The
  // Communicator packs on send and unpacks on gather, so algorithms never
  // see this field populated.
  std::uint8_t codec = 0;
  std::vector<std::uint8_t> packed;
  // Trace context (observability plane): the sender's current span id, so
  // receiver-side spans can link back to the originating client span across
  // threads — in-proc today, socket-ready tomorrow. 0 = no context; the
  // field is only put on the wire when nonzero (which requires obs=trace),
  // so obs-off encodings are byte-identical to pre-trace-context builds.
  std::uint64_t trace_span = 0;

  /// Bitwise equality: float fields (loss, rho, primal, dual) compare by
  /// their bit patterns, not IEEE semantics, so a faithfully round-tripped
  /// NaN still compares equal and codec tests cannot silently pass or fail
  /// on NaN payloads.
  bool operator==(const Message& other) const;
};

/// Bit-pattern equality for floating-point values (NaN == NaN when the
/// payloads match; -0.0 != +0.0). The comparison Message::operator== uses.
bool same_bits(float a, float b);
bool same_bits(double a, double b);

/// Read-only view of packed little-endian float32s sitting inside a wire
/// buffer. A std::span<const float> cannot be used directly: neither
/// encoding 4-byte-aligns its float payloads (the raw header is 37 bytes;
/// proto offsets are varint-sized), so elements are read through memcpy —
/// the standards-clean unaligned load, which compiles to a plain mov.
class FloatView {
 public:
  FloatView() = default;
  FloatView(const std::uint8_t* data, std::size_t count)
      : data_(data), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// The packed float32 bytes this view reads (unaligned, little-endian) —
  /// what the fused data path hands to the streaming aggregation kernels.
  const std::uint8_t* bytes() const { return data_; }

  float operator[](std::size_t i) const;

  /// Bulk copy into `out` (out.size() must equal size()).
  void copy_to(std::span<float> out) const;
  /// Resizes `out` (reusing capacity) and copies — the detach primitive.
  void copy_into(std::vector<float>& out) const;
  std::vector<float> to_vector() const;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t count_ = 0;
};

/// How a WirePayload's bytes encode its floats.
enum class WireEncoding : std::uint8_t {
  kF32,  // packed little-endian float32 (4 bytes per value)
  kF16,  // packed little-endian IEEE binary16 (2 bytes per value)
};

/// A borrowed wire payload for the fused decode→aggregate data path: the
/// raw bytes of a float vector as they sit in the wire (or codec-decoded)
/// buffer, tagged with their encoding. The streaming aggregation entry
/// points (core/aggregate.hpp) consume these directly, so the payload is
/// touched exactly once — no decode-then-reduce double pass. Like
/// FloatView, the pointer borrows from a buffer the producer keeps alive.
struct WirePayload {
  const std::uint8_t* data = nullptr;
  std::size_t count = 0;  // number of float values
  WireEncoding enc = WireEncoding::kF32;

  bool empty() const { return count == 0; }

  /// View over an already-decoded float vector (codec paths).
  static WirePayload f32(const float* values, std::size_t n) {
    return {reinterpret_cast<const std::uint8_t*>(values), n,
            WireEncoding::kF32};
  }
  /// View over packed float32 wire bytes (FloatView's backing storage).
  static WirePayload f32_bytes(const std::uint8_t* bytes, std::size_t n) {
    return {bytes, n, WireEncoding::kF32};
  }
  /// View over packed binary16 wire bytes (fp16 codec payloads).
  static WirePayload f16_bytes(const std::uint8_t* bytes, std::size_t n) {
    return {bytes, n, WireEncoding::kF16};
  }
};

/// A decoded message whose float payloads still live in the wire buffer —
/// the zero-copy decode result. Header fields are materialized (they are a
/// few dozen bytes); primal/dual/packed borrow from the buffer passed to
/// decode_raw_view / decode_proto_view, which must outlive the view.
/// Validation (kind, sender, round, duplicate checks) can therefore run
/// without ever copying a multi-MB payload; consumers that keep the data
/// call detach()/detach_into().
struct MessageView {
  MessageKind kind = MessageKind::kGlobalModel;
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
  std::uint32_t round = 0;
  std::uint64_t sample_count = 0;
  double loss = 0.0;
  double rho = 0.0;
  std::uint8_t codec = 0;
  std::uint64_t trace_span = 0;
  FloatView primal;
  FloatView dual;
  std::span<const std::uint8_t> packed{};

  /// Materializes an owning Message (exactly one copy per payload).
  Message detach() const;
  /// Same, but reuses `out`'s vector capacities (pooled-Message decode).
  void detach_into(Message& out) const;
};

/// Raw encoding (MPI path): fixed header + contiguous float payloads.
std::vector<std::uint8_t> encode_raw(const Message& m);
Message decode_raw(std::span<const std::uint8_t> bytes);

/// Protobuf encoding (gRPC path) via protolite.
std::vector<std::uint8_t> encode_proto(const Message& m);
Message decode_proto(std::span<const std::uint8_t> bytes);

/// Append-encode into a caller-owned buffer (the pooled, zero-realloc
/// path): the encoded bytes — identical to encode_raw/encode_proto's — are
/// appended after `out`'s existing contents (e.g. an envelope header
/// placeholder), with the exact total reserved up front.
void encode_raw_append(const Message& m, std::vector<std::uint8_t>& out);
void encode_proto_append(const Message& m, std::vector<std::uint8_t>& out);

/// Zero-copy decodes. Same validation and errors as the owning decodes;
/// float payloads stay in `bytes` (see MessageView).
MessageView decode_raw_view(std::span<const std::uint8_t> bytes);
MessageView decode_proto_view(std::span<const std::uint8_t> bytes);

/// Size in bytes each encoding would produce (raw is exact and cheap;
/// proto is exact too — computed without building the buffer).
std::size_t raw_encoded_size(const Message& m);
std::size_t proto_encoded_size(const Message& m);

}  // namespace appfl::comm
