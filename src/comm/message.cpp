#include "comm/message.hpp"

#include <cstring>
#include <span>

#include "comm/protolite.hpp"
#include "util/check.hpp"

namespace appfl::comm {

std::string to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kInit: return "init";
    case MessageKind::kGlobalModel: return "global_model";
    case MessageKind::kLocalUpdate: return "local_update";
    case MessageKind::kShutdown: return "shutdown";
    case MessageKind::kSecAggShares: return "secagg_shares";
  }
  return "unknown";
}

bool same_bits(float a, float b) {
  std::uint32_t ba, bb;
  std::memcpy(&ba, &a, 4);
  std::memcpy(&bb, &b, 4);
  return ba == bb;
}

bool same_bits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

namespace {

bool same_bits_vec(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), 4 * a.size()) == 0;
}

}  // namespace

bool Message::operator==(const Message& other) const {
  return kind == other.kind && sender == other.sender &&
         receiver == other.receiver && round == other.round &&
         sample_count == other.sample_count && same_bits(loss, other.loss) &&
         same_bits(rho, other.rho) && same_bits_vec(primal, other.primal) &&
         same_bits_vec(dual, other.dual) && codec == other.codec &&
         packed == other.packed && trace_span == other.trace_span;
}

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(std::span<const std::uint8_t> b, std::size_t& off) {
  APPFL_CHECK_MSG(off + 4 <= b.size(), "truncated raw message");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[off + i]} << (8 * i);
  off += 4;
  return v;
}

std::uint64_t read_u64(std::span<const std::uint8_t> b, std::size_t& off) {
  APPFL_CHECK_MSG(off + 8 <= b.size(), "truncated raw message");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[off + i]} << (8 * i);
  off += 8;
  return v;
}

void append_float_vec(std::vector<std::uint8_t>& out,
                      const std::vector<float>& v) {
  append_u64(out, v.size());
  const std::size_t start = out.size();
  out.resize(start + 4 * v.size());
  std::memcpy(out.data() + start, v.data(), 4 * v.size());
}

FloatView read_float_view(std::span<const std::uint8_t> b, std::size_t& off) {
  const std::uint64_t n = read_u64(b, off);
  // Divide instead of multiplying: 4·n would wrap for hostile lengths and
  // an unchecked vector(n) could throw bad_alloc/length_error (fuzzer find).
  APPFL_CHECK_MSG(off <= b.size() && n <= (b.size() - off) / 4,
                  "truncated raw float vector");
  FloatView v(b.data() + off, n);
  off += 4 * n;
  return v;
}

}  // namespace

float FloatView::operator[](std::size_t i) const {
  float v;
  std::memcpy(&v, data_ + 4 * i, 4);
  return v;
}

void FloatView::copy_to(std::span<float> out) const {
  APPFL_CHECK(out.size() == count_);
  if (count_ > 0) std::memcpy(out.data(), data_, 4 * count_);
}

void FloatView::copy_into(std::vector<float>& out) const {
  out.resize(count_);
  if (count_ > 0) std::memcpy(out.data(), data_, 4 * count_);
}

std::vector<float> FloatView::to_vector() const {
  std::vector<float> out;
  copy_into(out);
  return out;
}

Message MessageView::detach() const {
  Message m;
  detach_into(m);
  return m;
}

void MessageView::detach_into(Message& out) const {
  out.kind = kind;
  out.sender = sender;
  out.receiver = receiver;
  out.round = round;
  out.sample_count = sample_count;
  out.loss = loss;
  out.rho = rho;
  out.codec = codec;
  out.trace_span = trace_span;
  primal.copy_into(out.primal);
  dual.copy_into(out.dual);
  out.packed.assign(packed.begin(), packed.end());
}

std::size_t raw_encoded_size(const Message& m) {
  // kind(1) + sender(4) + receiver(4) + round(4) + samples(8) + loss(8)
  // + rho(8) + 2 × (len(8) + floats) + codec(1) + packed(len(8) + bytes)
  // + optional trace-context trailer (8, only when trace_span != 0).
  return 1 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4 * m.primal.size() + 8 +
         4 * m.dual.size() + 1 + 8 + m.packed.size() +
         (m.trace_span != 0 ? 8 : 0);
}

std::vector<std::uint8_t> encode_raw(const Message& m) {
  std::vector<std::uint8_t> out;
  encode_raw_append(m, out);
  return out;
}

void encode_raw_append(const Message& m, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + raw_encoded_size(m));
  out.push_back(static_cast<std::uint8_t>(m.kind));
  append_u32(out, m.sender);
  append_u32(out, m.receiver);
  append_u32(out, m.round);
  append_u64(out, m.sample_count);
  std::uint64_t loss_bits;
  std::memcpy(&loss_bits, &m.loss, 8);
  append_u64(out, loss_bits);
  std::uint64_t rho_bits;
  std::memcpy(&rho_bits, &m.rho, 8);
  append_u64(out, rho_bits);
  append_float_vec(out, m.primal);
  append_float_vec(out, m.dual);
  out.push_back(m.codec);
  append_u64(out, m.packed.size());
  out.insert(out.end(), m.packed.begin(), m.packed.end());
  // Optional trailer: old decoders never saw one (they require exact
  // consumption), new decoders read it iff bytes remain.
  if (m.trace_span != 0) append_u64(out, m.trace_span);
}

Message decode_raw(std::span<const std::uint8_t> bytes) {
  return decode_raw_view(bytes).detach();
}

MessageView decode_raw_view(std::span<const std::uint8_t> bytes) {
  APPFL_CHECK_MSG(!bytes.empty(), "empty raw message");
  MessageView m;
  std::size_t off = 0;
  const std::uint8_t kind = bytes[off++];
  APPFL_CHECK_MSG(kind <= 4, "invalid message kind " << int{kind});
  m.kind = static_cast<MessageKind>(kind);
  m.sender = read_u32(bytes, off);
  m.receiver = read_u32(bytes, off);
  m.round = read_u32(bytes, off);
  m.sample_count = read_u64(bytes, off);
  const std::uint64_t loss_bits = read_u64(bytes, off);
  std::memcpy(&m.loss, &loss_bits, 8);
  const std::uint64_t rho_bits = read_u64(bytes, off);
  std::memcpy(&m.rho, &rho_bits, 8);
  m.primal = read_float_view(bytes, off);
  m.dual = read_float_view(bytes, off);
  APPFL_CHECK_MSG(off < bytes.size(), "truncated raw message (codec)");
  m.codec = bytes[off++];
  const std::uint64_t packed_len = read_u64(bytes, off);
  APPFL_CHECK_MSG(packed_len <= bytes.size() - off,
                  "truncated raw packed payload");
  m.packed = bytes.subspan(off, packed_len);
  off += packed_len;
  if (off < bytes.size()) m.trace_span = read_u64(bytes, off);
  APPFL_CHECK_MSG(off == bytes.size(), "trailing bytes in raw message");
  return m;
}

namespace {
// protolite field numbers for Message.
constexpr std::uint32_t kFKind = 1;
constexpr std::uint32_t kFSender = 2;
constexpr std::uint32_t kFReceiver = 3;
constexpr std::uint32_t kFRound = 4;
constexpr std::uint32_t kFSamples = 5;
constexpr std::uint32_t kFLoss = 6;
constexpr std::uint32_t kFPrimal = 7;
constexpr std::uint32_t kFDual = 8;
constexpr std::uint32_t kFRho = 9;
constexpr std::uint32_t kFCodec = 10;
constexpr std::uint32_t kFPacked = 11;
constexpr std::uint32_t kFTraceSpan = 12;
}  // namespace

std::vector<std::uint8_t> encode_proto(const Message& m) {
  std::vector<std::uint8_t> out;
  encode_proto_append(m, out);
  return out;
}

void encode_proto_append(const Message& m, std::vector<std::uint8_t>& out) {
  ProtoWriter w(std::move(out));
  // Exact pre-size: the varint-heavy append loop must never reallocate (a
  // multi-MB packed-float field used to trigger repeated growth copies).
  w.reserve(proto_encoded_size(m));
  w.add_varint(kFKind, static_cast<std::uint64_t>(m.kind));
  w.add_varint(kFSender, m.sender);
  w.add_varint(kFReceiver, m.receiver);
  w.add_varint(kFRound, m.round);
  w.add_varint(kFSamples, m.sample_count);
  w.add_double(kFLoss, m.loss);
  w.add_packed_floats(kFPrimal, m.primal);
  if (!m.dual.empty()) w.add_packed_floats(kFDual, m.dual);
  if (m.rho != 0.0) w.add_double(kFRho, m.rho);
  if (m.codec != 0) {
    w.add_varint(kFCodec, m.codec);
    w.add_bytes(kFPacked, m.packed);
  }
  if (m.trace_span != 0) w.add_varint(kFTraceSpan, m.trace_span);
  out = w.take();
}

namespace {

/// View counterpart of ProtoReader::as_packed_floats — same checks and
/// error text, no copy.
FloatView as_packed_float_view(const ProtoField& f) {
  APPFL_CHECK_MSG(f.wire_type == 2, "field is not length-delimited");
  APPFL_CHECK_MSG(f.bytes.size() % 4 == 0,
                  "packed float payload not a multiple of 4");
  return {f.bytes.data(), f.bytes.size() / 4};
}

}  // namespace

Message decode_proto(std::span<const std::uint8_t> bytes) {
  return decode_proto_view(bytes).detach();
}

MessageView decode_proto_view(std::span<const std::uint8_t> bytes) {
  MessageView m;
  ProtoReader r(bytes);
  ProtoField f;
  while (r.next(f)) {
    switch (f.field) {
      case kFKind:
        APPFL_CHECK_MSG(f.varint <= 4, "invalid message kind " << f.varint);
        m.kind = static_cast<MessageKind>(f.varint);
        break;
      case kFSender: m.sender = static_cast<std::uint32_t>(f.varint); break;
      case kFReceiver: m.receiver = static_cast<std::uint32_t>(f.varint); break;
      case kFRound: m.round = static_cast<std::uint32_t>(f.varint); break;
      case kFSamples: m.sample_count = f.varint; break;
      case kFLoss: m.loss = ProtoReader::as_double(f); break;
      case kFPrimal: m.primal = as_packed_float_view(f); break;
      case kFDual: m.dual = as_packed_float_view(f); break;
      case kFRho: m.rho = ProtoReader::as_double(f); break;
      case kFCodec:
        APPFL_CHECK_MSG(f.varint <= 255, "invalid codec " << f.varint);
        m.codec = static_cast<std::uint8_t>(f.varint);
        break;
      case kFPacked:
        m.packed = f.bytes;
        break;
      case kFTraceSpan: m.trace_span = f.varint; break;
      default:
        break;  // unknown fields are skipped, like protobuf
    }
  }
  return m;
}

namespace {
std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
}  // namespace

std::size_t proto_encoded_size(const Message& m) {
  std::size_t n = 0;
  n += 1 + varint_size(static_cast<std::uint64_t>(m.kind));
  n += 1 + varint_size(m.sender);
  n += 1 + varint_size(m.receiver);
  n += 1 + varint_size(m.round);
  n += 1 + varint_size(m.sample_count);
  n += 1 + 8;  // double
  n += 1 + varint_size(m.primal.size() * 4) + 4 * m.primal.size();
  if (!m.dual.empty()) n += 1 + varint_size(m.dual.size() * 4) + 4 * m.dual.size();
  if (m.rho != 0.0) n += 1 + 8;
  if (m.codec != 0) {
    n += 1 + varint_size(m.codec);
    n += 1 + varint_size(m.packed.size()) + m.packed.size();
  }
  if (m.trace_span != 0) n += 1 + varint_size(m.trace_span);
  return n;
}

}  // namespace appfl::comm
