#include "comm/compression.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace appfl::comm {

std::size_t Quantized8::wire_bytes() const {
  // length(8) + block(8) + per-block (min, scale) floats + 1 byte per code.
  return 16 + 8 * mins.size() + codes.size();
}

Quantized8 quantize8(std::span<const float> values, std::size_t block) {
  APPFL_CHECK_MSG(block >= 2, "quantization block must hold several values");
  Quantized8 q;
  q.size = values.size();
  q.block = block;
  const std::size_t num_blocks = (values.size() + block - 1) / block;
  q.mins.reserve(num_blocks);
  q.scales.reserve(num_blocks);
  q.codes.resize(values.size());
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t start = b * block;
    const std::size_t end = std::min(start + block, values.size());
    float lo = values[start], hi = values[start];
    for (std::size_t i = start; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    const float scale = (hi - lo) / 255.0F;
    q.mins.push_back(lo);
    q.scales.push_back(scale);
    for (std::size_t i = start; i < end; ++i) {
      const float code =
          scale > 0.0F ? std::round((values[i] - lo) / scale) : 0.0F;
      q.codes[i] = static_cast<std::uint8_t>(
          std::clamp(code, 0.0F, 255.0F));
    }
  }
  return q;
}

std::vector<float> dequantize8(const Quantized8& q) {
  APPFL_CHECK(q.codes.size() == q.size);
  std::vector<float> out(q.size);
  for (std::size_t i = 0; i < q.size; ++i) {
    const std::size_t b = i / q.block;
    APPFL_CHECK(b < q.mins.size());
    out[i] = q.mins[b] + q.scales[b] * static_cast<float>(q.codes[i]);
  }
  return out;
}

double quantize8_error_bound(const Quantized8& q) {
  double worst = 0.0;
  for (float s : q.scales) worst = std::max(worst, static_cast<double>(s));
  return 0.5 * worst;
}

std::size_t TopK::wire_bytes() const {
  // length(8) + count(8) + 4 bytes index + 4 bytes value per kept entry.
  return 16 + 8 * indices.size();
}

TopK sparsify_topk(std::span<const float> values, std::size_t k) {
  TopK sparse;
  sparse.size = values.size();
  // Clamp AFTER the empty check: clamping k to an empty input would yield
  // k = 0 and an order.begin() + (0 - 1) iterator underflow below.
  if (values.empty()) return sparse;
  APPFL_CHECK_MSG(k >= 1, "top-k needs k >= 1");
  k = std::min(k, values.size());
  std::vector<std::uint32_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float ma = std::abs(values[a]);
                     const float mb = std::abs(values[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;  // deterministic tie-break
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());
  sparse.indices = std::move(order);
  sparse.values.reserve(k);
  for (std::uint32_t i : sparse.indices) sparse.values.push_back(values[i]);
  return sparse;
}

std::vector<float> densify(const TopK& sparse) {
  APPFL_CHECK(sparse.indices.size() == sparse.values.size());
  std::vector<float> out(sparse.size, 0.0F);
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    APPFL_CHECK_MSG(sparse.indices[i] < sparse.size,
                    "top-k index out of range");
    out[sparse.indices[i]] = sparse.values[i];
  }
  return out;
}

std::uint16_t float_to_half(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000U);
  const std::uint32_t exp = (bits >> 23) & 0xFFU;
  std::uint32_t mant = bits & 0x7FFFFFU;
  if (exp == 0xFFU) {
    // Inf stays inf; NaN keeps its top payload bits and is quieted so a
    // payload whose high 13 bits are zero cannot collapse into inf.
    const std::uint32_t nan_payload = mant ? (0x200U | (mant >> 13)) : 0U;
    return static_cast<std::uint16_t>(sign | 0x7C00U | nan_payload);
  }
  const int e = static_cast<int>(exp) - 127 + 15;  // rebias to binary16
  if (e >= 31) return static_cast<std::uint16_t>(sign | 0x7C00U);  // → ±inf
  if (e <= 0) {
    // Result is a binary16 subnormal (or zero). Below 2⁻²⁵ even the nearest
    // subnormal is zero; at exactly 2⁻²⁵ round-to-even also gives zero,
    // which the shift path below produces naturally for e == -10.
    if (e < -10) return sign;
    mant |= 0x800000U;  // make the leading 1 explicit
    const int shift = 14 - e;
    std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((std::uint32_t{1} << shift) - 1);
    const std::uint32_t halfway = std::uint32_t{1} << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1U))) ++half;
    // A carry out of the subnormal mantissa lands in exp = 1: exactly right.
    return static_cast<std::uint16_t>(sign | half);
  }
  std::uint32_t half =
      (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFU;
  if (rem > 0x1000U || (rem == 0x1000U && (half & 1U))) {
    ++half;  // mantissa/exponent carry chains; 65520 → inf is correct RNE
  }
  return static_cast<std::uint16_t>(sign | half);
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (std::uint32_t{h} & 0x8000U) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1FU;
  const std::uint32_t mant = h & 0x3FFU;
  std::uint32_t bits;
  if (exp == 0x1FU) {
    bits = sign | 0x7F800000U | (mant << 13);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      // Subnormal half: value is mant × 2⁻²⁴, exact in float32.
      const float v = std::ldexp(static_cast<float>(mant), -24);
      return sign ? -v : v;
    }
  } else {
    bits = sign | ((exp + 112U) << 23) | (mant << 13);  // rebias 15 → 127
  }
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t& off) {
  APPFL_CHECK_MSG(off + 8 <= b.size(), "truncated compressed payload");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[off + i]} << (8 * i);
  off += 8;
  return v;
}

void put_floats(std::vector<std::uint8_t>& out, std::span<const float> v) {
  const std::size_t start = out.size();
  out.resize(start + 4 * v.size());
  std::memcpy(out.data() + start, v.data(), 4 * v.size());
}

std::vector<float> get_floats(std::span<const std::uint8_t> b,
                              std::size_t& off, std::size_t count) {
  APPFL_CHECK_MSG(off <= b.size() && count <= (b.size() - off) / 4,
                  "truncated compressed float block");
  std::vector<float> out(count);
  std::memcpy(out.data(), b.data() + off, 4 * count);
  off += 4 * count;
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_quantized8(const Quantized8& q) {
  std::vector<std::uint8_t> out;
  out.reserve(q.wire_bytes() + 8);
  put_u64(out, q.size);
  put_u64(out, q.block);
  put_u64(out, q.mins.size());
  put_floats(out, q.mins);
  put_floats(out, q.scales);
  out.insert(out.end(), q.codes.begin(), q.codes.end());
  return out;
}

Quantized8 decode_quantized8(std::span<const std::uint8_t> bytes) {
  Quantized8 q;
  std::size_t off = 0;
  q.size = get_u64(bytes, off);
  q.block = get_u64(bytes, off);
  APPFL_CHECK_MSG(q.block >= 2, "invalid quantization block");
  const std::uint64_t blocks = get_u64(bytes, off);
  APPFL_CHECK_MSG(blocks == (q.size + q.block - 1) / q.block,
                  "inconsistent quantized8 header");
  q.mins = get_floats(bytes, off, blocks);
  q.scales = get_floats(bytes, off, blocks);
  APPFL_CHECK_MSG(bytes.size() - off == q.size,
                  "quantized8 code payload size mismatch");
  q.codes.assign(bytes.begin() + static_cast<long>(off), bytes.end());
  return q;
}

std::vector<std::uint8_t> encode_topk(const TopK& sparse) {
  std::vector<std::uint8_t> out;
  out.reserve(sparse.wire_bytes() + 8);
  put_u64(out, sparse.size);
  put_u64(out, sparse.indices.size());
  const std::size_t start = out.size();
  out.resize(start + 4 * sparse.indices.size());
  std::memcpy(out.data() + start, sparse.indices.data(),
              4 * sparse.indices.size());
  put_floats(out, sparse.values);
  return out;
}

TopK decode_topk(std::span<const std::uint8_t> bytes) {
  TopK sparse;
  std::size_t off = 0;
  sparse.size = get_u64(bytes, off);
  const std::uint64_t k = get_u64(bytes, off);
  APPFL_CHECK_MSG(k <= sparse.size, "top-k count exceeds vector size");
  APPFL_CHECK_MSG(off <= bytes.size() && k <= (bytes.size() - off) / 8,
                  "truncated top-k payload");
  sparse.indices.resize(k);
  std::memcpy(sparse.indices.data(), bytes.data() + off, 4 * k);
  off += 4 * k;
  sparse.values = get_floats(bytes, off, k);
  APPFL_CHECK_MSG(off == bytes.size(), "trailing bytes in top-k payload");
  return sparse;
}

std::vector<std::uint8_t> encode_fp16(std::span<const float> values) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 2 * values.size());
  put_u64(out, values.size());
  for (float v : values) {
    const std::uint16_t h = float_to_half(v);
    out.push_back(static_cast<std::uint8_t>(h));
    out.push_back(static_cast<std::uint8_t>(h >> 8));
  }
  return out;
}

std::vector<float> decode_fp16(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  const std::uint64_t count = get_u64(bytes, off);
  APPFL_CHECK_MSG(count <= (bytes.size() - off) / 2, "truncated fp16 payload");
  APPFL_CHECK_MSG(off + 2 * count == bytes.size(),
                  "trailing bytes in fp16 payload");
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto h = static_cast<std::uint16_t>(
        std::uint16_t{bytes[off + 2 * i]} |
        (std::uint16_t{bytes[off + 2 * i + 1]} << 8));
    out[i] = half_to_float(h);
  }
  return out;
}

}  // namespace appfl::comm
