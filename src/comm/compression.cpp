#include "comm/compression.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace appfl::comm {

std::size_t Quantized8::wire_bytes() const {
  // length(8) + block(8) + per-block (min, scale) floats + 1 byte per code.
  return 16 + 8 * mins.size() + codes.size();
}

Quantized8 quantize8(std::span<const float> values, std::size_t block) {
  APPFL_CHECK_MSG(block >= 2, "quantization block must hold several values");
  Quantized8 q;
  q.size = values.size();
  q.block = block;
  const std::size_t num_blocks = (values.size() + block - 1) / block;
  q.mins.reserve(num_blocks);
  q.scales.reserve(num_blocks);
  q.codes.resize(values.size());
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t start = b * block;
    const std::size_t end = std::min(start + block, values.size());
    float lo = values[start], hi = values[start];
    for (std::size_t i = start; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    const float scale = (hi - lo) / 255.0F;
    q.mins.push_back(lo);
    q.scales.push_back(scale);
    for (std::size_t i = start; i < end; ++i) {
      const float code =
          scale > 0.0F ? std::round((values[i] - lo) / scale) : 0.0F;
      q.codes[i] = static_cast<std::uint8_t>(
          std::clamp(code, 0.0F, 255.0F));
    }
  }
  return q;
}

std::vector<float> dequantize8(const Quantized8& q) {
  APPFL_CHECK(q.codes.size() == q.size);
  std::vector<float> out(q.size);
  for (std::size_t i = 0; i < q.size; ++i) {
    const std::size_t b = i / q.block;
    APPFL_CHECK(b < q.mins.size());
    out[i] = q.mins[b] + q.scales[b] * static_cast<float>(q.codes[i]);
  }
  return out;
}

double quantize8_error_bound(const Quantized8& q) {
  double worst = 0.0;
  for (float s : q.scales) worst = std::max(worst, static_cast<double>(s));
  return 0.5 * worst;
}

Int8Ef quantize_int8(std::span<const float> values, float clip_range,
                     std::size_t block) {
  APPFL_CHECK_MSG(block >= 2, "quantization block must hold several values");
  APPFL_CHECK_MSG(clip_range >= 0.0F, "int8 clip range must be non-negative");
  Int8Ef q;
  q.size = values.size();
  q.block = block;
  const std::size_t num_blocks = (values.size() + block - 1) / block;
  q.scales.reserve(num_blocks);
  q.codes.resize(values.size());
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t start = b * block;
    const std::size_t end = std::min(start + block, values.size());
    float maxabs = 0.0F;
    for (std::size_t i = start; i < end; ++i) {
      float v = values[i];
      if (clip_range > 0.0F) v = std::clamp(v, -clip_range, clip_range);
      maxabs = std::max(maxabs, std::abs(v));
    }
    const float scale = maxabs / 127.0F;
    q.scales.push_back(scale);
    for (std::size_t i = start; i < end; ++i) {
      float v = values[i];
      if (clip_range > 0.0F) v = std::clamp(v, -clip_range, clip_range);
      const float code = scale > 0.0F ? std::round(v / scale) : 0.0F;
      q.codes[i] =
          static_cast<std::int8_t>(std::clamp(code, -127.0F, 127.0F));
    }
  }
  return q;
}

std::vector<float> dequantize_int8(const Int8Ef& q) {
  APPFL_CHECK(q.codes.size() == q.size);
  std::vector<float> out(q.size);
  for (std::size_t i = 0; i < q.size; ++i) {
    const std::size_t b = i / q.block;
    APPFL_CHECK(b < q.scales.size());
    out[i] = q.scales[b] * static_cast<float>(q.codes[i]);
  }
  return out;
}

std::size_t TopK::wire_bytes() const {
  // length(8) + count(8) + 4 bytes index + 4 bytes value per kept entry.
  return 16 + 8 * indices.size();
}

TopK sparsify_topk(std::span<const float> values, std::size_t k) {
  TopK sparse;
  sparse.size = values.size();
  // Clamp AFTER the empty check: clamping k to an empty input would yield
  // k = 0 and an order.begin() + (0 - 1) iterator underflow below.
  if (values.empty()) return sparse;
  APPFL_CHECK_MSG(k >= 1, "top-k needs k >= 1");
  k = std::min(k, values.size());
  std::vector<std::uint32_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float ma = std::abs(values[a]);
                     const float mb = std::abs(values[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;  // deterministic tie-break
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());
  sparse.indices = std::move(order);
  sparse.values.reserve(k);
  for (std::uint32_t i : sparse.indices) sparse.values.push_back(values[i]);
  return sparse;
}

std::vector<float> densify(const TopK& sparse) {
  APPFL_CHECK(sparse.indices.size() == sparse.values.size());
  std::vector<float> out(sparse.size, 0.0F);
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    APPFL_CHECK_MSG(sparse.indices[i] < sparse.size,
                    "top-k index out of range");
    out[sparse.indices[i]] = sparse.values[i];
  }
  return out;
}

std::uint16_t float_to_half(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000U);
  const std::uint32_t exp = (bits >> 23) & 0xFFU;
  std::uint32_t mant = bits & 0x7FFFFFU;
  if (exp == 0xFFU) {
    // Inf stays inf; NaN keeps its top payload bits and is quieted so a
    // payload whose high 13 bits are zero cannot collapse into inf.
    const std::uint32_t nan_payload = mant ? (0x200U | (mant >> 13)) : 0U;
    return static_cast<std::uint16_t>(sign | 0x7C00U | nan_payload);
  }
  const int e = static_cast<int>(exp) - 127 + 15;  // rebias to binary16
  if (e >= 31) return static_cast<std::uint16_t>(sign | 0x7C00U);  // → ±inf
  if (e <= 0) {
    // Result is a binary16 subnormal (or zero). Below 2⁻²⁵ even the nearest
    // subnormal is zero; at exactly 2⁻²⁵ round-to-even also gives zero,
    // which the shift path below produces naturally for e == -10.
    if (e < -10) return sign;
    mant |= 0x800000U;  // make the leading 1 explicit
    const int shift = 14 - e;
    std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((std::uint32_t{1} << shift) - 1);
    const std::uint32_t halfway = std::uint32_t{1} << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1U))) ++half;
    // A carry out of the subnormal mantissa lands in exp = 1: exactly right.
    return static_cast<std::uint16_t>(sign | half);
  }
  std::uint32_t half =
      (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFU;
  if (rem > 0x1000U || (rem == 0x1000U && (half & 1U))) {
    ++half;  // mantissa/exponent carry chains; 65520 → inf is correct RNE
  }
  return static_cast<std::uint16_t>(sign | half);
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (std::uint32_t{h} & 0x8000U) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1FU;
  const std::uint32_t mant = h & 0x3FFU;
  std::uint32_t bits;
  if (exp == 0x1FU) {
    bits = sign | 0x7F800000U | (mant << 13);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      // Subnormal half: value is mant × 2⁻²⁴, exact in float32.
      const float v = std::ldexp(static_cast<float>(mant), -24);
      return sign ? -v : v;
    }
  } else {
    bits = sign | ((exp + 112U) << 23) | (mant << 13);  // rebias 15 → 127
  }
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t& off) {
  APPFL_CHECK_MSG(off + 8 <= b.size(), "truncated compressed payload");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[off + i]} << (8 * i);
  off += 8;
  return v;
}

void put_floats(std::vector<std::uint8_t>& out, std::span<const float> v) {
  const std::size_t start = out.size();
  out.resize(start + 4 * v.size());
  std::memcpy(out.data() + start, v.data(), 4 * v.size());
}

std::vector<float> get_floats(std::span<const std::uint8_t> b,
                              std::size_t& off, std::size_t count) {
  APPFL_CHECK_MSG(off <= b.size() && count <= (b.size() - off) / 4,
                  "truncated compressed float block");
  std::vector<float> out(count);
  std::memcpy(out.data(), b.data() + off, 4 * count);
  off += 4 * count;
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_quantized8(const Quantized8& q) {
  std::vector<std::uint8_t> out;
  out.reserve(q.wire_bytes() + 8);
  put_u64(out, q.size);
  put_u64(out, q.block);
  put_u64(out, q.mins.size());
  put_floats(out, q.mins);
  put_floats(out, q.scales);
  out.insert(out.end(), q.codes.begin(), q.codes.end());
  return out;
}

Quantized8 decode_quantized8(std::span<const std::uint8_t> bytes) {
  Quantized8 q;
  std::size_t off = 0;
  q.size = get_u64(bytes, off);
  q.block = get_u64(bytes, off);
  APPFL_CHECK_MSG(q.block >= 2, "invalid quantization block");
  const std::uint64_t blocks = get_u64(bytes, off);
  APPFL_CHECK_MSG(blocks == (q.size + q.block - 1) / q.block,
                  "inconsistent quantized8 header");
  q.mins = get_floats(bytes, off, blocks);
  q.scales = get_floats(bytes, off, blocks);
  APPFL_CHECK_MSG(bytes.size() - off == q.size,
                  "quantized8 code payload size mismatch");
  q.codes.assign(bytes.begin() + static_cast<long>(off), bytes.end());
  return q;
}

std::vector<std::uint8_t> encode_topk(const TopK& sparse) {
  std::vector<std::uint8_t> out;
  out.reserve(sparse.wire_bytes() + 8);
  put_u64(out, sparse.size);
  put_u64(out, sparse.indices.size());
  const std::size_t start = out.size();
  out.resize(start + 4 * sparse.indices.size());
  std::memcpy(out.data() + start, sparse.indices.data(),
              4 * sparse.indices.size());
  put_floats(out, sparse.values);
  return out;
}

TopK decode_topk(std::span<const std::uint8_t> bytes) {
  TopK sparse;
  std::size_t off = 0;
  sparse.size = get_u64(bytes, off);
  const std::uint64_t k = get_u64(bytes, off);
  APPFL_CHECK_MSG(k <= sparse.size, "top-k count exceeds vector size");
  APPFL_CHECK_MSG(off <= bytes.size() && k <= (bytes.size() - off) / 8,
                  "truncated top-k payload");
  sparse.indices.resize(k);
  std::memcpy(sparse.indices.data(), bytes.data() + off, 4 * k);
  off += 4 * k;
  sparse.values = get_floats(bytes, off, k);
  APPFL_CHECK_MSG(off == bytes.size(), "trailing bytes in top-k payload");
  return sparse;
}

namespace {

/// Largest per-scale block the int8 wire format admits: keeps the u16
/// payload-length field sufficient and bounds what a hostile header can make
/// the decoder allocate per block.
constexpr std::size_t kInt8MaxBlock = 16384;

/// LSB-first bit packer for the Rice payloads.
struct BitSink {
  std::vector<std::uint8_t>& out;
  std::uint32_t acc = 0;
  int nbits = 0;

  void put(std::uint32_t v, int n) {
    acc |= v << nbits;
    nbits += n;
    while (nbits >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      nbits -= 8;
    }
  }
  void flush() {
    if (nbits > 0) out.push_back(static_cast<std::uint8_t>(acc));
    acc = 0;
    nbits = 0;
  }
};

/// LSB-first bit reader; every read is bounds-checked.
struct BitSource {
  const std::uint8_t* data;
  std::size_t nbytes;
  std::size_t bit = 0;

  bool get() {
    APPFL_CHECK_MSG(bit < 8 * nbytes, "truncated int8 payload");
    const bool v = ((data[bit >> 3] >> (bit & 7U)) & 1U) != 0;
    ++bit;
    return v;
  }
};

/// Zigzag fold: codes in [−127, 127] → [0, 254], small magnitudes first —
/// what makes near-zero error-feedback deltas Rice-code to a few bits.
std::uint8_t zigzag_i8(std::int8_t c) {
  const int v = c;
  return static_cast<std::uint8_t>(v >= 0 ? 2 * v : -2 * v - 1);
}

std::int8_t unzigzag_u8(std::uint32_t u) {
  return static_cast<std::int8_t>((u & 1U) != 0
                                      ? -static_cast<int>((u + 1) / 2)
                                      : static_cast<int>(u / 2));
}

}  // namespace

std::vector<std::uint8_t> encode_int8(const Int8Ef& q) {
  APPFL_CHECK(q.codes.size() == q.size);
  APPFL_CHECK_MSG(q.block >= 2 && q.block <= kInt8MaxBlock,
                  "int8 block size out of wire-format range");
  const std::size_t num_blocks =
      q.size == 0 ? 0 : (q.size + q.block - 1) / q.block;
  APPFL_CHECK(q.scales.size() == num_blocks);
  std::vector<std::uint8_t> out;
  out.reserve(24 + 8 * num_blocks + q.size);  // raw-escape upper bound
  put_u64(out, q.size);
  put_u64(out, q.block);
  put_u64(out, num_blocks);
  std::vector<std::uint8_t> zz;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t start = b * q.block;
    const std::size_t len = std::min(q.block, q.size - start);
    zz.resize(len);
    for (std::size_t i = 0; i < len; ++i) zz[i] = zigzag_i8(q.codes[start + i]);
    // Scan k ∈ [0, 7] for the parameter minimizing total Rice bits:
    // (u >> k) + 1 unary bits plus k remainder bits per value.
    std::size_t best_bits = static_cast<std::size_t>(-1);
    int best_k = 0;
    for (int k = 0; k <= 7; ++k) {
      std::size_t bits = 0;
      for (std::uint8_t u : zz) bits += (u >> k) + 1U + static_cast<unsigned>(k);
      if (bits < best_bits) {
        best_bits = bits;
        best_k = k;
      }
    }
    const std::size_t rice_bytes = (best_bits + 7) / 8;
    const bool raw = rice_bytes >= len;  // Rice cannot beat 1 byte/value
    const std::size_t plen = raw ? len : rice_bytes;
    const std::size_t spos = out.size();
    out.resize(spos + 4);
    std::memcpy(out.data() + spos, &q.scales[b], 4);
    out.push_back(raw ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(raw ? 0 : best_k));
    out.push_back(static_cast<std::uint8_t>(plen));
    out.push_back(static_cast<std::uint8_t>(plen >> 8));
    if (raw) {
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<std::uint8_t>(q.codes[start + i]));
      }
    } else {
      BitSink sink{out};
      for (std::uint8_t u : zz) {
        for (std::uint32_t unary = u >> best_k; unary > 0; --unary) {
          sink.put(1, 1);
        }
        sink.put(0, 1);
        if (best_k > 0) sink.put(u & ((1U << best_k) - 1U), best_k);
      }
      sink.flush();
    }
  }
  return out;
}

Int8Ef decode_int8(std::span<const std::uint8_t> bytes) {
  Int8Ef q;
  std::size_t off = 0;
  q.size = get_u64(bytes, off);
  q.block = get_u64(bytes, off);
  APPFL_CHECK_MSG(q.block >= 2 && q.block <= kInt8MaxBlock,
                  "invalid int8 quantization block");
  const std::uint64_t blocks = get_u64(bytes, off);
  APPFL_CHECK_MSG(blocks == (q.size + q.block - 1) / q.block,
                  "inconsistent int8 header");
  // Every block costs ≥ 8 header bytes, so this bounds both the loop and
  // (together with the block cap) what q.codes can grow to — a hostile
  // size field cannot force an oversized allocation.
  APPFL_CHECK_MSG(blocks <= (bytes.size() - off) / 8,
                  "truncated int8 payload");
  q.scales.reserve(blocks);
  q.codes.reserve(q.size);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::size_t len = std::min(q.block, q.size - b * q.block);
    APPFL_CHECK_MSG(off + 8 <= bytes.size(), "truncated int8 payload");
    float scale = 0.0F;
    std::memcpy(&scale, bytes.data() + off, 4);
    off += 4;
    APPFL_CHECK_MSG(std::isfinite(scale) && scale >= 0.0F,
                    "invalid int8 block");
    const std::uint8_t mode = bytes[off++];
    const std::uint8_t rice_k = bytes[off++];
    const std::size_t plen = std::size_t{bytes[off]} |
                             (std::size_t{bytes[off + 1]} << 8);
    off += 2;
    APPFL_CHECK_MSG(mode <= 1 && rice_k <= 7, "invalid int8 block");
    APPFL_CHECK_MSG(plen <= bytes.size() - off, "truncated int8 payload");
    if (mode == 1) {
      APPFL_CHECK_MSG(plen == len, "invalid int8 block");
      for (std::size_t i = 0; i < len; ++i) {
        const auto c = static_cast<std::int8_t>(bytes[off + i]);
        APPFL_CHECK_MSG(c >= -127, "invalid int8 block");  // −128 unused
        q.codes.push_back(c);
      }
    } else {
      BitSource bits{bytes.data() + off, plen};
      for (std::size_t i = 0; i < len; ++i) {
        std::uint32_t unary = 0;
        while (bits.get()) {
          APPFL_CHECK_MSG(++unary <= 254, "invalid int8 block");
        }
        std::uint32_t u = unary << rice_k;
        for (int j = 0; j < rice_k; ++j) {
          u |= static_cast<std::uint32_t>(bits.get()) << j;
        }
        APPFL_CHECK_MSG(u <= 254, "invalid int8 block");
        q.codes.push_back(unzigzag_u8(u));
      }
      APPFL_CHECK_MSG((bits.bit + 7) / 8 == plen, "invalid int8 block");
    }
    off += plen;
    q.scales.push_back(scale);
  }
  APPFL_CHECK_MSG(off == bytes.size(), "trailing bytes in int8 payload");
  APPFL_CHECK_MSG(q.codes.size() == q.size, "inconsistent int8 header");
  return q;
}

std::vector<std::uint8_t> encode_fp16(std::span<const float> values) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + 2 * values.size());
  put_u64(out, values.size());
  for (float v : values) {
    const std::uint16_t h = float_to_half(v);
    out.push_back(static_cast<std::uint8_t>(h));
    out.push_back(static_cast<std::uint8_t>(h >> 8));
  }
  return out;
}

std::vector<float> decode_fp16(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  const std::uint64_t count = get_u64(bytes, off);
  APPFL_CHECK_MSG(count <= (bytes.size() - off) / 2, "truncated fp16 payload");
  APPFL_CHECK_MSG(off + 2 * count == bytes.size(),
                  "trailing bytes in fp16 payload");
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto h = static_cast<std::uint16_t>(
        std::uint16_t{bytes[off + 2 * i]} |
        (std::uint16_t{bytes[off + 2 * i + 1]} << 8));
    out[i] = half_to_float(h);
  }
  return out;
}

}  // namespace appfl::comm
