#include "comm/protolite.hpp"

#include <cstring>

#include "util/check.hpp"

namespace appfl::comm {

namespace {
constexpr std::uint32_t kVarint = 0;
constexpr std::uint32_t kFixed64 = 1;
constexpr std::uint32_t kLengthDelimited = 2;
constexpr std::uint32_t kFixed32 = 5;
constexpr std::uint32_t kMaxField = 536870911;  // 2^29 − 1
}  // namespace

void ProtoWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ProtoWriter::put_tag(std::uint32_t field, std::uint32_t wire_type) {
  APPFL_CHECK_MSG(field >= 1 && field <= kMaxField,
                  "invalid protobuf field number " << field);
  put_varint((std::uint64_t{field} << 3) | wire_type);
}

void ProtoWriter::add_varint(std::uint32_t field, std::uint64_t value) {
  put_tag(field, kVarint);
  put_varint(value);
}

void ProtoWriter::add_float(std::uint32_t field, float value) {
  put_tag(field, kFixed32);
  std::uint32_t bits;
  std::memcpy(&bits, &value, 4);
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void ProtoWriter::add_double(std::uint32_t field, double value) {
  put_tag(field, kFixed64);
  std::uint64_t bits;
  std::memcpy(&bits, &value, 8);
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void ProtoWriter::add_bytes(std::uint32_t field,
                            std::span<const std::uint8_t> bytes) {
  put_tag(field, kLengthDelimited);
  put_varint(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ProtoWriter::add_string(std::uint32_t field, const std::string& s) {
  add_bytes(field, {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void ProtoWriter::add_packed_floats(std::uint32_t field,
                                    std::span<const float> values) {
  put_tag(field, kLengthDelimited);
  put_varint(values.size() * 4);
  const std::size_t start = buf_.size();
  buf_.resize(start + values.size() * 4);
  std::memcpy(buf_.data() + start, values.data(), values.size() * 4);
}

std::uint64_t ProtoReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    APPFL_CHECK_MSG(pos_ < buf_.size(), "truncated varint");
    APPFL_CHECK_MSG(shift < 64, "varint too long");
    const std::uint8_t b = buf_[pos_++];
    v |= std::uint64_t{b & 0x7FU} << shift;
    if ((b & 0x80U) == 0) return v;
    shift += 7;
  }
}

bool ProtoReader::next(ProtoField& out) {
  if (pos_ >= buf_.size()) return false;
  const std::uint64_t tag = read_varint();
  out.field = static_cast<std::uint32_t>(tag >> 3);
  out.wire_type = static_cast<std::uint32_t>(tag & 0x7U);
  APPFL_CHECK_MSG(out.field >= 1, "invalid field number 0");
  switch (out.wire_type) {
    case kVarint:
      out.varint = read_varint();
      out.bytes = {};
      break;
    case kFixed64: {
      APPFL_CHECK_MSG(pos_ + 8 <= buf_.size(), "truncated fixed64");
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) v |= std::uint64_t{buf_[pos_ + i]} << (8 * i);
      out.varint = v;
      pos_ += 8;
      out.bytes = {};
      break;
    }
    case kLengthDelimited: {
      const std::uint64_t len = read_varint();
      APPFL_CHECK_MSG(pos_ + len <= buf_.size(), "truncated length-delimited field");
      out.bytes = buf_.subspan(pos_, len);
      out.varint = len;
      pos_ += len;
      break;
    }
    case kFixed32: {
      APPFL_CHECK_MSG(pos_ + 4 <= buf_.size(), "truncated fixed32");
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) v |= std::uint32_t{buf_[pos_ + i]} << (8 * i);
      out.varint = v;
      pos_ += 4;
      out.bytes = {};
      break;
    }
    default:
      APPFL_CHECK_MSG(false, "unsupported wire type " << out.wire_type);
  }
  return true;
}

float ProtoReader::as_float(const ProtoField& f) {
  APPFL_CHECK_MSG(f.wire_type == kFixed32, "field is not fixed32");
  const std::uint32_t bits = static_cast<std::uint32_t>(f.varint);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

double ProtoReader::as_double(const ProtoField& f) {
  APPFL_CHECK_MSG(f.wire_type == kFixed64, "field is not fixed64");
  const std::uint64_t bits = f.varint;
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string ProtoReader::as_string(const ProtoField& f) {
  APPFL_CHECK_MSG(f.wire_type == kLengthDelimited, "field is not length-delimited");
  return std::string(reinterpret_cast<const char*>(f.bytes.data()),
                     f.bytes.size());
}

std::vector<float> ProtoReader::as_packed_floats(const ProtoField& f) {
  std::vector<float> out;
  as_packed_floats_into(f, out);
  return out;
}

void ProtoReader::as_packed_floats_into(const ProtoField& f,
                                        std::vector<float>& out) {
  APPFL_CHECK_MSG(f.wire_type == kLengthDelimited, "field is not length-delimited");
  APPFL_CHECK_MSG(f.bytes.size() % 4 == 0, "packed float payload not a multiple of 4");
  out.resize(f.bytes.size() / 4);
  std::memcpy(out.data(), f.bytes.data(), f.bytes.size());
}

}  // namespace appfl::comm
