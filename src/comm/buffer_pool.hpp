// Recycled wire buffers for the comm data path.
//
// Every message crossing the in-process network used to allocate a fresh
// std::vector<std::uint8_t> on encode and drop it after decode — at FEMNIST
// scale that is a multi-MB allocation (plus the page faults of first touch)
// per message per round. A BufferPool keeps a bounded free list of retired
// buffers: encode acquires one (its capacity survives from previous
// rounds, so steady-state encodes never touch the allocator), the buffer
// rides through the mailbox network as the datagram payload, and the
// receiver releases it back after decode. Contents are never reused — only
// capacity — so pooling is invisible to the wire format.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace appfl::comm {

class BufferPool {
 public:
  /// `max_buffers` caps the free list; surplus releases simply deallocate.
  explicit BufferPool(std::size_t max_buffers = 32)
      : max_buffers_(max_buffers) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer, with whatever capacity its previous life left it.
  std::vector<std::uint8_t> acquire();

  /// Returns a retired buffer to the free list (or frees it past the cap).
  void release(std::vector<std::uint8_t>&& buf);

  struct Stats {
    std::uint64_t acquires = 0;  // total acquire() calls
    std::uint64_t reuses = 0;    // acquires served from the free list
    std::uint64_t dropped = 0;   // releases discarded because the list was full
  };
  Stats stats() const;

  std::size_t free_buffers() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_buffers_;
  Stats stats_;
};

}  // namespace appfl::comm
