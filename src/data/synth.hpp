// Synthetic federated datasets.
//
// Stand-ins for the paper's MNIST / CIFAR10 / FEMNIST / CoronaHack (§IV-A):
// same tensor shapes, class counts, and partition structure, with learnable
// but non-trivial content. Each class has a smooth random prototype image
// (a coarse Gaussian grid, bilinearly upsampled); a sample is its class
// prototype under a per-writer style transform (contrast/brightness/
// translation) plus i.i.d. pixel noise. Difficulty is controlled by the
// noise-to-prototype ratio. Everything is a pure function of the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "rng/rng.hpp"

namespace appfl::data {

/// A federated view of a dataset: P client training shards plus the
/// server-side test set used by the validation routine (§II-A5).
struct FederatedSplit {
  std::string name;
  std::vector<TensorDataset> clients;
  TensorDataset test;

  std::size_t num_clients() const { return clients.size(); }
  std::size_t total_train() const;
};

/// Parameters shared by the IID image generators.
struct SynthImageSpec {
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t num_classes = 10;
  std::size_t num_clients = 4;
  std::size_t train_per_client = 256;
  std::size_t test_size = 512;
  double noise = 0.9;        // pixel-noise stddev relative to prototype scale
  std::uint64_t seed = 1;
};

/// MNIST-like: 1×28×28, 10 classes, equal IID shards over 4 clients.
FederatedSplit mnist_like(const SynthImageSpec& overrides = {});

/// CIFAR10-like: 3×32×32, 10 classes, harder (more noise) by default.
FederatedSplit cifar10_like(SynthImageSpec overrides = {});

/// CoronaHack-like: 1×64×64 chest-X-ray stand-in, 3 classes
/// (normal / bacterial / viral), 4 clients.
FederatedSplit coronahack_like(SynthImageSpec overrides = {});

/// Smart-grid scenario (the paper's other motivating domain, see abstract):
/// each client is a utility holding daily load profiles — 1×1×96 signals
/// (15-minute resolution) — classified into consumer types. Utilities have
/// regional styles (feature non-IID), and load data cannot leave the
/// utility for policy reasons, exactly the FL setting the paper targets.
struct SmartGridSpec {
  std::size_t num_classes = 4;     // residential/commercial/industrial/EV
  std::size_t num_utilities = 8;   // clients
  std::size_t train_per_utility = 64;
  std::size_t test_size = 256;
  double noise = 0.7;
  std::uint64_t seed = 1;
};

FederatedSplit smartgrid_like(const SmartGridSpec& spec = {});

/// Parameters of the FEMNIST-like non-IID generator (LEAF writer split).
struct FemnistSpec {
  std::size_t num_classes = 62;
  std::size_t num_writers = 203;   // = number of clients, as in the paper
  std::size_t mean_samples_per_writer = 180;  // ≈ 36,699 / 203
  std::size_t min_classes_per_writer = 5;
  std::size_t max_classes_per_writer = 15;
  std::size_t test_size = 2048;
  double noise = 0.9;
  std::uint64_t seed = 1;
};

/// FEMNIST-like: 1×28×28, 62 classes, one client per writer; each writer
/// draws from a personal class subset with a personal style (non-IID in both
/// labels and features) and a lognormal sample count (unbalanced).
FederatedSplit femnist_like(const FemnistSpec& spec = {});

/// A lazy FEMNIST-like client population for the event engine's sampled
/// rounds. Same statistical family as femnist_like (personal class subset,
/// personal style, heavy-tailed lognormal sample count), but each writer's
/// recipe is derived from an independent per-writer stream
/// (derive_seed(seed, {9100, id})) instead of femnist_like's one sequential
/// meta stream — so shard `id` is a pure O(shard) function of (spec, id)
/// and costs nothing until materialized. A 100k-writer population holds no
/// per-writer state at all: memory tracks the participants actually built
/// in a round, never the population. (The per-writer streams necessarily
/// draw differently from the sequential meta stream, so this generator and
/// femnist_like produce different — same-family — tasks for equal specs.)
class SyntheticPopulation {
 public:
  /// `spec.num_writers` is the population size. Validates like femnist_like.
  explicit SyntheticPopulation(FemnistSpec spec);

  std::size_t size() const { return spec_.num_writers; }
  const FemnistSpec& spec() const { return spec_; }

  /// Writer `id`'s sample count (ids are 1-based, matching endpoint ids).
  /// O(num_classes) — the recipe draw, no samples generated.
  std::size_t sample_count(std::uint32_t id) const;

  /// Builds writer `id`'s training shard from scratch. Pure: every call
  /// returns bit-identical data, so transient clients can be rebuilt per
  /// participation with no stored state.
  TensorDataset materialize(std::uint32_t id) const;

  /// Server-side test set: same task (prototypes), neutral style, all
  /// classes — identical recipe to femnist_like's test set.
  TensorDataset test_set() const;

 private:
  FemnistSpec spec_;
};

/// Low-level generator used by all of the above: draws `count` labeled
/// samples with uniform class labels and writer style `writer_id`
/// (writer 0 = neutral style). `seed` fixes the *task* — class prototypes
/// and writer styles — while `sample_stream` selects an independent draw of
/// samples from that task, so different clients of one federated dataset
/// share prototypes but see disjoint data. Exposed for tests.
/// `proto_gain` scales the class prototypes relative to the noise (1.0 for
/// the image datasets; the 1-D smart-grid profiles use a larger gain since
/// consumer types differ strongly and the 1-D prototypes have few degrees
/// of freedom).
TensorDataset generate_samples(std::size_t channels, std::size_t height,
                               std::size_t width, std::size_t num_classes,
                               std::size_t count, double noise,
                               std::uint64_t seed, std::size_t writer_id = 0,
                               const std::vector<std::size_t>* class_pool = nullptr,
                               std::uint64_t sample_stream = 0,
                               double proto_gain = 1.0);

}  // namespace appfl::data
