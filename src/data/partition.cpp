#include "data/partition.hpp"

#include <numeric>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace appfl::data {

Partition iid_partition(std::size_t n, std::size_t num_clients, rng::Rng& rng) {
  APPFL_CHECK(num_clients > 0);
  APPFL_CHECK_MSG(n >= num_clients, "fewer samples (" << n << ") than clients ("
                                                      << num_clients << ")");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng::shuffle(rng, std::span<std::size_t>(order));
  const std::size_t per_client = n / num_clients;
  Partition out(num_clients);
  for (std::size_t p = 0; p < num_clients; ++p) {
    out[p].assign(order.begin() + static_cast<long>(p * per_client),
                  order.begin() + static_cast<long>((p + 1) * per_client));
  }
  return out;
}

Partition dirichlet_partition(const std::vector<std::size_t>& labels,
                              std::size_t num_classes, std::size_t num_clients,
                              double alpha, rng::Rng& rng) {
  APPFL_CHECK(num_clients > 0 && num_classes > 0 && alpha > 0.0);
  // Group sample indices by class.
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    APPFL_CHECK(labels[i] < num_classes);
    by_class[labels[i]].push_back(i);
  }
  Partition out(num_clients);
  for (std::size_t c = 0; c < num_classes; ++c) {
    auto& idx = by_class[c];
    rng::shuffle(rng, std::span<std::size_t>(idx));
    const auto props = rng::dirichlet_symmetric(rng, num_clients, alpha);
    // Convert proportions to cumulative cut points over this class's samples.
    std::size_t start = 0;
    double cum = 0.0;
    for (std::size_t p = 0; p < num_clients; ++p) {
      cum += props[p];
      const std::size_t end =
          (p + 1 == num_clients)
              ? idx.size()
              : static_cast<std::size_t>(cum * static_cast<double>(idx.size()));
      for (std::size_t i = start; i < end && i < idx.size(); ++i) {
        out[p].push_back(idx[i]);
      }
      start = end;
    }
  }
  return out;
}

std::vector<TensorDataset> materialize(const TensorDataset& source,
                                       const Partition& partition) {
  std::vector<TensorDataset> out;
  out.reserve(partition.size());
  for (const auto& indices : partition) {
    out.push_back(source.subset(indices));
  }
  return out;
}

std::vector<std::vector<std::size_t>> class_histograms(
    const std::vector<std::size_t>& labels, std::size_t num_classes,
    const Partition& partition) {
  std::vector<std::vector<std::size_t>> hist(partition.size());
  for (std::size_t p = 0; p < partition.size(); ++p) {
    hist[p].assign(num_classes, 0);
    for (std::size_t i : partition[p]) {
      APPFL_CHECK(i < labels.size());
      ++hist[p][labels[i]];
    }
  }
  return hist;
}

}  // namespace appfl::data
