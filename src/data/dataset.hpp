// Dataset abstraction, mirroring torch.utils.data.Dataset: a client-local
// collection of (input, label) pairs. The server never sees client data —
// the FL layer only receives a Dataset reference per client.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace appfl::data {

using tensor::Shape;
using tensor::Tensor;

/// A mini-batch: stacked inputs [B, ...sample shape] and B labels.
struct Batch {
  Tensor inputs;
  std::vector<std::size_t> labels;

  std::size_t size() const { return labels.size(); }
};

/// Abstract dataset of classified samples.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::size_t size() const = 0;

  /// Shape of a single sample (without the batch axis).
  virtual Shape sample_shape() const = 0;

  /// Number of distinct classes.
  virtual std::size_t num_classes() const = 0;

  /// Gathers the given sample indices into a stacked batch.
  virtual Batch gather(std::span<const std::size_t> indices) const = 0;

  /// The whole dataset as one batch (validation convenience).
  Batch all() const;
};

/// In-memory dataset over a stacked tensor [N, ...] plus labels — the
/// concrete type every synthetic generator produces.
class TensorDataset : public Dataset {
 public:
  /// Empty dataset (0 samples, 1 dummy class) — a valid placeholder.
  TensorDataset();

  TensorDataset(Tensor inputs, std::vector<std::size_t> labels,
                std::size_t num_classes);

  std::size_t size() const override { return labels_.size(); }
  Shape sample_shape() const override;
  std::size_t num_classes() const override { return num_classes_; }
  Batch gather(std::span<const std::size_t> indices) const override;

  /// Builds a new TensorDataset containing only the given indices.
  TensorDataset subset(std::span<const std::size_t> indices) const;

  const Tensor& inputs() const { return inputs_; }
  const std::vector<std::size_t>& labels() const { return labels_; }

 private:
  Tensor inputs_;  // [N, ...sample]
  std::vector<std::size_t> labels_;
  std::size_t num_classes_;
  std::size_t sample_numel_;
};

}  // namespace appfl::data
