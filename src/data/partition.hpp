// Partitioners: split one dataset into P client shards.
//
// The paper splits MNIST/CIFAR10/CoronaHack into equal IID shards (§IV-A)
// and uses LEAF's writer-based non-IID split for FEMNIST. We provide both,
// plus the Dirichlet label-skew partitioner common in the FL literature.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "rng/rng.hpp"

namespace appfl::data {

/// Index sets for each of P clients (disjoint, covering [0, n) minus at most
/// a remainder of n mod P samples for the equal-size variants).
using Partition = std::vector<std::vector<std::size_t>>;

/// Shuffles [0, n) and deals equal-size contiguous shards to P clients.
Partition iid_partition(std::size_t n, std::size_t num_clients, rng::Rng& rng);

/// Label-skew non-IID: for each class, splits its samples across clients in
/// proportions drawn from Dirichlet(alpha). Small alpha ⇒ highly skewed.
Partition dirichlet_partition(const std::vector<std::size_t>& labels,
                              std::size_t num_classes, std::size_t num_clients,
                              double alpha, rng::Rng& rng);

/// Materializes TensorDataset shards from a partition of `source`.
std::vector<TensorDataset> materialize(const TensorDataset& source,
                                       const Partition& partition);

/// Per-client class histogram — used by tests to assert skew.
std::vector<std::vector<std::size_t>> class_histograms(
    const std::vector<std::size_t>& labels, std::size_t num_classes,
    const Partition& partition);

}  // namespace appfl::data
