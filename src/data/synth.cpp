#include "data/synth.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace appfl::data {

std::size_t FederatedSplit::total_train() const {
  std::size_t n = 0;
  for (const auto& c : clients) n += c.size();
  return n;
}

namespace {

// Stream-purpose tags for seed derivation, so prototype content, writer
// styles and per-sample noise are independent streams of the same base seed.
constexpr std::uint64_t kProtoStream = 101;
constexpr std::uint64_t kStyleStream = 202;
constexpr std::uint64_t kSampleStream = 303;

constexpr std::size_t kCoarse = 7;  // coarse prototype grid extent

/// Bilinearly upsamples a kCoarse×kCoarse grid to h×w.
void upsample(const float* coarse, float* out, std::size_t h, std::size_t w) {
  for (std::size_t y = 0; y < h; ++y) {
    const double fy = (h == 1) ? 0.0
                               : static_cast<double>(y) * (kCoarse - 1) /
                                     static_cast<double>(h - 1);
    const std::size_t y0 = static_cast<std::size_t>(fy);
    const std::size_t y1 = std::min(y0 + 1, kCoarse - 1);
    const double wy = fy - static_cast<double>(y0);
    for (std::size_t x = 0; x < w; ++x) {
      const double fx = (w == 1) ? 0.0
                                 : static_cast<double>(x) * (kCoarse - 1) /
                                       static_cast<double>(w - 1);
      const std::size_t x0 = static_cast<std::size_t>(fx);
      const std::size_t x1 = std::min(x0 + 1, kCoarse - 1);
      const double wx = fx - static_cast<double>(x0);
      const double v00 = coarse[y0 * kCoarse + x0];
      const double v01 = coarse[y0 * kCoarse + x1];
      const double v10 = coarse[y1 * kCoarse + x0];
      const double v11 = coarse[y1 * kCoarse + x1];
      out[y * w + x] = static_cast<float>((1 - wy) * ((1 - wx) * v00 + wx * v01) +
                                          wy * ((1 - wx) * v10 + wx * v11));
    }
  }
}

/// Class prototypes for a dataset seed: [num_classes][channels][h][w].
/// Deterministic in (seed, class, channel) — identical for every writer.
std::vector<float> make_prototypes(std::size_t channels, std::size_t h,
                                   std::size_t w, std::size_t num_classes,
                                   std::uint64_t seed) {
  std::vector<float> protos(num_classes * channels * h * w);
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t ch = 0; ch < channels; ++ch) {
      rng::Rng r(rng::derive_seed(seed, {kProtoStream, c, ch}));
      float coarse[kCoarse * kCoarse];
      for (auto& v : coarse) v = static_cast<float>(rng::normal(r, 0.0, 1.0));
      upsample(coarse, protos.data() + (c * channels + ch) * h * w, h, w);
    }
  }
  return protos;
}

struct WriterStyle {
  float contrast = 1.0F;
  float brightness = 0.0F;
  long shift_y = 0;
  long shift_x = 0;
};

WriterStyle make_style(std::uint64_t seed, std::size_t writer_id,
                       std::size_t height, std::size_t width) {
  if (writer_id == 0) return {};  // writer 0 is the neutral/global style
  rng::Rng r(rng::derive_seed(seed, {kStyleStream, writer_id}));
  WriterStyle s;
  s.contrast = static_cast<float>(rng::lognormal(r, 0.0, 0.2));
  s.brightness = static_cast<float>(rng::normal(r, 0.0, 0.3));
  s.shift_y = static_cast<long>(r.uniform_below(5)) - 2;
  s.shift_x = static_cast<long>(r.uniform_below(5)) - 2;
  // A translation must not push the prototype (mostly) out of frame: thin
  // extents (e.g. 1×96 load profiles) get no shift along that axis.
  if (height < 8) s.shift_y = 0;
  if (width < 8) s.shift_x = 0;
  return s;
}

}  // namespace

TensorDataset generate_samples(std::size_t channels, std::size_t height,
                               std::size_t width, std::size_t num_classes,
                               std::size_t count, double noise,
                               std::uint64_t seed, std::size_t writer_id,
                               const std::vector<std::size_t>* class_pool,
                               std::uint64_t sample_stream,
                               double proto_gain) {
  APPFL_CHECK(channels > 0 && height > 0 && width > 0 && num_classes > 0);
  APPFL_CHECK(proto_gain > 0.0);
  const auto protos = make_prototypes(channels, height, width, num_classes, seed);
  const WriterStyle style = make_style(seed, writer_id, height, width);
  rng::Rng r(rng::derive_seed(seed, {kSampleStream, writer_id, sample_stream}));

  Tensor inputs({count, channels, height, width});
  std::vector<std::size_t> labels(count);
  float* out = inputs.raw();
  const std::size_t plane = height * width;

  for (std::size_t i = 0; i < count; ++i) {
    std::size_t label;
    if (class_pool != nullptr) {
      APPFL_CHECK(!class_pool->empty());
      label = (*class_pool)[r.uniform_below(class_pool->size())];
      APPFL_CHECK(label < num_classes);
    } else {
      label = r.uniform_below(num_classes);
    }
    labels[i] = label;
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const float* proto = protos.data() + (label * channels + ch) * plane;
      float* dst = out + (i * channels + ch) * plane;
      for (std::size_t y = 0; y < height; ++y) {
        const long sy = static_cast<long>(y) - style.shift_y;
        for (std::size_t x = 0; x < width; ++x) {
          const long sx = static_cast<long>(x) - style.shift_x;
          float base = 0.0F;
          if (sy >= 0 && sy < static_cast<long>(height) && sx >= 0 &&
              sx < static_cast<long>(width)) {
            base = proto[sy * static_cast<long>(width) + sx];
          }
          dst[y * width + x] =
              style.contrast * static_cast<float>(proto_gain) * base +
              style.brightness +
              static_cast<float>(rng::normal(r, 0.0, noise));
        }
      }
    }
  }
  return TensorDataset(std::move(inputs), std::move(labels), num_classes);
}

namespace {

FederatedSplit iid_image_split(std::string name, const SynthImageSpec& spec) {
  FederatedSplit split;
  split.name = std::move(name);
  split.clients.reserve(spec.num_clients);
  for (std::size_t p = 0; p < spec.num_clients; ++p) {
    // Every client draws fresh samples from the same (global) task — same
    // prototypes, independent sample stream — an IID split, like the paper's
    // 4-way splits of MNIST/CIFAR10/CoronaHack.
    split.clients.push_back(generate_samples(
        spec.channels, spec.height, spec.width, spec.num_classes,
        spec.train_per_client, spec.noise, spec.seed, /*writer_id=*/0,
        /*class_pool=*/nullptr, /*sample_stream=*/p + 1));
  }
  split.test = generate_samples(spec.channels, spec.height, spec.width,
                                spec.num_classes, spec.test_size, spec.noise,
                                spec.seed, /*writer_id=*/0,
                                /*class_pool=*/nullptr,
                                /*sample_stream=*/999999);
  return split;
}

}  // namespace

FederatedSplit mnist_like(const SynthImageSpec& overrides) {
  SynthImageSpec spec = overrides;
  spec.channels = 1;
  spec.height = 28;
  spec.width = 28;
  spec.num_classes = 10;
  return iid_image_split("mnist-like", spec);
}

FederatedSplit cifar10_like(SynthImageSpec overrides) {
  SynthImageSpec spec = overrides;
  spec.channels = 3;
  spec.height = 32;
  spec.width = 32;
  spec.num_classes = 10;
  if (overrides.noise == SynthImageSpec{}.noise) spec.noise = 1.4;  // harder
  return iid_image_split("cifar10-like", spec);
}

FederatedSplit coronahack_like(SynthImageSpec overrides) {
  SynthImageSpec spec = overrides;
  spec.channels = 1;
  spec.height = 64;
  spec.width = 64;
  spec.num_classes = 3;
  return iid_image_split("coronahack-like", spec);
}

FederatedSplit smartgrid_like(const SmartGridSpec& spec) {
  APPFL_CHECK(spec.num_utilities >= 1);
  FederatedSplit split;
  split.name = "smartgrid-like";
  split.clients.reserve(spec.num_utilities);
  constexpr std::size_t kIntervals = 96;  // 24h at 15-minute resolution
  // 1-D profiles have few prototype degrees of freedom, so boost the class
  // signal: consumer types differ strongly in reality.
  constexpr double kProfileGain = 3.0;
  for (std::size_t u = 0; u < spec.num_utilities; ++u) {
    // Each utility has its own regional style (writer transform) over the
    // shared consumer-type prototypes — feature-level non-IID.
    split.clients.push_back(generate_samples(
        1, 1, kIntervals, spec.num_classes, spec.train_per_utility,
        spec.noise, spec.seed, /*writer_id=*/u + 1, /*class_pool=*/nullptr,
        /*sample_stream=*/0, kProfileGain));
  }
  split.test = generate_samples(1, 1, kIntervals, spec.num_classes,
                                spec.test_size, spec.noise, spec.seed,
                                /*writer_id=*/0, /*class_pool=*/nullptr,
                                /*sample_stream=*/999999, kProfileGain);
  return split;
}

FederatedSplit femnist_like(const FemnistSpec& spec) {
  APPFL_CHECK(spec.num_writers > 0);
  APPFL_CHECK(spec.min_classes_per_writer >= 1);
  APPFL_CHECK(spec.max_classes_per_writer >= spec.min_classes_per_writer);
  APPFL_CHECK(spec.max_classes_per_writer <= spec.num_classes);

  FederatedSplit split;
  split.name = "femnist-like";
  split.clients.reserve(spec.num_writers);

  constexpr std::size_t kH = 28, kW = 28, kC = 1;
  rng::Rng meta(rng::derive_seed(spec.seed, {9000}));

  for (std::size_t w = 0; w < spec.num_writers; ++w) {
    // Personal class subset (label non-IID-ness).
    const std::size_t k =
        spec.min_classes_per_writer +
        meta.uniform_below(spec.max_classes_per_writer -
                           spec.min_classes_per_writer + 1);
    std::vector<std::size_t> all(spec.num_classes);
    for (std::size_t c = 0; c < spec.num_classes; ++c) all[c] = c;
    rng::shuffle(meta, std::span<std::size_t>(all));
    std::vector<std::size_t> pool(all.begin(), all.begin() + static_cast<long>(k));

    // Unbalanced sample count (LEAF's counts are heavy-tailed).
    const double ln = rng::lognormal(meta, 0.0, 0.45);
    std::size_t count = static_cast<std::size_t>(
        std::max(8.0, ln * static_cast<double>(spec.mean_samples_per_writer)));

    split.clients.push_back(generate_samples(
        kC, kH, kW, spec.num_classes, count, spec.noise, spec.seed,
        /*writer_id=*/w + 1, &pool));
  }

  // Server test set: same task (prototypes), neutral style, all classes.
  split.test = generate_samples(kC, kH, kW, spec.num_classes, spec.test_size,
                                spec.noise, spec.seed, /*writer_id=*/0,
                                /*class_pool=*/nullptr,
                                /*sample_stream=*/999999);
  return split;
}

namespace {

/// A writer's personal recipe — class pool and sample count — drawn from a
/// per-writer stream so it is a pure O(num_classes) function of (spec, id).
/// The draw order matches femnist_like's per-writer block exactly; only the
/// stream it draws from differs (independent {9100, id} vs sequential
/// {9000}).
struct WriterRecipe {
  std::vector<std::size_t> pool;
  std::size_t count = 0;
};

WriterRecipe writer_recipe(const FemnistSpec& spec, std::uint32_t id) {
  rng::Rng meta(rng::derive_seed(spec.seed, {9100, id}));
  WriterRecipe recipe;
  const std::size_t k =
      spec.min_classes_per_writer +
      meta.uniform_below(spec.max_classes_per_writer -
                         spec.min_classes_per_writer + 1);
  std::vector<std::size_t> all(spec.num_classes);
  for (std::size_t c = 0; c < spec.num_classes; ++c) all[c] = c;
  rng::shuffle(meta, std::span<std::size_t>(all));
  recipe.pool.assign(all.begin(), all.begin() + static_cast<long>(k));
  const double ln = rng::lognormal(meta, 0.0, 0.45);
  recipe.count = static_cast<std::size_t>(
      std::max(8.0, ln * static_cast<double>(spec.mean_samples_per_writer)));
  return recipe;
}

}  // namespace

SyntheticPopulation::SyntheticPopulation(FemnistSpec spec)
    : spec_(std::move(spec)) {
  APPFL_CHECK(spec_.num_writers > 0);
  APPFL_CHECK(spec_.min_classes_per_writer >= 1);
  APPFL_CHECK(spec_.max_classes_per_writer >= spec_.min_classes_per_writer);
  APPFL_CHECK(spec_.max_classes_per_writer <= spec_.num_classes);
}

std::size_t SyntheticPopulation::sample_count(std::uint32_t id) const {
  APPFL_CHECK_MSG(id >= 1 && id <= spec_.num_writers,
                  "writer " << id << " outside population of "
                            << spec_.num_writers);
  return writer_recipe(spec_, id).count;
}

TensorDataset SyntheticPopulation::materialize(std::uint32_t id) const {
  APPFL_CHECK_MSG(id >= 1 && id <= spec_.num_writers,
                  "writer " << id << " outside population of "
                            << spec_.num_writers);
  constexpr std::size_t kH = 28, kW = 28, kC = 1;
  const WriterRecipe recipe = writer_recipe(spec_, id);
  return generate_samples(kC, kH, kW, spec_.num_classes, recipe.count,
                          spec_.noise, spec_.seed, /*writer_id=*/id,
                          &recipe.pool);
}

TensorDataset SyntheticPopulation::test_set() const {
  constexpr std::size_t kH = 28, kW = 28, kC = 1;
  return generate_samples(kC, kH, kW, spec_.num_classes, spec_.test_size,
                          spec_.noise, spec_.seed, /*writer_id=*/0,
                          /*class_pool=*/nullptr,
                          /*sample_stream=*/999999);
}

}  // namespace appfl::data
