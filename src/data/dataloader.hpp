// DataLoader: shuffling mini-batch iteration over a Dataset, mirroring
// torch.utils.data.DataLoader. One epoch = one pass over a permutation.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "rng/rng.hpp"

namespace appfl::data {

class DataLoader {
 public:
  /// batch_size: max samples per batch (the final batch may be smaller).
  /// shuffle: re-permute indices at the start of every epoch.
  DataLoader(const Dataset& dataset, std::size_t batch_size, bool shuffle,
             std::uint64_t seed);

  /// Number of batches per epoch (⌈N / batch_size⌉).
  std::size_t num_batches() const;

  /// Fetches batch `b` of the current epoch.
  Batch batch(std::size_t b) const;

  /// Advances to the next epoch (re-shuffles when enabled).
  void next_epoch();

  std::size_t batch_size() const { return batch_size_; }
  std::size_t epoch() const { return epoch_; }

 private:
  void reshuffle();

  const Dataset& dataset_;
  std::size_t batch_size_;
  bool shuffle_;
  rng::Rng rng_;
  std::size_t epoch_ = 0;
  std::vector<std::size_t> order_;
};

}  // namespace appfl::data
