#include "data/dataloader.hpp"

#include <numeric>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace appfl::data {

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       bool shuffle, std::uint64_t seed)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed),
      order_(dataset.size()) {
  APPFL_CHECK_MSG(batch_size_ > 0, "batch_size must be positive");
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) reshuffle();
}

std::size_t DataLoader::num_batches() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::batch(std::size_t b) const {
  APPFL_CHECK_MSG(b < num_batches(),
                  "batch " << b << " >= num_batches " << num_batches());
  const std::size_t start = b * batch_size_;
  const std::size_t count = std::min(batch_size_, dataset_.size() - start);
  return dataset_.gather(
      std::span<const std::size_t>(order_).subspan(start, count));
}

void DataLoader::next_epoch() {
  ++epoch_;
  if (shuffle_) reshuffle();
}

void DataLoader::reshuffle() {
  rng::shuffle(rng_, std::span<std::size_t>(order_));
}

}  // namespace appfl::data
