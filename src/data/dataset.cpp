#include "data/dataset.hpp"

#include <cstring>
#include <numeric>

#include "util/check.hpp"

namespace appfl::data {

Batch Dataset::all() const {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  return gather(idx);
}

TensorDataset::TensorDataset()
    : TensorDataset(Tensor({0, 1}), {}, 1) {}

TensorDataset::TensorDataset(Tensor inputs, std::vector<std::size_t> labels,
                             std::size_t num_classes)
    : inputs_(std::move(inputs)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  APPFL_CHECK_MSG(inputs_.rank() >= 2,
                  "TensorDataset inputs must have a batch axis, got "
                      << tensor::to_string(inputs_.shape()));
  APPFL_CHECK_MSG(inputs_.dim(0) == labels_.size(),
                  "inputs batch " << inputs_.dim(0) << " != label count "
                                  << labels_.size());
  APPFL_CHECK(num_classes_ > 0);
  sample_numel_ = labels_.empty() ? 0 : inputs_.size() / labels_.size();
  for (std::size_t y : labels_) {
    APPFL_CHECK_MSG(y < num_classes_,
                    "label " << y << " >= num_classes " << num_classes_);
  }
}

Shape TensorDataset::sample_shape() const {
  Shape s(inputs_.shape().begin() + 1, inputs_.shape().end());
  return s;
}

Batch TensorDataset::gather(std::span<const std::size_t> indices) const {
  Shape batch_shape = inputs_.shape();
  batch_shape[0] = indices.size();
  Tensor out(batch_shape);
  std::vector<std::size_t> labels(indices.size());
  const float* src = inputs_.raw();
  float* dst = out.raw();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    APPFL_CHECK_MSG(idx < size(), "sample index " << idx << " >= " << size());
    std::memcpy(dst + i * sample_numel_, src + idx * sample_numel_,
                sizeof(float) * sample_numel_);
    labels[i] = labels_[idx];
  }
  return {std::move(out), std::move(labels)};
}

TensorDataset TensorDataset::subset(std::span<const std::size_t> indices) const {
  Batch b = gather(indices);
  return TensorDataset(std::move(b.inputs), std::move(b.labels), num_classes_);
}

}  // namespace appfl::data
