#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace appfl::obs {

namespace detail {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::string name, double min, double max,
                     std::size_t buckets)
    : name_(std::move(name)) {
  APPFL_CHECK_MSG(min >= 0.0 && max > min,
                  "histogram '" << name_ << "' needs 0 <= min < max");
  APPFL_CHECK_MSG(buckets >= 1 && buckets <= kMaxHistogramBuckets,
                  "histogram '" << name_ << "' bucket count " << buckets
                                << " outside [1, " << kMaxHistogramBuckets
                                << "]");
  bounds_.resize(buckets + 1);
  if (min == 0.0) {
    // Zero-anchored mode: bucket 0 is exactly [0, 1) and the remaining
    // buckets are geometric from 1 to max. A log-scale ladder cannot start
    // at 0, but integer-valued signals (update staleness, retry counts)
    // have 0 as a — often modal — legitimate value that must stay visible
    // in the export rather than leak into an underflow bucket.
    APPFL_CHECK_MSG(max > 1.0, "histogram '" << name_
                                             << "' zero-anchored needs max > 1");
    APPFL_CHECK_MSG(buckets >= 2, "histogram '"
                                      << name_
                                      << "' zero-anchored needs >= 2 buckets");
    const double step = std::log(max) / static_cast<double>(buckets - 1);
    for (std::size_t i = 1; i <= buckets; ++i) {
      bounds_[i] = std::exp(step * static_cast<double>(i - 1));
    }
    bounds_[0] = 0.0;
    bounds_[1] = 1.0;
  } else {
    const double log_min = std::log(min);
    const double step =
        (std::log(max) - log_min) / static_cast<double>(buckets);
    for (std::size_t i = 0; i <= buckets; ++i) {
      bounds_[i] = std::exp(log_min + step * static_cast<double>(i));
    }
    bounds_.front() = min;
  }
  // Pin the ends exactly so bucket_index(min)==0 and >=max overflows by
  // comparison, not by floating-point luck.
  bounds_.back() = max;
}

std::size_t Histogram::bucket_index(double v) const {
  if (!(v > bounds_.front())) return 0;  // underflow and NaN
  if (v >= bounds_.back()) return num_buckets() - 1;
  // First boundary strictly greater than v starts the *next* bucket.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin()) - 1;
}

void Histogram::record(double v) {
  Cell& cell = cells_[detail::thread_shard()];
  cell.counts[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(cell.sum, std::isfinite(v) ? v : 0.0);
}

void Histogram::reset() {
  for (auto& cell : cells_) {
    for (auto& c : cell.counts) c.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0.0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile_upper_bound(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= target) return bounds[i + 1];
  }
  return bounds.back();
}

const std::uint64_t* MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter(name));
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge(name));
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double min,
                                      double max, std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(name, min, max, buckets));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds_;
    hs.buckets.assign(h->num_buckets(), 0);
    for (const auto& cell : h->cells_) {
      for (std::size_t i = 0; i < hs.buckets.size(); ++i) {
        hs.buckets[i] += cell.counts[i].load(std::memory_order_relaxed);
      }
      hs.count += cell.count.load(std::memory_order_relaxed);
      hs.sum += cell.sum.load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;  // std::map iteration is already name-sorted
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace appfl::obs
