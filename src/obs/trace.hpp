// Span tracer — low-overhead scoped timing for the observability plane.
//
// Emitting a span appends one fixed-size record to a ring buffer owned by
// the calling thread (one uncontended mutex acquire; writers never touch
// another thread's ring). A full ring overwrites its oldest record and
// counts the drop — emission never blocks and never allocates after the
// ring exists. Every record carries a dual timestamp: the steady-clock wall
// interval (what the span really cost on this machine) and, where the
// instrumented phase lives on the simulated experiment timeline, the
// sim-clock interval as well (what the phase costs in the paper's units).
//
// Export: obs/export.hpp serializes the merged rings as Chrome trace_event
// JSON ("X" complete events) loadable in Perfetto / chrome://tracing;
// Tracer::collect() hands the raw records to in-process analysis
// (bench/phase_breakdown).
//
// Names and categories are `const char*` by design: the emit path stores
// the pointer, so callers must pass string literals (or otherwise
// tracer-outliving storage).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"

namespace appfl::obs {

struct SpanRecord {
  const char* name = "";
  const char* cat = "";
  double wall_start_s = 0.0;  // seconds since the tracer's epoch
  double wall_dur_s = 0.0;
  double sim_start_s = -1.0;  // simulated seconds; < 0 ⇒ not on the sim timeline
  double sim_dur_s = -1.0;
  const char* arg_name = nullptr;  // optional numeric argument (e.g. "client")
  std::uint64_t arg = 0;
  std::uint64_t span_id = 0;    // process-unique; 0 ⇒ no trace context
  std::uint64_t parent_id = 0;  // enclosing span (or cross-thread link); 0 ⇒ root
  std::uint32_t tid = 0;        // tracer-assigned thread index
};

/// Process-wide span-id allocator. Ids start at 1; 0 means "no span".
std::uint64_t next_span_id();

/// The innermost live ScopedSpan on this thread (0 when none). This is the
/// trace context a message sender stamps onto the wire so receiver-side
/// spans can link back to it.
std::uint64_t current_span_id();

class Tracer {
 public:
  /// `ring_capacity` records per thread (each thread that emits gets its own
  /// ring of this size).
  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Appends to the calling thread's ring (created on first emit). tid is
  /// stamped here; a full ring overwrites its oldest record.
  void emit(SpanRecord r);

  /// Merged copy of every ring, ordered by wall_start_s (ties by tid).
  /// Safe to call while other threads emit; each ring is snapshotted under
  /// its own lock.
  std::vector<SpanRecord> collect() const;

  /// Total records overwritten before they could be collected.
  std::uint64_t dropped() const;
  /// Total records ever emitted (retained + dropped).
  std::uint64_t emitted() const;

  /// Forgets all records and drop counts; rings stay registered. A new
  /// epoch is taken so subsequent spans start near wall time 0.
  void clear();

  /// Seconds since the tracer's epoch on the steady clock.
  double now() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() -
               epoch_.load(std::memory_order_relaxed))
        .count();
  }

  std::size_t ring_capacity() const { return ring_capacity_; }

  /// Number of per-thread rings registered (threads that ever emitted).
  std::size_t ring_count() const;

  /// The process-wide tracer the APPFL_SPAN hooks write to.
  static Tracer& global();

  static constexpr std::size_t kDefaultRingCapacity = 1 << 14;

  struct Ring;  // opaque; public so the per-thread ring cache can name it

 private:
  Ring& local_ring();

  const std::size_t ring_capacity_;
  const std::uint64_t tracer_id_;  // distinguishes instances in thread caches
  std::atomic<std::chrono::steady_clock::time_point> epoch_;
  mutable std::mutex mutex_;  // guards rings_ registration
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// RAII span: snapshots the wall clock at construction and emits one record
/// at destruction. Construction is a no-op (active_=false) unless tracing
/// was on when the scope opened.
///
/// Trace context: an active span draws a process-unique id, records the
/// thread's current innermost span as its parent, and becomes the thread's
/// current span until destruction (a thread-local stack). set_parent()
/// re-points the parent across threads — e.g. a server-side gather span
/// adopting the client span id that rode in on the message.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) : active_(trace_on()) {
    if (!active_) return;
    rec_.name = name;
    rec_.cat = cat;
    rec_.span_id = next_span_id();
    rec_.parent_id = current_span_id();
    push_current(rec_.span_id);
    rec_.wall_start_s = Tracer::global().now();
  }
  ~ScopedSpan() {
    if (!active_) return;
    rec_.wall_dur_s = Tracer::global().now() - rec_.wall_start_s;
    pop_current();
    Tracer::global().emit(rec_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches the phase's interval on the simulated timeline.
  void set_sim(double start_s, double dur_s) {
    rec_.sim_start_s = start_s;
    rec_.sim_dur_s = dur_s;
  }
  /// Attaches one named numeric argument (name must outlive the tracer).
  void set_arg(const char* name, std::uint64_t value) {
    rec_.arg_name = name;
    rec_.arg = value;
  }
  /// Overrides the lexical parent with a remote one (a span id that arrived
  /// on a message). 0 is ignored so callers can pass unconditionally.
  void set_parent(std::uint64_t span_id) {
    if (active_ && span_id != 0) rec_.parent_id = span_id;
  }
  /// This span's id (0 when inactive) — what a sender stamps on a message.
  std::uint64_t id() const { return active_ ? rec_.span_id : 0; }
  bool active() const { return active_; }

 private:
  static void push_current(std::uint64_t id);
  static void pop_current();

  bool active_;
  SpanRecord rec_;
};

#define APPFL_OBS_CONCAT_INNER(a, b) a##b
#define APPFL_OBS_CONCAT(a, b) APPFL_OBS_CONCAT_INNER(a, b)
/// Scoped span over the rest of the enclosing block:
///   APPFL_SPAN("fl.round", "fl");
#define APPFL_SPAN(name, cat) \
  ::appfl::obs::ScopedSpan APPFL_OBS_CONCAT(appfl_span_, __LINE__)(name, cat)

}  // namespace appfl::obs
