// Observability plane — the process-wide switch the span tracer
// (obs/trace.hpp) and the metrics registry (obs/metrics.hpp) consult before
// doing any work.
//
// Three levels:
//   kOff     — every hook is dormant. Training output is bit-identical to a
//              build without the plane (instrumentation only *reads* clocks
//              and counters; it never touches RNG streams, sim time, or the
//              wire), and the per-hook cost is one relaxed atomic load.
//   kMetrics — counters/gauges/histograms record; spans stay off.
//   kTrace   — metrics plus RAII spans into thread-local ring buffers,
//              exportable as Chrome trace_event JSON (Perfetto,
//              chrome://tracing).
//
// Compile-time kill switch: building with -DAPPFL_OBS_DISABLED pins the
// level to kOff so every guard folds to `if (false)` and the instrumented
// binary is observability-free.
#pragma once

#include <atomic>
#include <optional>
#include <string>

namespace appfl::obs {

enum class Level : int { kOff = 0, kMetrics = 1, kTrace = 2 };

std::string to_string(Level lv);

/// Parses "off" / "metrics" / "trace"; nullopt on anything else.
std::optional<Level> parse_level(const std::string& name);

namespace detail {
#if defined(APPFL_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif
extern std::atomic<int> g_level;
}  // namespace detail

inline Level level() {
  if constexpr (!detail::kCompiledIn) return Level::kOff;
  return static_cast<Level>(detail::g_level.load(std::memory_order_relaxed));
}

void set_level(Level lv);

inline bool metrics_on() { return level() >= Level::kMetrics; }
inline bool trace_on() { return level() >= Level::kTrace; }

/// Resolved observability policy for one run: the level plus where (if
/// anywhere) the exporters write. Populated from RunConfig by
/// core::obs_options_from_env, then overridden by APPFL_OBS_*.
struct ObsOptions {
  Level level = Level::kOff;
  std::string trace_out;     // Chrome trace JSON path ("" = don't write)
  std::string metrics_out;   // per-round JSONL stream path ("" = don't write)
  std::string health_out;    // per-client health ledger CSV (needs metrics+)
  std::string critpath_out;  // critical-path JSONL; `<stem>.csv` written too
                             // (needs trace — the analyzer eats span records)
  std::string flight_dir;    // directory for flight-recorder dumps (metrics+)
};

/// Applies APPFL_OBS_LEVEL / APPFL_OBS_TRACE_OUT / APPFL_OBS_METRICS_OUT /
/// APPFL_OBS_HEALTH_OUT / APPFL_OBS_CRITPATH_OUT / APPFL_OBS_FLIGHT_DIR on
/// top of `opts`. An unparseable APPFL_OBS_LEVEL is warned about on stderr
/// and ignored (the APPFL_FAULT_* / APPFL_CKPT_* convention). Output paths
/// whose level cannot produce them (trace_out/critpath_out below kTrace,
/// metrics_out/health_out/flight_dir at kOff) are warned about and cleared,
/// so a run never silently emits an empty artifact.
void apply_env_overrides(ObsOptions& opts);

}  // namespace appfl::obs
