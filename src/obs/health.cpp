#include "obs/health.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace appfl::obs {

HealthLedger::Slot& HealthLedger::slot(std::uint32_t client) {
  const auto it = std::lower_bound(
      slots_.begin(), slots_.end(), client,
      [](const Slot& s, std::uint32_t c) { return s.client < c; });
  if (it != slots_.end() && it->client == client) return *it;
  Slot s;
  s.client = client;
  return *slots_.insert(it, s);
}

void HealthLedger::observe_latency(std::uint32_t client, double latency_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& s = slot(client);
  s.last = latency_s;
  if (s.updates == 0) {
    s.ewma = latency_s;
    s.var = 0.0;
  } else {
    // Exponentially-weighted mean/variance (West 1979 incremental form):
    // the diff is taken against the *old* mean so variance stays unbiased
    // under the same decay as the mean.
    const double diff = latency_s - s.ewma;
    s.ewma += alpha_ * diff;
    s.var = (1.0 - alpha_) * (s.var + alpha_ * diff * diff);
  }
  ++s.updates;
}

void HealthLedger::add_retransmits(std::uint32_t client, std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  slot(client).retransmits += n;
}

void HealthLedger::add_corrupt_frames(std::uint32_t client, std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  slot(client).corrupt += n;
}

void HealthLedger::add_dropped_frames(std::uint32_t client, std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  slot(client).dropped += n;
}

void HealthLedger::add_share_discards(std::uint32_t client, std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  slot(client).share_discards += n;
}

void HealthLedger::note_dropout(std::uint32_t client) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++slot(client).dropouts;
}

void HealthLedger::set_dp_epsilon(std::uint32_t client, double epsilon) {
  std::lock_guard<std::mutex> lock(mutex_);
  slot(client).dp_epsilon = epsilon;
}

std::vector<ClientHealth> HealthLedger::snapshot() const {
  std::vector<Slot> slots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots = slots_;
  }
  // Cohort median of the smoothed latencies (clients with observations).
  std::vector<double> ewmas;
  ewmas.reserve(slots.size());
  for (const Slot& s : slots) {
    if (s.updates > 0) ewmas.push_back(s.ewma);
  }
  double median = 0.0;
  if (!ewmas.empty()) {
    const std::size_t mid = ewmas.size() / 2;
    std::nth_element(ewmas.begin(), ewmas.begin() + mid, ewmas.end());
    median = ewmas[mid];
  }
  std::vector<ClientHealth> out;
  out.reserve(slots.size());
  for (const Slot& s : slots) {
    ClientHealth h;
    h.client = s.client;
    h.updates = s.updates;
    h.latency_ewma_s = s.ewma;
    h.latency_var_s2 = s.var;
    h.last_latency_s = s.last;
    h.straggler_score =
        (s.updates > 0 && median > 0.0) ? s.ewma / median : 0.0;
    h.retransmits = s.retransmits;
    h.corrupt_frames = s.corrupt;
    h.dropped_frames = s.dropped;
    h.share_discards = s.share_discards;
    h.dropouts = s.dropouts;
    h.dp_epsilon = s.dp_epsilon;
    out.push_back(h);
  }
  return out;
}

std::string HealthLedger::round_json(std::uint32_t round,
                                     const std::vector<ClientHealth>& clients) {
  std::ostringstream os;
  os << "{\"type\":\"health\",\"round\":" << round << ",\"clients\":[";
  bool first = true;
  for (const ClientHealth& h : clients) {
    if (!first) os << ",";
    first = false;
    os << "{\"client\":" << h.client << ",\"updates\":" << h.updates
       << ",\"latency_ewma_s\":" << json_number(h.latency_ewma_s)
       << ",\"latency_var_s2\":" << json_number(h.latency_var_s2)
       << ",\"last_latency_s\":" << json_number(h.last_latency_s)
       << ",\"straggler_score\":" << json_number(h.straggler_score)
       << ",\"retransmits\":" << h.retransmits
       << ",\"corrupt_frames\":" << h.corrupt_frames
       << ",\"dropped_frames\":" << h.dropped_frames
       << ",\"share_discards\":" << h.share_discards
       << ",\"dropouts\":" << h.dropouts
       << ",\"dp_epsilon\":" << json_number(h.dp_epsilon) << "}";
  }
  os << "]}";
  return os.str();
}

bool HealthLedger::write_csv(const std::string& path,
                             std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << "client,updates,latency_ewma_s,latency_var_s2,last_latency_s,"
         "straggler_score,retransmits,corrupt_frames,dropped_frames,"
         "share_discards,dropouts,dp_epsilon\n";
  for (const ClientHealth& h : snapshot()) {
    out << h.client << "," << h.updates << ","
        << json_number(h.latency_ewma_s) << ","
        << json_number(h.latency_var_s2) << ","
        << json_number(h.last_latency_s) << ","
        << json_number(h.straggler_score) << "," << h.retransmits << ","
        << h.corrupt_frames << "," << h.dropped_frames << ","
        << h.share_discards << "," << h.dropouts << ","
        << json_number(h.dp_epsilon) << "\n";
  }
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void HealthLedger::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
}

}  // namespace appfl::obs
