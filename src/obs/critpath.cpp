#include "obs/critpath.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/export.hpp"

namespace appfl::obs {

namespace {

double end_of(const SpanRecord& r) { return r.wall_start_s + r.wall_dur_s; }

bool is_client_arg(const SpanRecord& r) {
  return r.arg_name != nullptr && (std::strcmp(r.arg_name, "client") == 0 ||
                                   std::strcmp(r.arg_name, "sender") == 0);
}

CritPathStep make_step(const SpanRecord& r, int depth) {
  CritPathStep s;
  s.name = r.name;
  s.cat = r.cat;
  s.depth = depth;
  s.has_client = is_client_arg(r);
  s.client = s.has_client ? r.arg : 0;
  s.wall_s = r.wall_dur_s;
  s.sim_s = r.sim_dur_s;
  return s;
}

std::string step_label(const CritPathStep& s, bool sim_bound = false) {
  std::ostringstream os;
  os << s.name;
  if (s.has_client) os << " client=" << s.client;
  if (sim_bound) os << " (sim)";
  return os.str();
}

using ChildIndex = std::unordered_map<std::uint64_t, std::vector<std::size_t>>;

/// Walks from span `i` to the descendant that ended last at every level —
/// the blocker — appending one step per visited span. `visited` guards
/// against malformed parent links forming a cycle.
void descend(const std::vector<SpanRecord>& recs, const ChildIndex& kids,
             std::size_t i, int depth, std::vector<CritPathStep>& out,
             std::unordered_set<std::uint64_t>& visited) {
  const SpanRecord& r = recs[i];
  if (r.span_id == 0 || !visited.insert(r.span_id).second) return;
  out.push_back(make_step(r, depth));
  const auto it = kids.find(r.span_id);
  if (it == kids.end()) return;
  std::size_t blocker = SIZE_MAX;
  double latest = -1.0;
  for (const std::size_t c : it->second) {
    if (end_of(recs[c]) > latest) {
      latest = end_of(recs[c]);
      blocker = c;
    }
  }
  if (blocker != SIZE_MAX) descend(recs, kids, blocker, depth + 1, out, visited);
}

/// Union length of the children's wall intervals clipped to the round's.
double covered_seconds(const std::vector<SpanRecord>& recs,
                       const std::vector<std::size_t>& kids_sorted,
                       double lo, double hi) {
  double covered = 0.0;
  double cursor = lo;
  for (const std::size_t c : kids_sorted) {
    const double s = std::max(recs[c].wall_start_s, cursor);
    const double e = std::min(end_of(recs[c]), hi);
    if (e > s) {
      covered += e - s;
      cursor = e;
    }
  }
  return covered;
}

}  // namespace

std::vector<RoundCritPath> critical_paths(
    const std::vector<SpanRecord>& records) {
  ChildIndex kids;
  std::vector<std::size_t> rounds;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& r = records[i];
    if (r.span_id != 0 && r.parent_id != 0) kids[r.parent_id].push_back(i);
    if (std::strcmp(r.name, "fl.round") == 0) rounds.push_back(i);
  }

  std::vector<RoundCritPath> out;
  out.reserve(rounds.size());
  for (const std::size_t ri : rounds) {
    const SpanRecord& R = records[ri];
    RoundCritPath rp;
    rp.round = static_cast<std::uint32_t>(
        (R.arg_name != nullptr && std::strcmp(R.arg_name, "round") == 0)
            ? R.arg
            : 0);
    rp.wall_s = R.wall_dur_s;
    if (R.span_id == 0) {
      out.push_back(std::move(rp));  // pre-upgrade trace: no DAG to rebuild
      continue;
    }

    // Direct children in start order — the round's sequential phases.
    std::vector<std::size_t> phases;
    if (const auto it = kids.find(R.span_id); it != kids.end()) {
      phases = it->second;
    }
    std::sort(phases.begin(), phases.end(),
              [&](std::size_t a, std::size_t b) {
                return records[a].wall_start_s < records[b].wall_start_s;
              });
    rp.attributed_s =
        covered_seconds(records, phases, R.wall_start_s, end_of(R));
    rp.attributed_frac = rp.wall_s > 0.0 ? rp.attributed_s / rp.wall_s : 0.0;

    // Per phase, the chain of blockers underneath it; track which phase
    // (and which terminal blocker) bounded the round's wall time.
    std::unordered_set<std::uint64_t> visited;
    visited.insert(R.span_id);
    double max_phase_wall = -1.0;
    std::size_t bound_begin = 0, bound_end = 0;  // chain range of max phase
    for (const std::size_t p : phases) {
      const std::size_t begin = rp.chain.size();
      descend(records, kids, p, 0, rp.chain, visited);
      if (records[p].wall_dur_s > max_phase_wall) {
        max_phase_wall = records[p].wall_dur_s;
        bound_begin = begin;
        bound_end = rp.chain.size();
      }
    }

    // Message-edge extra: the slowest simulated uplink transfer this round.
    // Transfer records are zero-wall (they live on the sim timeline), so the
    // wall descent never reaches them; surface the max-sim one explicitly —
    // it is the "link N" answer when the gather wait bounded the round.
    std::size_t slow_link = SIZE_MAX;
    {
      // BFS over the round's transitive descendants.
      std::vector<std::uint64_t> frontier{R.span_id};
      std::unordered_set<std::uint64_t> seen{R.span_id};
      double max_sim = -1.0;
      while (!frontier.empty()) {
        const std::uint64_t id = frontier.back();
        frontier.pop_back();
        const auto it = kids.find(id);
        if (it == kids.end()) continue;
        for (const std::size_t c : it->second) {
          if (!seen.insert(records[c].span_id).second) continue;
          frontier.push_back(records[c].span_id);
          if (std::strcmp(records[c].name, "comm.uplink.transfer") == 0 &&
              records[c].sim_dur_s > max_sim) {
            max_sim = records[c].sim_dur_s;
            slow_link = c;
          }
        }
      }
    }
    if (slow_link != SIZE_MAX) {
      rp.chain.push_back(make_step(records[slow_link], 1));
    }

    if (bound_end > bound_begin) {
      const CritPathStep& terminal = rp.chain[bound_end - 1];
      // When the gather wait is what bounded the round, the terminal wall
      // blocker is the gather span itself — name the slowest link instead.
      if (slow_link != SIZE_MAX &&
          (terminal.name == "comm.gather" || terminal.name == "fl.gather_phase")) {
        rp.bounded_by = step_label(rp.chain.back(), /*sim_bound=*/true);
      } else {
        rp.bounded_by = step_label(terminal);
      }
    }
    out.push_back(std::move(rp));
  }
  std::sort(out.begin(), out.end(),
            [](const RoundCritPath& a, const RoundCritPath& b) {
              return a.round < b.round;
            });
  return out;
}

bool write_critpath_jsonl(const std::vector<RoundCritPath>& paths,
                          const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  for (const RoundCritPath& rp : paths) {
    out << "{\"type\":\"critpath\",\"round\":" << rp.round
        << ",\"wall_s\":" << json_number(rp.wall_s)
        << ",\"attributed_s\":" << json_number(rp.attributed_s)
        << ",\"attributed_frac\":" << json_number(rp.attributed_frac)
        << ",\"bounded_by\":\"" << json_escape(rp.bounded_by)
        << "\",\"chain\":[";
    bool first = true;
    for (const CritPathStep& s : rp.chain) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\""
          << json_escape(s.cat) << "\",\"depth\":" << s.depth << ",\"client\":";
      if (s.has_client) {
        out << s.client;
      } else {
        out << "null";
      }
      out << ",\"wall_s\":" << json_number(s.wall_s)
          << ",\"sim_s\":" << json_optional(s.sim_s) << "}";
    }
    out << "]}\n";
  }
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

bool write_critpath_csv(const std::vector<RoundCritPath>& paths,
                        const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << "round,depth,name,cat,client,wall_s,sim_s,round_wall_s,"
         "attributed_frac,bounded_by\n";
  for (const RoundCritPath& rp : paths) {
    for (const CritPathStep& s : rp.chain) {
      out << rp.round << "," << s.depth << "," << s.name << "," << s.cat << ",";
      if (s.has_client) out << s.client;
      out << "," << json_number(s.wall_s) << ","
          << (s.sim_s >= 0.0 ? json_number(s.sim_s) : "") << ","
          << json_number(rp.wall_s) << "," << json_number(rp.attributed_frac)
          << ",\"" << rp.bounded_by << "\"\n";
    }
  }
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::string critpath_csv_path(const std::string& jsonl_path) {
  const std::size_t slash = jsonl_path.find_last_of('/');
  const std::size_t dot = jsonl_path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return jsonl_path + ".csv";
  }
  return jsonl_path.substr(0, dot) + ".csv";
}

}  // namespace appfl::obs
