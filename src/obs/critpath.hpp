// Critical-path analyzer — turns the tracer's flat span records back into
// the per-round causal DAG and extracts each round's *blocking chain*: the
// sequence of spans that actually bounded the round's wall time, down to
// the client (or link) that ended last in every parallel phase.
//
// The DAG comes from two edge kinds the trace-context upgrade records:
//   • parent links — ScopedSpan's thread-local stack (lexical nesting) plus
//     explicit set_parent calls that stitch pool-thread spans back under
//     their phase span;
//   • message edges — receiver-side records (comm.uplink.transfer) whose
//     parent is the sender-side span id that rode in on the wire.
//
// Output is consumed three ways: a JSONL stream (one object per round), a
// CSV for spreadsheet/plot tooling, and in-process by bench/phase_breakdown
// which reports "round bounded by client 7 train" instead of aggregate
// shares.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace appfl::obs {

/// One step of a round's blocking chain, depth-first: a phase span followed
/// by the descendants that bounded it.
struct CritPathStep {
  std::string name;
  std::string cat;
  int depth = 0;           // 0 = direct child of the round span
  bool has_client = false; // true when the span carried a client/sender arg
  std::uint64_t client = 0;
  double wall_s = 0.0;     // the span's wall duration
  double sim_s = -1.0;     // simulated duration; < 0 ⇒ not on the sim timeline
};

/// The blocking chain of one round plus how much of the round's wall time
/// the chain's top-level steps cover (the attribution the acceptance gate
/// checks: ≥ 95% on a healthy traced run).
struct RoundCritPath {
  std::uint32_t round = 0;
  double wall_s = 0.0;        // fl.round span wall duration
  double attributed_s = 0.0;  // union of top-level step intervals in-round
  double attributed_frac = 0.0;
  /// Human-readable bound, e.g. "fl.client_update client=7" or
  /// "comm.uplink.transfer client=3 (sim)".
  std::string bounded_by;
  std::vector<CritPathStep> chain;
};

/// Rebuilds the per-round DAG from `records` (a Tracer::collect() result)
/// and returns one RoundCritPath per fl.round span, ordered by round.
/// Records without span ids (pre-upgrade traces) yield empty chains.
std::vector<RoundCritPath> critical_paths(
    const std::vector<SpanRecord>& records);

/// Writers. Both return false (with a message in *error if given) when the
/// file cannot be written.
bool write_critpath_jsonl(const std::vector<RoundCritPath>& paths,
                          const std::string& path, std::string* error = nullptr);
bool write_critpath_csv(const std::vector<RoundCritPath>& paths,
                        const std::string& path, std::string* error = nullptr);

/// The CSV sibling of a critpath JSONL path: extension swapped for ".csv"
/// (appended when there is no extension).
std::string critpath_csv_path(const std::string& jsonl_path);

}  // namespace appfl::obs
