// Flight recorder — the run's black box.
//
// A bounded ring of recent structured events (round transitions, faults,
// secure-agg degrades, checkpoint ops) that is recorded whenever the obs
// level is kMetrics or above — cheaper than tracing, always on in any
// observed run. On a trigger (secure-agg degraded round, unfillable gather,
// fatal signal, std::terminate) the ring plus a metrics-registry snapshot
// is dumped to a timestamped JSON file in the configured directory, so a
// chaos run that dies or degrades leaves a parseable record of its last
// moments even when nobody was streaming metrics.
//
// Dumping requires a directory (set_dump_dir; --flight-dir / a
// APPFL_OBS_FLIGHT_DIR override). Recording without a directory still fills
// the ring — ObsSession can embed it in the summary.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace appfl::obs {

struct FlightEvent {
  double wall_s = 0.0;  // seconds since the recorder's epoch (steady clock)
  const char* kind = "";  // string literal, e.g. "round.start", "secagg.degraded"
  std::string data;  // pre-rendered JSON object ("{}" when empty)
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event (overwrites the oldest when full). `kind` must be a
  /// string literal; `data` must be a rendered JSON object or empty.
  /// Callers gate on obs::metrics_on() — record() itself never checks.
  void record(const char* kind, std::string data = {});

  /// Where dump files go; "" disables dumping (the default).
  void set_dump_dir(const std::string& dir);
  std::string dump_dir() const;

  /// Writes `flight-<utc-timestamp>-<seq>-<reason>.json` into the dump dir:
  /// the ring (oldest first), the trigger reason, and a metrics-registry
  /// snapshot. Returns false when no dir is set or the write failed; on
  /// success *path_out (if given) receives the file path. Best-effort and
  /// exception-free — safe to call from a terminate handler.
  bool dump(const std::string& reason, std::string* path_out = nullptr);

  /// Installs fatal-signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL) and
  /// std::terminate hooks that dump the global recorder, then re-raise /
  /// chain to the previous handler. Idempotent; hooks only fire when a
  /// dump dir is set.
  static void install_crash_hooks();

  /// Snapshot of the ring, oldest first.
  std::vector<FlightEvent> events() const;
  std::uint64_t recorded() const;

  void clear();

  static FlightRecorder& global();

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  std::string dump_dir_;
  std::uint64_t dump_seq_ = 0;
};

/// The one-line hook call sites use: records into the global ring iff the
/// obs level is kMetrics or above (one relaxed atomic load when off).
inline void flight_record(const char* kind, std::string data = {}) {
  if (metrics_on()) FlightRecorder::global().record(kind, std::move(data));
}

}  // namespace appfl::obs
