// Per-client health ledger — rolling per-client statistics the runners and
// the population event engine feed as rounds execute, answering "which
// clients are slow, lossy, or dropping out" without replaying traces.
//
// Fed at obs level kMetrics and above (one mutex acquire per observation;
// client counts are the bottleneck, not rates). Snapshots are taken per
// round into the JSONL stream and at end of run into the summary and an
// optional CSV (--health-out). Straggler scores are computed at snapshot
// time against the cohort's median smoothed latency, so a uniformly slow
// fleet scores ~1.0 everywhere and a true straggler stands out.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace appfl::obs {

/// One client's rolled-up health, as of a snapshot.
struct ClientHealth {
  std::uint32_t client = 0;
  std::uint64_t updates = 0;        // latency observations (≈ rounds trained)
  double latency_ewma_s = 0.0;      // exponentially-weighted update latency
  double latency_var_s2 = 0.0;      // EW variance of the same
  double last_latency_s = 0.0;
  double straggler_score = 0.0;     // latency_ewma / cohort median (0 = n/a)
  std::uint64_t retransmits = 0;    // uplink send attempts beyond the first
  std::uint64_t corrupt_frames = 0; // CRC-damaged frames attributed to client
  std::uint64_t dropped_frames = 0; // uplinks lost after all retries
  std::uint64_t share_discards = 0; // secure-agg share packets discarded
  std::uint64_t dropouts = 0;       // rounds the client went missing
  double dp_epsilon = 0.0;          // cumulative privacy spend (0 = no DP)
};

class HealthLedger {
 public:
  /// EWMA weight for new latency observations (industry-standard 0.3-ish
  /// keeps ~3 rounds of memory).
  explicit HealthLedger(double alpha = 0.3) : alpha_(alpha) {}

  /// One completed local update: wall (or sim) latency for `client`.
  void observe_latency(std::uint32_t client, double latency_s);
  void add_retransmits(std::uint32_t client, std::uint64_t n);
  void add_corrupt_frames(std::uint32_t client, std::uint64_t n);
  void add_dropped_frames(std::uint32_t client, std::uint64_t n);
  void add_share_discards(std::uint32_t client, std::uint64_t n);
  void note_dropout(std::uint32_t client);
  /// Cumulative DP spend attributed to `client` (last write wins).
  void set_dp_epsilon(std::uint32_t client, double epsilon);

  /// All clients ever observed, ordered by id, with straggler scores
  /// computed against the cohort's median latency EWMA.
  std::vector<ClientHealth> snapshot() const;

  /// Renders a snapshot as the JSONL health line:
  ///   {"type":"health","round":R,"clients":[{...}, ...]}
  static std::string round_json(std::uint32_t round,
                                const std::vector<ClientHealth>& clients);

  /// Writes the final snapshot as CSV. Returns false (message in *error if
  /// given) when the file cannot be written.
  bool write_csv(const std::string& path, std::string* error = nullptr) const;

  void clear();

 private:
  struct Slot {
    std::uint32_t client = 0;
    std::uint64_t updates = 0;
    double ewma = 0.0;
    double var = 0.0;
    double last = 0.0;
    std::uint64_t retransmits = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t dropped = 0;
    std::uint64_t share_discards = 0;
    std::uint64_t dropouts = 0;
    double dp_epsilon = 0.0;
  };

  Slot& slot(std::uint32_t client);  // requires mutex_ held

  const double alpha_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;  // ordered by client id (insertion keeps order)
};

}  // namespace appfl::obs
