#include "obs/flight.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <csignal>
#include <cstdio>
#include <ctime>
#include <exception>
#include <fstream>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace appfl::obs {

namespace {

// mkdir -p without <filesystem>: plain ::mkdir is usable from the crash
// handlers, which std::filesystem (allocations, exceptions) is not.
void make_dirs(const std::string& path) {
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      ::mkdir(path.substr(0, i).c_str(), 0755);  // EEXIST is fine
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const char* kind, std::string data) {
  FlightEvent e;
  e.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           epoch_)
                 .count();
  e.kind = kind;
  e.data = std::move(data);
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
  }
  head_ = (head_ + 1) % capacity_;
  ++total_;
}

void FlightRecorder::set_dump_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  dump_dir_ = dir;
}

std::string FlightRecorder::dump_dir() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dump_dir_;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  const std::size_t n = ring_.size();
  const std::size_t start = total_ > capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

bool FlightRecorder::dump(const std::string& reason, std::string* path_out) {
  // Snapshot under try_lock: a crash while the recording thread held the
  // mutex must not deadlock the handler — dump what we can, which is at
  // minimum the reason and the metrics snapshot.
  std::vector<FlightEvent> events;
  std::string dir;
  std::uint64_t total = 0;
  std::uint64_t seq = 0;
  {
    const bool locked = mutex_.try_lock();
    dir = dump_dir_;
    if (locked) {
      const std::size_t n = ring_.size();
      const std::size_t start = total_ > capacity_ ? head_ : 0;
      events.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        events.push_back(ring_[(start + i) % n]);
      }
      total = total_;
      seq = dump_seq_++;
      mutex_.unlock();
    }
  }
  if (dir.empty()) return false;
  make_dirs(dir);

  // UTC wall-clock timestamp in the filename so dumps sort and never
  // collide across runs; the per-process seq breaks same-second ties.
  char stamp[32] = "unknown-time";
  const std::time_t now = std::time(nullptr);
  if (struct tm tm_utc; gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y%m%dT%H%M%SZ", &tm_utc);
  }
  // Reasons become filename fragments: keep them path-safe.
  std::string slug = reason;
  for (char& c : slug) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  const std::string path =
      dir + "/flight-" + stamp + "-" + std::to_string(seq) + "-" + slug +
      ".json";

  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr,
                 "warning: flight recorder cannot write '%s'\n", path.c_str());
    return false;
  }
  out << "{\"type\":\"flight\",\"reason\":\"" << json_escape(reason)
      << "\",\"events_recorded\":" << total << ",\"events\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"t_s\":" << json_number(e.wall_s) << ",\"kind\":\""
        << json_escape(e.kind) << "\",\"data\":"
        << (e.data.empty() ? "{}" : e.data) << "}";
  }
  out << "\n],\"metrics\":"
      << metrics_snapshot_json(MetricsRegistry::global().snapshot()) << "}\n";
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "warning: flight dump to '%s' failed\n", path.c_str());
    return false;
  }
  if (path_out != nullptr) *path_out = path;
  return true;
}

namespace {

std::terminate_handler g_prev_terminate = nullptr;

void flight_terminate_handler() {
  FlightRecorder::global().dump("terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void flight_signal_handler(int sig) {
  // Not strictly async-signal-safe, but this process is already dying — a
  // best-effort black-box write is the whole point (try_lock above keeps
  // the one real deadlock risk out).
  const char* name = "signal";
  switch (sig) {
    case SIGSEGV: name = "sigsegv"; break;
    case SIGABRT: name = "sigabrt"; break;
    case SIGBUS: name = "sigbus"; break;
    case SIGFPE: name = "sigfpe"; break;
    case SIGILL: name = "sigill"; break;
  }
  FlightRecorder::global().dump(name);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_hooks() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  g_prev_terminate = std::set_terminate(flight_terminate_handler);
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    std::signal(sig, flight_signal_handler);
  }
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

}  // namespace appfl::obs
