#include "obs/export.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace appfl::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_optional(double v) {
  return v < 0.0 ? std::string("null") : json_number(v);
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const std::vector<SpanRecord> records = tracer.collect();
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":"
      << tracer.dropped() << "},\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : records) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(r.name) << "\",\"cat\":\""
        << json_escape(r.cat) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << r.tid
        << ",\"ts\":" << json_number(r.wall_start_s * 1e6)
        << ",\"dur\":" << json_number(r.wall_dur_s * 1e6);
    const bool has_sim = r.sim_start_s >= 0.0;
    const bool has_arg = r.arg_name != nullptr;
    const bool has_ctx = r.span_id != 0;
    if (has_sim || has_arg || has_ctx) {
      out << ",\"args\":{";
      bool inner_first = true;
      const auto sep = [&] {
        if (!inner_first) out << ",";
        inner_first = false;
      };
      if (has_sim) {
        sep();
        out << "\"sim_ts_s\":" << json_number(r.sim_start_s)
            << ",\"sim_dur_s\":" << json_number(r.sim_dur_s);
      }
      if (has_arg) {
        sep();
        out << "\"" << json_escape(r.arg_name) << "\":" << r.arg;
      }
      if (has_ctx) {
        sep();
        out << "\"span_id\":" << r.span_id;
        if (r.parent_id != 0) out << ",\"parent_id\":" << r.parent_id;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::string metrics_snapshot_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\"type\":\"metrics\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << json_number(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << json_number(h.sum)
       << ",\"mean\":" << json_number(h.mean())
       << ",\"p50_ub\":" << json_number(h.quantile_upper_bound(0.50))
       << ",\"p99_ub\":" << json_number(h.quantile_upper_bound(0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

JsonlWriter::JsonlWriter(const std::string& path) {
  errno = 0;
  out_.open(path, std::ios::trunc);
  if (!out_.is_open()) {
    const int err = errno;
    std::fprintf(stderr,
                 "warning: cannot open JSONL stream '%s' (%s); this stream "
                 "is disabled for the run\n",
                 path.c_str(),
                 err != 0 ? std::strerror(err) : "unknown error");
  }
}

void JsonlWriter::line(const std::string& json) {
  if (!ok()) return;
  out_ << json << "\n";
}

void JsonlWriter::flush() {
  if (out_.is_open()) out_.flush();
}

}  // namespace appfl::obs
