#include "obs/obs.hpp"

#include <cstdio>
#include <cstdlib>

namespace appfl::obs {

namespace detail {
std::atomic<int> g_level{static_cast<int>(Level::kOff)};
}  // namespace detail

std::string to_string(Level lv) {
  switch (lv) {
    case Level::kOff: return "off";
    case Level::kMetrics: return "metrics";
    case Level::kTrace: return "trace";
  }
  return "?";
}

std::optional<Level> parse_level(const std::string& name) {
  if (name == "off") return Level::kOff;
  if (name == "metrics") return Level::kMetrics;
  if (name == "trace") return Level::kTrace;
  return std::nullopt;
}

void set_level(Level lv) {
  detail::g_level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

void apply_env_overrides(ObsOptions& opts) {
  if (const char* value = std::getenv("APPFL_OBS_LEVEL")) {
    const std::optional<Level> parsed = parse_level(value);
    if (parsed) {
      opts.level = *parsed;
    } else {
      std::fprintf(stderr,
                   "warning: ignoring invalid APPFL_OBS_LEVEL='%s' "
                   "(expected off|metrics|trace)\n",
                   value);
    }
  }
  if (const char* value = std::getenv("APPFL_OBS_TRACE_OUT")) {
    if (*value != '\0') opts.trace_out = value;
  }
  if (const char* value = std::getenv("APPFL_OBS_METRICS_OUT")) {
    if (*value != '\0') opts.metrics_out = value;
  }
  if (const char* value = std::getenv("APPFL_OBS_HEALTH_OUT")) {
    if (*value != '\0') opts.health_out = value;
  }
  if (const char* value = std::getenv("APPFL_OBS_CRITPATH_OUT")) {
    if (*value != '\0') opts.critpath_out = value;
  }
  if (const char* value = std::getenv("APPFL_OBS_FLIGHT_DIR")) {
    if (*value != '\0') opts.flight_dir = value;
  }
  const auto require_trace = [&](std::string& path, const char* what) {
    if (path.empty() || opts.level >= Level::kTrace) return;
    std::fprintf(stderr,
                 "warning: %s output '%s' requires obs level 'trace' "
                 "(level is '%s') — ignoring it\n",
                 what, path.c_str(), to_string(opts.level).c_str());
    path.clear();
  };
  const auto require_metrics = [&](std::string& path, const char* what) {
    if (path.empty() || opts.level >= Level::kMetrics) return;
    std::fprintf(stderr,
                 "warning: %s output '%s' requires obs level 'metrics' "
                 "or 'trace' (level is 'off') — ignoring it\n",
                 what, path.c_str());
    path.clear();
  };
  require_trace(opts.trace_out, "trace");
  require_trace(opts.critpath_out, "critical-path");
  require_metrics(opts.metrics_out, "metrics");
  require_metrics(opts.health_out, "health ledger");
  require_metrics(opts.flight_dir, "flight recorder");
}

}  // namespace appfl::obs
