// MetricsRegistry — named counters, gauges, and fixed-bucket log-scale
// histograms for the observability plane.
//
// Hot-path contract: an update is a handful of relaxed atomic ops on a
// cache line owned (statistically) by the calling thread. Every instrument
// shards its cells kShards ways; a thread is pinned to one shard on first
// use, so concurrent writers from the runner's client pool and the kernel
// pool do not bounce a shared line. Reads (value()/snapshot()) merge the
// shards — sums of unsigned counters are associative, so the merged value
// is deterministic regardless of thread interleaving.
//
// Registration (name → instrument) takes a mutex and is meant to happen
// once per call site (cache the returned reference, or use a function-local
// static). Instruments are never deleted: references stay valid for the
// registry's lifetime, and reset() zeroes values in place.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace appfl::obs {

inline constexpr std::size_t kShards = 16;
inline constexpr std::size_t kMaxHistogramBuckets = 64;

namespace detail {
/// Stable shard index of the calling thread in [0, kShards).
std::size_t thread_shard();
/// Adds `v` to an atomic double (CAS loop; fetch_add on double is C++20 but
/// not on every libstdc++ this repo targets).
void atomic_add(std::atomic<double>& a, double v);
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t v) {
    cells_[detail::thread_shard()].v.fetch_add(v, std::memory_order_relaxed);
  }
  void inc() { add(1); }
  std::uint64_t value() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void reset();

  std::string name_;
  std::array<detail::CounterCell, kShards> cells_;
};

/// Last-write-wins scalar (no sharding — a gauge is a point sample).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-count log-scale histogram over (0, ∞). Bucket i covers
/// [bound(i), bound(i+1)) with geometrically spaced boundaries from `min`
/// to `max`; values below min land in bucket 0, values at or above max in
/// the last bucket (both still counted — nothing is dropped). Boundaries
/// are precomputed once and indexed by binary search, so record() and the
/// snapshot agree bit-for-bit on every edge.
///
/// Zero-anchored mode: with `min == 0` (needs max > 1 and >= 2 buckets),
/// bucket 0 covers exactly [0, 1) and the remaining buckets run
/// geometrically from 1 to `max` — for integer-valued signals like update
/// staleness whose modal value 0 must appear in the export, not in an
/// underflow bucket.
class Histogram {
 public:
  void record(double v);
  std::size_t num_buckets() const { return bounds_.size() - 1; }
  /// Inclusive lower / exclusive upper boundary of bucket i.
  double lower_bound(std::size_t i) const { return bounds_[i]; }
  double upper_bound(std::size_t i) const { return bounds_[i + 1]; }
  /// The bucket record(v) lands in (NaN and underflow map to 0).
  std::size_t bucket_index(double v) const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  friend struct HistogramSnapshot;
  Histogram(std::string name, double min, double max, std::size_t buckets);
  void reset();

  std::string name_;
  std::vector<double> bounds_;  // buckets + 1 boundaries
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kMaxHistogramBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::array<Cell, kShards> cells_;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;           // buckets + 1 boundaries
  std::vector<std::uint64_t> buckets;   // merged across shards
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Upper boundary of the bucket holding the q-quantile (q in [0,1]);
  /// 0 when the histogram is empty.
  double quantile_upper_bound(double q) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;           // name-sorted
  std::vector<HistogramSnapshot> histograms;                    // name-sorted

  const std::uint64_t* counter(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. References remain valid for the
  /// registry's lifetime (instruments are never destroyed, reset() zeroes in
  /// place). Re-requesting a histogram with different bounds keeps the
  /// original layout.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double min, double max,
                       std::size_t buckets);

  /// Deterministic (name-sorted) merged view of every instrument.
  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument in place; cached references stay valid.
  void reset();

  /// The process-wide registry the instrumentation hooks write to.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace appfl::obs
