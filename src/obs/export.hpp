// Exporters for the observability plane:
//   • write_chrome_trace — the tracer's rings as Chrome trace_event JSON
//     ("X" complete events; open in Perfetto or chrome://tracing). Wall
//     times map to ts/dur (microseconds); sim-timeline intervals and the
//     span argument ride in args.
//   • JsonlWriter — line-delimited JSON stream (one object per line); the
//     runner writes one line per round plus a final summary line.
//   • Small JSON value formatters shared by both (json_escape / json_number
//     — JSON has no NaN/Inf/negative-sentinel, so missing values must be
//     emitted as null, see json_optional).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace appfl::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string json_escape(const std::string& s);

/// Finite doubles as shortest-roundtrip decimal; NaN/Inf as null (JSON has
/// no representation for them).
std::string json_number(double v);

/// The repo's "skipped" convention: negative sentinel values (e.g.
/// RoundMetrics::test_accuracy == −1 when validation was skipped) are
/// *missing*, not data — they serialize as null so downstream averaging
/// can't absorb them.
std::string json_optional(double v);

/// Writes the tracer's merged records to `path` as a Chrome trace JSON
/// object. Returns false (with a message in *error if given) when the file
/// cannot be written. Records are complete ("X") events with pid 0 and the
/// tracer-assigned thread index as tid.
bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        std::string* error = nullptr);

/// Appends a `{"type":"metrics", ...}` rendering of a registry snapshot to
/// `out` (counters, gauges, histogram count/mean/p50/p99) — the end-of-run
/// summary block.
std::string metrics_snapshot_json(const MetricsSnapshot& snap);

/// Line-delimited JSON writer. Construction truncates `path`; a path that
/// cannot be opened leaves the writer inert (ok() == false) — observability
/// must never take the experiment down.
class JsonlWriter {
 public:
  JsonlWriter() = default;
  explicit JsonlWriter(const std::string& path);

  bool ok() const { return out_.is_open() && out_.good(); }
  /// Writes one pre-rendered JSON object as a line (newline appended).
  void line(const std::string& json);
  void flush();

 private:
  std::ofstream out_;
};

}  // namespace appfl::obs
