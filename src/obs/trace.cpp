#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

namespace appfl::obs {

struct Tracer::Ring {
  explicit Ring(std::size_t capacity) : buf(capacity) {}

  mutable std::mutex m;
  std::vector<SpanRecord> buf;
  std::size_t head = 0;     // next write position
  std::uint64_t total = 0;  // records ever written to this ring
  std::uint32_t tid = 0;    // assigned at registration
};

namespace {
// Thread-local cache of (tracer id → ring). A vector scanned linearly: a
// thread talks to one or two tracers (the global one, plus a test's local
// instance), so the scan is effectively one pointer compare.
struct RingCacheEntry {
  std::uint64_t tracer_id;
  Tracer::Ring* ring;
};
}  // namespace

// Defined out of line so the anonymous-namespace cache type stays local.
static thread_local std::vector<RingCacheEntry> t_ring_cache;

static std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread stack of live ScopedSpan ids; the top is the thread's current
// trace context. Kept outside the Tracer: span ids are process-wide so
// parent links stay valid across tracer instances (tests use local ones).
static thread_local std::vector<std::uint64_t> t_span_stack;

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_span_id() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

void ScopedSpan::push_current(std::uint64_t id) { t_span_stack.push_back(id); }

void ScopedSpan::pop_current() { t_span_stack.pop_back(); }

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      tracer_id_(next_tracer_id()),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::Ring& Tracer::local_ring() {
  for (const RingCacheEntry& e : t_ring_cache) {
    if (e.tracer_id == tracer_id_) return *e.ring;
  }
  auto ring = std::make_shared<Ring>(ring_capacity_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring->tid = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(ring);
  }
  // The tracer's shared_ptr keeps the ring alive past thread exit; the raw
  // pointer cached here is only ever used by this thread while it lives.
  t_ring_cache.push_back({tracer_id_, ring.get()});
  return *ring;
}

void Tracer::emit(SpanRecord r) {
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.m);
  r.tid = ring.tid;
  ring.buf[ring.head] = r;
  ring.head = (ring.head + 1) % ring.buf.size();
  ++ring.total;
}

std::vector<SpanRecord> Tracer::collect() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->m);
    const std::size_t cap = ring->buf.size();
    const std::size_t retained =
        static_cast<std::size_t>(std::min<std::uint64_t>(ring->total, cap));
    // Oldest retained record first: the ring wrapped iff total > cap.
    const std::size_t start =
        ring->total > cap ? ring->head : 0;
    for (std::size_t i = 0; i < retained; ++i) {
      out.push_back(ring->buf[(start + i) % cap]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.wall_start_s != b.wall_start_s) {
                       return a.wall_start_s < b.wall_start_s;
                     }
                     return a.tid < b.tid;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::uint64_t dropped = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->m);
    const std::uint64_t cap = ring->buf.size();
    if (ring->total > cap) dropped += ring->total - cap;
  }
  return dropped;
}

std::uint64_t Tracer::emitted() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->m);
    total += ring->total;
  }
  return total;
}

std::size_t Tracer::ring_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->m);
    ring->head = 0;
    ring->total = 0;
  }
  epoch_.store(std::chrono::steady_clock::now(), std::memory_order_relaxed);
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

}  // namespace appfl::obs
