// Text-table and CSV emitters used by the benchmark harnesses to print the
// same rows/series the paper's tables and figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace appfl::util {

/// Column-aligned ASCII table. Collect rows, then print once.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with padded columns and a header rule.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// CSV writer with the same interface; escapes commas/quotes per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Writes header + rows to `path`; throws appfl::Error on I/O failure.
  void write_file(const std::string& path) const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals (fixed notation).
std::string fmt(double value, int digits = 4);

}  // namespace appfl::util
