#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace appfl::util {

namespace {
// Set (and never cleared) on every pool worker thread; plain stack threads
// and the main thread read false. This is what makes nested parallelism
// detectable without passing context through every call layer.
thread_local bool t_on_worker_thread = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

std::size_t ThreadPool::default_threads() {
  const std::size_t hc = std::thread::hardware_concurrency();
  return std::max<std::size_t>(2, hc);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  APPFL_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    APPFL_CHECK_MSG(!stop_, "submit() after ThreadPool shutdown");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_range(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_range(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // ~4 chunks per worker: enough slack that an unlucky long chunk does not
  // serialize the tail, without reintroducing per-index queue traffic.
  const std::size_t chunks = std::min(n, 4 * workers_.size());
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    begin = end;
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace appfl::util
