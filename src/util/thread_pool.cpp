#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace appfl::util {

std::size_t ThreadPool::default_threads() {
  const std::size_t hc = std::thread::hardware_concurrency();
  return std::max<std::size_t>(2, hc);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  APPFL_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    APPFL_CHECK_MSG(!stop_, "submit() after ThreadPool shutdown");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace appfl::util
