#include "util/args.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace appfl::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    APPFL_CHECK_MSG(!body.empty(), "bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_.push_back({body.substr(0, eq), body.substr(eq + 1)});
      continue;
    }
    // "--name value" form: consume the next token unless it is a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_.push_back({body, std::string(argv[i + 1])});
      ++i;
    } else {
      flags_.push_back({body, std::nullopt});
    }
  }
}

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) {
      f.queried = true;
      return &f;
    }
  }
  return nullptr;
}

bool ArgParser::has(const std::string& name) const {
  return find(name) != nullptr;
}

std::optional<std::string> ArgParser::value(const std::string& name) const {
  const Flag* f = find(name);
  return f == nullptr ? std::nullopt : f->value;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  const auto v = value(name);
  return v.has_value() ? *v : fallback;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto v = value(name);
  if (!v.has_value()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  APPFL_CHECK_MSG(end != nullptr && *end == '\0',
                  "--" << name << " expects an integer, got '" << *v << "'");
  return parsed;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto v = value(name);
  if (!v.has_value()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  APPFL_CHECK_MSG(end != nullptr && *end == '\0',
                  "--" << name << " expects a number, got '" << *v << "'");
  return parsed;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const Flag* f = find(name);
  if (f == nullptr) return fallback;
  if (!f->value.has_value()) return true;
  const std::string& v = *f->value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  APPFL_CHECK_MSG(false, "--" << name << " expects a boolean, got '" << v << "'");
  return fallback;
}

std::vector<std::string> ArgParser::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& f : flags_) {
    if (!f.queried) out.push_back(f.name);
  }
  return out;
}

}  // namespace appfl::util
