#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace appfl::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  APPFL_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  APPFL_CHECK_MSG(cells.size() == header_.size(),
                  "row arity " << cells.size() << " != header arity "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  APPFL_CHECK(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  APPFL_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

namespace {

std::string escape_csv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

void write_csv(std::ostream& os, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c > 0) os << ',';
    os << escape_csv(header[c]);
  }
  os << '\n';
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << escape_csv(row[c]);
    }
    os << '\n';
  }
}

}  // namespace

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  APPFL_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_csv(out, header_, rows_);
  APPFL_CHECK_MSG(out.good(), "write to " << path << " failed");
}

void CsvWriter::print(std::ostream& os) const { write_csv(os, header_, rows_); }

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace appfl::util
