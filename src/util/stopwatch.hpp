// Wall-clock stopwatch for the (few) places where real time matters
// (microbenchmarks, runner diagnostics). Simulated experiment time lives in
// comm/sim_clock.hpp instead.
#pragma once

#include <chrono>

namespace appfl::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace appfl::util
