// Fixed-size thread pool with a parallel_for helper.
//
// The federated runner uses this to execute per-client local updates
// concurrently (one logical client per task, many clients per thread), the
// same multiplexing Summit runs used: 203 clients over N MPI ranks. The
// tensor kernel engine reuses the same class for intra-op parallelism and
// consults on_worker_thread() so nested parallel regions (a kernel inside a
// client task) degrade to serial execution instead of oversubscribing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace appfl::util {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>=1). Default: hardware
  /// concurrency, at least 2 so producer/consumer tests make progress on
  /// single-core machines.
  explicit ThreadPool(std::size_t num_threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n) across the pool and wait for all of them.
  /// [0, n) is split into ~4×size() contiguous ranges (one task per range)
  /// so large n pays per-chunk, not per-index, queue overhead. Exceptions
  /// from tasks are rethrown (first one wins; indices after a throwing one
  /// in the same chunk are skipped).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Range flavor: fn(begin, end) over a partition of [0, n) into at most
  /// ~4×size() contiguous chunks. Useful when per-range setup (workspace
  /// acquisition, packing) should be amortized across indices.
  void parallel_for_range(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

  /// True iff the calling thread is a worker of *any* ThreadPool. The
  /// kernel engine uses this as its oversubscription guard: a parallel
  /// kernel invoked from inside a pool task runs serially instead of
  /// fanning out again (client-level outer, kernel-level inner policy).
  static bool on_worker_thread();

  static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace appfl::util
