#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace appfl::log {
namespace {

Level parse_env_level() {
  const char* env = std::getenv("APPFL_LOG_LEVEL");
  if (env == nullptr) return Level::kInfo;
  const std::string v{env};
  if (v == "debug") return Level::kDebug;
  if (v == "info") return Level::kInfo;
  if (v == "warn") return Level::kWarn;
  if (v == "error") return Level::kError;
  if (v == "off") return Level::kOff;
  return Level::kInfo;
}

std::atomic<int> g_level{static_cast<int>(parse_env_level())};
std::mutex g_emit_mutex;

const char* tag(Level lv) {
  switch (lv) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

void set_level(Level lv) { g_level.store(static_cast<int>(lv), std::memory_order_relaxed); }

void emit(Level lv, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[appfl " << tag(lv) << "] " << msg << "\n";
}

}  // namespace appfl::log
