// Minimal leveled logger. Thread-safe (single global mutex around emission);
// level is process-global and adjustable at runtime or via APPFL_LOG_LEVEL.
#pragma once

#include <sstream>
#include <string>

namespace appfl::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current global log level (default Info; override with env APPFL_LOG_LEVEL
/// set to one of: debug, info, warn, error, off).
Level level();

/// Set the global log level programmatically.
void set_level(Level lv);

/// Emit one log line (no trailing newline needed). Prefer the macros below.
void emit(Level lv, const std::string& msg);

}  // namespace appfl::log

#define APPFL_LOG_AT(lv, stream_expr)                          \
  do {                                                         \
    if (static_cast<int>(lv) >=                                \
        static_cast<int>(::appfl::log::level())) {             \
      std::ostringstream appfl_log_os_;                        \
      appfl_log_os_ << stream_expr;                            \
      ::appfl::log::emit(lv, appfl_log_os_.str());             \
    }                                                          \
  } while (0)

#define APPFL_LOG_DEBUG(s) APPFL_LOG_AT(::appfl::log::Level::kDebug, s)
#define APPFL_LOG_INFO(s) APPFL_LOG_AT(::appfl::log::Level::kInfo, s)
#define APPFL_LOG_WARN(s) APPFL_LOG_AT(::appfl::log::Level::kWarn, s)
#define APPFL_LOG_ERROR(s) APPFL_LOG_AT(::appfl::log::Level::kError, s)
