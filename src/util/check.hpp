// Error-handling primitives used across the library.
//
// APPFL_CHECK is an always-on precondition check (never compiled out): the
// library is a research framework where silent shape/index corruption is far
// more expensive than a branch. Failures throw appfl::Error with a formatted
// message so callers (tests, benches, user code) can recover or report.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace appfl {

/// Exception type thrown by all APPFL precondition and runtime checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "APPFL check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace appfl

/// Always-on check; throws appfl::Error on failure.
#define APPFL_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) ::appfl::detail::check_failed(#expr, __FILE__, __LINE__, \
                                               std::string{});           \
  } while (0)

/// Always-on check with a streamed context message:
///   APPFL_CHECK_MSG(a == b, "shape mismatch " << a << " vs " << b);
#define APPFL_CHECK_MSG(expr, stream_expr)                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream appfl_check_os_;                              \
      appfl_check_os_ << stream_expr;                                  \
      ::appfl::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    appfl_check_os_.str());            \
    }                                                                  \
  } while (0)
