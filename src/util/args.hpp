// Minimal command-line flag parser for the CLI front end and examples.
// Supports --flag value, --flag=value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace appfl::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  bool has(const std::string& name) const;

  /// Value of --name (from "--name v" or "--name=v"); nullopt if absent or
  /// valueless.
  std::optional<std::string> value(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// --name / --name=true|1 ⇒ true; --name=false|0 ⇒ false; absent ⇒ fallback.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were passed but never queried — typo detection for the CLI.
  std::vector<std::string> unknown_flags() const;

 private:
  struct Flag {
    std::string name;
    std::optional<std::string> value;
    mutable bool queried = false;
  };
  const Flag* find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace appfl::util
