// Deterministic, splittable pseudo-random number generation.
//
// Every random draw in the framework — weight init, data synthesis, batch
// shuffling, DP noise, network jitter — comes from an Rng seeded through
// derive_seed(base, ids...), so a run is a pure function of its config seed.
// The engine is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>

namespace appfl::rng {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used both for seeding and for deriving independent stream seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derives a seed for an independent stream from a base seed and a list of
/// stream identifiers (e.g. {client_id, round, purpose}). Deterministic, and
/// distinct id tuples give (statistically) independent streams.
std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> ids);

/// Reserved first-position stream tags for derive_seed tuples. Subsystems
/// that mint many per-entity streams lead their tuple with a named tag so
/// independent stream families cannot collide on ad-hoc literals.
namespace stream {
/// Comm fault plane: one stream per (tag, from, to, link-sequence) message,
/// so the drop/delay/corrupt schedule is a pure function of the seed and
/// each link's send order — independent of thread interleaving.
constexpr std::uint64_t kCommFault = 0xFA;
/// Secure aggregation: per-round mask/key/share streams. Tuples are
/// {kSecureAgg, sub-stream, ...} — see dp/secure_agg.cpp for sub-streams.
constexpr std::uint64_t kSecureAgg = 0x5A;
}  // namespace stream

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t next();

  // UniformRandomBitGenerator interface.
  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01();

  /// Uniform double in (0, 1): never returns exactly 0 — safe for log().
  double uniform01_open();

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the distribution is exactly uniform.
  std::uint64_t uniform_below(std::uint64_t n);

  /// The full engine state (4 xoshiro256** words). Together with set_state
  /// this freezes and resumes a sequential stream exactly — the crash
  ///-recovery path checkpoints every stream that advances across rounds.
  std::array<std::uint64_t, 4> state() const;

  /// Restores a state captured by state(). All-zero states are rejected
  /// (xoshiro256** has a single invalid fixed point at zero).
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  std::uint64_t s_[4];
};

}  // namespace appfl::rng
