// Distributions over appfl::rng::Rng. All are stateless free functions so
// callers can interleave draws from several distributions on one stream.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rng/rng.hpp"

namespace appfl::rng {

/// Uniform real in [lo, hi).
double uniform(Rng& rng, double lo, double hi);

/// Standard normal via the Box–Muller transform (one value per call; the
/// second value is intentionally discarded to keep the function stateless).
double normal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Laplace(mean, scale b): density (1/2b)·exp(−|x−mean|/b). This is the DP
/// output-perturbation noise of the paper (§III-B); sampled by inverse CDF.
double laplace(Rng& rng, double mean, double scale);

/// Log-normal: exp(normal(mu, sigma)). Used for gRPC traffic jitter.
double lognormal(Rng& rng, double mu, double sigma);

/// Exponential with rate lambda (>0).
double exponential(Rng& rng, double lambda);

/// Bernoulli(p) — true with probability p.
bool bernoulli(Rng& rng, double p);

/// Symmetric Dirichlet(alpha) over k categories; returns a probability
/// vector. Used by the label-skew non-IID partitioner. Sampled by
/// normalizing Gamma(alpha, 1) draws (Marsaglia–Tsang, with the alpha<1
/// boost trick).
std::vector<double> dirichlet_symmetric(Rng& rng, std::size_t k, double alpha);

/// Gamma(shape alpha>0, scale 1).
double gamma(Rng& rng, double alpha);

/// Fisher–Yates shuffle of an index container.
template <typename T>
void shuffle(Rng& rng, std::span<T> values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_below(i);
    std::swap(values[i - 1], values[j]);
  }
}

/// Fills `out` with i.i.d. Laplace(0, scale) noise.
void fill_laplace(Rng& rng, std::span<float> out, double scale);

/// Fills `out` with i.i.d. Normal(0, stddev) noise.
void fill_normal(Rng& rng, std::span<float> out, double stddev);

}  // namespace appfl::rng
