#include "rng/rng.hpp"

#include "util/check.hpp"

namespace appfl::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> ids) {
  // Sponge-style: absorb each id, run the full SplitMix64 permutation after
  // every absorption so nearby id tuples land in unrelated states.
  std::uint64_t state = base;
  std::uint64_t out = splitmix64(state);
  for (std::uint64_t id : ids) {
    std::uint64_t id_state = id;
    state = out ^ splitmix64(id_state);
    out = splitmix64(state);
  }
  return out;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& s : s_) s = splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // Top 53 bits → double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform01_open() {
  // (next() >> 11) is in [0, 2^53); adding 0.5 keeps the result in (0,1).
  return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
}

std::array<std::uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& s) {
  APPFL_CHECK_MSG(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0,
                  "all-zero xoshiro256** state is invalid");
  for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  APPFL_CHECK(n > 0);
  // Rejection sampling over the largest multiple of n that fits in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

}  // namespace appfl::rng
