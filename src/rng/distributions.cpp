#include "rng/distributions.hpp"

#include <cmath>

#include "util/check.hpp"

namespace appfl::rng {

double uniform(Rng& rng, double lo, double hi) {
  APPFL_CHECK(lo <= hi);
  return lo + (hi - lo) * rng.uniform01();
}

double normal(Rng& rng, double mean, double stddev) {
  const double u1 = rng.uniform01_open();
  const double u2 = rng.uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

double laplace(Rng& rng, double mean, double scale) {
  APPFL_CHECK(scale > 0.0);
  // Inverse CDF: u ~ U(-1/2, 1/2); x = mean − b·sgn(u)·ln(1 − 2|u|).
  const double u = rng.uniform01_open() - 0.5;
  const double sign = (u >= 0.0) ? 1.0 : -1.0;
  return mean - scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(normal(rng, mu, sigma));
}

double exponential(Rng& rng, double lambda) {
  APPFL_CHECK(lambda > 0.0);
  return -std::log(rng.uniform01_open()) / lambda;
}

bool bernoulli(Rng& rng, double p) { return rng.uniform01() < p; }

double gamma(Rng& rng, double alpha) {
  APPFL_CHECK(alpha > 0.0);
  if (alpha < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
    const double u = rng.uniform01_open();
    return gamma(rng, alpha + 1.0) * std::pow(u, 1.0 / alpha);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal(rng, 0.0, 1.0);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform01_open();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> dirichlet_symmetric(Rng& rng, std::size_t k, double alpha) {
  APPFL_CHECK(k > 0);
  std::vector<double> out(k);
  double sum = 0.0;
  for (auto& v : out) {
    v = gamma(rng, alpha);
    sum += v;
  }
  APPFL_CHECK(sum > 0.0);
  for (auto& v : out) v /= sum;
  return out;
}

void fill_laplace(Rng& rng, std::span<float> out, double scale) {
  for (auto& v : out) v = static_cast<float>(laplace(rng, 0.0, scale));
}

void fill_normal(Rng& rng, std::span<float> out, double stddev) {
  for (auto& v : out) v = static_cast<float>(normal(rng, 0.0, stddev));
}

}  // namespace appfl::rng
