#include "dp/secure_agg.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace appfl::dp {

namespace {

// Sub-stream discriminators under rng::stream::kSecureAgg.
constexpr std::uint64_t kKeyStream = 1;   // per-client round secrets
constexpr std::uint64_t kSelfMask = 2;    // self-mask PRG from b_i
constexpr std::uint64_t kPairMask = 3;    // pairwise PRG from g^{k_i k_j}

constexpr std::uint32_t kPacketMagic = 0x53414731;  // "SAG1"

/// Per-client per-round secrets. Drawing both from one derived stream keeps
/// the whole round a pure function of (round_seed, id).
struct RoundSecrets {
  std::uint64_t self_seed;  // b_i
  std::uint64_t pair_key;   // k_i in [1, p)
  rng::Rng rng;             // continues as the Shamir coefficient stream
};

RoundSecrets round_secrets(std::uint64_t round_seed, std::uint32_t id) {
  rng::Rng r(rng::derive_seed(round_seed,
                              {rng::stream::kSecureAgg, kKeyStream, id}));
  RoundSecrets s{0, 0, r};
  s.self_seed = s.rng.next();
  s.pair_key = s.rng.uniform_below(shamir::kPrime - 1) + 1;
  return s;
}

std::uint64_t pair_seed_for(std::uint64_t round_seed, std::uint64_t dh,
                            std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  // Folding round_seed in keeps streams distinct across rounds even if the
  // same DH value recurs.
  return rng::derive_seed(dh, {rng::stream::kSecureAgg, kPairMask,
                               round_seed, lo, hi});
}

std::uint64_t self_seed_for(std::uint64_t self_seed, std::uint32_t id) {
  return rng::derive_seed(self_seed,
                          {rng::stream::kSecureAgg, kSelfMask, id});
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  bool u32(std::uint32_t& v) {
    if (bytes_.size() - pos_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (bytes_.size() - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return true;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

std::vector<std::uint32_t> sorted_dedup_cohort(
    std::span<const std::uint32_t> cohort) {
  std::vector<std::uint32_t> c(cohort.begin(), cohort.end());
  std::sort(c.begin(), c.end());
  APPFL_CHECK_MSG(c.size() >= 2,
                  "secure aggregation needs at least two participants");
  for (std::size_t i = 1; i < c.size(); ++i) {
    APPFL_CHECK_MSG(c[i] != c[i - 1], "duplicate participant " << c[i]);
  }
  return c;
}

}  // namespace

std::vector<std::uint64_t> quantize(std::span<const float> values,
                                    double scale) {
  APPFL_CHECK(scale > 0.0);
  constexpr double kInt64Lo = -9223372036854775808.0;  // -2^63, exact
  constexpr double kInt64Hi = 9223372036854775808.0;   // 2^63, exact
  std::vector<std::uint64_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float v = values[i];
    APPFL_CHECK_MSG(!std::isnan(v),
                    "NaN at index " << i << " cannot be quantized");
    if (std::isinf(v)) {
      // Upstream float overflow (divergence): saturate deterministically.
      out[i] = static_cast<std::uint64_t>(
          v > 0.0F ? std::numeric_limits<std::int64_t>::max()
                   : std::numeric_limits<std::int64_t>::min());
      continue;
    }
    const double scaled = std::round(static_cast<double>(v) * scale);
    APPFL_CHECK_MSG(scaled >= kInt64Lo && scaled < kInt64Hi,
                    "value " << v << " overflows the fixed-point range at "
                             "scale " << scale);
    out[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(scaled));
  }
  return out;
}

std::vector<float> dequantize_sum(std::span<const std::uint64_t> sum,
                                  double scale) {
  APPFL_CHECK(scale > 0.0);
  std::vector<float> out(sum.size());
  for (std::size_t i = 0; i < sum.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(
                                    static_cast<std::int64_t>(sum[i])) /
                                scale);
  }
  return out;
}

std::vector<float> pack_bytes_as_floats(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> framed;
  framed.reserve(4 + bytes.size() + 3);
  put_u32(framed, static_cast<std::uint32_t>(bytes.size()));
  framed.insert(framed.end(), bytes.begin(), bytes.end());
  while (framed.size() % 4 != 0) framed.push_back(0);
  std::vector<float> out(framed.size() / 4);
  std::memcpy(out.data(), framed.data(), framed.size());
  return out;
}

std::vector<std::uint8_t> unpack_bytes_from_floats(
    std::span<const float> words) {
  APPFL_CHECK_MSG(!words.empty(), "empty transport payload");
  std::vector<std::uint8_t> framed(words.size() * 4);
  std::memcpy(framed.data(), words.data(), framed.size());
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{framed[i]} << (8 * i);
  APPFL_CHECK_MSG(4 + std::size_t{len} <= framed.size(),
                  "transport payload length prefix " << len
                      << " exceeds " << framed.size() - 4 << " bytes");
  return {framed.begin() + 4, framed.begin() + 4 + len};
}

std::vector<float> pack_words_as_floats(
    std::span<const std::uint64_t> words) {
  std::vector<float> out(words.size() * 2);
  std::memcpy(out.data(), words.data(), words.size() * 8);
  return out;
}

std::vector<std::uint64_t> unpack_words_from_floats(
    std::span<const float> floats) {
  APPFL_CHECK_MSG(floats.size() % 2 == 0,
                  "masked payload float count " << floats.size()
                                                << " is not word-aligned");
  std::vector<std::uint64_t> out(floats.size() / 2);
  std::memcpy(out.data(), floats.data(), floats.size() * 4);
  return out;
}

SecureAggClient::SecureAggClient(std::uint32_t id,
                                 std::span<const std::uint32_t> cohort,
                                 std::uint64_t round_seed,
                                 std::size_t threshold)
    : id_(id),
      cohort_(sorted_dedup_cohort(cohort)),
      round_seed_(round_seed),
      threshold_(threshold) {
  APPFL_CHECK_MSG(std::binary_search(cohort_.begin(), cohort_.end(), id_),
                  "client " << id_ << " is not in the cohort");
  APPFL_CHECK_MSG(threshold_ >= 2 && threshold_ <= cohort_.size(),
                  "threshold " << threshold_ << " invalid for cohort of "
                               << cohort_.size());
  RoundSecrets s = round_secrets(round_seed_, id_);
  self_seed_ = s.self_seed;
  pair_key_ = s.pair_key;

  const std::size_t n = cohort_.size();
  const auto b = shamir::share_secret(self_seed_, n, threshold_, s.rng);
  const auto k = shamir::share_secret(pair_key_, n, threshold_, s.rng);

  packet_.reserve(24 + 40 * n + 32 * threshold_);
  put_u32(packet_, kPacketMagic);
  put_u32(packet_, id_);
  put_u32(packet_, static_cast<std::uint32_t>(n));
  put_u32(packet_, static_cast<std::uint32_t>(threshold_));
  put_u64(packet_, shamir::commit_pow(shamir::kCommitGen, pair_key_));
  for (const auto& sh : b.shares) {
    put_u32(packet_, sh.x);
    put_u64(packet_, sh.y_lo);
    put_u64(packet_, sh.y_hi);
  }
  for (const auto& sh : k.shares) {
    put_u32(packet_, sh.x);
    put_u64(packet_, sh.y_lo);
    put_u64(packet_, sh.y_hi);
  }
  for (auto c : b.commit_lo) put_u64(packet_, c);
  for (auto c : b.commit_hi) put_u64(packet_, c);
  for (auto c : k.commit_lo) put_u64(packet_, c);
  for (auto c : k.commit_hi) put_u64(packet_, c);
}

std::uint64_t SecureAggClient::public_key(std::uint64_t round_seed,
                                          std::uint32_t id) {
  return shamir::commit_pow(shamir::kCommitGen,
                            round_secrets(round_seed, id).pair_key);
}

std::uint64_t SecureAggClient::pair_prg_seed(std::uint32_t other) const {
  // DH agreement: g^{k_other * k_self} — the peer derives the same value
  // from this client's public key.
  const std::uint64_t dh =
      shamir::commit_pow(public_key(round_seed_, other), pair_key_);
  return pair_seed_for(round_seed_, dh, id_, other);
}

std::vector<std::uint64_t> SecureAggClient::mask(
    std::span<const float> values, std::span<const std::uint32_t> u2,
    double scale, double weight) const {
  APPFL_CHECK(weight > 0.0);
  std::vector<std::uint64_t> out = quantize(values, scale * weight);

  bool self_in_u2 = false;
  for (std::uint32_t other : u2) {
    APPFL_CHECK_MSG(
        std::binary_search(cohort_.begin(), cohort_.end(), other),
        "u2 member " << other << " is not in the cohort");
    if (other == id_) self_in_u2 = true;
  }
  APPFL_CHECK_MSG(self_in_u2, "client " << id_ << " missing from u2");

  // Self-mask, streamed straight into the buffer.
  rng::Rng self_prg(self_seed_for(self_seed_, id_));
  for (auto& w : out) w += self_prg.next();

  // Pairwise masks: one PRG per surviving peer, words streamed in place —
  // no per-pair temporaries (the old implementation allocated an O(len)
  // vector per pair).
  for (std::uint32_t other : u2) {
    if (other == id_) continue;
    rng::Rng prg(pair_prg_seed(other));
    if (id_ < other) {
      for (auto& w : out) w += prg.next();
    } else {
      for (auto& w : out) w -= prg.next();
    }
  }
  return out;
}

SecureAggServer::SecureAggServer(std::span<const std::uint32_t> cohort,
                                 std::uint64_t round_seed,
                                 std::size_t threshold)
    : cohort_(sorted_dedup_cohort(cohort)),
      round_seed_(round_seed),
      threshold_(threshold),
      packets_(cohort_.size()) {
  APPFL_CHECK_MSG(threshold_ >= 2 && threshold_ <= cohort_.size(),
                  "threshold " << threshold_ << " invalid for cohort of "
                               << cohort_.size());
}

std::size_t SecureAggServer::index_of(std::uint32_t id) const {
  const auto it = std::lower_bound(cohort_.begin(), cohort_.end(), id);
  APPFL_CHECK_MSG(it != cohort_.end() && *it == id,
                  "client " << id << " is not in the cohort");
  return static_cast<std::size_t>(it - cohort_.begin());
}

bool SecureAggServer::deposit_share_packet(
    std::uint32_t sender, std::span<const std::uint8_t> bytes) {
  const auto it = std::lower_bound(cohort_.begin(), cohort_.end(), sender);
  if (it == cohort_.end() || *it != sender) return false;
  const auto pos = static_cast<std::size_t>(it - cohort_.begin());
  if (packets_[pos].present) return false;  // duplicate packet

  Reader r(bytes);
  std::uint32_t magic = 0, id = 0, n = 0, t = 0;
  if (!r.u32(magic) || magic != kPacketMagic) return false;
  if (!r.u32(id) || id != sender) return false;
  if (!r.u32(n) || n != cohort_.size()) return false;
  if (!r.u32(t) || t != threshold_) return false;

  Packet p;
  if (!r.u64(p.pk)) return false;
  p.b_shares.resize(n);
  p.k_shares.resize(n);
  for (auto& sh : p.b_shares) {
    if (!r.u32(sh.x) || !r.u64(sh.y_lo) || !r.u64(sh.y_hi)) return false;
  }
  for (auto& sh : p.k_shares) {
    if (!r.u32(sh.x) || !r.u64(sh.y_lo) || !r.u64(sh.y_hi)) return false;
  }
  std::vector<std::uint64_t> b_lo(t), b_hi(t), k_lo(t), k_hi(t);
  for (auto& c : b_lo) if (!r.u64(c)) return false;
  for (auto& c : b_hi) if (!r.u64(c)) return false;
  for (auto& c : k_lo) if (!r.u64(c)) return false;
  for (auto& c : k_hi) if (!r.u64(c)) return false;
  if (!r.done()) return false;  // trailing bytes: malformed

  // Feldman verification of every share, and of the public key against the
  // constant-term commitments: pk = g^k = C0_lo * C0_hi^(2^32).
  for (std::size_t j = 0; j < n; ++j) {
    if (p.b_shares[j].x != static_cast<std::uint32_t>(j + 1)) return false;
    if (p.k_shares[j].x != static_cast<std::uint32_t>(j + 1)) return false;
    if (!shamir::verify_share(p.b_shares[j], b_lo, b_hi)) return false;
    if (!shamir::verify_share(p.k_shares[j], k_lo, k_hi)) return false;
  }
  if (p.pk != shamir::commit_mul(
                  k_lo[0], shamir::commit_pow(k_hi[0], 1ULL << 32))) {
    return false;
  }

  p.present = true;
  packets_[pos] = std::move(p);
  return true;
}

std::vector<std::uint32_t> SecureAggServer::share_survivors() const {
  std::vector<std::uint32_t> u2;
  for (std::size_t i = 0; i < cohort_.size(); ++i) {
    if (packets_[i].present) u2.push_back(cohort_[i]);
  }
  return u2;
}

SecureAggServer::Recovery SecureAggServer::unmask(
    std::span<const std::uint32_t> u3,
    const std::vector<std::vector<std::uint64_t>>& uploads) const {
  APPFL_CHECK(u3.size() == uploads.size());
  Recovery rec;
  if (u3.size() < threshold_) return rec;  // ok stays false: degrade

  // Cohort positions of U3 members; their shares are the admissible set.
  std::vector<std::size_t> u3_pos(u3.size());
  for (std::size_t i = 0; i < u3.size(); ++i) {
    u3_pos[i] = index_of(u3[i]);
    APPFL_CHECK_MSG(packets_[u3_pos[i]].present,
                    "upload survivor " << u3[i] << " is not in U2");
  }

  const std::size_t len = uploads.empty() ? 0 : uploads.front().size();
  rec.sum.assign(len, 0);
  for (const auto& up : uploads) {
    APPFL_CHECK(up.size() == len);
    for (std::size_t i = 0; i < len; ++i) rec.sum[i] += up[i];
  }

  // Shares of client-at-position c held by U3 members (first t suffice).
  const auto held_shares = [&](const std::vector<shamir::Share>& all) {
    std::vector<shamir::Share> held;
    held.reserve(threshold_);
    for (std::size_t pos : u3_pos) {
      held.push_back(all[pos]);
      if (held.size() == threshold_) break;
    }
    return held;
  };

  // Remove the self-mask of every upload survivor.
  for (std::size_t i = 0; i < u3.size(); ++i) {
    const Packet& p = packets_[u3_pos[i]];
    const std::uint64_t b =
        shamir::reconstruct(held_shares(p.b_shares), threshold_);
    rng::Rng prg(self_seed_for(b, u3[i]));
    for (auto& w : rec.sum) w -= prg.next();
    ++rec.self_masks_removed;
  }

  // Remove the residual pairwise masks of share survivors that dropped
  // before upload (U2 \ U3): reconstruct their DH key, re-derive each pair
  // stream against the survivors' public keys.
  for (std::size_t pos = 0; pos < cohort_.size(); ++pos) {
    if (!packets_[pos].present) continue;  // not in U2
    const std::uint32_t j = cohort_[pos];
    if (std::find(u3.begin(), u3.end(), j) != u3.end()) continue;  // in U3
    const std::uint64_t k =
        shamir::reconstruct(held_shares(packets_[pos].k_shares), threshold_);
    for (std::size_t i = 0; i < u3.size(); ++i) {
      const std::uint64_t dh =
          shamir::commit_pow(packets_[u3_pos[i]].pk, k);
      rng::Rng prg(pair_seed_for(round_seed_, dh, u3[i], j));
      // Survivor u3[i] applied +stream if u3[i] < j, else -stream; undo it.
      if (u3[i] < j) {
        for (auto& w : rec.sum) w -= prg.next();
      } else {
        for (auto& w : rec.sum) w += prg.next();
      }
    }
    ++rec.pair_keys_reconstructed;
  }

  rec.ok = true;
  return rec;
}

}  // namespace appfl::dp
