#include "dp/secure_agg.hpp"

#include <algorithm>
#include <cmath>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace appfl::dp {

std::vector<std::uint64_t> quantize(std::span<const float> values,
                                    double scale) {
  APPFL_CHECK(scale > 0.0);
  std::vector<std::uint64_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double scaled = std::round(static_cast<double>(values[i]) * scale);
    APPFL_CHECK_MSG(std::abs(scaled) < 9.0e18,
                    "value " << values[i] << " overflows the fixed-point range");
    out[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(scaled));
  }
  return out;
}

std::vector<float> dequantize_sum(std::span<const std::uint64_t> sum,
                                  double scale) {
  APPFL_CHECK(scale > 0.0);
  std::vector<float> out(sum.size());
  for (std::size_t i = 0; i < sum.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(
                                    static_cast<std::int64_t>(sum[i])) /
                                scale);
  }
  return out;
}

SecureAggregator::SecureAggregator(std::vector<std::uint32_t> participants,
                                   std::uint64_t round_seed)
    : participants_(std::move(participants)), round_seed_(round_seed) {
  APPFL_CHECK_MSG(participants_.size() >= 2,
                  "secure aggregation needs at least two participants");
  std::sort(participants_.begin(), participants_.end());
  for (std::size_t i = 1; i < participants_.size(); ++i) {
    APPFL_CHECK_MSG(participants_[i] != participants_[i - 1],
                    "duplicate participant " << participants_[i]);
  }
}

std::vector<std::uint64_t> SecureAggregator::pair_mask(
    std::uint32_t a, std::uint32_t b, std::size_t length) const {
  // Canonical ordering so both endpoints derive the identical stream.
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  rng::Rng prg(rng::derive_seed(round_seed_, {0x5E, lo, hi}));
  std::vector<std::uint64_t> mask(length);
  for (auto& m : mask) m = prg.next();
  return mask;
}

std::vector<std::uint64_t> SecureAggregator::mask(
    std::uint32_t client, std::span<const float> values, double scale) const {
  APPFL_CHECK_MSG(std::binary_search(participants_.begin(), participants_.end(),
                                     client),
                  "client " << client << " is not a registered participant");
  std::vector<std::uint64_t> out = quantize(values, scale);
  for (std::uint32_t other : participants_) {
    if (other == client) continue;
    const auto m = pair_mask(client, other, out.size());
    if (client < other) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += m[i];
    } else {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] -= m[i];
    }
  }
  return out;
}

std::vector<float> SecureAggregator::aggregate_mean(
    const std::vector<std::vector<std::uint64_t>>& masked_uploads,
    double scale) const {
  APPFL_CHECK_MSG(masked_uploads.size() == participants_.size(),
                  "got " << masked_uploads.size() << " uploads for "
                         << participants_.size()
                         << " registered participants — pairwise masks "
                            "cannot cancel");
  const std::size_t length = masked_uploads.front().size();
  std::vector<std::uint64_t> sum(length, 0);
  for (const auto& upload : masked_uploads) {
    APPFL_CHECK(upload.size() == length);
    for (std::size_t i = 0; i < length; ++i) sum[i] += upload[i];
  }
  std::vector<float> mean = dequantize_sum(sum, scale);
  const float inv = 1.0F / static_cast<float>(participants_.size());
  for (auto& v : mean) v *= inv;
  return mean;
}

}  // namespace appfl::dp
