// Privacy accountant: tracks the ε spent by each client across rounds.
//
// The paper applies the Laplace mechanism once per communication round with
// budget ε̄, so under basic (sequential) composition the total leakage after
// T rounds is T·ε̄. The accountant records each spend and can enforce a cap.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace appfl::dp {

class PrivacyAccountant {
 public:
  /// total_budget: maximum cumulative ε per client (∞ = unlimited).
  explicit PrivacyAccountant(
      std::size_t num_clients,
      double total_budget = std::numeric_limits<double>::infinity());

  /// Records a spend of `epsilon` for `client`. Returns false (and records
  /// nothing) if the spend would exceed the budget; a spend of 0 (no-op
  /// mechanism / ε = ∞ round counts as zero leakage under this accounting
  /// only if the caller passes 0) is always allowed.
  bool spend(std::size_t client, double epsilon);

  /// Cumulative ε spent by `client` (basic composition).
  double spent(std::size_t client) const;

  /// Crash-recovery restore: overwrites `client`'s cumulative spend with a
  /// value from a checkpoint. The restored value must respect the budget.
  void restore_spent(std::size_t client, double epsilon);

  /// Remaining budget for `client`.
  double remaining(std::size_t client) const;

  /// Largest cumulative spend across clients.
  double max_spent() const;

  std::size_t num_clients() const { return spent_.size(); }

 private:
  std::vector<double> spent_;
  double budget_;
};

}  // namespace appfl::dp
