// Shamir t-of-n secret sharing over a 61-bit prime field, with Feldman-style
// share verification.
//
// A 64-bit secret (a PRG seed or a pairwise-masking key) is split into two
// 32-bit halves; each half becomes the constant term of a random degree-(t-1)
// polynomial over GF(p). Share j is the polynomial evaluated at x = j, so any
// t shares reconstruct the secret by Lagrange interpolation at 0 and any t-1
// reveal nothing. The field prime p is a Sophie Germain prime: P = 2p + 1 is
// also prime, so the quadratic residues of Z_P* form a subgroup of order
// exactly p. Feldman commitments C_k = g^{a_k} (mod P) live in that subgroup,
// which makes exponent arithmetic mod p consistent with share arithmetic mod
// p — a holder of share (x, y) checks g^y == prod_k C_k^(x^k) without
// learning the coefficients.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace appfl::rng {
class Rng;
}

namespace appfl::dp::shamir {

/// Share field: largest 61-bit Sophie Germain prime (2^61 - 5283).
inline constexpr std::uint64_t kPrime = 2305843009213688669ULL;
/// Commitment group modulus: the safe prime P = 2 * kPrime + 1.
inline constexpr std::uint64_t kCommitModulus = 4611686018427377339ULL;
/// Generator of the order-kPrime subgroup of Z_P* (the quadratic residues).
inline constexpr std::uint64_t kCommitGen = 4ULL;

// --- GF(kPrime) field arithmetic ------------------------------------------
std::uint64_t field_add(std::uint64_t a, std::uint64_t b);
std::uint64_t field_sub(std::uint64_t a, std::uint64_t b);
std::uint64_t field_mul(std::uint64_t a, std::uint64_t b);
std::uint64_t field_pow(std::uint64_t base, std::uint64_t exp);
/// Multiplicative inverse via Fermat: a^(p-2). Requires a != 0.
std::uint64_t field_inv(std::uint64_t a);

// --- Commitment group (mod kCommitModulus) --------------------------------
std::uint64_t commit_mul(std::uint64_t a, std::uint64_t b);
/// base^exp mod kCommitModulus. Exponents are field elements (mod kPrime),
/// consistent with the subgroup order.
std::uint64_t commit_pow(std::uint64_t base, std::uint64_t exp);

/// One share of a 64-bit secret: the evaluation point and the two half
/// polynomials evaluated there.
struct Share {
  std::uint32_t x = 0;       ///< evaluation point, 1-based, never 0
  std::uint64_t y_lo = 0;    ///< share of the secret's low 32 bits
  std::uint64_t y_hi = 0;    ///< share of the secret's high 32 bits
};

/// share_secret output: n shares plus the Feldman commitments (t per half)
/// that let any holder verify its share against the dealer's polynomials.
struct SharedSecret {
  std::vector<Share> shares;
  std::vector<std::uint64_t> commit_lo;  ///< C_k = g^{a_k} for the low half
  std::vector<std::uint64_t> commit_hi;  ///< C_k = g^{a_k} for the high half
};

/// Splits `secret` into n shares with reconstruction threshold t
/// (2 <= t <= n, n < kPrime). Polynomial coefficients are drawn from `rng`,
/// so sharing is deterministic per seeded stream.
SharedSecret share_secret(std::uint64_t secret, std::size_t n, std::size_t t,
                          rng::Rng& rng);

/// Checks one share against the dealer's commitments:
/// g^y == prod_k C_k^(x^k) for both halves.
bool verify_share(const Share& share,
                  std::span<const std::uint64_t> commit_lo,
                  std::span<const std::uint64_t> commit_hi);

/// Reconstructs the secret from at least t shares with distinct evaluation
/// points (the first t are used) by Lagrange interpolation at x = 0.
std::uint64_t reconstruct(std::span<const Share> shares, std::size_t t);

}  // namespace appfl::dp::shamir
