#include "dp/mechanism.hpp"

#include <cmath>
#include <limits>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace appfl::dp {

void NoOpMechanism::apply(std::span<float>, rng::Rng&) const {}

LaplaceMechanism::LaplaceMechanism(double scale_b) : scale_(scale_b) {
  APPFL_CHECK_MSG(scale_b > 0.0, "Laplace scale must be positive");
}

LaplaceMechanism LaplaceMechanism::calibrated(double epsilon,
                                              double sensitivity) {
  APPFL_CHECK_MSG(epsilon > 0.0 && std::isfinite(epsilon),
                  "Laplace calibration needs finite epsilon > 0");
  APPFL_CHECK_MSG(sensitivity > 0.0, "sensitivity must be positive");
  return LaplaceMechanism(sensitivity / epsilon);
}

void LaplaceMechanism::apply(std::span<float> values, rng::Rng& rng) const {
  for (auto& v : values) {
    v += static_cast<float>(rng::laplace(rng, 0.0, scale_));
  }
}

GaussianMechanism::GaussianMechanism(double sigma) : sigma_(sigma) {
  APPFL_CHECK_MSG(sigma > 0.0, "Gaussian sigma must be positive");
}

GaussianMechanism GaussianMechanism::calibrated(double epsilon, double delta,
                                                double l2_sensitivity) {
  APPFL_CHECK(epsilon > 0.0 && std::isfinite(epsilon));
  APPFL_CHECK(delta > 0.0 && delta < 1.0);
  APPFL_CHECK(l2_sensitivity > 0.0);
  const double sigma =
      l2_sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
  return GaussianMechanism(sigma);
}

void GaussianMechanism::apply(std::span<float> values, rng::Rng& rng) const {
  for (auto& v : values) {
    v += static_cast<float>(rng::normal(rng, 0.0, sigma_));
  }
}

std::unique_ptr<Mechanism> make_laplace_for_budget(double epsilon,
                                                   double sensitivity) {
  if (std::isinf(epsilon)) return std::make_unique<NoOpMechanism>();
  return std::make_unique<LaplaceMechanism>(
      LaplaceMechanism::calibrated(epsilon, sensitivity));
}

}  // namespace appfl::dp
