// Sensitivity Δ̄ of a local update w.r.t. a one-sample change (paper §III-B).
//
// With gradients clipped to ‖g‖ ≤ C, swapping one data point moves any batch
// gradient by at most 2C (triangle inequality), so:
//   • IADMM family (one inexact step, eq. (4)): the closed-form minimizer
//     moves by at most 2C/(ρ + ζ) — the bound stated in the paper.
//   • FedAvg (one SGD step): the iterate moves by at most 2Cη.
// Both are *per local solve*; the paper perturbs the final local output once
// per communication round with this bound.
#pragma once

namespace appfl::dp {

/// Δ̄ = 2C / (ρ + ζ) for ICEADMM / IIADMM local solves (paper, §III-B).
double iadmm_sensitivity(double clip_c, double rho, double zeta);

/// Δ̄ = 2Cη for a FedAvg local SGD step (paper: "the sensitivity in FedAvg
/// depends on the learning rate").
double fedavg_sensitivity(double clip_c, double learning_rate);

}  // namespace appfl::dp
