#include "dp/sensitivity.hpp"

#include "util/check.hpp"

namespace appfl::dp {

double iadmm_sensitivity(double clip_c, double rho, double zeta) {
  APPFL_CHECK(clip_c > 0.0);
  APPFL_CHECK(rho + zeta > 0.0);
  return 2.0 * clip_c / (rho + zeta);
}

double fedavg_sensitivity(double clip_c, double learning_rate) {
  APPFL_CHECK(clip_c > 0.0);
  APPFL_CHECK(learning_rate > 0.0);
  return 2.0 * clip_c * learning_rate;
}

}  // namespace appfl::dp
