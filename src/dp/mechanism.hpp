// Differential-privacy mechanisms (paper §III-B).
//
// The paper's scheme is output perturbation: before a client sends its local
// parameters z_p^{t+1}, it adds noise calibrated to the ε budget and the
// sensitivity Δ̄ of the local update. Laplace(0, Δ̄/ε) per coordinate gives
// ε-DP under the L1 composition used in the paper; the Gaussian mechanism is
// provided as the "more advanced scheme" the paper lists as future work.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "rng/rng.hpp"

namespace appfl::dp {

/// A randomized perturbation applied to an outgoing parameter vector.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Perturbs `values` in place using `rng`.
  virtual void apply(std::span<float> values, rng::Rng& rng) const = 0;

  /// Noise scale actually in use (0 for the no-op mechanism).
  virtual double scale() const = 0;

  virtual std::string name() const = 0;
};

/// ε = ∞: sends the true output. scale() == 0.
class NoOpMechanism : public Mechanism {
 public:
  void apply(std::span<float> values, rng::Rng& rng) const override;
  double scale() const override { return 0.0; }
  std::string name() const override { return "none"; }
};

/// Laplace output perturbation with scale b = Δ̄/ε̄ (Dwork & Roth).
class LaplaceMechanism : public Mechanism {
 public:
  /// Direct construction from the noise scale b > 0.
  explicit LaplaceMechanism(double scale_b);

  /// Calibrated construction: b = sensitivity / epsilon.
  static LaplaceMechanism calibrated(double epsilon, double sensitivity);

  void apply(std::span<float> values, rng::Rng& rng) const override;
  double scale() const override { return scale_; }
  std::string name() const override { return "laplace"; }

 private:
  double scale_;
};

/// Gaussian mechanism with stddev sigma (provides (ε, δ)-DP; implemented as
/// the paper's planned extension).
class GaussianMechanism : public Mechanism {
 public:
  explicit GaussianMechanism(double sigma);

  /// Classic calibration: sigma = sensitivity·√(2·ln(1.25/δ))/ε.
  static GaussianMechanism calibrated(double epsilon, double delta,
                                      double l2_sensitivity);

  void apply(std::span<float> values, rng::Rng& rng) const override;
  double scale() const override { return sigma_; }
  std::string name() const override { return "gaussian"; }

 private:
  double sigma_;
};

/// Builds the mechanism for a requested ε (∞ ⇒ NoOp) and sensitivity.
std::unique_ptr<Mechanism> make_laplace_for_budget(double epsilon,
                                                   double sensitivity);

}  // namespace appfl::dp
