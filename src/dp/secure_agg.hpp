// Dropout-resilient secure aggregation (Bonawitz et al. 2017 double-masking,
// simulated in-process).
//
// Each client quantizes its update to fixed point and adds two kinds of
// masks mod 2^64: a PRG self-mask from a private seed b_i, and one pairwise
// PRG mask per cohort peer derived from a Diffie-Hellman shared value
// g^{k_i k_j} (client i adds the pair stream when i < j, subtracts it
// otherwise). Both secrets — b_i and the pairwise key k_i — are
// Shamir-shared t-of-n across the cohort (dp/shamir.hpp), so the server can
// survive dropout:
//
//   U2 = clients whose share packets arrived (share-distribution survivors)
//   U3 = U2 members whose masked uploads arrived (upload survivors)
//
// With |U3| >= t the server reconstructs the SELF-mask seed b_i for every
// i in U3 (its upload is in the sum, its self-mask must come out) and the
// PAIRWISE key k_j for every j in U2 \ U3 (its peers masked against it, but
// its own upload — which would have cancelled those masks — never arrived).
// It never reconstructs both secrets of one client, which is exactly the
// double-masking privacy argument. The recovered sum over U3 is bit-exact:
// all masking is integer arithmetic mod 2^64. Below t upload survivors the
// round is unrecoverable by design and the caller degrades gracefully
// (skips the model update and counts the round) rather than unmasking.
//
// Simulation scope: honest-but-curious server, in-process transport. The
// key-advertisement round is simulated by `SecureAggClient::public_key`
// (deterministic per round seed), and a client's share packet delivered to
// the server stands in for the n encrypted share fan-outs; at unmask time
// only shares held by U3 members are admissible, preserving the t-of-n
// threshold semantics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dp/shamir.hpp"

namespace appfl::dp {

/// Fixed-point quantization: v → round(v · scale) as a two's-complement
/// 64-bit word. `scale` trades range for precision (default 2²⁰ keeps
/// |v| < 2⁴³ exact to ~1e-6; beyond that the round trip saturates into the
/// overflow check). NaN is rejected; ±Inf clamps to the fixed-point range
/// (upstream float overflow saturates deterministically instead of hitting
/// undefined float→int conversion); finite values whose scaled magnitude
/// leaves the int64 range throw — that is a misconfigured scale, not data.
std::vector<std::uint64_t> quantize(std::span<const float> values,
                                    double scale);

/// Inverse of quantize for an aggregated (summed) vector.
std::vector<float> dequantize_sum(std::span<const std::uint64_t> sum,
                                  double scale);

/// Default quantization scale (2^20).
inline constexpr double kDefaultScale = 1048576.0;

// --- Transport packing ----------------------------------------------------
// Secure-agg payloads ride the existing float wire fields (Message.primal):
// both wire encodings (raw memcpy and protolite fixed32) carry float BIT
// PATTERNS exactly, so opaque bytes and masked u64 words survive transport
// bit-identically without a new wire format.

/// Packs opaque bytes into float words: 4-byte length prefix, then the
/// bytes, zero-padded to a word boundary.
std::vector<float> pack_bytes_as_floats(std::span<const std::uint8_t> bytes);
/// Exact inverse of pack_bytes_as_floats. Throws on a malformed prefix.
std::vector<std::uint8_t> unpack_bytes_from_floats(
    std::span<const float> words);

/// Bit-casts a masked u64 vector to 2 floats per word (and back).
std::vector<float> pack_words_as_floats(std::span<const std::uint64_t> words);
std::vector<std::uint64_t> unpack_words_from_floats(
    std::span<const float> floats);

/// Client-side state for one secure-aggregation round.
class SecureAggClient {
 public:
  /// `cohort`: the ids sampled for this round (sorted or not, deduped);
  /// `id` must be one of them. `round_seed` pins every per-round secret
  /// stream; `threshold` is the Shamir t (2 <= t <= cohort size).
  SecureAggClient(std::uint32_t id, std::span<const std::uint32_t> cohort,
                  std::uint64_t round_seed, std::size_t threshold);

  /// Serialized Shamir shares of (b_i, k_i) plus Feldman commitments and
  /// this client's DH public key — the round's kSecAggShares payload.
  const std::vector<std::uint8_t>& share_packet() const { return packet_; }

  /// Quantizes `values` at `scale * weight` (the aggregation weight is
  /// folded into the fixed-point scale so the server's sum is a weighted
  /// sum) and streams the self-mask plus one pairwise mask per peer in
  /// `u2` directly into the buffer — no per-pair temporaries.
  /// `u2` is the share-survivor set announced by the server; it must
  /// contain this client and only cohort members.
  std::vector<std::uint64_t> mask(std::span<const float> values,
                                  std::span<const std::uint32_t> u2,
                                  double scale, double weight) const;

  /// The DH public key g^{k_id} this client would advertise. Deterministic
  /// per (round_seed, id) — the in-process stand-in for the signed key
  /// advertisement round.
  static std::uint64_t public_key(std::uint64_t round_seed, std::uint32_t id);

  std::uint32_t id() const { return id_; }

 private:
  std::uint64_t pair_prg_seed(std::uint32_t other) const;

  std::uint32_t id_ = 0;
  std::vector<std::uint32_t> cohort_;
  std::uint64_t round_seed_ = 0;
  std::size_t threshold_ = 0;
  std::uint64_t self_seed_ = 0;  ///< b_i: seeds the self-mask PRG
  std::uint64_t pair_key_ = 0;   ///< k_i: DH exponent for pairwise masks
  std::vector<std::uint8_t> packet_;
};

/// Server-side state for one secure-aggregation round: collects share
/// packets (defining U2), then unmasks the sum over upload survivors (U3).
class SecureAggServer {
 public:
  SecureAggServer(std::span<const std::uint32_t> cohort,
                  std::uint64_t round_seed, std::size_t threshold);

  /// Parses and Feldman-verifies one client's share packet. Returns false
  /// (and keeps the client out of U2) on malformed bytes, a cohort/threshold
  /// mismatch, or any share failing verification.
  bool deposit_share_packet(std::uint32_t sender,
                            std::span<const std::uint8_t> bytes);

  /// U2: sorted ids whose share packets were accepted.
  std::vector<std::uint32_t> share_survivors() const;

  std::size_t threshold() const { return threshold_; }

  struct Recovery {
    bool ok = false;  ///< false: |U3| < t, round must degrade
    /// Exact survivor sum of the quantized weighted updates, mod 2^64.
    std::vector<std::uint64_t> sum;
    std::size_t pair_keys_reconstructed = 0;  ///< dropped clients recovered
    std::size_t self_masks_removed = 0;       ///< one per upload survivor
  };

  /// Removes all masks from the uploads of `u3` (ids, each in U2;
  /// `uploads[i]` is u3[i]'s masked vector). Reconstructs b_i for i in U3
  /// and k_j for j in U2 \ U3 from the shares held by U3 members.
  Recovery unmask(std::span<const std::uint32_t> u3,
                  const std::vector<std::vector<std::uint64_t>>& uploads) const;

 private:
  struct Packet {
    bool present = false;
    std::uint64_t pk = 0;
    std::vector<shamir::Share> b_shares;  ///< indexed by cohort position
    std::vector<shamir::Share> k_shares;
  };

  std::size_t index_of(std::uint32_t id) const;

  std::vector<std::uint32_t> cohort_;
  std::uint64_t round_seed_ = 0;
  std::size_t threshold_ = 0;
  std::vector<Packet> packets_;
};

}  // namespace appfl::dp
