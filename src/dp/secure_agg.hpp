// Secure aggregation by pairwise masking (Bonawitz et al. 2017, simulated).
//
// The complementary privacy technique to DP in PPFL frameworks: each pair of
// clients (i, j) derives a shared mask from a common seed; i adds it, j
// subtracts it, so every individual upload looks uniformly random to the
// server while the SUM of all uploads is exact. Because floating-point
// addition does not cancel masks exactly, values are first quantized to
// fixed point and all arithmetic runs modulo 2⁶⁴ — precisely how production
// secure-aggregation protocols operate.
//
// Scope of the simulation: honest-but-curious server, no dropout recovery
// (the Shamir key-sharing half of the real protocol); every registered
// participant must contribute or the masks do not cancel. This is the
// code-path equivalent needed to study bandwidth/accuracy effects.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace appfl::dp {

/// Fixed-point quantization: v → round(v · scale) as a two's-complement
/// 64-bit word. `scale` trades range for precision (default 2²⁰ keeps
/// |v| < 2⁴³ exact to ~1e-6).
std::vector<std::uint64_t> quantize(std::span<const float> values,
                                    double scale);

/// Inverse of quantize for an aggregated (summed) vector.
std::vector<float> dequantize_sum(std::span<const std::uint64_t> sum,
                                  double scale);

class SecureAggregator {
 public:
  /// `participants`: the exact client ids that will contribute this round
  /// (all must deliver). `round_seed` derives every pairwise mask; in a
  /// deployment it would come from a key exchange.
  SecureAggregator(std::vector<std::uint32_t> participants,
                   std::uint64_t round_seed);

  /// Client side: quantizes `values` and applies all of `client`'s pairwise
  /// masks. The result reveals nothing about `values` in isolation.
  std::vector<std::uint64_t> mask(std::uint32_t client,
                                  std::span<const float> values,
                                  double scale) const;

  /// Server side: sums the masked vectors (masks cancel mod 2⁶⁴) and
  /// returns the de-quantized AVERAGE over participants.
  std::vector<float> aggregate_mean(
      const std::vector<std::vector<std::uint64_t>>& masked_uploads,
      double scale) const;

  std::size_t num_participants() const { return participants_.size(); }

  static constexpr double kDefaultScale = 1048576.0;  // 2^20

 private:
  std::vector<std::uint64_t> pair_mask(std::uint32_t a, std::uint32_t b,
                                       std::size_t length) const;

  std::vector<std::uint32_t> participants_;
  std::uint64_t round_seed_;
};

}  // namespace appfl::dp
