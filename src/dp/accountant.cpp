#include "dp/accountant.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace appfl::dp {

PrivacyAccountant::PrivacyAccountant(std::size_t num_clients,
                                     double total_budget)
    : spent_(num_clients, 0.0), budget_(total_budget) {
  APPFL_CHECK(num_clients > 0);
  APPFL_CHECK(total_budget > 0.0);
}

bool PrivacyAccountant::spend(std::size_t client, double epsilon) {
  APPFL_CHECK(client < spent_.size());
  APPFL_CHECK(epsilon >= 0.0);
  if (spent_[client] + epsilon > budget_) return false;
  spent_[client] += epsilon;
  return true;
}

double PrivacyAccountant::spent(std::size_t client) const {
  APPFL_CHECK(client < spent_.size());
  return spent_[client];
}

void PrivacyAccountant::restore_spent(std::size_t client, double epsilon) {
  APPFL_CHECK(client < spent_.size());
  APPFL_CHECK(epsilon >= 0.0 && epsilon <= budget_);
  spent_[client] = epsilon;
}

double PrivacyAccountant::remaining(std::size_t client) const {
  APPFL_CHECK(client < spent_.size());
  return budget_ - spent_[client];
}

double PrivacyAccountant::max_spent() const {
  return *std::max_element(spent_.begin(), spent_.end());
}

}  // namespace appfl::dp
