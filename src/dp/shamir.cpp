#include "dp/shamir.hpp"

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace appfl::dp::shamir {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t acc = 1;
  base %= m;
  while (exp != 0) {
    if (exp & 1) acc = mulmod(acc, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return acc;
}

/// Evaluates the degree-(t-1) polynomial with coefficients `coef` at x
/// (Horner, over GF(kPrime)).
std::uint64_t poly_eval(std::span<const std::uint64_t> coef, std::uint64_t x) {
  std::uint64_t acc = 0;
  for (std::size_t k = coef.size(); k-- > 0;) {
    acc = field_add(field_mul(acc, x), coef[k]);
  }
  return acc;
}

}  // namespace

std::uint64_t field_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;  // a, b < 2^61 so no wraparound
  return s >= kPrime ? s - kPrime : s;
}

std::uint64_t field_sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kPrime - b;
}

std::uint64_t field_mul(std::uint64_t a, std::uint64_t b) {
  return mulmod(a, b, kPrime);
}

std::uint64_t field_pow(std::uint64_t base, std::uint64_t exp) {
  return powmod(base, exp, kPrime);
}

std::uint64_t field_inv(std::uint64_t a) {
  APPFL_CHECK_MSG(a % kPrime != 0, "0 has no multiplicative inverse");
  return field_pow(a, kPrime - 2);
}

std::uint64_t commit_mul(std::uint64_t a, std::uint64_t b) {
  return mulmod(a, b, kCommitModulus);
}

std::uint64_t commit_pow(std::uint64_t base, std::uint64_t exp) {
  return powmod(base, exp, kCommitModulus);
}

SharedSecret share_secret(std::uint64_t secret, std::size_t n, std::size_t t,
                          rng::Rng& rng) {
  APPFL_CHECK_MSG(t >= 2, "threshold must be at least 2, got " << t);
  APPFL_CHECK_MSG(t <= n, "threshold " << t << " exceeds share count " << n);
  APPFL_CHECK_MSG(n < kPrime, "too many shares for the field");

  // Two half polynomials: constant term = the secret half, higher
  // coefficients uniform over GF(p).
  std::vector<std::uint64_t> coef_lo(t), coef_hi(t);
  coef_lo[0] = secret & 0xFFFFFFFFULL;
  coef_hi[0] = secret >> 32;
  for (std::size_t k = 1; k < t; ++k) {
    coef_lo[k] = rng.uniform_below(kPrime);
    coef_hi[k] = rng.uniform_below(kPrime);
  }

  SharedSecret out;
  out.shares.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto x = static_cast<std::uint32_t>(j + 1);
    out.shares[j].x = x;
    out.shares[j].y_lo = poly_eval(coef_lo, x);
    out.shares[j].y_hi = poly_eval(coef_hi, x);
  }
  out.commit_lo.resize(t);
  out.commit_hi.resize(t);
  for (std::size_t k = 0; k < t; ++k) {
    out.commit_lo[k] = commit_pow(kCommitGen, coef_lo[k]);
    out.commit_hi[k] = commit_pow(kCommitGen, coef_hi[k]);
  }
  return out;
}

bool verify_share(const Share& share,
                  std::span<const std::uint64_t> commit_lo,
                  std::span<const std::uint64_t> commit_hi) {
  if (share.x == 0 || commit_lo.empty() ||
      commit_lo.size() != commit_hi.size()) {
    return false;
  }
  // prod_k C_k^(x^k); the exponent x^k is reduced mod p = subgroup order.
  std::uint64_t rhs_lo = 1, rhs_hi = 1, xp = 1;
  for (std::size_t k = 0; k < commit_lo.size(); ++k) {
    rhs_lo = commit_mul(rhs_lo, commit_pow(commit_lo[k], xp));
    rhs_hi = commit_mul(rhs_hi, commit_pow(commit_hi[k], xp));
    xp = field_mul(xp, share.x);
  }
  return commit_pow(kCommitGen, share.y_lo) == rhs_lo &&
         commit_pow(kCommitGen, share.y_hi) == rhs_hi;
}

std::uint64_t reconstruct(std::span<const Share> shares, std::size_t t) {
  APPFL_CHECK_MSG(t >= 2, "threshold must be at least 2, got " << t);
  APPFL_CHECK_MSG(shares.size() >= t,
                  "need " << t << " shares to reconstruct, got "
                          << shares.size());
  std::uint64_t lo = 0, hi = 0;
  for (std::size_t j = 0; j < t; ++j) {
    APPFL_CHECK_MSG(shares[j].x != 0, "share evaluation point must not be 0");
    // Lagrange basis at x = 0: prod_{m != j} x_m / (x_m - x_j).
    std::uint64_t num = 1, den = 1;
    for (std::size_t m = 0; m < t; ++m) {
      if (m == j) continue;
      APPFL_CHECK_MSG(shares[m].x != shares[j].x,
                      "duplicate share point " << shares[j].x);
      num = field_mul(num, shares[m].x);
      den = field_mul(den, field_sub(shares[m].x, shares[j].x));
    }
    const std::uint64_t basis = field_mul(num, field_inv(den));
    lo = field_add(lo, field_mul(shares[j].y_lo, basis));
    hi = field_add(hi, field_mul(shares[j].y_hi, basis));
  }
  return (hi << 32) | lo;
}

}  // namespace appfl::dp::shamir
