#include "tensor/conv.hpp"

#include "util/check.hpp"

namespace appfl::tensor {

std::size_t Conv2dSpec::out_extent(std::size_t in_extent) const {
  APPFL_CHECK(kernel > 0 && stride > 0);
  const std::size_t padded = in_extent + 2 * padding;
  APPFL_CHECK_MSG(padded >= kernel, "conv kernel " << kernel
                                                   << " larger than padded input "
                                                   << padded);
  return (padded - kernel) / stride + 1;
}

namespace {

void check_forward_shapes(const Tensor& input, const Tensor& weight,
                          const Tensor& bias, const Conv2dSpec& spec) {
  APPFL_CHECK_MSG(input.rank() == 4,
                  "conv2d input must be NCHW, got " << to_string(input.shape()));
  APPFL_CHECK(weight.rank() == 4);
  APPFL_CHECK_MSG(input.dim(1) == spec.in_channels,
                  "conv2d input channels " << input.dim(1) << " != spec "
                                           << spec.in_channels);
  APPFL_CHECK(weight.dim(0) == spec.out_channels);
  APPFL_CHECK(weight.dim(1) == spec.in_channels);
  APPFL_CHECK(weight.dim(2) == spec.kernel && weight.dim(3) == spec.kernel);
  APPFL_CHECK(bias.rank() == 1 && bias.dim(0) == spec.out_channels);
}

}  // namespace

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec) {
  check_forward_shapes(input, weight, bias, spec);
  const std::size_t n = input.dim(0), cin = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  const std::size_t cout = spec.out_channels, k = spec.kernel;
  Tensor out({n, cout, oh, ow});

  const float* X = input.raw();
  const float* W = weight.raw();
  const float* B = bias.raw();
  float* Y = out.raw();

  const long pad = static_cast<long>(spec.padding);
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout; ++oc) {
      float* y = Y + ((img * cout + oc) * oh) * ow;
      const float b = B[oc];
      for (std::size_t i = 0; i < oh * ow; ++i) y[i] = b;
      for (std::size_t ic = 0; ic < cin; ++ic) {
        const float* x = X + ((img * cin + ic) * h) * w;
        const float* wk = W + ((oc * cin + ic) * k) * k;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long iy0 = static_cast<long>(oy * spec.stride) - pad;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long ix0 = static_cast<long>(ox * spec.stride) - pad;
            float acc = 0.0F;
            for (std::size_t ky = 0; ky < k; ++ky) {
              const long iy = iy0 + static_cast<long>(ky);
              if (iy < 0 || iy >= static_cast<long>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const long ix = ix0 + static_cast<long>(kx);
                if (ix < 0 || ix >= static_cast<long>(w)) continue;
                acc += x[iy * static_cast<long>(w) + ix] * wk[ky * k + kx];
              }
            }
            y[oy * ow + ox] += acc;
          }
        }
      }
    }
  }
  return out;
}

Tensor conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                             const Shape& input_shape, const Conv2dSpec& spec) {
  APPFL_CHECK(grad_output.rank() == 4 && weight.rank() == 4);
  APPFL_CHECK(input_shape.size() == 4);
  const std::size_t n = input_shape[0], cin = input_shape[1];
  const std::size_t h = input_shape[2], w = input_shape[3];
  const std::size_t cout = spec.out_channels, k = spec.kernel;
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  APPFL_CHECK(grad_output.dim(0) == n && grad_output.dim(1) == cout);
  APPFL_CHECK(grad_output.dim(2) == oh && grad_output.dim(3) == ow);

  Tensor grad_input(input_shape);
  const float* GY = grad_output.raw();
  const float* W = weight.raw();
  float* GX = grad_input.raw();
  const long pad = static_cast<long>(spec.padding);

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout; ++oc) {
      const float* gy = GY + ((img * cout + oc) * oh) * ow;
      for (std::size_t ic = 0; ic < cin; ++ic) {
        float* gx = GX + ((img * cin + ic) * h) * w;
        const float* wk = W + ((oc * cin + ic) * k) * k;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long iy0 = static_cast<long>(oy * spec.stride) - pad;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long ix0 = static_cast<long>(ox * spec.stride) - pad;
            const float g = gy[oy * ow + ox];
            if (g == 0.0F) continue;
            for (std::size_t ky = 0; ky < k; ++ky) {
              const long iy = iy0 + static_cast<long>(ky);
              if (iy < 0 || iy >= static_cast<long>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const long ix = ix0 + static_cast<long>(kx);
                if (ix < 0 || ix >= static_cast<long>(w)) continue;
                gx[iy * static_cast<long>(w) + ix] += g * wk[ky * k + kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor conv2d_backward_weight(const Tensor& grad_output, const Tensor& input,
                              const Conv2dSpec& spec) {
  APPFL_CHECK(grad_output.rank() == 4 && input.rank() == 4);
  const std::size_t n = input.dim(0), cin = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t cout = spec.out_channels, k = spec.kernel;
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  APPFL_CHECK(grad_output.dim(0) == n && grad_output.dim(1) == cout);
  APPFL_CHECK(grad_output.dim(2) == oh && grad_output.dim(3) == ow);

  Tensor grad_weight({cout, cin, k, k});
  const float* GY = grad_output.raw();
  const float* X = input.raw();
  float* GW = grad_weight.raw();
  const long pad = static_cast<long>(spec.padding);

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout; ++oc) {
      const float* gy = GY + ((img * cout + oc) * oh) * ow;
      for (std::size_t ic = 0; ic < cin; ++ic) {
        const float* x = X + ((img * cin + ic) * h) * w;
        float* gw = GW + ((oc * cin + ic) * k) * k;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long iy0 = static_cast<long>(oy * spec.stride) - pad;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long ix0 = static_cast<long>(ox * spec.stride) - pad;
            const float g = gy[oy * ow + ox];
            if (g == 0.0F) continue;
            for (std::size_t ky = 0; ky < k; ++ky) {
              const long iy = iy0 + static_cast<long>(ky);
              if (iy < 0 || iy >= static_cast<long>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const long ix = ix0 + static_cast<long>(kx);
                if (ix < 0 || ix >= static_cast<long>(w)) continue;
                gw[ky * k + kx] += g * x[iy * static_cast<long>(w) + ix];
              }
            }
          }
        }
      }
    }
  }
  return grad_weight;
}

Tensor conv2d_backward_bias(const Tensor& grad_output) {
  APPFL_CHECK(grad_output.rank() == 4);
  const std::size_t n = grad_output.dim(0), cout = grad_output.dim(1);
  const std::size_t spatial = grad_output.dim(2) * grad_output.dim(3);
  Tensor grad_bias({cout});
  const float* GY = grad_output.raw();
  float* GB = grad_bias.raw();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout; ++oc) {
      const float* gy = GY + (img * cout + oc) * spatial;
      float acc = 0.0F;
      for (std::size_t i = 0; i < spatial; ++i) acc += gy[i];
      GB[oc] += acc;
    }
  }
  return grad_bias;
}

}  // namespace appfl::tensor
