#include "tensor/accumulate.hpp"

#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define APPFL_ACC_X86 1
#include <immintrin.h>
#else
#define APPFL_ACC_X86 0
#endif

namespace appfl::tensor {

namespace {

/// Unaligned little-endian float32 load — compiles to a plain mov.
inline float load_f32(const std::uint8_t* p) {
  float v;
  std::memcpy(&v, p, 4);
  return v;
}

// -- Scalar kernels (the exact semantics; always available) -----------------

void axpy_scalar(float a, const std::uint8_t* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * load_f32(x + 4 * i);
}

void axpy2_scalar(float a1, const std::uint8_t* x1, float a2,
                  const std::uint8_t* x2, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = (y[i] + a1 * load_f32(x1 + 4 * i)) + a2 * load_f32(x2 + 4 * i);
  }
}

void consensus_scalar(float inv_p, float inv_rho, const std::uint8_t* z,
                      const std::uint8_t* l, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += inv_p * (load_f32(z + 4 * i) - inv_rho * load_f32(l + 4 * i));
  }
}

void consensus2_scalar(float inv_p, float inv_rho, const std::uint8_t* z1,
                       const std::uint8_t* l1, const std::uint8_t* z2,
                       const std::uint8_t* l2, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float t1 =
        inv_p * (load_f32(z1 + 4 * i) - inv_rho * load_f32(l1 + 4 * i));
    const float t2 =
        inv_p * (load_f32(z2 + 4 * i) - inv_rho * load_f32(l2 + 4 * i));
    out[i] = (out[i] + t1) + t2;
  }
}

void delta_scalar(double w, const std::uint8_t* z, const float* base,
                  double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += w * (static_cast<double>(load_f32(z + 4 * i)) -
                   static_cast<double>(base[i]));
  }
}

/// binary16 → float32, bit-for-bit the same mapping as comm::half_to_float
/// (duplicated here because tensor sits below comm in the link order).
inline float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = (std::uint32_t{h} & 0x8000U) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1FU;
  const std::uint32_t mant = h & 0x3FFU;
  std::uint32_t bits;
  if (exp == 0x1FU) {
    bits = sign | 0x7F800000U | (mant << 13);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      // Subnormal half: mant × 2⁻²⁴, exact in float32. Normalizing the
      // mantissa by hand keeps this integer-only (no libm in the kernel).
      std::uint32_t m = mant;
      std::uint32_t e = 113;  // biased float32 exponent of 2⁻¹⁴
      while ((m & 0x400U) == 0) {
        m <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((m & 0x3FFU) << 13);
    }
  } else {
    bits = sign | ((exp + 112U) << 23) | (mant << 13);  // rebias 15 → 127
  }
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

void widen_scalar(const std::uint8_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto h = static_cast<std::uint16_t>(
        std::uint16_t{src[2 * i]} | (std::uint16_t{src[2 * i + 1]} << 8));
    dst[i] = half_bits_to_float(h);
  }
}

void dual_scalar(float rho, const float* w, const float* z, float* l,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) l[i] += rho * (w[i] - z[i]);
}

// -- AVX2 kernels -----------------------------------------------------------
//
// Bit-identity rule: every vector op mirrors the scalar expression's own
// operation sequence — separate _mm256_mul_ps / _mm256_add_ps, never
// _mm256_fmadd_ps, because the scalar loops contract nothing. Tails run the
// scalar kernel on the remainder, which performs the identical per-element
// arithmetic.

#if APPFL_ACC_X86

__attribute__((target("avx2"))) void axpy_avx2(float a, const std::uint8_t* x,
                                               float* y, std::size_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv =
        _mm256_loadu_ps(reinterpret_cast<const float*>(x + 4 * i));
    const __m256 yv = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
  }
  axpy_scalar(a, x + 4 * i, y + i, n - i);
}

__attribute__((target("avx2"))) void axpy2_avx2(float a1,
                                                const std::uint8_t* x1,
                                                float a2,
                                                const std::uint8_t* x2,
                                                float* y, std::size_t n) {
  const __m256 a1v = _mm256_set1_ps(a1);
  const __m256 a2v = _mm256_set1_ps(a2);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 x1v =
        _mm256_loadu_ps(reinterpret_cast<const float*>(x1 + 4 * i));
    const __m256 x2v =
        _mm256_loadu_ps(reinterpret_cast<const float*>(x2 + 4 * i));
    __m256 yv = _mm256_loadu_ps(y + i);
    yv = _mm256_add_ps(yv, _mm256_mul_ps(a1v, x1v));
    yv = _mm256_add_ps(yv, _mm256_mul_ps(a2v, x2v));
    _mm256_storeu_ps(y + i, yv);
  }
  axpy2_scalar(a1, x1 + 4 * i, a2, x2 + 4 * i, y + i, n - i);
}

__attribute__((target("avx2"))) void consensus_avx2(
    float inv_p, float inv_rho, const std::uint8_t* z, const std::uint8_t* l,
    float* out, std::size_t n) {
  const __m256 pv = _mm256_set1_ps(inv_p);
  const __m256 rv = _mm256_set1_ps(inv_rho);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 zv =
        _mm256_loadu_ps(reinterpret_cast<const float*>(z + 4 * i));
    const __m256 lv =
        _mm256_loadu_ps(reinterpret_cast<const float*>(l + 4 * i));
    const __m256 t = _mm256_sub_ps(zv, _mm256_mul_ps(rv, lv));
    const __m256 ov = _mm256_loadu_ps(out + i);
    _mm256_storeu_ps(out + i, _mm256_add_ps(ov, _mm256_mul_ps(pv, t)));
  }
  consensus_scalar(inv_p, inv_rho, z + 4 * i, l + 4 * i, out + i, n - i);
}

__attribute__((target("avx2"))) void consensus2_avx2(
    float inv_p, float inv_rho, const std::uint8_t* z1, const std::uint8_t* l1,
    const std::uint8_t* z2, const std::uint8_t* l2, float* out, std::size_t n) {
  const __m256 pv = _mm256_set1_ps(inv_p);
  const __m256 rv = _mm256_set1_ps(inv_rho);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 z1v =
        _mm256_loadu_ps(reinterpret_cast<const float*>(z1 + 4 * i));
    const __m256 l1v =
        _mm256_loadu_ps(reinterpret_cast<const float*>(l1 + 4 * i));
    const __m256 z2v =
        _mm256_loadu_ps(reinterpret_cast<const float*>(z2 + 4 * i));
    const __m256 l2v =
        _mm256_loadu_ps(reinterpret_cast<const float*>(l2 + 4 * i));
    const __m256 t1 =
        _mm256_mul_ps(pv, _mm256_sub_ps(z1v, _mm256_mul_ps(rv, l1v)));
    const __m256 t2 =
        _mm256_mul_ps(pv, _mm256_sub_ps(z2v, _mm256_mul_ps(rv, l2v)));
    __m256 ov = _mm256_loadu_ps(out + i);
    ov = _mm256_add_ps(_mm256_add_ps(ov, t1), t2);
    _mm256_storeu_ps(out + i, ov);
  }
  consensus2_scalar(inv_p, inv_rho, z1 + 4 * i, l1 + 4 * i, z2 + 4 * i,
                    l2 + 4 * i, out + i, n - i);
}

__attribute__((target("avx2"))) void delta_avx2(double w,
                                                const std::uint8_t* z,
                                                const float* base, double* out,
                                                std::size_t n) {
  const __m256d wv = _mm256_set1_pd(w);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 zf = _mm_loadu_ps(reinterpret_cast<const float*>(z + 4 * i));
    const __m128 bf = _mm_loadu_ps(base + i);
    const __m256d d =
        _mm256_sub_pd(_mm256_cvtps_pd(zf), _mm256_cvtps_pd(bf));
    const __m256d ov = _mm256_loadu_pd(out + i);
    _mm256_storeu_pd(out + i, _mm256_add_pd(ov, _mm256_mul_pd(wv, d)));
  }
  delta_scalar(w, z + 4 * i, base + i, out + i, n - i);
}

__attribute__((target("avx2,f16c"))) void widen_f16c(const std::uint8_t* src,
                                                     float* dst,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i h;
    std::memcpy(&h, src + 2 * i, 16);
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  widen_scalar(src + 2 * i, dst + i, n - i);
}

__attribute__((target("avx2"))) void dual_avx2(float rho, const float* w,
                                               const float* z, float* l,
                                               std::size_t n) {
  const __m256 rv = _mm256_set1_ps(rho);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(w + i),
                                   _mm256_loadu_ps(z + i));
    const __m256 lv = _mm256_loadu_ps(l + i);
    _mm256_storeu_ps(l + i, _mm256_add_ps(lv, _mm256_mul_ps(rv, d)));
  }
  dual_scalar(rho, w + i, z + i, l + i, n - i);
}

#endif  // APPFL_ACC_X86

bool detect_acc_avx2() {
#if APPFL_ACC_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool detect_f16c() {
#if APPFL_ACC_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

}  // namespace

void axpy_f32_bytes(float a, const std::uint8_t* x, float* y, std::size_t n) {
#if APPFL_ACC_X86
  static const auto fn = detect_acc_avx2() ? axpy_avx2 : axpy_scalar;
#else
  static const auto fn = axpy_scalar;
#endif
  fn(a, x, y, n);
}

void axpy2_f32_bytes(float a1, const std::uint8_t* x1, float a2,
                     const std::uint8_t* x2, float* y, std::size_t n) {
#if APPFL_ACC_X86
  static const auto fn = detect_acc_avx2() ? axpy2_avx2 : axpy2_scalar;
#else
  static const auto fn = axpy2_scalar;
#endif
  fn(a1, x1, a2, x2, y, n);
}

void consensus2_f32_bytes(float inv_p, float inv_rho, const std::uint8_t* z1,
                          const std::uint8_t* l1, const std::uint8_t* z2,
                          const std::uint8_t* l2, float* out, std::size_t n) {
#if APPFL_ACC_X86
  static const auto fn = detect_acc_avx2() ? consensus2_avx2 : consensus2_scalar;
#else
  static const auto fn = consensus2_scalar;
#endif
  fn(inv_p, inv_rho, z1, l1, z2, l2, out, n);
}

void consensus_f32_bytes(float inv_p, float inv_rho, const std::uint8_t* z,
                         const std::uint8_t* l, float* out, std::size_t n) {
#if APPFL_ACC_X86
  static const auto fn = detect_acc_avx2() ? consensus_avx2 : consensus_scalar;
#else
  static const auto fn = consensus_scalar;
#endif
  fn(inv_p, inv_rho, z, l, out, n);
}

void delta_f32_bytes(double w, const std::uint8_t* z, const float* base,
                     double* out, std::size_t n) {
#if APPFL_ACC_X86
  static const auto fn = detect_acc_avx2() ? delta_avx2 : delta_scalar;
#else
  static const auto fn = delta_scalar;
#endif
  fn(w, z, base, out, n);
}

void widen_f16(const std::uint8_t* src, float* dst, std::size_t n) {
#if APPFL_ACC_X86
  static const auto fn = detect_f16c() ? widen_f16c : widen_scalar;
#else
  static const auto fn = widen_scalar;
#endif
  fn(src, dst, n);
}

void dual_step(float rho, const float* w, const float* z, float* l,
               std::size_t n) {
#if APPFL_ACC_X86
  static const auto fn = detect_acc_avx2() ? dual_avx2 : dual_scalar;
#else
  static const auto fn = dual_scalar;
#endif
  fn(rho, w, z, l, n);
}

bool accumulate_uses_avx2() { return detect_acc_avx2(); }

}  // namespace appfl::tensor
