#include "tensor/matmul.hpp"

#include "util/check.hpp"

namespace appfl::tensor {

namespace {
constexpr std::size_t kBlock = 64;  // fits three float blocks in L1/L2
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  APPFL_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                  "matmul expects rank-2 operands, got "
                      << to_string(a.shape()) << " x " << to_string(b.shape()));
  const std::size_t m = a.dim(0), k = a.dim(1);
  APPFL_CHECK_MSG(b.dim(0) == k, "matmul inner-dim mismatch "
                                     << to_string(a.shape()) << " x "
                                     << to_string(b.shape()));
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  // i-k-j ordering: unit-stride access on B and C rows; blocked over k to
  // keep the active B panel cache-resident.
  for (std::size_t k0 = 0; k0 < k; k0 += kBlock) {
    const std::size_t k1 = std::min(k0 + kBlock, k);
    for (std::size_t i = 0; i < m; ++i) {
      float* Ci = C + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float aik = A[i * k + kk];
        if (aik == 0.0F) continue;
        const float* Bk = B + kk * n;
        for (std::size_t j = 0; j < n; ++j) Ci[j] += aik * Bk[j];
      }
    }
  }
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  APPFL_CHECK(a.rank() == 2 && b.rank() == 2);
  const std::size_t m = a.dim(0), k = a.dim(1);
  APPFL_CHECK_MSG(b.dim(1) == k, "matmul_bt inner-dim mismatch "
                                     << to_string(a.shape()) << " x "
                                     << to_string(b.shape()) << "^T");
  const std::size_t n = b.dim(0);
  Tensor c({m, n});
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  // Both A and B rows are unit-stride: a plain dot product per (i, j).
  for (std::size_t i = 0; i < m; ++i) {
    const float* Ai = A + i * k;
    float* Ci = C + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* Bj = B + j * k;
      float acc = 0.0F;
      for (std::size_t kk = 0; kk < k; ++kk) acc += Ai[kk] * Bj[kk];
      Ci[j] = acc;
    }
  }
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  APPFL_CHECK(a.rank() == 2 && b.rank() == 2);
  const std::size_t k = a.dim(0), m = a.dim(1);
  APPFL_CHECK_MSG(b.dim(0) == k, "matmul_at inner-dim mismatch "
                                     << to_string(a.shape()) << "^T x "
                                     << to_string(b.shape()));
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  const float* A = a.raw();
  const float* B = b.raw();
  float* C = c.raw();
  // k outermost: each step is a rank-1 update with unit-stride rows.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* Ak = A + kk * m;
    const float* Bk = B + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = Ak[i];
      if (aki == 0.0F) continue;
      float* Ci = C + i * n;
      for (std::size_t j = 0; j < n; ++j) Ci[j] += aki * Bk[j];
    }
  }
  return c;
}

}  // namespace appfl::tensor
