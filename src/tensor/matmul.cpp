#include "tensor/matmul.hpp"

#include "tensor/gemm.hpp"
#include "util/check.hpp"

namespace appfl::tensor {

namespace {

/// Shape-checks one of the three variants and returns {m, k, n}.
struct Dims {
  std::size_t m, k, n;
};

Dims check_matmul(const Tensor& a, const Tensor& b) {
  APPFL_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                  "matmul expects rank-2 operands, got "
                      << to_string(a.shape()) << " x " << to_string(b.shape()));
  APPFL_CHECK_MSG(b.dim(0) == a.dim(1), "matmul inner-dim mismatch "
                                            << to_string(a.shape()) << " x "
                                            << to_string(b.shape()));
  return {a.dim(0), a.dim(1), b.dim(1)};
}

Dims check_matmul_bt(const Tensor& a, const Tensor& b) {
  APPFL_CHECK(a.rank() == 2 && b.rank() == 2);
  APPFL_CHECK_MSG(b.dim(1) == a.dim(1), "matmul_bt inner-dim mismatch "
                                            << to_string(a.shape()) << " x "
                                            << to_string(b.shape()) << "^T");
  return {a.dim(0), a.dim(1), b.dim(0)};
}

Dims check_matmul_at(const Tensor& a, const Tensor& b) {
  APPFL_CHECK(a.rank() == 2 && b.rank() == 2);
  APPFL_CHECK_MSG(b.dim(0) == a.dim(0), "matmul_at inner-dim mismatch "
                                            << to_string(a.shape()) << "^T x "
                                            << to_string(b.shape()));
  return {a.dim(1), a.dim(0), b.dim(1)};
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  const Dims d = check_matmul(a, b);
  Tensor c({d.m, d.n});
  gemm(Trans::kNo, Trans::kNo, d.m, d.n, d.k, a.raw(), d.k, b.raw(), d.n,
       c.raw());
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  const Dims d = check_matmul_bt(a, b);
  Tensor c({d.m, d.n});
  gemm(Trans::kNo, Trans::kYes, d.m, d.n, d.k, a.raw(), d.k, b.raw(), d.k,
       c.raw());
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  const Dims d = check_matmul_at(a, b);
  Tensor c({d.m, d.n});
  gemm(Trans::kYes, Trans::kNo, d.m, d.n, d.k, a.raw(), d.m, b.raw(), d.n,
       c.raw());
  return c;
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  const Dims d = check_matmul(a, b);
  Tensor c({d.m, d.n});
  gemm_reference(Trans::kNo, Trans::kNo, d.m, d.n, d.k, a.raw(), d.k, b.raw(),
                 d.n, c.raw());
  return c;
}

Tensor matmul_bt_reference(const Tensor& a, const Tensor& b) {
  const Dims d = check_matmul_bt(a, b);
  Tensor c({d.m, d.n});
  gemm_reference(Trans::kNo, Trans::kYes, d.m, d.n, d.k, a.raw(), d.k,
                 b.raw(), d.k, c.raw());
  return c;
}

Tensor matmul_at_reference(const Tensor& a, const Tensor& b) {
  const Dims d = check_matmul_at(a, b);
  Tensor c({d.m, d.n});
  gemm_reference(Trans::kYes, Trans::kNo, d.m, d.n, d.k, a.raw(), d.m,
                 b.raw(), d.n, c.raw());
  return c;
}

}  // namespace appfl::tensor
