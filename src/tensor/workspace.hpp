// Thread-local workspace arena for kernel scratch buffers.
//
// The GEMM engine and the im2col convolution path need large transient
// buffers (packed A/B panels, the [N·OH·OW, Cin·K·K] patch matrix) on every
// layer of every local step. Allocating them fresh each call dominates the
// small-model profiles the federated experiments run at, so each thread
// keeps a grow-only arena: a buffer is requested by slot id, kept alive for
// the thread's lifetime, and reused by every subsequent kernel call that
// asks for the same slot. Buffers only ever grow; release() returns the
// memory (used by tests and by long-lived worker shutdown paths).
//
// Slots are coarse role ids, not per-callsite keys: two live buffers must
// use different slots, and a kernel must finish with a slot before any
// routine it calls acquires the same slot. The engine's usage is layered so
// this holds: pack buffers (A/B) are only live inside a GEMM, the im2col
// and auxiliary matrices only inside one conv kernel, and nested GEMMs
// running on the same thread (serial fallback) use the pack slots only.
#pragma once

#include <cstddef>
#include <vector>

namespace appfl::tensor {

/// Well-known arena slots. Kept small and enumerated here so disjointness
/// is auditable in one place.
inline constexpr std::size_t kWsPackA = 0;    // GEMM packed A panels
inline constexpr std::size_t kWsPackB = 1;    // GEMM packed B panels
inline constexpr std::size_t kWsIm2col = 2;   // conv patch / d_column matrix
inline constexpr std::size_t kWsGemmAux = 3;  // conv g_mat / out_mat
inline constexpr std::size_t kWorkspaceSlots = 4;

class Workspace {
 public:
  /// Returns a buffer of at least `count` floats for `slot`, growing the
  /// slot if needed. Contents are unspecified (previous uses of the slot
  /// leak through); callers must fully overwrite what they read.
  float* floats(std::size_t slot, std::size_t count);

  /// Total bytes currently reserved across all slots.
  std::size_t bytes_reserved() const;

  /// Number of grow events since construction/release — a reuse diagnostic:
  /// steady-state kernel loops must not increase it.
  std::size_t allocations() const { return allocations_; }

  /// Frees all backing memory (capacity drops to zero; counters reset).
  void release();

  /// The calling thread's arena. Worker threads of the kernel pool each
  /// get their own, which is what amortizes pack-buffer allocation across
  /// layers and local steps.
  static Workspace& tls();

 private:
  std::vector<std::vector<float>> slots_{kWorkspaceSlots};
  std::size_t allocations_ = 0;
};

}  // namespace appfl::tensor
