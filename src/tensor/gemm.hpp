// Kernel execution engine: one packed, register-tiled GEMM driver behind
// all dense matrix products (matmul / matmul_bt / matmul_at and the im2col
// convolution lowering).
//
// The engine has two backends:
//  - kReference: the original cache-blocked scalar loops, kept as the
//    always-available correctness baseline (and the fast path for tiny
//    products where packing overhead dominates).
//  - kTiled: BLIS-style five-loop GEMM. A and B are packed into contiguous
//    panels (A in MR-row panels, B in NR-column panels, zero-padded at the
//    edges), and a 6×16 register-tile micro-kernel runs the unrolled
//    FMA-friendly inner loop. On x86-64 with AVX2+FMA an intrinsics
//    micro-kernel is selected at runtime; elsewhere a portable fixed-tile
//    kernel is used. Row panels are distributed over a shared process-wide
//    kernel ThreadPool; calls arriving from inside any pool worker (e.g.
//    the runner's per-client parallel_for) fall back to serial execution
//    (see ThreadPool::on_worker_thread) so nested parallelism never
//    oversubscribes or deadlocks.
//
// Backend and thread count come from the process-wide KernelConfig, seeded
// from the APPFL_KERNEL_BACKEND / APPFL_KERNEL_THREADS environment
// variables and settable programmatically (RunConfig plumbs them through
// the runner). Results are bitwise deterministic for a fixed backend on a
// fixed machine regardless of thread count: work is split along C's rows,
// every C element is accumulated in the same order by the same micro-kernel
// no matter which thread owns it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace appfl::util {
class ThreadPool;
}  // namespace appfl::util

namespace appfl::tensor {

enum class KernelBackend {
  kReference,  // original scalar loops (correctness baseline)
  kTiled,      // packed + register-tiled + (optionally) parallel
};

std::string to_string(KernelBackend backend);

/// Parses "reference" / "tiled"; throws appfl::Error otherwise.
KernelBackend parse_kernel_backend(const std::string& name);

struct KernelConfig {
  KernelBackend backend = KernelBackend::kTiled;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

/// Current process-wide engine configuration. First call seeds it from the
/// environment (APPFL_KERNEL_BACKEND=reference|tiled,
/// APPFL_KERNEL_THREADS=<n>).
KernelConfig kernel_config();

void set_kernel_config(const KernelConfig& config);

/// RunConfig-level plumbing: backend "auto" keeps the current setting,
/// threads 0 keeps the current setting. Throws on an unknown backend name.
void apply_kernel_config(const std::string& backend, std::size_t threads);

/// Operand transposition for the raw driver. Storage is always row-major;
/// kYes means the logical operand is the transpose of what is stored.
enum class Trans { kNo, kYes };

/// C[m,n] = op(A)·op(B), overwriting C. `lda`/`ldb` are the row strides of
/// the *stored* matrices: op==kNo stores m×k (lda=k-ish), op==kYes stores
/// k×m (lda=m-ish). Dispatches on kernel_config().backend, with tiny
/// products routed to the reference loops regardless.
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c);

/// The reference loops, callable directly (tests, benchmarks).
void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, const float* a, std::size_t lda,
                    const float* b, std::size_t ldb, float* c);

/// The tiled path, callable directly regardless of configured backend.
void gemm_tiled(Trans ta, Trans tb, std::size_t m, std::size_t n,
                std::size_t k, const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float* c);

/// The process-wide kernel ThreadPool, (re)built lazily to the configured
/// size (kernel_config().threads, 0 = hardware concurrency). Shared by the
/// GEMM driver, the comm data path (chunked CRC32) and the deterministic
/// aggregation reductions so the process never runs more than one set of
/// compute workers. Callers must consult ThreadPool::on_worker_thread()
/// first and fall back to serial execution when already inside a worker.
std::shared_ptr<util::ThreadPool> kernel_pool();

/// Number of row-panel chunks the most recent gemm on the calling thread
/// fanned out (1 = ran serially). Diagnostic for the nested-parallelism
/// tests: inside a pool worker this must stay 1.
std::size_t last_gemm_chunks();

/// True when the selected micro-kernel uses AVX2+FMA intrinsics (runtime
/// CPU dispatch succeeded). Informational — shows up in benchmark output.
bool gemm_uses_avx2();

}  // namespace appfl::tensor
