#include "tensor/pool.hpp"

#include "util/check.hpp"

namespace appfl::tensor {

std::size_t MaxPool2dSpec::out_extent(std::size_t in_extent) const {
  APPFL_CHECK(kernel > 0 && stride > 0);
  APPFL_CHECK_MSG(in_extent >= kernel,
                  "maxpool kernel " << kernel << " larger than input "
                                    << in_extent);
  return (in_extent - kernel) / stride + 1;
}

MaxPoolResult maxpool2d_forward(const Tensor& input, const MaxPool2dSpec& spec) {
  APPFL_CHECK_MSG(input.rank() == 4,
                  "maxpool2d input must be NCHW, got "
                      << to_string(input.shape()));
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);

  MaxPoolResult result{Tensor({n, c, oh, ow}), {}};
  result.argmax.resize(n * c * oh * ow);

  const float* X = input.raw();
  float* Y = result.output.raw();
  std::size_t* AM = result.argmax.data();

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t plane = (img * c + ch) * h * w;
      const float* x = X + plane;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const std::size_t iy0 = oy * spec.stride;
          const std::size_t ix0 = ox * spec.stride;
          float best = x[iy0 * w + ix0];
          std::size_t best_idx = iy0 * w + ix0;
          for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
            for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
              const std::size_t idx = (iy0 + ky) * w + (ix0 + kx);
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = ((img * c + ch) * oh + oy) * ow + ox;
          Y[out_idx] = best;
          AM[out_idx] = plane + best_idx;
        }
      }
    }
  }
  return result;
}

Tensor maxpool2d_backward(const Tensor& grad_output,
                          const std::vector<std::size_t>& argmax,
                          const Shape& input_shape) {
  APPFL_CHECK(grad_output.size() == argmax.size());
  Tensor grad_input(input_shape);
  float* GX = grad_input.raw();
  const float* GY = grad_output.raw();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    APPFL_CHECK_MSG(argmax[i] < grad_input.size(),
                    "argmax index out of range: " << argmax[i]);
    GX[argmax[i]] += GY[i];
  }
  return grad_input;
}

}  // namespace appfl::tensor
