#include "tensor/im2col.hpp"

#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"
#include "util/check.hpp"

namespace appfl::tensor {

void im2col_into(const Tensor& input, const Conv2dSpec& spec, float* out) {
  APPFL_CHECK_MSG(input.rank() == 4, "im2col input must be NCHW, got "
                                         << to_string(input.shape()));
  APPFL_CHECK(input.dim(1) == spec.in_channels);
  const std::size_t n = input.dim(0), cin = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  const std::size_t k = spec.kernel;
  const std::size_t patch = cin * k * k;

  const float* X = input.raw();
  const long pad = static_cast<long>(spec.padding);

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const long iy0 = static_cast<long>(oy * spec.stride) - pad;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const long ix0 = static_cast<long>(ox * spec.stride) - pad;
        float* row = out + ((img * oh + oy) * ow + ox) * patch;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          const float* x = X + ((img * cin + ic) * h) * w;
          for (std::size_t ky = 0; ky < k; ++ky) {
            const long iy = iy0 + static_cast<long>(ky);
            for (std::size_t kx = 0; kx < k; ++kx) {
              const long ix = ix0 + static_cast<long>(kx);
              const bool inside = iy >= 0 && iy < static_cast<long>(h) &&
                                  ix >= 0 && ix < static_cast<long>(w);
              row[(ic * k + ky) * k + kx] =
                  inside ? x[iy * static_cast<long>(w) + ix] : 0.0F;
            }
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  APPFL_CHECK_MSG(input.rank() == 4, "im2col input must be NCHW, got "
                                         << to_string(input.shape()));
  APPFL_CHECK(input.dim(1) == spec.in_channels);
  const std::size_t n = input.dim(0);
  const std::size_t oh = spec.out_extent(input.dim(2));
  const std::size_t ow = spec.out_extent(input.dim(3));
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  Tensor columns({n * oh * ow, patch});
  im2col_into(input, spec, columns.raw());
  return columns;
}

Tensor col2im_from(const float* columns, const Shape& input_shape,
                   const Conv2dSpec& spec) {
  APPFL_CHECK(input_shape.size() == 4);
  const std::size_t n = input_shape[0], cin = input_shape[1];
  const std::size_t h = input_shape[2], w = input_shape[3];
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  const std::size_t k = spec.kernel;
  const std::size_t patch = cin * k * k;

  Tensor out(input_shape);
  float* X = out.raw();
  const long pad = static_cast<long>(spec.padding);

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const long iy0 = static_cast<long>(oy * spec.stride) - pad;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const long ix0 = static_cast<long>(ox * spec.stride) - pad;
        const float* row = columns + ((img * oh + oy) * ow + ox) * patch;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          float* x = X + ((img * cin + ic) * h) * w;
          for (std::size_t ky = 0; ky < k; ++ky) {
            const long iy = iy0 + static_cast<long>(ky);
            if (iy < 0 || iy >= static_cast<long>(h)) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const long ix = ix0 + static_cast<long>(kx);
              if (ix < 0 || ix >= static_cast<long>(w)) continue;
              x[iy * static_cast<long>(w) + ix] += row[(ic * k + ky) * k + kx];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor col2im(const Tensor& columns, const Shape& input_shape,
              const Conv2dSpec& spec) {
  APPFL_CHECK(input_shape.size() == 4);
  const std::size_t n = input_shape[0];
  const std::size_t oh = spec.out_extent(input_shape[2]);
  const std::size_t ow = spec.out_extent(input_shape[3]);
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  APPFL_CHECK_MSG(columns.rank() == 2 && columns.dim(0) == n * oh * ow &&
                      columns.dim(1) == patch,
                  "col2im got " << to_string(columns.shape()));
  return col2im_from(columns.raw(), input_shape, spec);
}

Tensor conv2d_forward_gemm(const Tensor& input, const Tensor& weight,
                           const Tensor& bias, const Conv2dSpec& spec) {
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  const std::size_t cout = spec.out_channels;
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t rows = n * oh * ow;
  APPFL_CHECK(weight.dim(0) == cout);
  APPFL_CHECK(bias.rank() == 1 && bias.dim(0) == cout);

  Workspace& ws = Workspace::tls();
  float* columns = ws.floats(kWsIm2col, rows * patch);
  im2col_into(input, spec, columns);

  // out_mat[row, oc] = Σ_patch col[row, patch]·W[oc, patch]  (= col · Wᵀ).
  float* out_mat = ws.floats(kWsGemmAux, rows * cout);
  gemm(Trans::kNo, Trans::kYes, rows, cout, patch, columns, patch,
       weight.raw(), patch, out_mat);

  // Reorder [N·OH·OW, Cout] → [N, Cout, OH, OW], adding the bias.
  Tensor out({n, cout, oh, ow});
  const float* B = bias.raw();
  float* Y = out.raw();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t pos = 0; pos < oh * ow; ++pos) {
      const float* src = out_mat + (img * oh * ow + pos) * cout;
      for (std::size_t oc = 0; oc < cout; ++oc) {
        Y[(img * cout + oc) * oh * ow + pos] = src[oc] + B[oc];
      }
    }
  }
  return out;
}

namespace {

/// Reorders grad_output [N, Cout, OH, OW] into the GEMM layout
/// [N·OH·OW, Cout] used by the forward path, into a workspace buffer.
float* grad_output_as_matrix(const Tensor& grad_output, Workspace& ws) {
  const std::size_t n = grad_output.dim(0), cout = grad_output.dim(1);
  const std::size_t spatial = grad_output.dim(2) * grad_output.dim(3);
  float* mat = ws.floats(kWsGemmAux, n * spatial * cout);
  const float* G = grad_output.raw();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout; ++oc) {
      const float* src = G + (img * cout + oc) * spatial;
      for (std::size_t pos = 0; pos < spatial; ++pos) {
        mat[(img * spatial + pos) * cout + oc] = src[pos];
      }
    }
  }
  return mat;
}

}  // namespace

Tensor conv2d_backward_weight_gemm(const Tensor& grad_output,
                                   const Tensor& input,
                                   const Conv2dSpec& spec) {
  const std::size_t cout = spec.out_channels;
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t rows =
      grad_output.dim(0) * grad_output.dim(2) * grad_output.dim(3);

  Workspace& ws = Workspace::tls();
  float* columns = ws.floats(kWsIm2col, rows * patch);
  im2col_into(input, spec, columns);
  const float* g_mat = grad_output_as_matrix(grad_output, ws);

  // dW[oc, patch] = Σ_rows g[row, oc]·col[row, patch] = gᵀ·col.
  Tensor dw({cout, spec.in_channels, spec.kernel, spec.kernel});
  gemm(Trans::kYes, Trans::kNo, cout, patch, rows, g_mat, cout, columns,
       patch, dw.raw());
  return dw;
}

Tensor conv2d_backward_input_gemm(const Tensor& grad_output,
                                  const Tensor& weight,
                                  const Shape& input_shape,
                                  const Conv2dSpec& spec) {
  const std::size_t cout = spec.out_channels;
  const std::size_t patch = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t rows =
      grad_output.dim(0) * grad_output.dim(2) * grad_output.dim(3);

  Workspace& ws = Workspace::tls();
  const float* g_mat = grad_output_as_matrix(grad_output, ws);

  // dCol[row, patch] = Σ_oc g[row, oc]·W[oc, patch] = g·W.
  float* d_columns = ws.floats(kWsIm2col, rows * patch);
  gemm(Trans::kNo, Trans::kNo, rows, patch, cout, g_mat, cout, weight.raw(),
       patch, d_columns);
  return col2im_from(d_columns, input_shape, spec);
}

}  // namespace appfl::tensor
