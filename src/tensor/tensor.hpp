// Dense float32 tensor, row-major, always contiguous.
//
// This is the substrate standing in for torch.Tensor: value semantics
// (copying a Tensor copies its storage), explicit shapes, and checked
// indexing. All higher layers (nn, data, dp, fl algorithms) build on it.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "rng/rng.hpp"

namespace appfl::tensor {

/// Tensor shape: a list of extents. Rank 0 (scalar) is allowed.
using Shape = std::vector<std::size_t>;

/// Number of elements in a shape (product of extents; 1 for rank 0).
std::size_t numel(const Shape& shape);

/// Human-readable shape, e.g. "[4, 1, 28, 28]".
std::string to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty rank-1 tensor of size 0.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with explicit contents (size must match).
  Tensor(Shape shape, std::vector<float> values);

  // -- Factories ------------------------------------------------------------

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);

  /// I.i.d. N(0, stddev) entries.
  static Tensor randn(Shape shape, rng::Rng& rng, float stddev = 1.0F);

  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, rng::Rng& rng, float lo, float hi);

  /// 1-D tensor from an initializer list (convenience for tests).
  static Tensor from(std::initializer_list<float> values);

  // -- Introspection ---------------------------------------------------------

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  // -- Element access (checked) ----------------------------------------------

  float& operator[](std::size_t flat_index);
  float operator[](std::size_t flat_index) const;

  /// N-d indexing, e.g. t.at({n, c, h, w}).
  float& at(std::initializer_list<std::size_t> idx);
  float at(std::initializer_list<std::size_t> idx) const;

  // -- Mutation ---------------------------------------------------------------

  void fill(float value);

  /// Reinterprets the buffer with a new shape of equal numel (no copy).
  void reshape(Shape new_shape);

  /// Returns a reshaped copy.
  Tensor reshaped(Shape new_shape) const;

  /// True if shapes and all elements are exactly equal.
  bool equals(const Tensor& other) const;

  /// True if shapes match and elements differ by at most `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5F) const;

 private:
  std::size_t flat_offset(std::initializer_list<std::size_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace appfl::tensor
