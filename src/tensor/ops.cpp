#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace appfl::tensor {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  APPFL_CHECK_MSG(a.shape() == b.shape(),
                  op << ": shape mismatch " << to_string(a.shape()) << " vs "
                     << to_string(b.shape()));
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  auto od = out.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] -= bd[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  auto od = out.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] *= bd[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  auto ad = a.data();
  auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) ad[i] += bd[i];
}

void scale_inplace(Tensor& a, float s) {
  for (auto& v : a.data()) v *= s;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  APPFL_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(float alpha, std::span<float> x) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  APPFL_CHECK(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double norm2(std::span<const float> x) { return std::sqrt(dot(x, x)); }

double norm1(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += std::abs(static_cast<double>(v));
  return acc;
}

double norm_inf(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc = std::max(acc, std::abs(static_cast<double>(v)));
  return acc;
}

void copy(std::span<const float> src, std::span<float> dst) {
  APPFL_CHECK(src.size() == dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

void zero(std::span<float> x) { std::fill(x.begin(), x.end(), 0.0F); }

float clip_norm(std::span<float> x, float max_norm) {
  APPFL_CHECK(max_norm > 0.0F);
  const double n = norm2(x);
  if (n <= static_cast<double>(max_norm) || n == 0.0) return 1.0F;
  const float factor = static_cast<float>(static_cast<double>(max_norm) / n);
  scal(factor, x);
  return factor;
}

double sum(const Tensor& t) {
  double acc = 0.0;
  for (float v : t.data()) acc += v;
  return acc;
}

double mean(const Tensor& t) {
  APPFL_CHECK(t.size() > 0);
  return sum(t) / static_cast<double>(t.size());
}

std::vector<std::size_t> argmax_rows(const Tensor& t) {
  APPFL_CHECK_MSG(t.rank() == 2, "argmax_rows expects rank 2, got "
                                     << to_string(t.shape()));
  const std::size_t rows = t.dim(0);
  const std::size_t cols = t.dim(1);
  APPFL_CHECK(cols > 0);
  std::vector<std::size_t> out(rows);
  auto d = t.data();
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t best = 0;
    float best_v = d[r * cols];
    for (std::size_t c = 1; c < cols; ++c) {
      const float v = d[r * cols + c];
      if (v > best_v) {
        best_v = v;
        best = c;
      }
    }
    out[r] = best;
  }
  return out;
}

Tensor softmax_rows(const Tensor& t) {
  APPFL_CHECK_MSG(t.rank() == 2, "softmax_rows expects rank 2, got "
                                     << to_string(t.shape()));
  const std::size_t rows = t.dim(0);
  const std::size_t cols = t.dim(1);
  Tensor out = t;
  auto d = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = d.data() + r * cols;
    float mx = row[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    double z = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      z += row[c];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (std::size_t c = 0; c < cols; ++c) row[c] *= inv;
  }
  return out;
}

Tensor relu(const Tensor& t) {
  Tensor out = t;
  for (auto& v : out.data()) v = std::max(v, 0.0F);
  return out;
}

}  // namespace appfl::tensor
