// im2col/col2im and the GEMM-based convolution path.
//
// The classic HPC formulation: lower the convolution to a matrix multiply
// by unrolling input patches into rows ("im2col"), then run the kernel
// engine's GEMM (gemm.hpp). The patch matrix, the reordered gradient
// matrix, and the GEMM output all live in the calling thread's workspace
// arena (workspace.hpp), so repeated conv calls — every layer of every
// local step — reuse one allocation per thread instead of heap-allocating
// a fresh [N·OH·OW, Cin·K·K] matrix each time. Produces results equal to
// the direct kernels in conv.hpp within float tolerance; equivalence is
// pinned by tests, and micro_substrate compares their throughput.
#pragma once

#include "tensor/conv.hpp"
#include "tensor/tensor.hpp"

namespace appfl::tensor {

/// Unrolls input [N, Cin, H, W] into a patch matrix
/// [N·OH·OW, Cin·K·K]; row (n, oy, ox) holds the receptive field of that
/// output position (zero-padded out-of-bounds reads).
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

/// Allocation-free flavor: writes the patch matrix into `out`, which must
/// hold N·OH·OW·Cin·K·K floats (typically a workspace buffer).
void im2col_into(const Tensor& input, const Conv2dSpec& spec, float* out);

/// Inverse scatter-add of im2col: folds a patch-matrix gradient
/// [N·OH·OW, Cin·K·K] back into an input gradient [N, Cin, H, W].
Tensor col2im(const Tensor& columns, const Shape& input_shape,
              const Conv2dSpec& spec);

/// col2im from a raw patch-matrix buffer of the same layout.
Tensor col2im_from(const float* columns, const Shape& input_shape,
                   const Conv2dSpec& spec);

/// GEMM-path forward: identical contract to conv2d_forward.
Tensor conv2d_forward_gemm(const Tensor& input, const Tensor& weight,
                           const Tensor& bias, const Conv2dSpec& spec);

/// GEMM-path backward w.r.t. weight: identical contract to
/// conv2d_backward_weight.
Tensor conv2d_backward_weight_gemm(const Tensor& grad_output,
                                   const Tensor& input, const Conv2dSpec& spec);

/// GEMM-path backward w.r.t. input: identical contract to
/// conv2d_backward_input.
Tensor conv2d_backward_input_gemm(const Tensor& grad_output,
                                  const Tensor& weight,
                                  const Shape& input_shape,
                                  const Conv2dSpec& spec);

}  // namespace appfl::tensor
