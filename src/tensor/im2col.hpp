// im2col/col2im and the GEMM-based convolution path.
//
// The classic HPC formulation: lower the convolution to a matrix multiply
// by unrolling input patches into rows ("im2col"), then run the cache-
// blocked GEMM kernels. Produces bit-comparable results to the direct
// kernels in conv.hpp (same accumulation order per output within float
// tolerance); equivalence is pinned by tests, and micro_substrate compares
// their throughput.
#pragma once

#include "tensor/conv.hpp"
#include "tensor/tensor.hpp"

namespace appfl::tensor {

/// Unrolls input [N, Cin, H, W] into a patch matrix
/// [N·OH·OW, Cin·K·K]; row (n, oy, ox) holds the receptive field of that
/// output position (zero-padded out-of-bounds reads).
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

/// Inverse scatter-add of im2col: folds a patch-matrix gradient
/// [N·OH·OW, Cin·K·K] back into an input gradient [N, Cin, H, W].
Tensor col2im(const Tensor& columns, const Shape& input_shape,
              const Conv2dSpec& spec);

/// GEMM-path forward: identical contract to conv2d_forward.
Tensor conv2d_forward_gemm(const Tensor& input, const Tensor& weight,
                           const Tensor& bias, const Conv2dSpec& spec);

/// GEMM-path backward w.r.t. weight: identical contract to
/// conv2d_backward_weight.
Tensor conv2d_backward_weight_gemm(const Tensor& grad_output,
                                   const Tensor& input, const Conv2dSpec& spec);

/// GEMM-path backward w.r.t. input: identical contract to
/// conv2d_backward_input.
Tensor conv2d_backward_input_gemm(const Tensor& grad_output,
                                  const Tensor& weight,
                                  const Shape& input_shape,
                                  const Conv2dSpec& spec);

}  // namespace appfl::tensor
