#include "tensor/workspace.hpp"

#include "util/check.hpp"

namespace appfl::tensor {

float* Workspace::floats(std::size_t slot, std::size_t count) {
  APPFL_CHECK_MSG(slot < slots_.size(), "workspace slot " << slot
                                                          << " out of range");
  auto& buf = slots_[slot];
  if (buf.size() < count) {
    buf.resize(count);
    ++allocations_;
  }
  return buf.data();
}

std::size_t Workspace::bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& buf : slots_) total += buf.capacity() * sizeof(float);
  return total;
}

void Workspace::release() {
  // swap-with-fresh, not assign: assignment may keep the old capacity.
  std::vector<std::vector<float>>(kWorkspaceSlots).swap(slots_);
  allocations_ = 0;
}

Workspace& Workspace::tls() {
  thread_local Workspace arena;
  return arena;
}

}  // namespace appfl::tensor
