// Streaming-accumulate kernels for the fused decode→aggregate data path.
//
// The server-side reductions (core/aggregate.hpp) historically ran over
// already-decoded float vectors: the comm layer copied every wire payload
// into a fresh std::vector<float> and the aggregate loop then re-read the
// same bytes — two full passes (plus an allocation) over hundreds of MB at
// FEMNIST scale. These kernels consume the wire bytes directly: each one
// reads unaligned little-endian float32 payloads (or widens IEEE binary16
// in place) and accumulates into the caller's output in a single pass.
//
// Dispatch follows the GEMM engine's pattern (tensor/gemm.cpp): a scalar
// loop defines the exact semantics, and on x86-64 an AVX2 variant is
// selected once at runtime via __builtin_cpu_supports. The AVX2 kernels
// mirror the scalar per-element operation order with SEPARATE multiply and
// add (never FMA) so every result is bit-identical to the scalar loop —
// the same discipline that keeps parallel aggregation bit-identical to the
// serial reference at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>

namespace appfl::tensor {

/// y[i] += a · x[i] over n unaligned little-endian float32s at `x` — the
/// weighted_sum / FedAvg inner loop, fed straight from a wire buffer.
void axpy_f32_bytes(float a, const std::uint8_t* x, float* y, std::size_t n);

/// y[i] = ((y[i] + a1 · x1[i]) + a2 · x2[i]) — two axpy_f32_bytes sweeps in
/// one pass over y. Bit-identical to the two single sweeps (same rounded
/// operation sequence per element); y is loaded and stored once instead of
/// twice, which matters when hundreds of participants stream through the
/// same cache-resident output block.
void axpy2_f32_bytes(float a1, const std::uint8_t* x1, float a2,
                     const std::uint8_t* x2, float* y, std::size_t n);

/// out[i] += inv_p · (z[i] − inv_rho · l[i]) over unaligned float32 bytes —
/// the IIADMM/ICEADMM consensus line, fed from two wire payloads.
void consensus_f32_bytes(float inv_p, float inv_rho, const std::uint8_t* z,
                         const std::uint8_t* l, float* out, std::size_t n);

/// Two consensus_f32_bytes sweeps (participants p then p+1) fused into one
/// pass over out: out[i] = ((out[i] + t_p[i]) + t_{p+1}[i]). Bit-identical
/// to calling the single-term kernel twice in that order; halves the
/// output-block load/store traffic of the P-way consensus reduction.
void consensus2_f32_bytes(float inv_p, float inv_rho, const std::uint8_t* z1,
                          const std::uint8_t* l1, const std::uint8_t* z2,
                          const std::uint8_t* l2, float* out, std::size_t n);

/// out[i] += w · (double(z[i]) − double(base[i])) over unaligned float32
/// bytes — FedOpt's pseudo-gradient, accumulated in double.
void delta_f32_bytes(double w, const std::uint8_t* z, const float* base,
                     double* out, std::size_t n);

/// Widens n packed little-endian IEEE binary16 values at `src` to float32.
/// Bitwise identical to comm::half_to_float for every input, including
/// subnormals, ±inf, and NaN payloads (the hardware F16C conversion is the
/// exact IEEE widening, which that routine also implements).
void widen_f16(const std::uint8_t* src, float* dst, std::size_t n);

/// l[i] += rho · (w[i] − z[i]) — the server-side IIADMM dual replica step,
/// vectorized with the same separate mul/add ordering as the scalar loop.
void dual_step(float rho, const float* w, const float* z, float* l,
               std::size_t n);

/// True when the runtime CPU dispatch selected the AVX2 kernels
/// (informational — shows up in benchmark output).
bool accumulate_uses_avx2();

}  // namespace appfl::tensor
