#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/workspace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define APPFL_GEMM_X86 1
#include <immintrin.h>
#else
#define APPFL_GEMM_X86 0
#endif

namespace appfl::tensor {

namespace {

// Register tile and cache blocking. MR×NR is sized for 16 256-bit
// registers (12 accumulators + 2 B vectors + 1 broadcast + spare); KC keeps
// an A panel (MC×KC) plus the active B panel slice in L2; NC bounds the
// packed-B buffer to ~1 MiB of floats at KC=256.
constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;
constexpr std::size_t kKc = 256;
constexpr std::size_t kMc = 96;   // multiple of kMr
constexpr std::size_t kNc = 1024;  // multiple of kNr

// Below this many multiply-adds the pack/dispatch overhead beats any tiling
// win; route straight to the reference loops (32³ ≈ a small MLP layer).
constexpr std::size_t kTinyFlops = 32 * 32 * 32;

std::mutex g_mutex;
KernelConfig g_config;
bool g_env_loaded = false;
std::shared_ptr<util::ThreadPool> g_pool;  // the shared kernel pool

thread_local std::size_t t_last_chunks = 1;

KernelConfig load_env_config() {
  KernelConfig config;
  if (const char* backend = std::getenv("APPFL_KERNEL_BACKEND")) {
    config.backend = parse_kernel_backend(backend);
  }
  if (const char* threads = std::getenv("APPFL_KERNEL_THREADS")) {
    const long parsed = std::strtol(threads, nullptr, 10);
    if (parsed > 0) config.threads = static_cast<std::size_t>(parsed);
  }
  return config;
}

std::size_t resolved_threads(const KernelConfig& config) {
  if (config.threads > 0) return config.threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

/// The shared kernel pool, (re)built lazily to the configured size. Only
/// reached from non-worker threads (the oversubscription guard runs
/// first), so resizing cannot pull workers out from under a running gemm
/// on another pool thread; concurrent top-level callers share via the
/// shared_ptr copy.
std::shared_ptr<util::ThreadPool> acquire_pool(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_pool || g_pool->size() != threads) {
    g_pool = std::make_shared<util::ThreadPool>(threads);
  }
  return g_pool;
}

inline float elem_a(const float* a, std::size_t lda, Trans t, std::size_t i,
                    std::size_t p) {
  return t == Trans::kNo ? a[i * lda + p] : a[p * lda + i];
}

inline float elem_b(const float* b, std::size_t ldb, Trans t, std::size_t p,
                    std::size_t j) {
  return t == Trans::kNo ? b[p * ldb + j] : b[j * ldb + p];
}

// -- Packing ---------------------------------------------------------------

/// Packs op(A)[ic:ic+mc, pc:pc+kc] into kMr-row panels, p-major within a
/// panel (panel[p*kMr + r]), zero-padding the ragged last panel so the
/// micro-kernel never branches on row count.
void pack_a(const float* a, std::size_t lda, Trans ta, std::size_t ic,
            std::size_t mc, std::size_t pc, std::size_t kc, float* ap) {
  for (std::size_t ir = 0; ir < mc; ir += kMr) {
    const std::size_t mr = std::min(kMr, mc - ir);
    float* panel = ap + (ir / kMr) * kMr * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t r = 0; r < kMr; ++r) {
        panel[p * kMr + r] =
            r < mr ? elem_a(a, lda, ta, ic + ir + r, pc + p) : 0.0F;
      }
    }
  }
}

/// Packs op(B)[pc:pc+kc, jc:jc+nc] into kNr-column panels, p-major within a
/// panel (panel[p*kNr + c]), zero-padded like pack_a.
void pack_b(const float* b, std::size_t ldb, Trans tb, std::size_t pc,
            std::size_t kc, std::size_t jc, std::size_t nc, float* bp) {
  for (std::size_t jr = 0; jr < nc; jr += kNr) {
    const std::size_t nr = std::min(kNr, nc - jr);
    float* panel = bp + (jr / kNr) * kNr * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t c = 0; c < kNr; ++c) {
        panel[p * kNr + c] =
            c < nr ? elem_b(b, ldb, tb, pc + p, jc + jr + c) : 0.0F;
      }
    }
  }
}

// -- Micro-kernels ---------------------------------------------------------

/// Full-tile kernel type: C[r, c] (op)= Σ_p ap[p*kMr+r] · bp[p*kNr+c] for
/// the full kMr×kNr tile. `overwrite` selects C = acc vs C += acc (the
/// first / later KC blocks).
using MicroKernel = void (*)(std::size_t kc, const float* ap, const float* bp,
                             float* c, std::size_t ldc, bool overwrite);

void micro_kernel_portable(std::size_t kc, const float* ap, const float* bp,
                           float* c, std::size_t ldc, bool overwrite) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kMr;
    const float* b = bp + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float ar = a[r];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += ar * b[j];
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    float* cr = c + r * ldc;
    if (overwrite) {
      for (std::size_t j = 0; j < kNr; ++j) cr[j] = acc[r][j];
    } else {
      for (std::size_t j = 0; j < kNr; ++j) cr[j] += acc[r][j];
    }
  }
}

#if APPFL_GEMM_X86
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(
    std::size_t kc, const float* ap, const float* bp, float* c,
    std::size_t ldc, bool overwrite) {
  __m256 acc[kMr][2];
  for (std::size_t r = 0; r < kMr; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNr + 8);
    const float* a = ap + p * kMr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256 ar = _mm256_set1_ps(a[r]);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < kMr; ++r) {
    float* cr = c + r * ldc;
    if (overwrite) {
      _mm256_storeu_ps(cr, acc[r][0]);
      _mm256_storeu_ps(cr + 8, acc[r][1]);
    } else {
      _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc[r][0]));
      _mm256_storeu_ps(cr + 8,
                       _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc[r][1]));
    }
  }
}
#endif

bool detect_avx2() {
#if APPFL_GEMM_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

MicroKernel full_tile_kernel() {
#if APPFL_GEMM_X86
  static const MicroKernel kernel =
      detect_avx2() ? micro_kernel_avx2 : micro_kernel_portable;
#else
  static const MicroKernel kernel = micro_kernel_portable;
#endif
  return kernel;
}

/// Edge tiles: compute the padded full tile into a stack buffer, then copy
/// the valid mr×nr corner out. Runs the portable kernel — edges are a
/// vanishing fraction of the work.
void micro_kernel_edge(std::size_t kc, const float* ap, const float* bp,
                       std::size_t mr, std::size_t nr, float* c,
                       std::size_t ldc, bool overwrite) {
  float tile[kMr * kNr];
  micro_kernel_portable(kc, ap, bp, tile, kNr, /*overwrite=*/true);
  for (std::size_t r = 0; r < mr; ++r) {
    float* cr = c + r * ldc;
    const float* tr = tile + r * kNr;
    if (overwrite) {
      for (std::size_t j = 0; j < nr; ++j) cr[j] = tr[j];
    } else {
      for (std::size_t j = 0; j < nr; ++j) cr[j] += tr[j];
    }
  }
}

/// One MC×NC block of C against a packed A block and packed B panel set.
void macro_kernel(std::size_t mc, std::size_t nc, std::size_t kc,
                  const float* ap, const float* bp, float* c, std::size_t ldc,
                  bool overwrite) {
  const MicroKernel full = full_tile_kernel();
  for (std::size_t jr = 0; jr < nc; jr += kNr) {
    const std::size_t nr = std::min(kNr, nc - jr);
    const float* b_panel = bp + (jr / kNr) * kNr * kc;
    for (std::size_t ir = 0; ir < mc; ir += kMr) {
      const std::size_t mr = std::min(kMr, mc - ir);
      const float* a_panel = ap + (ir / kMr) * kMr * kc;
      float* c_tile = c + ir * ldc + jr;
      if (mr == kMr && nr == kNr) {
        full(kc, a_panel, b_panel, c_tile, ldc, overwrite);
      } else {
        micro_kernel_edge(kc, a_panel, b_panel, mr, nr, c_tile, ldc,
                          overwrite);
      }
    }
  }
}

inline std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Runs fn(block) for every MC row block, fanning out over the shared
/// kernel pool unless (a) there is nothing to split, (b) the engine is
/// configured serial, or (c) we are already inside a pool worker — the
/// oversubscription guard that makes kernel parallelism compose with the
/// runner's per-client parallel_for.
void run_row_blocks(std::size_t blocks,
                    const std::function<void(std::size_t)>& fn,
                    const KernelConfig& config) {
  const std::size_t threads = resolved_threads(config);
  const bool nested = util::ThreadPool::on_worker_thread();
  if (blocks <= 1 || threads <= 1 || nested) {
    for (std::size_t b = 0; b < blocks; ++b) fn(b);
    t_last_chunks = 1;
    return;
  }
  acquire_pool(threads)->parallel_for(blocks, fn);
  t_last_chunks = blocks;
}

}  // namespace

std::string to_string(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kReference:
      return "reference";
    case KernelBackend::kTiled:
      return "tiled";
  }
  return "?";
}

KernelBackend parse_kernel_backend(const std::string& name) {
  if (name == "reference") return KernelBackend::kReference;
  if (name == "tiled") return KernelBackend::kTiled;
  APPFL_CHECK_MSG(false, "unknown kernel backend '"
                             << name << "' (expected reference|tiled)");
  return KernelBackend::kTiled;  // unreachable
}

KernelConfig kernel_config() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_env_loaded) {
    g_config = load_env_config();
    g_env_loaded = true;
  }
  return g_config;
}

void set_kernel_config(const KernelConfig& config) {
  APPFL_CHECK_MSG(config.threads <= 1024,
                  "kernel threads " << config.threads << " is not sane");
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = config;
  g_env_loaded = true;
  // The pool is rebuilt lazily at the new size on next use.
}

void apply_kernel_config(const std::string& backend, std::size_t threads) {
  KernelConfig config = kernel_config();
  if (backend != "auto") config.backend = parse_kernel_backend(backend);
  if (threads > 0) config.threads = threads;
  set_kernel_config(config);
}

std::shared_ptr<util::ThreadPool> kernel_pool() {
  return acquire_pool(resolved_threads(kernel_config()));
}

std::size_t last_gemm_chunks() { return t_last_chunks; }

bool gemm_uses_avx2() {
#if APPFL_GEMM_X86
  return full_tile_kernel() == micro_kernel_avx2;
#else
  return false;
#endif
}

void gemm_reference(Trans ta, Trans tb, std::size_t m, std::size_t n,
                    std::size_t k, const float* a, std::size_t lda,
                    const float* b, std::size_t ldb, float* c) {
  if (ta == Trans::kNo && tb == Trans::kYes) {
    // Dot-product form: both operand rows are unit-stride.
    for (std::size_t i = 0; i < m; ++i) {
      const float* ai = a + i * lda;
      float* ci = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* bj = b + j * ldb;
        float acc = 0.0F;
        for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = acc;
      }
    }
    return;
  }
  std::fill(c, c + m * n, 0.0F);
  if (ta == Trans::kNo && tb == Trans::kNo) {
    // i-k-j, blocked over k: unit-stride on B and C rows.
    constexpr std::size_t kBlock = 64;
    for (std::size_t p0 = 0; p0 < k; p0 += kBlock) {
      const std::size_t p1 = std::min(p0 + kBlock, k);
      for (std::size_t i = 0; i < m; ++i) {
        const float* ai = a + i * lda;
        float* ci = c + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const float aip = ai[p];
          const float* bp = b + p * ldb;
          for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
        }
      }
    }
    return;
  }
  if (ta == Trans::kYes && tb == Trans::kNo) {
    // k outermost: rank-1 updates with unit-stride rows.
    for (std::size_t p = 0; p < k; ++p) {
      const float* ap = a + p * lda;
      const float* bp = b + p * ldb;
      for (std::size_t i = 0; i < m; ++i) {
        const float api = ap[i];
        float* ci = c + i * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
      }
    }
    return;
  }
  // (T, T): no current caller; plain accumulation via the accessors.
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < m; ++i) {
      const float api = elem_a(a, lda, ta, i, p);
      float* ci = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += api * elem_b(b, ldb, tb, p, j);
      }
    }
  }
}

void gemm_tiled(Trans ta, Trans tb, std::size_t m, std::size_t n,
                std::size_t k, const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float* c) {
  const KernelConfig config = kernel_config();
  Workspace& caller_ws = Workspace::tls();
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    const std::size_t b_panels = ceil_div(nc, kNr);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      // B is packed once per (jc, pc) on the calling thread and shared
      // read-only by all row-block workers.
      float* bp = caller_ws.floats(kWsPackB, b_panels * kNr * kc);
      pack_b(b, ldb, tb, pc, kc, jc, nc, bp);
      const bool overwrite = pc == 0;
      const std::size_t blocks = ceil_div(m, kMc);
      run_row_blocks(
          blocks,
          [&](std::size_t block) {
            const std::size_t ic = block * kMc;
            const std::size_t mc = std::min(kMc, m - ic);
            // Each worker packs A into its own thread-local arena, so pack
            // buffers are allocated once per thread, not once per call.
            float* ap = Workspace::tls().floats(
                kWsPackA, ceil_div(mc, kMr) * kMr * kc);
            pack_a(a, lda, ta, ic, mc, pc, kc, ap);
            macro_kernel(mc, nc, kc, ap, bp, c + ic * n + jc, n, overwrite);
          },
          config);
    }
  }
}

namespace {
// Kernel-time instruments, resolved lazily on the first metered call so a
// metrics-off process never touches the registry.
struct GemmInstruments {
  obs::Counter& calls = obs::MetricsRegistry::global().counter("kernel.gemm_calls");
  obs::Counter& flops = obs::MetricsRegistry::global().counter("kernel.gemm_flops");
  obs::Histogram& seconds =
      obs::MetricsRegistry::global().histogram("kernel.gemm_s", 1e-7, 10.0, 40);
};

GemmInstruments& gemm_instruments() {
  static GemmInstruments* in = new GemmInstruments();  // never destroyed
  return *in;
}
}  // namespace

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0.0F);
    return;
  }
  const bool timed = obs::metrics_on();
  const double t0 = timed ? obs::Tracer::global().now() : 0.0;
  const KernelConfig config = kernel_config();
  if (config.backend == KernelBackend::kReference || m * n * k < kTinyFlops) {
    t_last_chunks = 1;
    gemm_reference(ta, tb, m, n, k, a, lda, b, ldb, c);
  } else {
    gemm_tiled(ta, tb, m, n, k, a, lda, b, ldb, c);
  }
  if (timed) {
    GemmInstruments& in = gemm_instruments();
    in.calls.inc();
    in.flops.add(2 * static_cast<std::uint64_t>(m) * n * k);
    in.seconds.record(obs::Tracer::global().now() - t0);
  }
}

}  // namespace appfl::tensor
