// Elementwise and reduction operations on Tensors and flat float spans.
//
// The FL algorithms operate on flattened parameter vectors, so most of these
// have both a Tensor form (used by nn) and a span form (used by core/dp).
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.hpp"

namespace appfl::tensor {

// -- Elementwise (Tensor) -----------------------------------------------------

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
/// out = a − b.
Tensor sub(const Tensor& a, const Tensor& b);
/// out = a ⊙ b (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);
/// out = a · s.
Tensor scale(const Tensor& a, float s);

/// a += b.
void add_inplace(Tensor& a, const Tensor& b);
/// a *= s.
void scale_inplace(Tensor& a, float s);

// -- Flat-span BLAS-1 ----------------------------------------------------------

/// y ← y + alpha·x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);
/// x ← alpha·x.
void scal(float alpha, std::span<float> x);
/// Σ xᵢ·yᵢ.
double dot(std::span<const float> x, std::span<const float> y);
/// ‖x‖₂.
double norm2(std::span<const float> x);
/// ‖x‖₁.
double norm1(std::span<const float> x);
/// max |xᵢ|.
double norm_inf(std::span<const float> x);
/// dst ← src (sizes must match).
void copy(std::span<const float> src, std::span<float> dst);
/// x ← 0.
void zero(std::span<float> x);

/// Scales x so that ‖x‖₂ ≤ max_norm (the DP gradient clip). Returns the
/// factor applied (1.0 when no clipping happened).
float clip_norm(std::span<float> x, float max_norm);

// -- Reductions / rows ----------------------------------------------------------

/// Sum of all elements.
double sum(const Tensor& t);
/// Mean of all elements.
double mean(const Tensor& t);

/// Row-wise argmax of a [rows, cols] tensor (prediction extraction).
std::vector<std::size_t> argmax_rows(const Tensor& t);

/// Numerically stable row-wise softmax of a [rows, cols] tensor.
Tensor softmax_rows(const Tensor& t);

/// ReLU applied out of place.
Tensor relu(const Tensor& t);

}  // namespace appfl::tensor
