#include "tensor/serialize.hpp"

#include <cstring>

#include "util/check.hpp"

namespace appfl::tensor {

namespace {

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_u64(std::span<const std::uint8_t> bytes, std::size_t& off) {
  APPFL_CHECK_MSG(off + 8 <= bytes.size(), "truncated tensor header");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[off + i]} << (8 * i);
  off += 8;
  return v;
}

}  // namespace

std::size_t byte_size(const Tensor& t) {
  return 8 + 8 * t.rank() + 4 * t.size();
}

std::vector<std::uint8_t> to_bytes(const Tensor& t) {
  std::vector<std::uint8_t> out;
  out.reserve(byte_size(t));
  append_u64(out, t.rank());
  for (std::size_t d : t.shape()) append_u64(out, d);
  append_floats(out, t.data());
  return out;
}

Tensor from_bytes(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  const std::uint64_t rank = read_u64(bytes, off);
  APPFL_CHECK_MSG(rank <= 8, "implausible tensor rank " << rank);
  Shape shape(rank);
  for (auto& d : shape) d = read_u64(bytes, off);
  // Overflow-safe numel: the payload cannot exceed the buffer, so reject
  // any extent that would push the product past it (fuzzer find: a wire
  // shape like [2^40, 2^40] wrapped numel() to something tiny).
  const std::size_t max_count = bytes.size();
  std::size_t count = 1;
  for (std::size_t d : shape) {
    if (d == 0) {
      count = 0;
      break;
    }
    APPFL_CHECK_MSG(d <= max_count && count <= max_count / d,
                    "tensor shape " << to_string(shape)
                                    << " overflows the payload");
    count *= d;
  }
  std::vector<float> values = read_floats(bytes, off, count);
  APPFL_CHECK_MSG(off == bytes.size(),
                  "trailing bytes after tensor payload: " << bytes.size() - off);
  return Tensor(std::move(shape), std::move(values));
}

void append_floats(std::vector<std::uint8_t>& out, std::span<const float> v) {
  const std::size_t start = out.size();
  out.resize(start + 4 * v.size());
  std::memcpy(out.data() + start, v.data(), 4 * v.size());
}

std::vector<float> read_floats(std::span<const std::uint8_t> bytes,
                               std::size_t& offset, std::size_t count) {
  // Divide, don't multiply: 4·count can wrap for hostile counts.
  APPFL_CHECK_MSG(offset <= bytes.size() &&
                      count <= (bytes.size() - offset) / 4,
                  "truncated float payload: need " << count << " floats at "
                                                   << offset << ", have "
                                                   << bytes.size() << " bytes");
  std::vector<float> out(count);
  std::memcpy(out.data(), bytes.data() + offset, 4 * count);
  offset += 4 * count;
  return out;
}

}  // namespace appfl::tensor
