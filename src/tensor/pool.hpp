// 2-D max pooling (NCHW), forward with argmax capture and exact backward
// routing through the captured indices.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace appfl::tensor {

struct MaxPool2dSpec {
  std::size_t kernel = 2;
  std::size_t stride = 2;

  std::size_t out_extent(std::size_t in_extent) const;
};

struct MaxPoolResult {
  Tensor output;                        // [N, C, OH, OW]
  std::vector<std::size_t> argmax;      // flat input index per output element
};

/// Forward: input [N, C, H, W] → output + argmax indices for backward.
MaxPoolResult maxpool2d_forward(const Tensor& input, const MaxPool2dSpec& spec);

/// Backward: routes each grad_output element to its argmax input position.
Tensor maxpool2d_backward(const Tensor& grad_output,
                          const std::vector<std::size_t>& argmax,
                          const Shape& input_shape);

}  // namespace appfl::tensor
