// 2-D convolution kernels (NCHW layout), forward and backward.
//
// These are the compute core of the paper's CNN model (two conv layers).
// Direct loops (no im2col) — at the model sizes used by the experiments the
// working set fits in cache and the simple kernels are both fast enough and
// easy to verify against finite differences.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace appfl::tensor {

struct Conv2dSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;   // square kernels only (paper model uses k=5/3)
  std::size_t stride = 1;
  std::size_t padding = 0;

  /// Output spatial extent for an input extent; throws if non-positive.
  std::size_t out_extent(std::size_t in_extent) const;
};

/// Forward: input [N, Cin, H, W], weight [Cout, Cin, K, K], bias [Cout]
/// → output [N, Cout, OH, OW].
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec);

/// Backward w.r.t. input: grad_output [N, Cout, OH, OW] → [N, Cin, H, W].
Tensor conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                             const Shape& input_shape, const Conv2dSpec& spec);

/// Backward w.r.t. weight: → [Cout, Cin, K, K].
Tensor conv2d_backward_weight(const Tensor& grad_output, const Tensor& input,
                              const Conv2dSpec& spec);

/// Backward w.r.t. bias: → [Cout] (sum of grad_output over N, OH, OW).
Tensor conv2d_backward_bias(const Tensor& grad_output);

}  // namespace appfl::tensor
