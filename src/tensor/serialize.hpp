// Raw binary serialization of tensors and float spans.
//
// This is the zero-overhead encoding used by the MPI transport path (a
// memcpy-style contiguous buffer, as RDMA would move). The gRPC path instead
// goes through comm/protolite.hpp, which pays varint/field-tag overheads.
// Little-endian layout: u64 rank, u64 extents..., float32 data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace appfl::tensor {

/// Serializes shape + contents.
std::vector<std::uint8_t> to_bytes(const Tensor& t);

/// Inverse of to_bytes; throws appfl::Error on malformed input.
Tensor from_bytes(std::span<const std::uint8_t> bytes);

/// Serialized size in bytes without building the buffer.
std::size_t byte_size(const Tensor& t);

/// Appends a raw float span (no header) to `out`.
void append_floats(std::vector<std::uint8_t>& out, std::span<const float> v);

/// Reads `count` floats from `bytes` starting at `offset`; advances offset.
std::vector<float> read_floats(std::span<const std::uint8_t> bytes,
                               std::size_t& offset, std::size_t count);

}  // namespace appfl::tensor
