// Dense matrix multiplication for rank-2 tensors.
//
// The Linear layer's forward and backward passes need all three transpose
// variants. All of them dispatch through the kernel execution engine
// (gemm.hpp): the packed register-tiled backend by default, the original
// cache-blocked scalar loops when the reference backend is selected via
// config/env. The *_reference entry points call the scalar loops
// unconditionally — they are the parity baseline for tests and benchmarks.
// Shapes are checked; outputs are fresh tensors.
#pragma once

#include "tensor/tensor.hpp"

namespace appfl::tensor {

/// C[M,N] = A[M,K] · B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[M,N] = A[M,K] · B[N,K]ᵀ  (i.e. A · Bᵀ).
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// C[M,N] = A[K,M]ᵀ · B[K,N]  (i.e. Aᵀ · B).
Tensor matmul_at(const Tensor& a, const Tensor& b);

/// Reference-backend variants: same contracts, always the scalar loops.
Tensor matmul_reference(const Tensor& a, const Tensor& b);
Tensor matmul_bt_reference(const Tensor& a, const Tensor& b);
Tensor matmul_at_reference(const Tensor& a, const Tensor& b);

}  // namespace appfl::tensor
