// Dense matrix multiplication kernels for rank-2 tensors.
//
// The Linear layer's forward and backward passes need all three transpose
// variants; each is a cache-blocked triple loop with the k-loop innermost
// hoisted where profitable. Shapes are checked; outputs are fresh tensors.
#pragma once

#include "tensor/tensor.hpp"

namespace appfl::tensor {

/// C[M,N] = A[M,K] · B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[M,N] = A[M,K] · B[N,K]ᵀ  (i.e. A · Bᵀ).
Tensor matmul_bt(const Tensor& a, const Tensor& b);

/// C[M,N] = A[K,M]ᵀ · B[K,N]  (i.e. Aᵀ · B).
Tensor matmul_at(const Tensor& a, const Tensor& b);

}  // namespace appfl::tensor
