#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>

#include "rng/distributions.hpp"
#include "util/check.hpp"

namespace appfl::tensor {

std::size_t numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() : shape_{0} {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(numel(shape_), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  APPFL_CHECK_MSG(data_.size() == numel(shape_),
                  "value count " << data_.size() << " != numel of shape "
                                 << to_string(shape_));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, rng::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  rng::fill_normal(rng, t.data(), stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, rng::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) {
    v = static_cast<float>(rng::uniform(rng, lo, hi));
  }
  return t;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

std::size_t Tensor::dim(std::size_t axis) const {
  APPFL_CHECK_MSG(axis < shape_.size(),
                  "axis " << axis << " out of range for rank " << rank());
  return shape_[axis];
}

float& Tensor::operator[](std::size_t flat_index) {
  APPFL_CHECK_MSG(flat_index < data_.size(),
                  "flat index " << flat_index << " >= size " << data_.size());
  return data_[flat_index];
}

float Tensor::operator[](std::size_t flat_index) const {
  APPFL_CHECK_MSG(flat_index < data_.size(),
                  "flat index " << flat_index << " >= size " << data_.size());
  return data_[flat_index];
}

std::size_t Tensor::flat_offset(std::initializer_list<std::size_t> idx) const {
  APPFL_CHECK_MSG(idx.size() == shape_.size(),
                  "index rank " << idx.size() << " != tensor rank " << rank());
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (std::size_t i : idx) {
    APPFL_CHECK_MSG(i < shape_[axis], "index " << i << " out of range on axis "
                                               << axis << " (extent "
                                               << shape_[axis] << ")");
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::size_t> idx) {
  return data_[flat_offset(idx)];
}

float Tensor::at(std::initializer_list<std::size_t> idx) const {
  return data_[flat_offset(idx)];
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::reshape(Shape new_shape) {
  APPFL_CHECK_MSG(numel(new_shape) == data_.size(),
                  "reshape " << to_string(shape_) << " -> "
                             << to_string(new_shape) << " changes numel");
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

}  // namespace appfl::tensor
