// Convolution and pooling kernels: known cases + finite-difference checks of
// every backward path.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <cmath>

#include "rng/rng.hpp"
#include "tensor/conv.hpp"
#include "tensor/pool.hpp"

namespace {

using appfl::tensor::Conv2dSpec;
using appfl::tensor::MaxPool2dSpec;
using appfl::tensor::Shape;
using appfl::tensor::Tensor;

double loss_of(const Tensor& t) {
  // Simple scalar functional: L = Σ 0.5·y², so dL/dy = y.
  double acc = 0.0;
  for (float v : t.data()) acc += 0.5 * static_cast<double>(v) * v;
  return acc;
}

Tensor grad_of(const Tensor& t) { return t; }

TEST(Conv2dSpec, OutputExtent) {
  Conv2dSpec s{1, 1, 3, 1, 0};
  EXPECT_EQ(s.out_extent(5), 3U);
  s.padding = 1;
  EXPECT_EQ(s.out_extent(5), 5U);
  s.stride = 2;
  EXPECT_EQ(s.out_extent(5), 3U);
  Conv2dSpec bad{1, 1, 7, 1, 0};
  EXPECT_THROW(bad.out_extent(5), appfl::Error);
}

TEST(Conv2d, KnownValuesIdentityKernel) {
  // 3×3 kernel with a single 1 in the center reproduces the input (pad 1).
  Conv2dSpec spec{1, 1, 3, 1, 1};
  Tensor input({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  Tensor weight({1, 1, 3, 3});
  weight.at({0, 0, 1, 1}) = 1.0F;
  Tensor bias({1});
  const Tensor out = appfl::tensor::conv2d_forward(input, weight, bias, spec);
  EXPECT_TRUE(out.allclose(input, 1e-6F));
}

TEST(Conv2d, BiasIsAddedToEveryOutput) {
  Conv2dSpec spec{1, 2, 3, 1, 1};
  const Tensor input({1, 1, 4, 4});
  const Tensor weight({2, 1, 3, 3});
  Tensor bias({2}, {1.5F, -2.0F});
  const Tensor out = appfl::tensor::conv2d_forward(input, weight, bias, spec);
  for (std::size_t y = 0; y < 4; ++y) {
    for (std::size_t x = 0; x < 4; ++x) {
      EXPECT_EQ(out.at({0, 0, y, x}), 1.5F);
      EXPECT_EQ(out.at({0, 1, y, x}), -2.0F);
    }
  }
}

TEST(Conv2d, StridedShapes) {
  Conv2dSpec spec{3, 5, 3, 2, 1};
  appfl::rng::Rng r(1);
  const Tensor input = Tensor::randn({2, 3, 9, 9}, r);
  const Tensor weight = Tensor::randn({5, 3, 3, 3}, r);
  const Tensor bias = Tensor::randn({5}, r);
  const Tensor out = appfl::tensor::conv2d_forward(input, weight, bias, spec);
  EXPECT_EQ(out.shape(), (Shape{2, 5, 5, 5}));
}

struct ConvCase {
  std::size_t cin, cout, k, stride, pad, h, w, n;
};

class ConvGradTest : public testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, BackwardMatchesFiniteDifferences) {
  const auto& c = GetParam();
  Conv2dSpec spec{c.cin, c.cout, c.k, c.stride, c.pad};
  appfl::rng::Rng r(c.cin * 17 + c.k);
  Tensor input = Tensor::randn({c.n, c.cin, c.h, c.w}, r, 0.5F);
  Tensor weight = Tensor::randn({c.cout, c.cin, c.k, c.k}, r, 0.5F);
  Tensor bias = Tensor::randn({c.cout}, r, 0.5F);

  const Tensor out = appfl::tensor::conv2d_forward(input, weight, bias, spec);
  const Tensor gy = grad_of(out);
  const Tensor gx =
      appfl::tensor::conv2d_backward_input(gy, weight, input.shape(), spec);
  const Tensor gw = appfl::tensor::conv2d_backward_weight(gy, input, spec);
  const Tensor gb = appfl::tensor::conv2d_backward_bias(gy);

  const float eps = 1e-2F;
  auto fd_check = [&](Tensor& param, const Tensor& analytic, const char* tag) {
    // Check a deterministic subset of coordinates (dense check is O(n²)).
    const std::size_t stride_idx = std::max<std::size_t>(1, param.size() / 24);
    for (std::size_t i = 0; i < param.size(); i += stride_idx) {
      const float orig = param[i];
      param[i] = orig + eps;
      const double lp = loss_of(
          appfl::tensor::conv2d_forward(input, weight, bias, spec));
      param[i] = orig - eps;
      const double lm = loss_of(
          appfl::tensor::conv2d_forward(input, weight, bias, spec));
      param[i] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], fd, 5e-2 * (1.0 + std::abs(fd)))
          << tag << " coord " << i;
    }
  };
  fd_check(input, gx, "input");
  fd_check(weight, gw, "weight");
  fd_check(bias, gb, "bias");
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ConvGradTest,
    testing::Values(ConvCase{1, 1, 3, 1, 0, 5, 5, 1},
                    ConvCase{1, 2, 3, 1, 1, 6, 6, 2},
                    ConvCase{2, 3, 3, 2, 1, 7, 7, 1},
                    ConvCase{3, 2, 5, 1, 2, 8, 6, 1},
                    ConvCase{2, 2, 1, 1, 0, 4, 4, 2}),
    [](const testing::TestParamInfo<ConvCase>& i) {
      const auto& c = i.param;
      return "c" + std::to_string(c.cin) + "o" + std::to_string(c.cout) + "k" +
             std::to_string(c.k) + "s" + std::to_string(c.stride) + "p" +
             std::to_string(c.pad);
    });

TEST(MaxPool, ForwardSelectsMaxAndRecordsArgmax) {
  MaxPool2dSpec spec{2, 2};
  Tensor input({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  const auto result = appfl::tensor::maxpool2d_forward(input, spec);
  EXPECT_EQ(result.output.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(result.output.at({0, 0, 0, 0}), 5.0F);
  EXPECT_EQ(result.output.at({0, 0, 1, 1}), 15.0F);
  EXPECT_EQ(result.argmax[0], 5U);
  EXPECT_EQ(result.argmax[3], 15U);
}

TEST(MaxPool, BackwardRoutesToArgmaxOnly) {
  MaxPool2dSpec spec{2, 2};
  Tensor input({1, 1, 2, 2}, {1, 9, 3, 4});
  const auto fwd = appfl::tensor::maxpool2d_forward(input, spec);
  Tensor gy({1, 1, 1, 1}, {7.0F});
  const Tensor gx =
      appfl::tensor::maxpool2d_backward(gy, fwd.argmax, input.shape());
  EXPECT_TRUE(gx.equals(Tensor({1, 1, 2, 2}, {0, 7, 0, 0})));
}

TEST(MaxPool, GradientMatchesFiniteDifferences) {
  MaxPool2dSpec spec{2, 2};
  appfl::rng::Rng r(9);
  Tensor input = Tensor::randn({2, 3, 6, 6}, r);
  const auto fwd = appfl::tensor::maxpool2d_forward(input, spec);
  const Tensor gy = grad_of(fwd.output);
  const Tensor gx =
      appfl::tensor::maxpool2d_backward(gy, fwd.argmax, input.shape());
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < input.size(); i += 13) {
    const float orig = input[i];
    input[i] = orig + eps;
    const double lp = loss_of(appfl::tensor::maxpool2d_forward(input, spec).output);
    input[i] = orig - eps;
    const double lm = loss_of(appfl::tensor::maxpool2d_forward(input, spec).output);
    input[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2.0 * eps), 1e-2) << "coord " << i;
  }
}

TEST(MaxPool, NonSquareAndStride1) {
  MaxPool2dSpec spec{2, 1};
  appfl::rng::Rng r(3);
  const Tensor input = Tensor::randn({1, 1, 3, 5}, r);
  const auto result = appfl::tensor::maxpool2d_forward(input, spec);
  EXPECT_EQ(result.output.shape(), (Shape{1, 1, 2, 4}));
}

}  // namespace
