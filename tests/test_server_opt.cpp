// FedOpt server-side adaptive optimizers.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <cmath>

#include "core/runner.hpp"
#include "core/server_opt.hpp"
#include "data/synth.hpp"

namespace {

using appfl::core::Algorithm;
using appfl::core::FedOptServer;
using appfl::core::RunConfig;
using appfl::core::ServerOpt;
using appfl::core::ServerOptConfig;

appfl::data::FederatedSplit split_of(std::size_t per_client = 48) {
  appfl::data::SynthImageSpec spec;
  spec.train_per_client = per_client;
  spec.test_size = 128;
  spec.seed = 91;
  return appfl::data::mnist_like(spec);
}

RunConfig fed_cfg() {
  RunConfig cfg;
  cfg.algorithm = Algorithm::kFedAvg;
  cfg.model = appfl::core::ModelKind::kMlp;
  cfg.mlp_hidden = 16;
  cfg.rounds = 6;
  cfg.local_steps = 1;
  cfg.batch_size = 32;
  cfg.lr = 0.1F;
  cfg.seed = 91;
  cfg.validate_every_round = false;
  return cfg;
}

appfl::core::RunResult run_with(ServerOptConfig opt,
                                const appfl::data::FederatedSplit& split,
                                const RunConfig& cfg) {
  auto model = appfl::core::build_model(cfg, split.test);
  std::vector<std::unique_ptr<appfl::core::BaseClient>> clients;
  for (std::size_t p = 0; p < split.clients.size(); ++p) {
    clients.push_back(appfl::core::build_client(
        static_cast<std::uint32_t>(p + 1), cfg, *model, split.clients[p]));
  }
  FedOptServer server(cfg, opt, std::move(model), split.test, clients.size());
  return appfl::core::run_federated(cfg, server, clients);
}

TEST(FedOpt, NoneWithUnitLrAndNoMomentumEqualsFedAvg) {
  // w + 1.0·(avg z − w) = avg z: the FedAvg update, so the whole trajectory
  // must match the plain FedAvg server's (up to float summation order).
  const auto split = split_of();
  const RunConfig cfg = fed_cfg();
  ServerOptConfig opt;
  opt.kind = ServerOpt::kNone;
  opt.lr = 1.0F;
  opt.beta1 = 0.0F;
  const auto fedopt = run_with(opt, split, cfg);
  const auto plain = appfl::core::run_federated(cfg, split);
  ASSERT_EQ(fedopt.rounds.size(), plain.rounds.size());
  for (std::size_t i = 0; i < plain.rounds.size(); ++i) {
    EXPECT_NEAR(fedopt.rounds[i].train_loss, plain.rounds[i].train_loss, 1e-4)
        << "round " << i + 1;
  }
  EXPECT_NEAR(fedopt.final_accuracy, plain.final_accuracy, 0.02);
}

class ServerOptKindTest : public testing::TestWithParam<ServerOpt> {};

TEST_P(ServerOptKindTest, LearnsAboveChance) {
  ServerOptConfig opt;
  opt.kind = GetParam();
  opt.lr = GetParam() == ServerOpt::kNone ? 1.0F : 0.05F;
  RunConfig cfg = fed_cfg();
  cfg.rounds = 10;
  const auto result = run_with(opt, split_of(96), cfg);
  EXPECT_GT(result.final_accuracy, 0.45) << appfl::core::to_string(GetParam());
}

TEST_P(ServerOptKindTest, DeterministicGivenSeed) {
  ServerOptConfig opt;
  opt.kind = GetParam();
  const auto split = split_of(24);
  const RunConfig cfg = fed_cfg();
  const auto a = run_with(opt, split, cfg);
  const auto b = run_with(opt, split, cfg);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ServerOptKindTest,
                         testing::Values(ServerOpt::kNone, ServerOpt::kAdagrad,
                                         ServerOpt::kAdam, ServerOpt::kYogi),
                         [](const testing::TestParamInfo<ServerOpt>& i) {
                           return appfl::core::to_string(i.param);
                         });

TEST(FedOpt, AdamSingleStepMathIsCorrect) {
  // One round, one client, hand-checkable: Δ = z − w.
  appfl::data::FederatedSplit split;
  split.name = "unit";
  split.clients.push_back(
      appfl::data::generate_samples(1, 4, 4, 2, 8, 0.5, 92));
  split.test = appfl::data::generate_samples(1, 4, 4, 2, 8, 0.5, 92);
  RunConfig cfg = fed_cfg();
  cfg.rounds = 1;

  ServerOptConfig opt;
  opt.kind = ServerOpt::kAdam;
  opt.lr = 0.5F;
  opt.beta1 = 0.9F;
  opt.beta2 = 0.99F;
  opt.tau = 1e-3F;

  auto model = appfl::core::build_model(cfg, split.test);
  const std::vector<float> w0 = model->flat_parameters();
  FedOptServer server(cfg, opt, std::move(model), split.test, 1);

  appfl::comm::Message msg;
  msg.kind = appfl::comm::MessageKind::kLocalUpdate;
  msg.sender = 1;
  msg.round = 1;
  msg.sample_count = 8;
  msg.primal = w0;
  for (auto& v : msg.primal) v += 0.2F;  // Δ = 0.2 everywhere

  server.update({msg}, w0, 1);
  const auto w1 = server.compute_global(2);
  // m = 0.1·0.2 = 0.02; v = 0.01·0.04 = 4e-4; step = 0.5·0.02/(0.02+1e-3).
  const float expected_step = 0.5F * 0.02F / (std::sqrt(4e-4F) + 1e-3F);
  for (std::size_t i = 0; i < w0.size(); i += 5) {
    EXPECT_NEAR(w1[i] - w0[i], expected_step, 1e-5F) << i;
  }
}

TEST(FedOpt, RejectsDualCarryingUpdatesAndBadConfig) {
  const auto split = split_of(16);
  RunConfig cfg = fed_cfg();
  ServerOptConfig opt;
  auto model = appfl::core::build_model(cfg, split.test);
  const auto w0 = model->flat_parameters();
  FedOptServer server(cfg, opt, std::move(model), split.test, 1);
  appfl::comm::Message bad;
  bad.kind = appfl::comm::MessageKind::kLocalUpdate;
  bad.sender = 1;
  bad.round = 1;
  bad.sample_count = 1;
  bad.primal = w0;
  bad.dual = w0;
  EXPECT_THROW(server.update({bad}, w0, 1), appfl::Error);

  cfg.algorithm = Algorithm::kIIAdmm;
  auto model2 = appfl::core::build_model(cfg, split.test);
  EXPECT_THROW(FedOptServer(cfg, opt, std::move(model2), split.test, 1),
               appfl::Error);
}

TEST(FedOpt, AdaptiveServersHelpWhenClientStepsAreTiny) {
  // With a very small client lr, plain averaging barely moves; FedAdam's
  // adaptivity rescales the tiny pseudo-gradients and learns faster.
  const auto split = split_of(96);
  RunConfig cfg = fed_cfg();
  cfg.lr = 0.002F;
  cfg.rounds = 8;

  ServerOptConfig none;
  none.kind = ServerOpt::kNone;
  none.lr = 1.0F;
  none.beta1 = 0.0F;
  const auto plain = run_with(none, split, cfg);

  ServerOptConfig adam;
  adam.kind = ServerOpt::kAdam;
  adam.lr = 0.05F;
  const auto boosted = run_with(adam, split, cfg);
  EXPECT_GT(boosted.final_accuracy, plain.final_accuracy + 0.1);
}

}  // namespace
