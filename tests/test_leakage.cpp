// Gradient-leakage inversion: exact recovery on clean gradients, graceful
// degradation under noise.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include "core/gradient_leakage.hpp"
#include "data/synth.hpp"
#include "dp/mechanism.hpp"
#include "nn/loss.hpp"
#include "nn/model_zoo.hpp"

namespace {

struct LeakSetup {
  std::vector<float> grad;
  std::vector<float> x_true;
  std::size_t label;
  std::size_t classes;
  std::size_t dim;
};

LeakSetup make_setup(std::uint64_t seed) {
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kClasses = 5;
  const auto ds =
      appfl::data::generate_samples(1, 8, 8, kClasses, 1, 0.7, seed);
  const std::vector<std::size_t> idx{0};
  const auto batch = ds.gather(idx);
  appfl::rng::Rng r(seed);
  auto model = appfl::nn::logistic_regression(kDim, kClasses, r);
  appfl::nn::CrossEntropyLoss ce;
  model->zero_grad();
  const auto logits = model->forward(batch.inputs.reshaped({1, kDim}));
  model->backward(ce.compute(logits, batch.labels).grad);
  LeakSetup s;
  s.grad = model->flat_gradients();
  const auto flat = batch.inputs.reshaped({kDim});
  s.x_true.assign(flat.data().begin(), flat.data().end());
  s.label = batch.labels[0];
  s.classes = kClasses;
  s.dim = kDim;
  return s;
}

TEST(Leakage, CleanGradientRecoversInputAlmostExactly) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const LeakSetup s = make_setup(seed);
    const auto leak = appfl::core::invert_logistic_gradient(
        s.grad, s.classes, s.dim, s.x_true);
    EXPECT_EQ(leak.recovered_label, s.label) << "seed " << seed;
    EXPECT_GT(leak.cosine_similarity, 0.999) << "seed " << seed;
    EXPECT_LT(leak.mse, 1e-4) << "seed " << seed;
  }
}

TEST(Leakage, HeavyNoiseDestroysTheReconstruction) {
  const LeakSetup s = make_setup(4);
  std::vector<float> noisy = s.grad;
  appfl::rng::Rng r(5);
  appfl::dp::LaplaceMechanism mech(2.0);  // very strong noise
  mech.apply(noisy, r);
  const auto leak = appfl::core::invert_logistic_gradient(
      noisy, s.classes, s.dim, s.x_true);
  EXPECT_LT(leak.cosine_similarity, 0.5);
}

TEST(Leakage, NoiseMonotonicallyDegradesCosine) {
  const LeakSetup s = make_setup(6);
  double prev_cos = 1.1;
  for (double scale : {0.0001, 0.01, 1.0}) {
    std::vector<float> noisy = s.grad;
    appfl::rng::Rng r(7);
    appfl::dp::LaplaceMechanism mech(scale);
    mech.apply(noisy, r);
    const auto leak = appfl::core::invert_logistic_gradient(
        noisy, s.classes, s.dim, s.x_true);
    EXPECT_LT(leak.cosine_similarity, prev_cos + 0.05) << scale;
    prev_cos = leak.cosine_similarity;
  }
}

TEST(Leakage, RejectsMismatchedGradientSize) {
  std::vector<float> grad(10, 0.0F);
  EXPECT_THROW(appfl::core::invert_logistic_gradient(grad, 3, 5), appfl::Error);
}

TEST(CosineSimilarity, BasicProperties) {
  const std::vector<float> a{1.0F, 0.0F};
  const std::vector<float> b{0.0F, 1.0F};
  const std::vector<float> c{2.0F, 0.0F};
  const std::vector<float> zero{0.0F, 0.0F};
  EXPECT_NEAR(appfl::core::cosine_similarity(a, b), 0.0, 1e-12);
  EXPECT_NEAR(appfl::core::cosine_similarity(a, c), 1.0, 1e-12);
  EXPECT_EQ(appfl::core::cosine_similarity(a, zero), 0.0);
  const std::vector<float> neg{-1.0F, 0.0F};
  EXPECT_NEAR(appfl::core::cosine_similarity(a, neg), -1.0, 1e-12);
}

}  // namespace
