// Asynchronous aggregation (future-work extension): event ordering,
// staleness damping, determinism, and the straggler advantage vs sync.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include "core/async_runner.hpp"
#include "core/runner.hpp"
#include "data/synth.hpp"
#include "hw/device.hpp"

namespace {

using appfl::core::AsyncConfig;
using appfl::core::RunConfig;

appfl::data::FederatedSplit split_of(std::size_t per_client = 48) {
  appfl::data::SynthImageSpec spec;
  spec.train_per_client = per_client;
  spec.test_size = 128;
  spec.seed = 17;
  return appfl::data::mnist_like(spec);
}

AsyncConfig base_async() {
  AsyncConfig cfg;
  cfg.run.algorithm = appfl::core::Algorithm::kFedAvg;
  cfg.run.model = appfl::core::ModelKind::kMlp;
  cfg.run.mlp_hidden = 16;
  cfg.run.rounds = 6;  // ⇒ 6 × P total updates by default
  cfg.run.local_steps = 1;
  cfg.run.batch_size = 32;
  cfg.run.lr = 0.1F;
  cfg.run.seed = 17;
  cfg.mixing_alpha = 0.6F;
  return cfg;
}

TEST(Async, AppliesExactlyTheRequestedUpdates) {
  const auto split = split_of();
  AsyncConfig cfg = base_async();
  cfg.total_updates = 10;
  const auto result = appfl::core::run_async(cfg, split);
  EXPECT_EQ(result.applied_updates, 10U);
  EXPECT_EQ(result.events.size(), 10U);
}

TEST(Async, EventTimesAreNonDecreasing) {
  const auto result = appfl::core::run_async(base_async(), split_of());
  double prev = 0.0;
  for (const auto& e : result.events) {
    EXPECT_GE(e.sim_time, prev);
    prev = e.sim_time;
  }
  EXPECT_GT(result.sim_seconds, 0.0);
  EXPECT_NEAR(result.sim_seconds, result.events.back().sim_time, 1e-12);
}

TEST(Async, MixingIsStalenessDamped) {
  AsyncConfig cfg = base_async();
  // Extreme heterogeneity forces staleness: one fast, three slow clients.
  cfg.devices = {appfl::hw::DeviceProfile{"fast", 1e12},
                 appfl::hw::DeviceProfile{"slow", 1e9},
                 appfl::hw::DeviceProfile{"slow", 1e9},
                 appfl::hw::DeviceProfile{"slow", 1e9}};
  const auto result = appfl::core::run_async(cfg, split_of());
  bool saw_stale = false;
  for (const auto& e : result.events) {
    EXPECT_NEAR(e.mixing,
                cfg.mixing_alpha / (1.0F + static_cast<float>(e.staleness)),
                1e-6);
    if (e.staleness > 0) saw_stale = true;
  }
  EXPECT_TRUE(saw_stale);
  EXPECT_GT(result.mean_staleness, 0.0);
}

TEST(Async, LearnsAboveChance) {
  AsyncConfig cfg = base_async();
  cfg.run.rounds = 10;
  const auto result = appfl::core::run_async(cfg, split_of(96));
  EXPECT_GT(result.final_accuracy, 0.5);  // 10-class chance = 0.1
}

TEST(Async, DeterministicGivenSeed) {
  const auto split = split_of();
  const auto a = appfl::core::run_async(base_async(), split);
  const auto b = appfl::core::run_async(base_async(), split);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].sim_time, b.events[i].sim_time);
    EXPECT_EQ(a.events[i].client, b.events[i].client);
  }
}

TEST(Async, ValidateEveryControlsValidationPoints) {
  AsyncConfig cfg = base_async();
  cfg.total_updates = 12;
  cfg.validate_every = 4;
  const auto result = appfl::core::run_async(cfg, split_of());
  std::size_t validated = 0;
  for (const auto& e : result.events) {
    if (e.test_accuracy >= 0.0) ++validated;
  }
  EXPECT_EQ(validated, 3U);
}

TEST(Async, BeatsSyncWallClockOnHeterogeneousFleet) {
  // The motivation from §IV-E: with mixed A100/V100 silos the synchronous
  // server waits for the V100s every round; async keeps everyone busy. For
  // the same number of total client updates, async must finish in less
  // simulated time.
  const auto split = split_of();
  AsyncConfig cfg = base_async();
  cfg.devices = {appfl::hw::a100(), appfl::hw::v100()};
  const auto async_result = appfl::core::run_async(cfg, split);
  const auto sync_result = appfl::core::run_sync_baseline(cfg, split);
  EXPECT_LT(async_result.sim_seconds, sync_result.sim_seconds);
  EXPECT_GT(sync_result.straggler_idle_fraction, 0.1);
}

TEST(Async, IdleFractionGrowsWithDeviceHeterogeneity) {
  // On equal devices the only sync idling comes from network jitter
  // (§IV-D's effect); adding device heterogeneity (§IV-E) must add idle
  // time on top.
  AsyncConfig cfg = base_async();
  const auto split = split_of();
  cfg.devices = {appfl::hw::v100()};
  const auto homogeneous = appfl::core::run_sync_baseline(cfg, split);
  cfg.devices = {appfl::hw::DeviceProfile{"fast", 8e9},
                 appfl::hw::DeviceProfile{"slow", 1e9}};
  const auto heterogeneous = appfl::core::run_sync_baseline(cfg, split);
  EXPECT_GT(heterogeneous.straggler_idle_fraction,
            homogeneous.straggler_idle_fraction);
  EXPECT_GT(homogeneous.final_accuracy, 0.3);
}

TEST(AsyncIIAdmm, DualReplicasSurviveAsynchrony) {
  // The paper's no-duals-on-the-wire invariant under the future-work
  // schedule: asynchronous arrivals, heterogeneous devices, yet every
  // client dual matches the server replica bit-for-bit.
  AsyncConfig cfg = base_async();
  cfg.run.algorithm = appfl::core::Algorithm::kIIAdmm;
  cfg.run.rho = 2.0F;
  cfg.run.zeta = 2.0F;
  cfg.devices = {appfl::hw::a100(), appfl::hw::v100()};
  const auto result = appfl::core::run_async_iiadmm(cfg, split_of());
  EXPECT_TRUE(result.duals_consistent);
  EXPECT_EQ(result.base.applied_updates, 6U * 4U);
}

TEST(AsyncIIAdmm, LearnsAboveChance) {
  AsyncConfig cfg = base_async();
  cfg.run.algorithm = appfl::core::Algorithm::kIIAdmm;
  cfg.run.rounds = 10;
  cfg.run.rho = 2.0F;
  cfg.run.zeta = 2.0F;
  const auto result = appfl::core::run_async_iiadmm(cfg, split_of(96));
  EXPECT_GT(result.base.final_accuracy, 0.5);
}

TEST(AsyncIIAdmm, DeterministicGivenSeed) {
  AsyncConfig cfg = base_async();
  cfg.run.algorithm = appfl::core::Algorithm::kIIAdmm;
  const auto split = split_of(24);
  const auto a = appfl::core::run_async_iiadmm(cfg, split);
  const auto b = appfl::core::run_async_iiadmm(cfg, split);
  EXPECT_EQ(a.base.final_accuracy, b.base.final_accuracy);
  ASSERT_EQ(a.base.events.size(), b.base.events.size());
  for (std::size_t i = 0; i < a.base.events.size(); ++i) {
    EXPECT_EQ(a.base.events[i].client, b.base.events[i].client);
  }
}

TEST(Async, RejectsBadMixingAlpha) {
  AsyncConfig cfg = base_async();
  cfg.mixing_alpha = 0.0F;
  EXPECT_THROW(appfl::core::run_async(cfg, split_of(16)), appfl::Error);
  cfg.mixing_alpha = 1.5F;
  EXPECT_THROW(appfl::core::run_async(cfg, split_of(16)), appfl::Error);
}

}  // namespace
