// Asynchronous aggregation (future-work extension): event ordering,
// staleness damping, determinism, the straggler advantage vs sync, and the
// strategy suite (FedAsync weighting, FedBuff buffering, FedCompass
// scheduling) with its checkpoint/resume and fault-plane contracts.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "core/async_runner.hpp"
#include "core/checkpoint.hpp"
#include "core/runner.hpp"
#include "data/synth.hpp"
#include "hw/device.hpp"
#include "obs/metrics.hpp"

namespace {

using appfl::core::AsyncConfig;
using appfl::core::AsyncStrategyKind;
using appfl::core::RunConfig;
using appfl::core::StalenessWeight;

// Fresh (pre-removed) temp directory, cleaned up on scope exit.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

// Bitwise equality — accuracy-style EXPECT_NEAR would hide drift.
bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

appfl::data::FederatedSplit split_of(std::size_t per_client = 48) {
  appfl::data::SynthImageSpec spec;
  spec.train_per_client = per_client;
  spec.test_size = 128;
  spec.seed = 17;
  return appfl::data::mnist_like(spec);
}

AsyncConfig base_async() {
  AsyncConfig cfg;
  cfg.run.algorithm = appfl::core::Algorithm::kFedAvg;
  cfg.run.model = appfl::core::ModelKind::kMlp;
  cfg.run.mlp_hidden = 16;
  cfg.run.rounds = 6;  // ⇒ 6 × P total updates by default
  cfg.run.local_steps = 1;
  cfg.run.batch_size = 32;
  cfg.run.lr = 0.1F;
  cfg.run.seed = 17;
  cfg.mixing_alpha = 0.6F;
  return cfg;
}

TEST(Async, AppliesExactlyTheRequestedUpdates) {
  const auto split = split_of();
  AsyncConfig cfg = base_async();
  cfg.total_updates = 10;
  const auto result = appfl::core::run_async(cfg, split);
  EXPECT_EQ(result.applied_updates, 10U);
  EXPECT_EQ(result.events.size(), 10U);
}

TEST(Async, EventTimesAreNonDecreasing) {
  const auto result = appfl::core::run_async(base_async(), split_of());
  double prev = 0.0;
  for (const auto& e : result.events) {
    EXPECT_GE(e.sim_time, prev);
    prev = e.sim_time;
  }
  EXPECT_GT(result.sim_seconds, 0.0);
  EXPECT_NEAR(result.sim_seconds, result.events.back().sim_time, 1e-12);
}

TEST(Async, MixingIsStalenessDamped) {
  AsyncConfig cfg = base_async();
  // Extreme heterogeneity forces staleness: one fast, three slow clients.
  cfg.devices = {appfl::hw::DeviceProfile{"fast", 1e12},
                 appfl::hw::DeviceProfile{"slow", 1e9},
                 appfl::hw::DeviceProfile{"slow", 1e9},
                 appfl::hw::DeviceProfile{"slow", 1e9}};
  const auto result = appfl::core::run_async(cfg, split_of());
  bool saw_stale = false;
  for (const auto& e : result.events) {
    EXPECT_NEAR(e.mixing,
                cfg.mixing_alpha / (1.0F + static_cast<float>(e.staleness)),
                1e-6);
    if (e.staleness > 0) saw_stale = true;
  }
  EXPECT_TRUE(saw_stale);
  EXPECT_GT(result.mean_staleness, 0.0);
}

TEST(Async, LearnsAboveChance) {
  AsyncConfig cfg = base_async();
  cfg.run.rounds = 10;
  const auto result = appfl::core::run_async(cfg, split_of(96));
  EXPECT_GT(result.final_accuracy, 0.5);  // 10-class chance = 0.1
}

TEST(Async, DeterministicGivenSeed) {
  const auto split = split_of();
  const auto a = appfl::core::run_async(base_async(), split);
  const auto b = appfl::core::run_async(base_async(), split);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].sim_time, b.events[i].sim_time);
    EXPECT_EQ(a.events[i].client, b.events[i].client);
  }
}

TEST(Async, ValidateEveryControlsValidationPoints) {
  AsyncConfig cfg = base_async();
  cfg.total_updates = 12;
  cfg.validate_every = 4;
  const auto result = appfl::core::run_async(cfg, split_of());
  std::size_t validated = 0;
  for (const auto& e : result.events) {
    if (e.test_accuracy >= 0.0) ++validated;
  }
  EXPECT_EQ(validated, 3U);
}

TEST(Async, BeatsSyncWallClockOnHeterogeneousFleet) {
  // The motivation from §IV-E: with mixed A100/V100 silos the synchronous
  // server waits for the V100s every round; async keeps everyone busy. For
  // the same number of total client updates, async must finish in less
  // simulated time.
  const auto split = split_of();
  AsyncConfig cfg = base_async();
  cfg.devices = {appfl::hw::a100(), appfl::hw::v100()};
  const auto async_result = appfl::core::run_async(cfg, split);
  const auto sync_result = appfl::core::run_sync_baseline(cfg, split);
  EXPECT_LT(async_result.sim_seconds, sync_result.sim_seconds);
  EXPECT_GT(sync_result.straggler_idle_fraction, 0.1);
}

TEST(Async, IdleFractionGrowsWithDeviceHeterogeneity) {
  // On equal devices the only sync idling comes from network jitter
  // (§IV-D's effect); adding device heterogeneity (§IV-E) must add idle
  // time on top.
  AsyncConfig cfg = base_async();
  const auto split = split_of();
  cfg.devices = {appfl::hw::v100()};
  const auto homogeneous = appfl::core::run_sync_baseline(cfg, split);
  cfg.devices = {appfl::hw::DeviceProfile{"fast", 8e9},
                 appfl::hw::DeviceProfile{"slow", 1e9}};
  const auto heterogeneous = appfl::core::run_sync_baseline(cfg, split);
  EXPECT_GT(heterogeneous.straggler_idle_fraction,
            homogeneous.straggler_idle_fraction);
  EXPECT_GT(homogeneous.final_accuracy, 0.3);
}

TEST(AsyncIIAdmm, DualReplicasSurviveAsynchrony) {
  // The paper's no-duals-on-the-wire invariant under the future-work
  // schedule: asynchronous arrivals, heterogeneous devices, yet every
  // client dual matches the server replica bit-for-bit.
  AsyncConfig cfg = base_async();
  cfg.run.algorithm = appfl::core::Algorithm::kIIAdmm;
  cfg.run.rho = 2.0F;
  cfg.run.zeta = 2.0F;
  cfg.devices = {appfl::hw::a100(), appfl::hw::v100()};
  const auto result = appfl::core::run_async_iiadmm(cfg, split_of());
  EXPECT_TRUE(result.duals_consistent);
  EXPECT_EQ(result.base.applied_updates, 6U * 4U);
}

TEST(AsyncIIAdmm, LearnsAboveChance) {
  AsyncConfig cfg = base_async();
  cfg.run.algorithm = appfl::core::Algorithm::kIIAdmm;
  cfg.run.rounds = 10;
  cfg.run.rho = 2.0F;
  cfg.run.zeta = 2.0F;
  const auto result = appfl::core::run_async_iiadmm(cfg, split_of(96));
  EXPECT_GT(result.base.final_accuracy, 0.5);
}

TEST(AsyncIIAdmm, DeterministicGivenSeed) {
  AsyncConfig cfg = base_async();
  cfg.run.algorithm = appfl::core::Algorithm::kIIAdmm;
  const auto split = split_of(24);
  const auto a = appfl::core::run_async_iiadmm(cfg, split);
  const auto b = appfl::core::run_async_iiadmm(cfg, split);
  EXPECT_EQ(a.base.final_accuracy, b.base.final_accuracy);
  ASSERT_EQ(a.base.events.size(), b.base.events.size());
  for (std::size_t i = 0; i < a.base.events.size(); ++i) {
    EXPECT_EQ(a.base.events[i].client, b.base.events[i].client);
  }
}

TEST(Async, RejectsBadMixingAlpha) {
  AsyncConfig cfg = base_async();
  cfg.mixing_alpha = 0.0F;
  EXPECT_THROW(appfl::core::run_async(cfg, split_of(16)), appfl::Error);
  cfg.mixing_alpha = 1.5F;
  EXPECT_THROW(appfl::core::run_async(cfg, split_of(16)), appfl::Error);
}

TEST(Async, OverflowedUpdateBudgetIsAUsageError) {
  // Regression: rounds × clients used to wrap (2^62 × 4 ≡ 0 mod 2^64),
  // handing the event loop a budget of 0 and the summary a 0/0 = NaN
  // mean_staleness. Now it is a validation error before any training.
  AsyncConfig cfg = base_async();
  cfg.run.rounds = std::size_t{1} << 62;  // × 4 clients wraps to exactly 0
  EXPECT_THROW(appfl::core::run_async(cfg, split_of(16)), appfl::Error);
  EXPECT_THROW(appfl::core::run_async_iiadmm(cfg, split_of(16)), appfl::Error);
}

TEST(Async, StalenessHistogramExportCoversZero) {
  // Regression: async.staleness was registered with lower bound 1.0, so
  // staleness 0 — the modal value in low-concurrency runs — vanished into
  // the underflow counter. The export must show it in bucket [0, 1).
  AsyncConfig cfg = base_async();
  cfg.run.obs_level = "metrics";
  const auto result = appfl::core::run_async(cfg, split_of(16));
  std::size_t zero_staleness = 0;
  for (const auto& e : result.events) {
    if (e.staleness == 0) ++zero_staleness;
  }
  ASSERT_GT(zero_staleness, 0U);  // the first arrival is always fresh
  const auto snap = appfl::obs::MetricsRegistry::global().snapshot();
  const auto* h = snap.histogram("async.staleness");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->bounds.front(), 0.0);
  EXPECT_DOUBLE_EQ(h->bounds[1], 1.0);
  EXPECT_EQ(h->count, result.events.size());
  EXPECT_EQ(h->buckets[0], zero_staleness);
  const auto* applied = snap.counter("async.updates_applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(*applied, result.events.size());
}

TEST(Async, FedBuffBuffersAndCommitsEveryK) {
  AsyncConfig cfg = base_async();
  cfg.strategy.kind = AsyncStrategyKind::kFedBuff;
  cfg.strategy.buffer_k = 3;
  cfg.total_updates = 12;
  const auto result = appfl::core::run_async(cfg, split_of());
  EXPECT_EQ(result.strategy, "fedbuff");
  EXPECT_EQ(result.applied_updates, 12U);
  EXPECT_EQ(result.committed_updates, 4U);
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    EXPECT_EQ(result.events[i].committed, (i + 1) % 3 == 0) << "event " << i;
  }
}

TEST(Async, RejectsZeroBufferK) {
  AsyncConfig cfg = base_async();
  cfg.strategy.kind = AsyncStrategyKind::kFedBuff;
  cfg.strategy.buffer_k = 0;
  EXPECT_THROW(appfl::core::run_async(cfg, split_of(16)), appfl::Error);
}

TEST(Async, AllStrategiesDeterministicAcrossReruns) {
  const auto split = split_of();
  for (const AsyncStrategyKind kind :
       {AsyncStrategyKind::kFedAsync, AsyncStrategyKind::kFedBuff,
        AsyncStrategyKind::kFedCompass}) {
    AsyncConfig cfg = base_async();
    cfg.strategy.kind = kind;
    cfg.devices = {appfl::hw::a100(), appfl::hw::v100()};
    const auto a = appfl::core::run_async(cfg, split);
    const auto b = appfl::core::run_async(cfg, split);
    EXPECT_TRUE(same_bits(a.final_w, b.final_w))
        << appfl::core::to_string(kind);
    EXPECT_EQ(a.final_accuracy, b.final_accuracy);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].sim_time, b.events[i].sim_time);
      EXPECT_EQ(a.events[i].client, b.events[i].client);
      EXPECT_EQ(a.events[i].committed, b.events[i].committed);
    }
  }
}

TEST(Async, StalenessWeightingFamiliesDiffer) {
  // constant keeps full α at any staleness; hinge holds full α below the
  // knee and decays polynomially past it.
  AsyncConfig cfg = base_async();
  cfg.devices = {appfl::hw::DeviceProfile{"fast", 1e12},
                 appfl::hw::DeviceProfile{"slow", 1e9},
                 appfl::hw::DeviceProfile{"slow", 1e9},
                 appfl::hw::DeviceProfile{"slow", 1e9}};
  cfg.strategy.weight = StalenessWeight::kConstant;
  const auto constant = appfl::core::run_async(cfg, split_of());
  for (const auto& e : constant.events) {
    EXPECT_FLOAT_EQ(e.mixing, cfg.mixing_alpha);
  }
  cfg.strategy.weight = StalenessWeight::kHinge;
  cfg.strategy.hinge_s0 = 2;
  const auto hinge = appfl::core::run_async(cfg, split_of());
  bool saw_past_knee = false;
  for (const auto& e : hinge.events) {
    if (e.staleness <= 2) {
      EXPECT_FLOAT_EQ(e.mixing, cfg.mixing_alpha);
    } else {
      saw_past_knee = true;
      EXPECT_FLOAT_EQ(e.mixing,
                      cfg.mixing_alpha /
                          (1.0F + static_cast<float>(e.staleness - 2)));
    }
  }
  EXPECT_TRUE(saw_past_knee);
}

TEST(Async, EnvOverridesSelectStrategyWithWarnAndIgnore) {
  const auto split = split_of(16);
  AsyncConfig cfg = base_async();
  cfg.total_updates = 4;
  ::setenv("APPFL_ASYNC_STRATEGY", "fedbuff", 1);
  ::setenv("APPFL_ASYNC_BUFFER_K", "2", 1);
  auto result = appfl::core::run_async(cfg, split);
  EXPECT_EQ(result.strategy, "fedbuff");
  EXPECT_EQ(result.committed_updates, 2U);  // K=2 over 4 arrivals
  // Garbage values are warned about and ignored, never fatal and never
  // silently read as something else (APPFL_FAULT_*/APPFL_CKPT_* convention).
  ::setenv("APPFL_ASYNC_STRATEGY", "not-a-strategy", 1);
  ::setenv("APPFL_ASYNC_BUFFER_K", "zero", 1);
  result = appfl::core::run_async(cfg, split);
  EXPECT_EQ(result.strategy, "fedasync");
  ::unsetenv("APPFL_ASYNC_STRATEGY");
  ::unsetenv("APPFL_ASYNC_BUFFER_K");
}

TEST(Async, FedCompassReducesStalenessOnHeterogeneousFleet) {
  // The compute-aware scheduler sizes each client's local work so arrivals
  // cluster — on a compute-dominated heterogeneous fleet its staleness must
  // not exceed plain FedAsync's on the same fleet.
  const auto split = split_of(96);
  AsyncConfig cfg = base_async();
  cfg.devices = {appfl::hw::DeviceProfile{"fast", 50e9},
                 appfl::hw::DeviceProfile{"slow", 1e9}};
  const auto fedasync = appfl::core::run_async(cfg, split);
  cfg.strategy.kind = AsyncStrategyKind::kFedCompass;
  const auto compass = appfl::core::run_async(cfg, split);
  EXPECT_GT(fedasync.mean_staleness, 0.0);
  EXPECT_LE(compass.mean_staleness, fedasync.mean_staleness);
  EXPECT_EQ(compass.committed_updates, compass.applied_updates);
}

TEST(Async, DropFaultsAreDeterministicAndCounted) {
  const auto split = split_of(16);
  AsyncConfig cfg = base_async();
  cfg.run.faults.drop = 0.3;
  const auto a = appfl::core::run_async(cfg, split);
  const auto b = appfl::core::run_async(cfg, split);
  EXPECT_GT(a.dropped_updates, 0U);
  EXPECT_EQ(a.applied_updates, 24U);  // every loss is re-dispatched
  EXPECT_EQ(a.dropped_updates, b.dropped_updates);
  EXPECT_TRUE(same_bits(a.final_w, b.final_w));
  // And the fault-free path never draws from the drop stream: same seed,
  // drop off, must equal the historical schedule (checked indirectly by
  // DeterministicGivenSeed + the pinned MixingIsStalenessDamped above).
  EXPECT_GT(a.sim_seconds, 0.0);
}

TEST(Async, FedBuffPartialBufferSurvivesKillAndResume) {
  // Kill the run with a partially filled FedBuff buffer (6 arrivals, K=4 ⇒
  // one commit + 2 buffered deltas), resume, and demand the final model be
  // bit-identical to the uninterrupted run.
  const auto split = split_of();
  AsyncConfig cfg = base_async();
  cfg.strategy.kind = AsyncStrategyKind::kFedBuff;
  cfg.strategy.buffer_k = 4;
  const auto full = appfl::core::run_async(cfg, split);

  TempDir dir("appfl_async_fedbuff_resume");
  AsyncConfig first = cfg;
  first.run.checkpoint_dir = dir.str();
  first.run.checkpoint_every_n_rounds = 3;
  first.run.halt_after_round = 6;
  const auto killed = appfl::core::run_async(first, split);
  EXPECT_EQ(killed.applied_updates, 6U);
  EXPECT_GT(killed.checkpoints_written, 0U);
  {
    appfl::core::CheckpointStore store(dir.str());
    const auto ac = appfl::core::load_latest_async_checkpoint(store);
    ASSERT_TRUE(ac.has_value());
    EXPECT_EQ(ac->strategy, "fedbuff");
    EXPECT_EQ(ac->buffer.size(), 2U);  // the partial buffer rides along
    EXPECT_EQ(ac->buffer_weights.size(), 2U);
  }

  AsyncConfig second = cfg;
  second.run.resume_from = dir.str();
  const auto resumed = appfl::core::run_async(second, split);
  EXPECT_EQ(resumed.resumed_from_update, 6U);
  EXPECT_TRUE(same_bits(resumed.final_w, full.final_w));
  EXPECT_EQ(resumed.final_accuracy, full.final_accuracy);
  EXPECT_EQ(resumed.committed_updates, full.committed_updates);
}

TEST(Async, ResumeRejectsStrategyMismatch) {
  // A FedBuff checkpoint restored into a FedAsync run would silently train
  // a different algorithm; the strategy tag must make that a hard error.
  const auto split = split_of(16);
  TempDir dir("appfl_async_strategy_mismatch");
  AsyncConfig first = base_async();
  first.strategy.kind = AsyncStrategyKind::kFedBuff;
  first.run.checkpoint_dir = dir.str();
  first.run.halt_after_round = 3;
  (void)appfl::core::run_async(first, split);
  AsyncConfig second = base_async();  // fedasync
  second.run.resume_from = dir.str();
  EXPECT_THROW(appfl::core::run_async(second, split), appfl::Error);
}

TEST(AsyncIIAdmm, CheckpointsHaltsAndResumesBitIdentical) {
  // Regression: run_async_iiadmm used to silently ignore the checkpoint
  // options and halt_after_round — a resume-configured run wrote nothing
  // and never halted. It now honors the same contract as run_async, down
  // to bit-identical resume of the server's (z_p, λ_p) replicas.
  const auto split = split_of();
  AsyncConfig cfg = base_async();
  cfg.run.algorithm = appfl::core::Algorithm::kIIAdmm;
  cfg.run.rho = 2.0F;
  cfg.run.zeta = 2.0F;
  cfg.devices = {appfl::hw::a100(), appfl::hw::v100()};
  const auto full = appfl::core::run_async_iiadmm(cfg, split);

  TempDir dir("appfl_async_iiadmm_resume");
  AsyncConfig first = cfg;
  first.run.checkpoint_dir = dir.str();
  first.run.checkpoint_every_n_rounds = 4;
  first.run.halt_after_round = 7;
  const auto killed = appfl::core::run_async_iiadmm(first, split);
  EXPECT_EQ(killed.base.applied_updates, 7U);
  EXPECT_GT(killed.base.checkpoints_written, 0U);

  AsyncConfig second = cfg;
  second.run.resume_from = dir.str();
  const auto resumed = appfl::core::run_async_iiadmm(second, split);
  EXPECT_EQ(resumed.base.resumed_from_update, 7U);
  EXPECT_TRUE(resumed.duals_consistent);
  EXPECT_TRUE(same_bits(resumed.base.final_w, full.base.final_w));
  EXPECT_EQ(resumed.base.final_accuracy, full.base.final_accuracy);
}

}  // namespace
