// FedProx as a built-in algorithm.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <cmath>

#include "core/fedprox.hpp"
#include "core/runner.hpp"
#include "data/synth.hpp"

namespace {

using appfl::core::Algorithm;
using appfl::core::RunConfig;

appfl::data::FederatedSplit split_of(std::size_t per_client = 48) {
  appfl::data::SynthImageSpec spec;
  spec.train_per_client = per_client;
  spec.test_size = 128;
  spec.seed = 121;
  return appfl::data::mnist_like(spec);
}

RunConfig prox_cfg(float mu) {
  RunConfig cfg;
  cfg.algorithm = Algorithm::kFedProx;
  cfg.model = appfl::core::ModelKind::kMlp;
  cfg.mlp_hidden = 16;
  cfg.rounds = 6;
  cfg.local_steps = 2;
  cfg.batch_size = 32;
  cfg.lr = 0.1F;
  cfg.fedprox_mu = mu;
  cfg.seed = 121;
  cfg.validate_every_round = false;
  return cfg;
}

TEST(FedProx, MuZeroEqualsMomentumFreeFedAvg) {
  // With μ = 0 the local step is plain SGD, so (at momentum 0) FedProx must
  // reproduce FedAvg's trajectory exactly.
  const auto split = split_of();
  RunConfig prox = prox_cfg(0.0F);
  prox.momentum = 0.0F;
  RunConfig fed = prox;
  fed.algorithm = Algorithm::kFedAvg;
  const auto a = appfl::core::run_federated(prox, split);
  const auto b = appfl::core::run_federated(fed, split);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_NEAR(a.rounds[i].train_loss, b.rounds[i].train_loss, 1e-6)
        << "round " << i + 1;
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(FedProx, LearnsAboveChance) {
  const auto result = appfl::core::run_federated(prox_cfg(0.1F), split_of(96));
  EXPECT_GT(result.final_accuracy, 0.55);
}

TEST(FedProx, ProximalTermKeepsIteratesCloserToGlobal) {
  // Larger μ pulls the local update toward w: the displacement ‖z − w‖
  // after one round must shrink as μ grows.
  const auto split = split_of();
  auto displacement = [&](float mu) {
    RunConfig cfg = prox_cfg(mu);
    auto proto = appfl::core::build_model(cfg, split.test);
    const std::vector<float> w = proto->flat_parameters();
    appfl::core::FedProxClient client(1, cfg, *proto, split.clients[0]);
    const auto z = client.update(w, 1).primal;
    double d2 = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i) {
      const double d = static_cast<double>(z[i]) - w[i];
      d2 += d * d;
    }
    return std::sqrt(d2);
  };
  const double loose = displacement(0.0F);
  const double mid = displacement(1.0F);
  const double tight = displacement(10.0F);
  EXPECT_LT(mid, loose);
  EXPECT_LT(tight, mid);
}

TEST(FedProx, ShipsPrimalOnlyAndSupportsDp) {
  RunConfig cfg = prox_cfg(0.1F);
  cfg.clip = 1.0F;
  cfg.epsilon = 10.0;
  const auto result = appfl::core::run_federated(cfg, split_of(24));
  // Same uplink as FedAvg/IIADMM (primal only).
  RunConfig fed = cfg;
  fed.algorithm = Algorithm::kFedAvg;
  const auto fed_result = appfl::core::run_federated(fed, split_of(24));
  EXPECT_EQ(result.traffic.bytes_up, fed_result.traffic.bytes_up);
}

TEST(FedProx, NegativeMuRejected) {
  RunConfig cfg = prox_cfg(-0.1F);
  EXPECT_THROW(cfg.validate(), appfl::Error);
}

TEST(FedProx, HelpsUnderClientDrift) {
  // Heterogeneity stressor: few clients, many local steps — vanilla FedAvg
  // drifts toward each shard; the proximal pull dampens the oscillation.
  // Assert FedProx stays within a sane band rather than strictly beating
  // FedAvg (which depends on the instance), and that both run.
  appfl::data::FemnistSpec spec;
  spec.num_writers = 4;
  spec.mean_samples_per_writer = 40;
  spec.min_classes_per_writer = 3;
  spec.max_classes_per_writer = 5;
  spec.test_size = 128;
  spec.seed = 122;
  const auto split = appfl::data::femnist_like(spec);
  RunConfig cfg = prox_cfg(0.5F);
  cfg.rounds = 8;
  cfg.local_steps = 6;
  const auto prox = appfl::core::run_federated(cfg, split);
  cfg.algorithm = Algorithm::kFedAvg;
  const auto fed = appfl::core::run_federated(cfg, split);
  EXPECT_GT(prox.final_accuracy, 0.0);
  EXPECT_GT(fed.final_accuracy, 0.0);
}

}  // namespace
