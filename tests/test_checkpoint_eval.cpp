// Checkpoint persistence and the evaluation module.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <filesystem>
#include <fstream>

#include "core/checkpoint.hpp"
#include "core/evaluation.hpp"
#include "core/runner.hpp"
#include "data/synth.hpp"
#include "nn/model_zoo.hpp"

namespace {

using appfl::core::Checkpoint;

Checkpoint sample_checkpoint() {
  Checkpoint ckpt;
  ckpt.algorithm = "IIADMM";
  ckpt.dataset = "mnist-like";
  ckpt.model = "mlp";
  ckpt.rounds_completed = 50;
  ckpt.final_accuracy = 0.9175;
  ckpt.parameters = {1.0F, -2.5F, 0.0F, 3.25F};
  return ckpt;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const Checkpoint ckpt = sample_checkpoint();
  const auto bytes = appfl::core::encode_checkpoint(ckpt);
  EXPECT_EQ(appfl::core::decode_checkpoint(bytes), ckpt);
}

TEST(Checkpoint, FileRoundTrip) {
  const Checkpoint ckpt = sample_checkpoint();
  const std::string path = temp_path("appfl_ckpt_test.bin");
  appfl::core::save_checkpoint(path, ckpt);
  EXPECT_EQ(appfl::core::load_checkpoint(path), ckpt);
  std::filesystem::remove(path);
}

TEST(Checkpoint, SaveIsAtomicAndCleansUpTempFile) {
  // Regression: save used to stream straight into the destination, so a
  // crash mid-write left a torn half-file where a good checkpoint had been.
  // It now writes a temp file and renames it into place.
  const std::string path = temp_path("appfl_ckpt_atomic.bin");
  Checkpoint old_ckpt = sample_checkpoint();
  old_ckpt.rounds_completed = 1;
  appfl::core::save_checkpoint(path, old_ckpt);

  // A stale temp file from a previously killed process must not interfere.
  {
    std::ofstream junk(path + ".tmp", std::ios::binary);
    junk << "torn";
  }
  const Checkpoint new_ckpt = sample_checkpoint();
  appfl::core::save_checkpoint(path, new_ckpt);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(appfl::core::load_checkpoint(path), new_ckpt);
  std::filesystem::remove(path);
}

TEST(Checkpoint, SaveToUnwritableDirectoryThrows) {
  EXPECT_THROW(
      appfl::core::save_checkpoint("/nonexistent_dir_appfl/x.bin",
                                   sample_checkpoint()),
      appfl::Error);
}

TEST(Checkpoint, RejectsMissingFile) {
  EXPECT_THROW(appfl::core::load_checkpoint("/nonexistent/dir/x.bin"),
               appfl::Error);
}

TEST(Checkpoint, RejectsCorruptContent) {
  auto bytes = appfl::core::encode_checkpoint(sample_checkpoint());
  bytes.resize(bytes.size() / 2);  // truncate mid-field
  EXPECT_THROW(appfl::core::decode_checkpoint(bytes), appfl::Error);
}

TEST(Checkpoint, RejectsWrongVersionAndEmptyParams) {
  Checkpoint bad = sample_checkpoint();
  bad.format_version = 99;
  EXPECT_THROW(appfl::core::decode_checkpoint(appfl::core::encode_checkpoint(bad)),
               appfl::Error);
  bad = sample_checkpoint();
  bad.parameters.clear();
  EXPECT_THROW(appfl::core::decode_checkpoint(appfl::core::encode_checkpoint(bad)),
               appfl::Error);
}

TEST(Checkpoint, TrainedModelSurvivesSaveLoadWithIdenticalAccuracy) {
  // End-to-end: train, checkpoint, restore into a fresh model, re-evaluate.
  appfl::data::SynthImageSpec spec;
  spec.train_per_client = 48;
  spec.test_size = 128;
  spec.seed = 51;
  const auto split = appfl::data::mnist_like(spec);
  appfl::core::RunConfig cfg;
  cfg.algorithm = appfl::core::Algorithm::kFedAvg;
  cfg.model = appfl::core::ModelKind::kLogistic;
  cfg.rounds = 4;
  cfg.seed = 51;
  cfg.validate_every_round = false;

  auto model = appfl::core::build_model(cfg, split.test);
  std::vector<std::unique_ptr<appfl::core::BaseClient>> clients;
  for (std::size_t p = 0; p < split.clients.size(); ++p) {
    clients.push_back(appfl::core::build_client(
        static_cast<std::uint32_t>(p + 1), cfg, *model, split.clients[p]));
  }
  auto server = appfl::core::build_server(cfg, std::move(model), split.test,
                                          clients.size());
  const auto result = appfl::core::run_federated(cfg, *server, clients);
  const std::vector<float> w = server->compute_global(99);

  Checkpoint ckpt;
  ckpt.algorithm = "FedAvg";
  ckpt.dataset = split.name;
  ckpt.rounds_completed = static_cast<std::uint32_t>(cfg.rounds);
  ckpt.final_accuracy = result.final_accuracy;
  ckpt.parameters = w;
  const std::string path = temp_path("appfl_ckpt_e2e.bin");
  appfl::core::save_checkpoint(path, ckpt);

  const Checkpoint restored = appfl::core::load_checkpoint(path);
  auto fresh = appfl::core::build_model(cfg, split.test);
  const auto report =
      appfl::core::evaluate(*fresh, restored.parameters, split.test);
  EXPECT_NEAR(report.accuracy, result.final_accuracy, 1e-12);
  std::filesystem::remove(path);
}

TEST(Evaluation, PerfectAndWorstCaseAccuracy) {
  // Logistic model forced to produce a fixed argmax: weights 0, bias favors
  // class 1 ⇒ predicts 1 for everything.
  const auto ds = appfl::data::generate_samples(1, 4, 4, 2, 40, 0.5, 53);
  appfl::rng::Rng r(1);
  auto model = appfl::nn::logistic_regression(16, 2, r);
  std::vector<float> params(model->num_parameters(), 0.0F);
  params[params.size() - 1] = 1.0F;  // bias of class 1
  const auto report = appfl::core::evaluate(*model, params, ds);
  // Accuracy equals the fraction of class-1 samples; recall is 0/1 split.
  EXPECT_NEAR(report.per_class_recall[1], 1.0, 1e-12);
  EXPECT_NEAR(report.per_class_recall[0], 0.0, 1e-12);
  std::size_t class1 = 0;
  for (std::size_t y : ds.labels()) class1 += y;
  EXPECT_NEAR(report.accuracy,
              static_cast<double>(class1) / static_cast<double>(ds.size()),
              1e-12);
}

TEST(Evaluation, ConfusionMatrixSumsToSampleCount) {
  const auto ds = appfl::data::generate_samples(1, 8, 8, 3, 60, 0.8, 54);
  appfl::rng::Rng r(2);
  auto model = appfl::nn::logistic_regression(64, 3, r);
  const auto report =
      appfl::core::evaluate(*model, model->flat_parameters(), ds, 17);
  std::size_t total = 0;
  for (const auto& row : report.confusion) {
    for (std::size_t c : row) total += c;
  }
  EXPECT_EQ(total, 60U);
  EXPECT_EQ(report.samples, 60U);
  EXPECT_GT(report.mean_loss, 0.0);
}

TEST(Evaluation, BalancedAccuracySkipsEmptyClasses) {
  appfl::core::EvalReport report;
  report.per_class_recall = {1.0, -1.0, 0.5};
  EXPECT_NEAR(report.balanced_accuracy(), 0.75, 1e-12);
  report.per_class_recall = {-1.0};
  EXPECT_EQ(report.balanced_accuracy(), 0.0);
}

TEST(Evaluation, EmptyDatasetGivesZeroReport) {
  appfl::data::TensorDataset empty;
  appfl::rng::Rng r(3);
  auto model = appfl::nn::logistic_regression(1, 1, r);
  const auto report =
      appfl::core::evaluate(*model, model->flat_parameters(), empty);
  EXPECT_EQ(report.samples, 0U);
  EXPECT_EQ(report.accuracy, 0.0);
}

}  // namespace
