// Command-line flag parser.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include "util/args.hpp"

namespace {

using appfl::util::ArgParser;

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SpaceSeparatedValues) {
  const auto p = parse({"--rounds", "50", "--algorithm", "iiadmm"});
  EXPECT_EQ(p.get_int("rounds", 0), 50);
  EXPECT_EQ(p.get_string("algorithm", ""), "iiadmm");
}

TEST(Args, EqualsSeparatedValues) {
  const auto p = parse({"--epsilon=3.5", "--name=test run"});
  EXPECT_DOUBLE_EQ(p.get_double("epsilon", 0.0), 3.5);
  EXPECT_EQ(p.get_string("name", ""), "test run");
}

TEST(Args, DefaultsWhenAbsent) {
  const auto p = parse({});
  EXPECT_EQ(p.get_int("rounds", 7), 7);
  EXPECT_EQ(p.get_string("x", "d"), "d");
  EXPECT_DOUBLE_EQ(p.get_double("y", 1.5), 1.5);
  EXPECT_FALSE(p.has("rounds"));
}

TEST(Args, BooleanForms) {
  const auto p = parse({"--verbose", "--dp=false", "--fast=1"});
  EXPECT_TRUE(p.get_bool("verbose", false));
  EXPECT_FALSE(p.get_bool("dp", true));
  EXPECT_TRUE(p.get_bool("fast", false));
  EXPECT_TRUE(p.get_bool("absent", true));
}

TEST(Args, PositionalArguments) {
  const auto p = parse({"run", "--rounds", "3", "extra"});
  ASSERT_EQ(p.positional().size(), 2U);
  EXPECT_EQ(p.positional()[0], "run");
  EXPECT_EQ(p.positional()[1], "extra");
}

TEST(Args, ValuelessFlagFollowedByFlag) {
  const auto p = parse({"--verbose", "--rounds", "3"});
  EXPECT_TRUE(p.get_bool("verbose", false));
  EXPECT_EQ(p.get_int("rounds", 0), 3);
}

TEST(Args, MalformedNumbersThrow) {
  const auto p = parse({"--rounds", "abc", "--lr", "x1"});
  EXPECT_THROW(p.get_int("rounds", 0), appfl::Error);
  EXPECT_THROW(p.get_double("lr", 0.0), appfl::Error);
}

TEST(Args, MalformedBoolThrows) {
  const auto p = parse({"--flag=maybe"});
  EXPECT_THROW(p.get_bool("flag", false), appfl::Error);
}

TEST(Args, UnknownFlagDetection) {
  const auto p = parse({"--rounds", "3", "--typo-flag", "7"});
  (void)p.get_int("rounds", 0);
  const auto unknown = p.unknown_flags();
  ASSERT_EQ(unknown.size(), 1U);
  EXPECT_EQ(unknown[0], "typo-flag");
}

}  // namespace
