// In-process transport: ordering, blocking semantics, concurrent use.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <thread>

#include "comm/mailbox.hpp"

namespace {

using appfl::comm::Datagram;
using appfl::comm::FaultConfig;
using appfl::comm::InProcNetwork;
using appfl::comm::Mailbox;

TEST(Mailbox, FifoOrder) {
  Mailbox box;
  box.push({1, {10}});
  box.push({2, {20}});
  EXPECT_EQ(box.size(), 2U);
  EXPECT_EQ(box.pop().from, 1U);
  EXPECT_EQ(box.pop().from, 2U);
  EXPECT_EQ(box.size(), 0U);
}

TEST(Mailbox, TryPopOnEmptyReturnsNullopt) {
  Mailbox box;
  EXPECT_FALSE(box.try_pop().has_value());
  box.push({3, {}});
  const auto d = box.try_pop();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->from, 3U);
}

TEST(Mailbox, BlockingPopWakesOnPush) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push({9, {1, 2, 3}});
  });
  const Datagram d = box.pop();  // must not deadlock
  EXPECT_EQ(d.from, 9U);
  EXPECT_EQ(d.bytes.size(), 3U);
  producer.join();
}

TEST(Mailbox, ManyProducersOneConsumer) {
  Mailbox box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push({static_cast<std::uint32_t>(p), {}});
      }
    });
  }
  std::vector<int> counts(kProducers, 0);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ++counts[box.pop().from];
  }
  for (int p : counts) EXPECT_EQ(p, kPerProducer);
  for (auto& t : producers) t.join();
}

TEST(Network, RoutesToTheRightEndpoint) {
  InProcNetwork net(3);  // server + 2 clients
  net.send(0, 1, {11});
  net.send(0, 2, {22});
  net.send(2, 0, {33});
  EXPECT_EQ(net.recv(1).bytes[0], 11);
  EXPECT_EQ(net.recv(2).bytes[0], 22);
  const auto d = net.recv(0);
  EXPECT_EQ(d.from, 2U);
  EXPECT_EQ(d.bytes[0], 33);
}

TEST(Network, PendingCounts) {
  InProcNetwork net(2);
  EXPECT_EQ(net.pending(0), 0U);
  net.send(1, 0, {});
  net.send(1, 0, {});
  EXPECT_EQ(net.pending(0), 2U);
}

TEST(Network, RejectsBadEndpoints) {
  InProcNetwork net(2);
  EXPECT_THROW(net.send(0, 5, {}), appfl::Error);
  EXPECT_THROW(net.send(5, 0, {}), appfl::Error);
  EXPECT_THROW(net.recv(7), appfl::Error);
  EXPECT_THROW(InProcNetwork(1), appfl::Error);
}

TEST(Mailbox, CapacityRejectsAndCountsOverflow) {
  Mailbox box;
  box.set_capacity(2);
  EXPECT_TRUE(box.push({1, {}}));
  EXPECT_TRUE(box.push({2, {}}));
  EXPECT_FALSE(box.push({3, {}}));
  EXPECT_FALSE(box.push_front({4, {}}));
  EXPECT_EQ(box.size(), 2U);
  EXPECT_EQ(box.overflows(), 2U);
  // Draining frees capacity; the overflow count is cumulative.
  EXPECT_EQ(box.pop().from, 1U);
  EXPECT_TRUE(box.push({5, {}}));
  EXPECT_EQ(box.overflows(), 2U);
}

TEST(Mailbox, ZeroCapacityIsUnbounded) {
  Mailbox box;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(box.push({1, {}}));
  EXPECT_EQ(box.size(), 1000U);
  EXPECT_EQ(box.overflows(), 0U);
}

TEST(Network, MailboxCapRejectsPrimaryDeliveryAndTellsTheSender) {
  InProcNetwork net(2, {}, 0, /*mailbox_capacity=*/1);
  EXPECT_TRUE(net.send(1, 0, {1}).delivered);
  const auto rejected = net.send(1, 0, {2});
  EXPECT_FALSE(rejected.delivered);
  EXPECT_EQ(net.pending(0), 1U);
  EXPECT_EQ(net.mailbox_overflows(), 1U);
  // The queued datagram is the one whose send succeeded.
  EXPECT_EQ(net.recv(0).bytes[0], 1);
}

TEST(Network, DuplicateCopyRejectionDoesNotChangeTheSendOutcome) {
  // duplicate=1 makes every send enqueue two copies; with capacity 1 the
  // second copy always overflows, but the PRIMARY was delivered, so the
  // sender must still see delivered == true.
  FaultConfig faults;
  faults.duplicate = 1.0;
  InProcNetwork net(2, faults, /*seed=*/5, /*mailbox_capacity=*/1);
  const auto outcome = net.send(1, 0, {7});
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(net.pending(0), 1U);
  EXPECT_EQ(net.mailbox_overflows(), 1U);
  EXPECT_EQ(net.fault_stats().duplicates, 1U);
}

TEST(Network, MovesBytesWithoutCorruption) {
  InProcNetwork net(2);
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  net.send(1, 0, payload);
  const auto d = net.recv(0);
  EXPECT_EQ(d.bytes, payload);
}

}  // namespace
