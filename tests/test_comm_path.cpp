// Fast comm data path: sliced/parallel CRC32 bit-identity, fp16 codec
// bounds, pooled zero-copy encode/decode equivalence, and deterministic
// parallel aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "comm/buffer_pool.hpp"
#include "comm/compression.hpp"
#include "comm/envelope.hpp"
#include "comm/message.hpp"
#include "core/aggregate.hpp"
#include "rng/distributions.hpp"
#include "scoped_kernel_config.hpp"
#include "util/check.hpp"

namespace {

using appfl::testutil::ScopedKernelConfig;

std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::size_t n) {
  appfl::rng::Rng r(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(r.next());
  return v;
}

std::vector<float> gaussian_vec(std::uint64_t seed, std::size_t n,
                                double stddev = 1.0) {
  appfl::rng::Rng r(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(appfl::rng::normal(r, 0.0, stddev));
  }
  return v;
}

// -- CRC32 -------------------------------------------------------------------

TEST(Crc32, KnownAnswer) {
  // The universal CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  const std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(s), 9};
  EXPECT_EQ(appfl::comm::crc32(bytes), 0xCBF43926U);
  EXPECT_EQ(appfl::comm::crc32_bytewise(bytes), 0xCBF43926U);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(appfl::comm::crc32({}), 0U);
  EXPECT_EQ(appfl::comm::crc32_bytewise({}), 0U);
}

TEST(Crc32, SlicedMatchesBytewiseOnRandomBuffers) {
  // Odd sizes exercise the slicing tail; small sizes stay below the
  // parallel threshold so this isolates the slicing-by-8 path.
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                        std::size_t{9}, std::size_t{63}, std::size_t{1024},
                        std::size_t{65537}}) {
    const auto buf = random_bytes(n, n);
    EXPECT_EQ(appfl::comm::crc32(buf), appfl::comm::crc32_bytewise(buf))
        << "n=" << n;
  }
}

TEST(Crc32, ParallelMatchesBytewiseAcrossThreadCounts) {
  // Above kParallelCrcThreshold the CRC fans out over the kernel pool;
  // the fixed chunk width must make the answer thread-count invariant.
  const auto buf =
      random_bytes(99, appfl::comm::kParallelCrcThreshold * 3 + 12345);
  const std::uint32_t expected = appfl::comm::crc32_bytewise(buf);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ScopedKernelConfig scoped(appfl::tensor::KernelBackend::kTiled, threads);
    EXPECT_EQ(appfl::comm::crc32(buf), expected) << "threads=" << threads;
  }
}

TEST(Crc32, CombineSplicesAnySplit) {
  const auto buf = random_bytes(7, 4096);
  const std::uint32_t whole = appfl::comm::crc32_bytewise(buf);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{513},
                            std::size_t{4095}, std::size_t{4096}}) {
    const std::span<const std::uint8_t> all{buf};
    const auto a = appfl::comm::crc32_bytewise(all.subspan(0, split));
    const auto b = appfl::comm::crc32_bytewise(all.subspan(split));
    EXPECT_EQ(appfl::comm::crc32_combine(a, b, buf.size() - split), whole)
        << "split=" << split;
  }
}

TEST(Envelope, SealInPlaceMatchesSeal) {
  const auto payload = random_bytes(3, 1000);
  const auto sealed = appfl::comm::seal_envelope(payload);

  std::vector<std::uint8_t> in_place(appfl::comm::kEnvelopeOverhead, 0);
  in_place.insert(in_place.end(), payload.begin(), payload.end());
  appfl::comm::seal_envelope_in_place(in_place);
  EXPECT_EQ(in_place, sealed);

  const auto opened = appfl::comm::open_envelope(in_place);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(std::equal(opened->begin(), opened->end(), payload.begin(),
                         payload.end()));
}

// -- fp16 codec --------------------------------------------------------------

TEST(Fp16, ExactValuesRoundTripExactly) {
  // Values representable in binary16 must survive the round trip bit-exactly.
  for (float v : {0.0F, -0.0F, 1.0F, -1.0F, 0.5F, 2.0F, 65504.0F, -65504.0F,
                  0.000060975551605224609375F /* smallest normal half */}) {
    const float back =
        appfl::comm::half_to_float(appfl::comm::float_to_half(v));
    EXPECT_TRUE(appfl::comm::same_bits(back, v)) << v;
  }
}

TEST(Fp16, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(appfl::comm::half_to_float(appfl::comm::float_to_half(inf)), inf);
  EXPECT_EQ(appfl::comm::half_to_float(appfl::comm::float_to_half(-inf)),
            -inf);
  EXPECT_TRUE(std::isnan(
      appfl::comm::half_to_float(appfl::comm::float_to_half(nan))));
  // Overflow rounds to inf; deep underflow flushes to signed zero.
  EXPECT_EQ(appfl::comm::half_to_float(appfl::comm::float_to_half(1.0e6F)),
            inf);
  const float tiny = appfl::comm::half_to_float(
      appfl::comm::float_to_half(-1.0e-9F));
  EXPECT_TRUE(appfl::comm::same_bits(tiny, -0.0F));
}

TEST(Fp16, RelativeErrorWithinBound) {
  const auto v = gaussian_vec(11, 20000, 1.0);
  for (float x : v) {
    const float back =
        appfl::comm::half_to_float(appfl::comm::float_to_half(x));
    // Normal-range values keep 11 significand bits: |err| ≤ 2⁻¹¹·|x|.
    EXPECT_LE(std::abs(back - x),
              appfl::comm::kFp16RelativeErrorBound * std::abs(x) + 1e-24)
        << x;
  }
}

TEST(Fp16, WireRoundTripAndSize) {
  const auto v = gaussian_vec(12, 4097);
  const auto bytes = appfl::comm::encode_fp16(v);
  EXPECT_EQ(bytes.size(), 8 + 2 * v.size());
  const auto back = appfl::comm::decode_fp16(bytes);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_TRUE(appfl::comm::same_bits(
        back[i],
        appfl::comm::half_to_float(appfl::comm::float_to_half(v[i]))))
        << i;
  }
}

TEST(Fp16, RejectsDamagedPayloads) {
  auto bytes = appfl::comm::encode_fp16(gaussian_vec(13, 16));
  bytes.pop_back();
  EXPECT_THROW((void)appfl::comm::decode_fp16(bytes), appfl::Error);
}

// -- Buffer pool -------------------------------------------------------------

TEST(BufferPool, RecyclesCapacity) {
  appfl::comm::BufferPool pool(2);
  auto a = pool.acquire();
  a.resize(4096);
  pool.release(std::move(a));
  auto b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), 4096U);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2U);
  EXPECT_EQ(stats.reuses, 1U);
}

TEST(BufferPool, CapsFreeList) {
  appfl::comm::BufferPool pool(1);
  for (int i = 0; i < 3; ++i) {
    std::vector<std::uint8_t> buf(64);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.free_buffers(), 1U);
  EXPECT_EQ(pool.stats().dropped, 2U);
}

// -- Zero-copy message codecs ------------------------------------------------

appfl::comm::Message sample_message() {
  appfl::comm::Message m;
  m.kind = appfl::comm::MessageKind::kLocalUpdate;
  m.sender = 3;
  m.receiver = 0;
  m.round = 7;
  m.primal = gaussian_vec(21, 999);
  m.dual = gaussian_vec(22, 999);
  m.sample_count = 1234;
  m.loss = 0.625;
  m.rho = 2.5;
  return m;
}

TEST(MessageAppend, MatchesFreshEncodes) {
  const auto m = sample_message();
  std::vector<std::uint8_t> raw_prefixed(5, 0xAB);
  appfl::comm::encode_raw_append(m, raw_prefixed);
  const auto raw = appfl::comm::encode_raw(m);
  ASSERT_EQ(raw_prefixed.size(), raw.size() + 5);
  EXPECT_TRUE(std::equal(raw.begin(), raw.end(), raw_prefixed.begin() + 5));

  std::vector<std::uint8_t> proto_prefixed(5, 0xCD);
  appfl::comm::encode_proto_append(m, proto_prefixed);
  const auto proto = appfl::comm::encode_proto(m);
  ASSERT_EQ(proto_prefixed.size(), proto.size() + 5);
  EXPECT_TRUE(
      std::equal(proto.begin(), proto.end(), proto_prefixed.begin() + 5));
  EXPECT_EQ(proto.size(), appfl::comm::proto_encoded_size(m));
}

TEST(MessageView, DetachEqualsOwningDecode) {
  auto m = sample_message();
  m.codec = 1;
  m.packed = random_bytes(33, 77);
  m.primal.clear();  // codec messages carry packed, not primal

  const auto raw = appfl::comm::encode_raw(m);
  EXPECT_EQ(appfl::comm::decode_raw_view(raw).detach(),
            appfl::comm::decode_raw(raw));
  EXPECT_EQ(appfl::comm::decode_raw(raw), m);

  const auto proto = appfl::comm::encode_proto(m);
  EXPECT_EQ(appfl::comm::decode_proto_view(proto).detach(),
            appfl::comm::decode_proto(proto));
  EXPECT_EQ(appfl::comm::decode_proto(proto), m);
}

TEST(MessageView, DetachIntoReusesCapacity) {
  const auto m = sample_message();
  const auto bytes = appfl::comm::encode_raw(m);
  appfl::comm::Message reused;
  reused.primal.reserve(2000);
  const float* before = reused.primal.data();
  appfl::comm::decode_raw_view(bytes).detach_into(reused);
  EXPECT_EQ(reused, m);
  EXPECT_EQ(reused.primal.data(), before);  // capacity survived
}

TEST(MessageView, ViewRejectsSameMalformedInputs) {
  auto bytes = appfl::comm::encode_raw(sample_message());
  bytes.pop_back();
  EXPECT_THROW((void)appfl::comm::decode_raw_view(bytes), appfl::Error);
  bytes.clear();
  EXPECT_THROW((void)appfl::comm::decode_raw_view(bytes), appfl::Error);
}

// -- Deterministic parallel aggregation --------------------------------------

// Serial references: the exact pre-PR per-element expressions.
std::vector<float> serial_weighted_sum(
    const std::vector<std::vector<float>>& vecs,
    const std::vector<float>& weights, std::size_t n) {
  std::vector<float> w(n, 0.0F);
  for (std::size_t p = 0; p < vecs.size(); ++p) {
    for (std::size_t i = 0; i < n; ++i) w[i] += weights[p] * vecs[p][i];
  }
  return w;
}

TEST(Aggregate, WeightedSumBitIdenticalAcrossThreadCounts) {
  // Above kParallelAggregateThreshold so the parallel path actually runs.
  const std::size_t n = appfl::core::kParallelAggregateThreshold * 2 + 17;
  const std::size_t P = 7;
  std::vector<std::vector<float>> vecs;
  std::vector<float> weights;
  std::vector<appfl::core::WeightedVec> terms;
  for (std::size_t p = 0; p < P; ++p) {
    vecs.push_back(gaussian_vec(40 + p, n));
    weights.push_back(0.05F + 0.1F * static_cast<float>(p));
  }
  for (std::size_t p = 0; p < P; ++p) terms.push_back({vecs[p], weights[p]});
  const auto expected = serial_weighted_sum(vecs, weights, n);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ScopedKernelConfig scoped(appfl::tensor::KernelBackend::kTiled, threads);
    std::vector<float> w(n, -1.0F);  // must be overwritten, not accumulated
    appfl::core::weighted_sum(terms, w);
    ASSERT_EQ(w.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(appfl::comm::same_bits(w[i], expected[i]))
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Aggregate, ConsensusSumBitIdenticalAcrossThreadCounts) {
  const std::size_t n = appfl::core::kParallelAggregateThreshold * 2 + 5;
  const std::size_t P = 5;
  const float inv_p = 1.0F / static_cast<float>(P);
  const float inv_rho = 1.0F / 3.0F;
  std::vector<std::vector<float>> primal, dual;
  std::vector<appfl::core::ConsensusTerm> terms;
  for (std::size_t p = 0; p < P; ++p) {
    primal.push_back(gaussian_vec(60 + p, n));
    dual.push_back(gaussian_vec(80 + p, n));
  }
  for (std::size_t p = 0; p < P; ++p) terms.push_back({primal[p], dual[p]});

  std::vector<float> expected(n, 0.0F);
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] += inv_p * (primal[p][i] - inv_rho * dual[p][i]);
    }
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ScopedKernelConfig scoped(appfl::tensor::KernelBackend::kTiled, threads);
    std::vector<float> w(n);
    appfl::core::consensus_sum(terms, inv_p, inv_rho, w);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(appfl::comm::same_bits(w[i], expected[i]))
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Aggregate, WeightedDeltaBitIdenticalAcrossThreadCounts) {
  const std::size_t n = appfl::core::kParallelAggregateThreshold * 2 + 3;
  const std::size_t P = 4;
  const auto base = gaussian_vec(99, n);
  std::vector<std::vector<float>> vecs;
  std::vector<appfl::core::DeltaTerm> terms;
  for (std::size_t p = 0; p < P; ++p) vecs.push_back(gaussian_vec(120 + p, n));
  for (std::size_t p = 0; p < P; ++p) {
    terms.push_back({vecs[p], 1.0 / static_cast<double>(P)});
  }

  std::vector<double> expected(n, 0.0);
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] += terms[p].weight *
                     (static_cast<double>(vecs[p][i]) - base[i]);
    }
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ScopedKernelConfig scoped(appfl::tensor::KernelBackend::kTiled, threads);
    std::vector<double> delta(n);
    appfl::core::weighted_delta(terms, base, delta);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(appfl::comm::same_bits(delta[i], expected[i]))
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(Aggregate, SmallInputsStaySerialAndCorrect) {
  const std::size_t n = 33;  // below threshold
  std::vector<std::vector<float>> vecs = {gaussian_vec(1, n),
                                          gaussian_vec(2, n)};
  std::vector<appfl::core::WeightedVec> terms = {{vecs[0], 0.25F},
                                                 {vecs[1], 0.75F}};
  std::vector<float> w(n);
  appfl::core::weighted_sum(terms, w);
  const auto expected = serial_weighted_sum(vecs, {0.25F, 0.75F}, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(appfl::comm::same_bits(w[i], expected[i])) << i;
  }
}

}  // namespace
