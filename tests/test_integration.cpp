// End-to-end integration: whole-stack runs through the runner covering the
// combinations the unit tests exercise in isolation — paper CNN, gRPC wire,
// smart-grid data, lr schedules, weight decay, DP + sampling together.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <limits>

#include "core/runner.hpp"
#include "data/synth.hpp"

namespace {

using appfl::core::Algorithm;
using appfl::core::RunConfig;

TEST(Integration, PaperCnnTrainsThroughTheFullStack) {
  // Small images keep the conv work tractable on one core.
  appfl::data::SynthImageSpec spec;
  spec.channels = 1;
  spec.height = 28;
  spec.width = 28;
  spec.num_clients = 2;
  spec.train_per_client = 12;
  spec.test_size = 24;
  spec.seed = 101;
  auto split = appfl::data::mnist_like(spec);

  RunConfig cfg;
  cfg.algorithm = Algorithm::kIIAdmm;
  cfg.model = appfl::core::ModelKind::kPaperCnn;
  cfg.rounds = 2;
  cfg.local_steps = 1;
  cfg.batch_size = 12;
  cfg.rho = 2.0F;
  cfg.zeta = 2.0F;
  cfg.seed = 101;
  cfg.validate_every_round = false;
  const auto result = appfl::core::run_federated(cfg, split);
  EXPECT_EQ(result.rounds.size(), 2U);
  EXPECT_GT(result.model_parameters, 50000U);  // conv stack is non-trivial
  EXPECT_GT(result.rounds.back().train_loss, 0.0);
}

TEST(Integration, GrpcProtocolFullRunWithDpAndSampling) {
  appfl::data::SynthImageSpec spec;
  spec.num_clients = 6;
  spec.train_per_client = 24;
  spec.test_size = 48;
  spec.seed = 102;
  const auto split = appfl::data::mnist_like(spec);

  RunConfig cfg;
  cfg.algorithm = Algorithm::kFedAvg;
  cfg.model = appfl::core::ModelKind::kLogistic;
  cfg.rounds = 4;
  cfg.local_steps = 1;
  cfg.protocol = appfl::comm::Protocol::kGrpc;
  cfg.clip = 1.0F;
  cfg.epsilon = 10.0;
  cfg.client_fraction = 0.5;
  cfg.seed = 102;
  cfg.validate_every_round = false;
  const auto result = appfl::core::run_federated(cfg, split);
  EXPECT_EQ(result.traffic.messages_up, 4U * 3U);  // half of 6 per round
  for (const auto& rec : result.comm_rounds) {
    EXPECT_EQ(rec.client_transfer_s.size(), 3U);
  }
}

TEST(Integration, SmartGridSplitLearnsWithEveryAlgorithm) {
  appfl::data::SmartGridSpec spec;
  spec.num_utilities = 4;
  spec.train_per_utility = 48;
  spec.test_size = 128;
  spec.seed = 103;
  const auto split = appfl::data::smartgrid_like(spec);
  ASSERT_EQ(split.clients[0].sample_shape(),
            (appfl::tensor::Shape{1, 1, 96}));
  ASSERT_EQ(split.test.num_classes(), 4U);

  for (Algorithm alg :
       {Algorithm::kFedAvg, Algorithm::kIceAdmm, Algorithm::kIIAdmm}) {
    RunConfig cfg;
    cfg.algorithm = alg;
    cfg.model = appfl::core::ModelKind::kMlp;
    cfg.mlp_hidden = 16;
    cfg.rounds = 8;
    cfg.local_steps = 2;
    cfg.rho = 2.0F;
    cfg.zeta = 2.0F;
    cfg.seed = 103;
    cfg.validate_every_round = false;
    const auto result = appfl::core::run_federated(cfg, split);
    EXPECT_GT(result.final_accuracy, 0.5)  // 4 classes, chance 0.25
        << appfl::core::to_string(alg);
  }
}

TEST(Integration, SmartGridUtilitiesAreFeatureNonIid) {
  appfl::data::SmartGridSpec spec;
  spec.num_utilities = 2;
  spec.train_per_utility = 200;
  spec.test_size = 8;
  spec.seed = 104;
  const auto split = appfl::data::smartgrid_like(spec);
  auto mean_of = [](const appfl::data::TensorDataset& ds) {
    double acc = 0.0;
    for (float v : ds.inputs().data()) acc += v;
    return acc / static_cast<double>(ds.inputs().size());
  };
  // Regional styles shift the per-utility feature means.
  EXPECT_GT(std::abs(mean_of(split.clients[0]) - mean_of(split.clients[1])),
            0.02);
}

TEST(Integration, LrScheduleChangesTheTrajectory) {
  appfl::data::SynthImageSpec spec;
  spec.train_per_client = 32;
  spec.test_size = 32;
  spec.seed = 105;
  const auto split = appfl::data::mnist_like(spec);
  RunConfig cfg;
  cfg.algorithm = Algorithm::kFedAvg;
  cfg.model = appfl::core::ModelKind::kLogistic;
  cfg.rounds = 6;
  cfg.seed = 105;
  cfg.validate_every_round = false;
  const auto constant = appfl::core::run_federated(cfg, split);
  cfg.lr_schedule = appfl::nn::LrSchedule::kCosine;
  const auto cosine = appfl::core::run_federated(cfg, split);
  // Round 1 is identical (cosine starts at base lr); later rounds differ.
  EXPECT_EQ(constant.rounds[0].train_loss, cosine.rounds[0].train_loss);
  EXPECT_NE(constant.rounds.back().train_loss,
            cosine.rounds.back().train_loss);
}

TEST(Integration, WeightDecayRegularizesTheGlobalModel) {
  appfl::data::SynthImageSpec spec;
  spec.train_per_client = 32;
  spec.test_size = 32;
  spec.seed = 106;
  const auto split = appfl::data::mnist_like(spec);
  auto norm_after = [&](float wd) {
    RunConfig cfg;
    cfg.algorithm = Algorithm::kFedAvg;
    cfg.model = appfl::core::ModelKind::kLogistic;
    cfg.rounds = 5;
    cfg.local_steps = 2;
    cfg.weight_decay = wd;
    cfg.seed = 106;
    cfg.validate_every_round = false;
    auto model = appfl::core::build_model(cfg, split.test);
    std::vector<std::unique_ptr<appfl::core::BaseClient>> clients;
    for (std::size_t p = 0; p < split.clients.size(); ++p) {
      clients.push_back(appfl::core::build_client(
          static_cast<std::uint32_t>(p + 1), cfg, *model, split.clients[p]));
    }
    auto server = appfl::core::build_server(cfg, std::move(model), split.test,
                                            clients.size());
    appfl::core::run_federated(cfg, *server, clients);
    const auto w = server->compute_global(99);
    double n2 = 0.0;
    for (float v : w) n2 += static_cast<double>(v) * v;
    return n2;
  };
  EXPECT_LT(norm_after(0.05F), norm_after(0.0F));
}

TEST(Integration, EverythingAtOnce) {
  // Adaptive rho + client sampling + gRPC + gradient-mode DP would mix; the
  // config layer forbids adaptive rho with finite epsilon, so use infinite
  // budget with gradient mode off and exercise the rest together.
  appfl::data::FemnistSpec spec;
  spec.num_writers = 8;
  spec.mean_samples_per_writer = 16;
  spec.test_size = 32;
  spec.seed = 107;
  const auto split = appfl::data::femnist_like(spec);

  RunConfig cfg;
  cfg.algorithm = Algorithm::kIIAdmm;
  cfg.model = appfl::core::ModelKind::kMlp;
  cfg.mlp_hidden = 16;
  cfg.rounds = 3;
  cfg.local_steps = 1;
  cfg.adaptive_rho = true;
  cfg.rho = 2.0F;
  cfg.zeta = 1.0F;
  cfg.clip = 0.0F;
  cfg.epsilon = std::numeric_limits<double>::infinity();
  cfg.client_fraction = 0.5;
  cfg.protocol = appfl::comm::Protocol::kGrpc;
  cfg.seed = 107;
  cfg.validate_every_round = true;
  const auto result = appfl::core::run_federated(cfg, split);
  EXPECT_EQ(result.rounds.size(), 3U);
  for (const auto& r : result.rounds) EXPECT_EQ(r.participants, 4U);
}

}  // namespace
