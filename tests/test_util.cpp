// Unit tests for the util module: checks, logging, thread pool, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using appfl::Error;
using appfl::util::CsvWriter;
using appfl::util::Stopwatch;
using appfl::util::TextTable;
using appfl::util::ThreadPool;

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(APPFL_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsError) {
  EXPECT_THROW(APPFL_CHECK(false), Error);
}

TEST(Check, MessageCarriesContext) {
  try {
    APPFL_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Logging, LevelRoundTrips) {
  const auto prev = appfl::log::level();
  appfl::log::set_level(appfl::log::Level::kError);
  EXPECT_EQ(appfl::log::level(), appfl::log::Level::kError);
  appfl::log::set_level(prev);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, SubmitReturnsUsableFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] {});
  EXPECT_NO_THROW(fut.get());
}

TEST(ThreadPool, DefaultThreadsAtLeastTwo) {
  EXPECT_GE(ThreadPool::default_threads(), 2U);
}

TEST(ThreadPool, ParallelForRangeCoversPartition) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);
  std::atomic<int> chunks{0};
  pool.parallel_for_range(97, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
    ++chunks;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // At most ~4 chunks per worker.
  EXPECT_LE(chunks.load(), 12);
  EXPECT_GE(chunks.load(), 1);
}

TEST(ThreadPool, OnWorkerThreadDetectsPoolContext) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(2);
  std::atomic<int> seen_on_worker{0};
  pool.parallel_for(8, [&](std::size_t) {
    if (ThreadPool::on_worker_thread()) ++seen_on_worker;
  });
  EXPECT_EQ(seen_on_worker.load(), 8);
  EXPECT_FALSE(ThreadPool::on_worker_thread());  // caller is unaffected
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2U);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  CsvWriter w({"k", "v"});
  w.add_row({"comma,here", "quote\"here"});
  std::ostringstream os;
  w.print(os);
  EXPECT_NE(os.str().find("\"comma,here\""), std::string::npos);
  EXPECT_NE(os.str().find("\"quote\"\"here\""), std::string::npos);
}

TEST(CsvWriter, WritesFile) {
  CsvWriter w({"x"});
  w.add_row({"1"});
  const std::string path = testing::TempDir() + "/appfl_csv_test.csv";
  EXPECT_NO_THROW(w.write_file(path));
}

TEST(Fmt, FormatsFixedDigits) {
  EXPECT_EQ(appfl::util::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(appfl::util::fmt(2.0, 0), "2");
}

}  // namespace
