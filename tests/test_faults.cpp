// Fault plane: deterministic injection, CRC envelopes, deadline gather,
// retransmission, straggler policy, and end-to-end degradation bounds.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <bit>
#include <limits>
#include <tuple>

#include "comm/communicator.hpp"
#include "comm/envelope.hpp"
#include "comm/mailbox.hpp"
#include "core/iiadmm.hpp"
#include "core/runner.hpp"
#include "data/synth.hpp"

namespace {

using appfl::comm::Communicator;
using appfl::comm::FaultConfig;
using appfl::comm::FaultInjector;
using appfl::comm::Message;
using appfl::comm::MessageKind;
using appfl::comm::Protocol;
using appfl::comm::ReliabilityConfig;

Message global_msg(std::uint32_t round, std::size_t m) {
  Message msg;
  msg.kind = MessageKind::kGlobalModel;
  msg.sender = 0;
  msg.round = round;
  msg.primal.assign(m, 0.5F);
  return msg;
}

Message local_msg(std::uint32_t client, std::uint32_t round, std::size_t m) {
  Message msg;
  msg.kind = MessageKind::kLocalUpdate;
  msg.sender = client;
  msg.round = round;
  msg.primal.assign(m, static_cast<float>(client));
  msg.sample_count = 10 * client;
  return msg;
}

// -- Configuration semantics ---------------------------------------------------

TEST(FaultConfig, EnabledOnlyWhenSomethingCanGoWrong) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  cfg.delay_max_s = 9.0;  // a bound alone injects nothing
  EXPECT_FALSE(cfg.enabled());
  for (double FaultConfig::*knob :
       {&FaultConfig::drop, &FaultConfig::duplicate, &FaultConfig::reorder,
        &FaultConfig::corrupt, &FaultConfig::delay}) {
    FaultConfig one;
    one.*knob = 0.1;
    EXPECT_TRUE(one.enabled());
  }
  FaultConfig dead;
  dead.dead = {3};
  EXPECT_TRUE(dead.enabled());
}

TEST(FaultConfig, ValidateRejectsBadRanges) {
  FaultConfig cfg;
  cfg.drop = 1.5;
  EXPECT_THROW(cfg.validate(), appfl::Error);
  cfg.drop = -0.1;
  EXPECT_THROW(cfg.validate(), appfl::Error);
  cfg.drop = 0.0;
  cfg.delay = 0.5;
  cfg.delay_max_s = 0.0;
  EXPECT_THROW(cfg.validate(), appfl::Error);
}

// -- Deterministic injection ---------------------------------------------------

FaultConfig mixed_faults() {
  FaultConfig cfg;
  cfg.drop = 0.3;
  cfg.duplicate = 0.2;
  cfg.reorder = 0.2;
  cfg.corrupt = 0.2;
  cfg.delay = 0.5;
  cfg.delay_max_s = 1.0;
  return cfg;
}

bool same_verdict(const FaultInjector::Verdict& a,
                  const FaultInjector::Verdict& b) {
  return a.drop == b.drop && a.duplicate == b.duplicate &&
         a.reorder == b.reorder && a.corrupt == b.corrupt &&
         a.corrupt_offset == b.corrupt_offset &&
         a.corrupt_mask == b.corrupt_mask && a.delay_s == b.delay_s;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultInjector a(mixed_faults(), 42);
  FaultInjector b(mixed_faults(), 42);
  FaultInjector c(mixed_faults(), 43);
  bool seed_matters = false;
  for (int i = 0; i < 50; ++i) {
    const auto va = a.judge(1, 0, 64);
    EXPECT_TRUE(same_verdict(va, b.judge(1, 0, 64))) << "message " << i;
    if (!same_verdict(va, c.judge(1, 0, 64))) seed_matters = true;
  }
  EXPECT_TRUE(seed_matters);
}

TEST(FaultInjector, ScheduleIsPerLinkIndependentOfInterleaving) {
  // The runner judges links from pool threads in nondeterministic order; the
  // per-link fault sequence must not depend on that interleaving.
  FaultInjector seq(mixed_faults(), 7);
  std::vector<FaultInjector::Verdict> link1, link2;
  for (int i = 0; i < 20; ++i) link1.push_back(seq.judge(1, 0, 128));
  for (int i = 0; i < 20; ++i) link2.push_back(seq.judge(2, 0, 128));

  FaultInjector mixed(mixed_faults(), 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(same_verdict(mixed.judge(2, 0, 128), link2[i])) << i;
    EXPECT_TRUE(same_verdict(mixed.judge(1, 0, 128), link1[i])) << i;
  }
}

TEST(FaultInjector, DeadEndpointDropsEverything) {
  FaultConfig cfg;
  cfg.dead = {2};
  FaultInjector inj(cfg, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(inj.judge(2, 0, 16).drop);  // uplink from the dead client
    EXPECT_TRUE(inj.judge(0, 2, 16).drop);  // downlink to it
    EXPECT_FALSE(inj.judge(1, 0, 16).drop);  // everyone else unaffected
  }
  EXPECT_EQ(inj.stats().drops, 20U);
}

TEST(FaultConfig, EnvOverridesApply) {
  ::setenv("APPFL_FAULT_DROP", "0.25", 1);
  ::setenv("APPFL_FAULT_DEAD", "3,9", 1);
  const FaultConfig cfg = appfl::comm::fault_config_from_env({});
  ::unsetenv("APPFL_FAULT_DROP");
  ::unsetenv("APPFL_FAULT_DEAD");
  EXPECT_DOUBLE_EQ(cfg.drop, 0.25);
  EXPECT_EQ(cfg.dead, (std::vector<std::uint32_t>{3, 9}));
  EXPECT_TRUE(cfg.enabled());
}

TEST(FaultConfig, EnvIgnoresUnparseableValues) {
  // Garbage must not be silently read as 0 (which would quietly disable a
  // fault campaign): the base value survives and bad dead-list tokens are
  // skipped.
  ::setenv("APPFL_FAULT_DROP", "not-a-number", 1);
  ::setenv("APPFL_FAULT_DELAY", "0.5x", 1);
  ::setenv("APPFL_FAULT_DEAD", "3,two,9", 1);
  FaultConfig base;
  base.drop = 0.125;
  const FaultConfig cfg = appfl::comm::fault_config_from_env(base);
  ::unsetenv("APPFL_FAULT_DROP");
  ::unsetenv("APPFL_FAULT_DELAY");
  ::unsetenv("APPFL_FAULT_DEAD");
  EXPECT_DOUBLE_EQ(cfg.drop, 0.125);  // garbage leaves the base value
  EXPECT_DOUBLE_EQ(cfg.delay, 0.0);   // trailing junk rejected, not truncated
  EXPECT_EQ(cfg.dead, (std::vector<std::uint32_t>{3, 9}));
}

// -- CRC envelope --------------------------------------------------------------

TEST(Envelope, RoundTripsAndDetectsEverySingleBitFlip) {
  std::vector<std::uint8_t> payload(32);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37 + 5);
  }
  const auto frame = appfl::comm::seal_envelope(payload);
  ASSERT_EQ(frame.size(), payload.size() + appfl::comm::kEnvelopeOverhead);
  const auto open = appfl::comm::open_envelope(frame);
  ASSERT_TRUE(open.has_value());
  EXPECT_TRUE(std::equal(open->begin(), open->end(), payload.begin(),
                         payload.end()));
  // CRC-32 detects all single-bit errors; a flip in the header (magic or
  // checksum field) must be caught too.
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto damaged = frame;
      damaged[byte] ^= static_cast<std::uint8_t>(1U << bit);
      EXPECT_FALSE(appfl::comm::open_envelope(damaged).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
  EXPECT_FALSE(appfl::comm::open_envelope(
                   std::span<const std::uint8_t>(frame.data(), 7))
                   .has_value());
}

class FaultProtocolTest : public testing::TestWithParam<Protocol> {};

TEST_P(FaultProtocolTest, CorruptionIsCountedNeverFatal) {
  ReliabilityConfig rel;
  rel.faults.corrupt = 1.0;  // every message damaged in flight
  rel.gather_timeout_s = 1.0;
  Communicator comm(GetParam(), 1, 1, {}, rel);
  EXPECT_TRUE(comm.fault_plane_active());
  // Corrupted deliveries are CRC-discarded at the server, never acked: the
  // client must burn its whole retry budget and report the update lost.
  EXPECT_FALSE(comm.send_update(1, local_msg(1, 1, 64)));
  const auto locals = comm.gather_locals(1, 1);  // must not throw or hang
  EXPECT_TRUE(locals.empty());
  const auto stats = comm.stats();
  EXPECT_GE(stats.corruptions, 1U);
  EXPECT_GE(stats.crc_failures, 1U);
  EXPECT_EQ(stats.retries, rel.max_retries);
  EXPECT_EQ(stats.gather_timeouts, 1U);
}

TEST_P(FaultProtocolTest, CorruptedUplinkAcksMatchTheGatherExactly) {
  // Regression: a delivered-but-corrupted uplink used to report success
  // even though the server CRC-discards the frame, so the update vanished
  // with no retransmit. Corruption must behave like a drop to the sender:
  // retransmitted, and acked ⇔ gathered must hold exactly.
  ReliabilityConfig rel;
  rel.faults.corrupt = 0.5;
  rel.gather_timeout_s = 30.0;
  Communicator comm(GetParam(), 4, 9, {}, rel);
  std::size_t acked = 0;
  for (std::uint32_t c = 1; c <= 4; ++c) {
    acked += comm.send_update(c, local_msg(c, 1, 32)) ? 1U : 0U;
  }
  const auto locals = comm.gather_locals(1, 4);
  EXPECT_EQ(locals.size(), acked);  // acked ⇔ gathered, exactly
  const auto stats = comm.stats();
  EXPECT_GT(stats.corruptions, 0U);
  EXPECT_GT(stats.retries, 0U);
  EXPECT_GT(stats.crc_failures, 0U);
  EXPECT_GT(acked, 0U);  // with 5 attempts at p=0.5 someone gets through
}

TEST_P(FaultProtocolTest, DeadlineGatherReturnsPartialSetWithDeadClient) {
  ReliabilityConfig rel;
  rel.faults.dead = {2};
  rel.gather_timeout_s = 1.0;
  Communicator comm(GetParam(), 3, 1, {}, rel);
  comm.broadcast_global(global_msg(1, 32));
  for (std::uint32_t c = 1; c <= 3; ++c) {
    const auto g = comm.try_recv_global(c, 1);
    if (c == 2) {
      EXPECT_FALSE(g.has_value());  // downlink to the dead client was lost
      continue;
    }
    ASSERT_TRUE(g.has_value());
    comm.send_update(c, local_msg(c, 1, 32));
  }
  const auto locals = comm.gather_locals(1, 3);
  ASSERT_EQ(locals.size(), 2U);
  EXPECT_EQ(locals[0].sender, 1U);
  EXPECT_EQ(locals[1].sender, 3U);
  const auto stats = comm.stats();
  EXPECT_GT(stats.drops, 0U);
  EXPECT_EQ(stats.gather_timeouts, 1U);
}

TEST_P(FaultProtocolTest, DuplicateDeliveriesAreDiscardedAcrossRounds) {
  ReliabilityConfig rel;
  rel.faults.duplicate = 1.0;  // every delivery arrives twice
  rel.gather_timeout_s = 1.0;
  Communicator comm(GetParam(), 2, 1, {}, rel);
  comm.send_update(1, local_msg(1, 1, 16));
  comm.send_update(2, local_msg(2, 1, 16));
  const auto round1 = comm.gather_locals(1, 2);
  ASSERT_EQ(round1.size(), 2U);
  EXPECT_EQ(comm.stats().duplicates, 2U);
  // The second copy of the last-considered update is still queued; next
  // round it is stale and must be discarded, not absorbed.
  comm.send_update(1, local_msg(1, 2, 16));
  comm.send_update(2, local_msg(2, 2, 16));
  const auto round2 = comm.gather_locals(2, 2);
  ASSERT_EQ(round2.size(), 2U);
  for (const auto& m : round2) EXPECT_EQ(m.round, 2U);
  EXPECT_GE(comm.stats().discards, 2U);
}

TEST_P(FaultProtocolTest, RetransmitRecoversDroppedUplinks) {
  ReliabilityConfig rel;
  rel.faults.drop = 0.5;
  rel.gather_timeout_s = 30.0;
  Communicator comm(GetParam(), 4, 9, {}, rel);
  std::size_t delivered = 0;
  for (std::uint32_t c = 1; c <= 4; ++c) {
    delivered += comm.send_update(c, local_msg(c, 1, 32)) ? 1U : 0U;
  }
  const auto locals = comm.gather_locals(1, 4);
  EXPECT_EQ(locals.size(), delivered);  // acked ⇔ gathered, exactly
  const auto stats = comm.stats();
  EXPECT_GT(stats.drops, 0U);
  EXPECT_GT(stats.retries, 0U);
  EXPECT_GT(delivered, 0U);  // with 5 attempts at p=0.5 someone gets through
  // Every attempt's bytes hit the ledger.
  EXPECT_EQ(stats.messages_up, 4U + stats.retries);
}

INSTANTIATE_TEST_SUITE_P(Protocols, FaultProtocolTest,
                         testing::Values(Protocol::kMpi, Protocol::kGrpc),
                         [](const testing::TestParamInfo<Protocol>& i) {
                           return appfl::comm::to_string(i.param);
                         });

TEST(Faults, DelayedUplinkPastDeadlineIsUnacked) {
  ReliabilityConfig rel;
  rel.faults.delay = 1.0;
  rel.faults.delay_max_s = 50.0;  // many deliveries land past the deadline
  rel.gather_timeout_s = 1.0;
  Communicator comm(Protocol::kMpi, 4, 3, {}, rel);
  std::size_t acked = 0;
  for (std::uint32_t c = 1; c <= 4; ++c) {
    acked += comm.send_update(c, local_msg(c, 1, 16)) ? 1U : 0U;
  }
  EXPECT_LT(acked, 4U);  // at least one draw in (1, 50] sim-seconds
  const auto locals = comm.gather_locals(1, 4);
  EXPECT_EQ(locals.size(), acked);  // the gather agrees with the acks
  EXPECT_GT(comm.stats().delays, 0U);
}

// -- Zero-fault bit-identity ---------------------------------------------------

TEST(Faults, InactivePlaneLeavesWireAndClockUntouched) {
  // With all probabilities zero the reliability knobs must be inert: same
  // bytes, same sim-clock, same results as a default-constructed
  // communicator, and every fault counter pinned at zero.
  struct Outcome {
    appfl::comm::TrafficStats stats;
    double clock_s = 0.0;
    bool active = false;
  };
  const auto run = [](ReliabilityConfig rel) {
    Communicator comm(Protocol::kGrpc, 3, 5, {}, rel);
    comm.broadcast_global(global_msg(1, 48));
    for (std::uint32_t c = 1; c <= 3; ++c) {
      comm.recv_global(c);
      comm.send_update(c, local_msg(c, 1, 48));
    }
    (void)comm.gather_locals(1);
    return Outcome{comm.stats(), comm.clock().now(),
                   comm.fault_plane_active()};
  };
  ReliabilityConfig tweaked;
  tweaked.gather_timeout_s = 0.001;  // would time out instantly if active
  tweaked.max_retries = 99;
  const Outcome a = run(ReliabilityConfig{});
  const Outcome b = run(tweaked);
  EXPECT_FALSE(a.active);
  const auto sa = a.stats, sb = b.stats;
  EXPECT_EQ(sa.bytes_up, sb.bytes_up);
  EXPECT_EQ(sa.bytes_down, sb.bytes_down);
  EXPECT_EQ(a.clock_s, b.clock_s);
  EXPECT_EQ(sa.drops + sa.duplicates + sa.reorders + sa.corruptions +
                sa.delays + sa.retries + sa.crc_failures + sa.discards +
                sa.gather_timeouts,
            0U);
}

// -- End-to-end: training under faults ----------------------------------------

appfl::data::FederatedSplit six_client_split() {
  appfl::data::SynthImageSpec spec;
  spec.num_clients = 6;
  spec.train_per_client = 64;
  spec.test_size = 256;
  spec.noise = 0.6;
  spec.seed = 11;
  return appfl::data::mnist_like(spec);
}

appfl::core::RunConfig fedavg_config() {
  appfl::core::RunConfig cfg;
  cfg.algorithm = appfl::core::Algorithm::kFedAvg;
  cfg.model = appfl::core::ModelKind::kLogistic;
  cfg.rounds = 8;
  cfg.local_steps = 2;
  cfg.batch_size = 32;
  cfg.lr = 0.1F;
  cfg.seed = 11;
  cfg.validate_every_round = false;
  cfg.gather_timeout_s = 5.0;
  return cfg;
}

TEST(FaultsEndToEnd, FedAvgSurvivesDropsAndPermanentFailures) {
  // The acceptance scenario: 10% uplink/downlink drop plus two permanently
  // failed clients. All rounds must complete (no hang, no abort) and the
  // model must land near the fault-free accuracy.
  const auto split = six_client_split();
  appfl::core::RunConfig cfg = fedavg_config();
  const auto clean = appfl::core::run_federated(cfg, split);

  cfg.faults.drop = 0.10;
  cfg.faults.dead = {5, 6};
  const auto faulty = appfl::core::run_federated(cfg, split);

  ASSERT_EQ(faulty.rounds.size(), cfg.rounds);
  EXPECT_NEAR(faulty.final_accuracy, clean.final_accuracy, 0.02);
  EXPECT_GT(faulty.traffic.drops, 0U);
  EXPECT_GT(faulty.traffic.gather_timeouts, 0U);
  std::uint64_t drops = 0, timeouts = 0;
  for (const auto& r : faulty.rounds) {
    EXPECT_LE(r.responders, 4U);  // clients 5 and 6 never answer
    EXPECT_GE(r.responders, 1U);
    drops += r.drops;
    timeouts += r.timeouts;
  }
  EXPECT_EQ(drops, faulty.traffic.drops);  // per-round deltas add up
  EXPECT_EQ(timeouts, faulty.traffic.gather_timeouts);
  // The clean control saw no faults at all.
  EXPECT_EQ(clean.traffic.drops, 0U);
  EXPECT_EQ(clean.traffic.gather_timeouts, 0U);
}

TEST(FaultsEndToEnd, IIAdmmDualReplicasSurviveUplinkLoss) {
  // Lost uplinks make the server skip its dual replay; the client must roll
  // its speculative dual back or the replicas drift apart forever.
  const auto split = six_client_split();
  appfl::core::RunConfig cfg = fedavg_config();
  cfg.algorithm = appfl::core::Algorithm::kIIAdmm;
  cfg.rho = 2.0F;
  cfg.zeta = 2.0F;
  cfg.faults.drop = 0.3;
  cfg.max_uplink_retries = 0;  // single attempt ⇒ plenty of real losses
  cfg.gather_timeout_s = 2.0;

  auto model = appfl::core::build_model(cfg, split.test);
  std::vector<std::unique_ptr<appfl::core::BaseClient>> clients;
  for (std::size_t p = 0; p < split.clients.size(); ++p) {
    clients.push_back(std::make_unique<appfl::core::IIAdmmClient>(
        static_cast<std::uint32_t>(p + 1), cfg, *model, split.clients[p]));
  }
  appfl::core::IIAdmmServer server(cfg, std::move(model), split.test,
                                   clients.size());
  const auto result = appfl::core::run_federated(cfg, server, clients);
  EXPECT_GT(result.traffic.drops, 0U);

  for (std::size_t p = 0; p < clients.size(); ++p) {
    const auto& client_dual =
        static_cast<appfl::core::IIAdmmClient&>(*clients[p]).dual();
    const auto& server_dual = server.dual(static_cast<std::uint32_t>(p + 1));
    ASSERT_EQ(client_dual.size(), server_dual.size());
    for (std::size_t i = 0; i < client_dual.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(client_dual[i]),
                std::bit_cast<std::uint32_t>(server_dual[i]))
          << "client " << p + 1 << " coord " << i;
    }
  }
}

TEST(FaultsEndToEnd, IIAdmmDualReplicasSurviveCorruptedUplinks) {
  // A corrupted uplink is delivered but CRC-discarded by the server, which
  // therefore never replays that round's dual update. The client must see
  // the corruption as a lost uplink (no ack) and roll its speculative dual
  // back — previously delivered-but-corrupt reported success and the dual
  // replicas drifted apart permanently.
  const auto split = six_client_split();
  appfl::core::RunConfig cfg = fedavg_config();
  cfg.algorithm = appfl::core::Algorithm::kIIAdmm;
  cfg.rho = 2.0F;
  cfg.zeta = 2.0F;
  cfg.faults.corrupt = 0.4;
  cfg.max_uplink_retries = 1;  // some updates stay lost through the budget
  cfg.gather_timeout_s = 2.0;

  auto model = appfl::core::build_model(cfg, split.test);
  std::vector<std::unique_ptr<appfl::core::BaseClient>> clients;
  for (std::size_t p = 0; p < split.clients.size(); ++p) {
    clients.push_back(std::make_unique<appfl::core::IIAdmmClient>(
        static_cast<std::uint32_t>(p + 1), cfg, *model, split.clients[p]));
  }
  appfl::core::IIAdmmServer server(cfg, std::move(model), split.test,
                                   clients.size());
  const auto result = appfl::core::run_federated(cfg, server, clients);
  EXPECT_GT(result.traffic.corruptions, 0U);
  EXPECT_GT(result.traffic.crc_failures, 0U);
  EXPECT_GT(result.traffic.retries, 0U);

  for (std::size_t p = 0; p < clients.size(); ++p) {
    const auto& client_dual =
        static_cast<appfl::core::IIAdmmClient&>(*clients[p]).dual();
    const auto& server_dual = server.dual(static_cast<std::uint32_t>(p + 1));
    ASSERT_EQ(client_dual.size(), server_dual.size());
    for (std::size_t i = 0; i < client_dual.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(client_dual[i]),
                std::bit_cast<std::uint32_t>(server_dual[i]))
          << "client " << p + 1 << " coord " << i;
    }
  }
}

TEST(FaultsEndToEnd, FaultScheduleIsDeterministicPerSeed) {
  // Whole-stack determinism under an active fault plane (MPI protocol: its
  // cost model is arrival-order invariant). Same seed ⇒ same drops, same
  // bytes, same final parameters-level accuracy.
  const auto split = six_client_split();
  appfl::core::RunConfig cfg = fedavg_config();
  cfg.rounds = 4;
  cfg.faults.drop = 0.2;
  cfg.faults.delay = 0.3;
  cfg.faults.delay_max_s = 1.0;
  const auto a = appfl::core::run_federated(cfg, split);
  const auto b = appfl::core::run_federated(cfg, split);
  EXPECT_EQ(a.traffic.drops, b.traffic.drops);
  EXPECT_EQ(a.traffic.retries, b.traffic.retries);
  EXPECT_EQ(a.traffic.bytes_up, b.traffic.bytes_up);
  EXPECT_EQ(a.traffic.delays, b.traffic.delays);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.sim_comm_seconds, b.sim_comm_seconds);

  cfg.seed = 12;
  const auto c = appfl::core::run_federated(cfg, split);
  EXPECT_NE(std::make_tuple(a.traffic.drops, a.traffic.bytes_up,
                            a.sim_comm_seconds),
            std::make_tuple(c.traffic.drops, c.traffic.bytes_up,
                            c.sim_comm_seconds));
}

}  // namespace
