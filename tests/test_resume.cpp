// Crash recovery: a run killed at ANY round boundary and resumed from its
// round checkpoint must reach a bit-identical final model — same float
// bytes — as the uninterrupted run, for every algorithm, including under an
// active fault schedule and DP accounting. Also covers the CheckpointStore
// A/B invariants (mid-save crashes, quarantine of corrupt slots).
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "core/async_runner.hpp"
#include "core/checkpoint.hpp"
#include "core/event_engine.hpp"
#include "core/runner.hpp"
#include "core/server_opt.hpp"
#include "data/synth.hpp"

namespace {

namespace fs = std::filesystem;
using appfl::core::Algorithm;
using appfl::core::CheckpointStore;
using appfl::core::ModelKind;
using appfl::core::RunConfig;
using appfl::core::RunResult;

// Fresh (pre-removed) temp directory, cleaned up on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

appfl::data::FederatedSplit make_split(std::uint64_t seed = 91) {
  appfl::data::SynthImageSpec spec;
  spec.num_clients = 3;
  spec.train_per_client = 32;
  spec.test_size = 64;
  spec.seed = seed;
  return appfl::data::mnist_like(spec);
}

RunConfig base_config(Algorithm alg) {
  RunConfig cfg;
  cfg.algorithm = alg;
  cfg.model = ModelKind::kLogistic;
  cfg.rounds = 6;
  cfg.local_steps = 2;
  cfg.batch_size = 16;
  cfg.seed = 7;
  cfg.validate_every_round = false;
  return cfg;
}

// Bitwise equality — accuracy-style EXPECT_NEAR would hide drift.
bool same_bits(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

bool same_bits2(const std::vector<std::vector<float>>& a,
                const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_bits(a[i], b[i])) return false;
  }
  return true;
}

// Kill at round k (halt_after_round), restart from the checkpoint, and
// return the resumed run's result.
RunResult kill_and_resume(const RunConfig& cfg,
                          const appfl::data::FederatedSplit& split,
                          const std::string& dir, std::uint32_t k) {
  RunConfig killed = cfg;
  killed.checkpoint_dir = dir;
  killed.halt_after_round = k;
  const RunResult partial = appfl::core::run_federated(killed, split);
  EXPECT_EQ(partial.rounds.size(), k);
  EXPECT_GE(partial.checkpoints_written, 1U);

  RunConfig resumed = cfg;
  resumed.checkpoint_dir = dir;
  resumed.resume_from = dir;
  RunResult result = appfl::core::run_federated(resumed, split);
  EXPECT_EQ(result.resumed_from_round, k);
  return result;
}

TEST(Resume, KillAtEveryRoundBitIdenticalAllAlgorithms) {
  const auto split = make_split();
  for (const Algorithm alg : {Algorithm::kFedAvg, Algorithm::kFedProx,
                              Algorithm::kIceAdmm, Algorithm::kIIAdmm}) {
    const RunConfig cfg = base_config(alg);
    const RunResult baseline = appfl::core::run_federated(cfg, split);
    ASSERT_FALSE(baseline.final_parameters.empty());
    for (std::uint32_t k = 1; k < cfg.rounds; ++k) {
      TempDir dir("appfl_resume_" + appfl::core::to_string(alg) + "_" +
                  std::to_string(k));
      const RunResult resumed = kill_and_resume(cfg, split, dir.str(), k);
      EXPECT_TRUE(same_bits(baseline.final_parameters,
                            resumed.final_parameters))
          << appfl::core::to_string(alg) << " diverged after kill at round "
          << k;
      EXPECT_EQ(baseline.final_accuracy, resumed.final_accuracy);
    }
  }
}

TEST(Resume, ClientSamplingStreamSurvivesRestart) {
  // fraction < 1 draws participants from the stateful sampler stream; the
  // resumed run must pick the SAME clients in every remaining round.
  const auto split = make_split();
  RunConfig cfg = base_config(Algorithm::kFedAvg);
  cfg.client_fraction = 0.67;
  const RunResult baseline = appfl::core::run_federated(cfg, split);
  TempDir dir("appfl_resume_sampler");
  const RunResult resumed = kill_and_resume(cfg, split, dir.str(), 3);
  EXPECT_TRUE(same_bits(baseline.final_parameters, resumed.final_parameters));
  for (std::size_t r = 3; r < baseline.rounds.size(); ++r) {
    EXPECT_EQ(baseline.rounds[r].participants,
              resumed.rounds[r - 3].participants);
  }
}

TEST(Resume, FedOptServerMomentsSurviveRestart) {
  // FedOpt runs through the custom-server overload; its resume fingerprint
  // rides on checkpoint_kind(), not the algorithm enum.
  const auto split = make_split();
  RunConfig cfg = base_config(Algorithm::kFedAvg);
  const appfl::core::ServerOptConfig opt;  // FedAdam defaults

  auto run_fedopt = [&](const RunConfig& rc) {
    auto model = appfl::core::build_model(rc, split.test);
    std::vector<std::unique_ptr<appfl::core::BaseClient>> clients;
    for (std::size_t p = 0; p < split.clients.size(); ++p) {
      clients.push_back(appfl::core::build_client(
          static_cast<std::uint32_t>(p + 1), rc, *model, split.clients[p]));
    }
    appfl::core::FedOptServer server(rc, opt, std::move(model), split.test,
                                     clients.size());
    return appfl::core::run_federated(rc, server, clients);
  };

  const RunResult baseline = run_fedopt(cfg);
  TempDir dir("appfl_resume_fedopt");
  RunConfig killed = cfg;
  killed.checkpoint_dir = dir.str();
  killed.halt_after_round = 3;
  (void)run_fedopt(killed);
  RunConfig resumed_cfg = cfg;
  resumed_cfg.checkpoint_dir = dir.str();
  resumed_cfg.resume_from = dir.str();
  const RunResult resumed = run_fedopt(resumed_cfg);
  EXPECT_EQ(resumed.resumed_from_round, 3U);
  EXPECT_TRUE(same_bits(baseline.final_parameters, resumed.final_parameters));
}

TEST(Resume, IIAdmmDualReplicasBitIdenticalAfterRestart) {
  // The paper's dual-replication invariant: server-held λ_p replicas (never
  // on the wire) must survive the restart byte-for-byte, on both sides.
  const auto split = make_split();
  const RunConfig cfg = base_config(Algorithm::kIIAdmm);

  struct Outcome {
    RunResult result;
    appfl::core::ServerStateCkpt server;
    std::vector<appfl::core::ClientStateCkpt> clients;
  };
  auto run_iiadmm = [&](const RunConfig& rc) {
    auto model = appfl::core::build_model(rc, split.test);
    std::vector<std::unique_ptr<appfl::core::BaseClient>> clients;
    for (std::size_t p = 0; p < split.clients.size(); ++p) {
      clients.push_back(appfl::core::build_client(
          static_cast<std::uint32_t>(p + 1), rc, *model, split.clients[p]));
    }
    auto server = appfl::core::build_server(rc, std::move(model), split.test,
                                            clients.size());
    Outcome out;
    out.result = appfl::core::run_federated(rc, *server, clients);
    out.server = server->export_state();
    for (const auto& c : clients) out.clients.push_back(c->export_state());
    return out;
  };

  const Outcome baseline = run_iiadmm(cfg);
  TempDir dir("appfl_resume_iiadmm_duals");
  RunConfig killed = cfg;
  killed.checkpoint_dir = dir.str();
  killed.halt_after_round = 2;
  (void)run_iiadmm(killed);
  RunConfig resumed_cfg = cfg;
  resumed_cfg.checkpoint_dir = dir.str();
  resumed_cfg.resume_from = dir.str();
  const Outcome resumed = run_iiadmm(resumed_cfg);

  EXPECT_TRUE(
      same_bits(baseline.result.final_parameters,
                resumed.result.final_parameters));
  EXPECT_TRUE(same_bits2(baseline.server.dual, resumed.server.dual));
  EXPECT_TRUE(same_bits2(baseline.server.primal, resumed.server.primal));
  ASSERT_EQ(baseline.clients.size(), resumed.clients.size());
  for (std::size_t p = 0; p < baseline.clients.size(); ++p) {
    // Replication invariant per client, across the restart.
    EXPECT_TRUE(same_bits(baseline.clients[p].dual, resumed.clients[p].dual));
    EXPECT_TRUE(same_bits(resumed.clients[p].dual, resumed.server.dual[p]));
  }
}

TEST(Resume, FaultScheduleContinuesDeterministically) {
  // The injector schedule is a pure function of (seed, per-link sequence
  // counters); restoring the counters must continue it with no replayed or
  // skipped events. Delay/reorder faults are excluded: they move traffic
  // across the kill boundary, which a round-granular snapshot cannot (and
  // need not) represent.
  const auto split = make_split();
  RunConfig cfg = base_config(Algorithm::kFedAvg);
  cfg.faults.drop = 0.2;
  cfg.faults.corrupt = 0.1;
  cfg.faults.duplicate = 0.1;
  const RunResult baseline = appfl::core::run_federated(cfg, split);
  TempDir dir("appfl_resume_faults");
  const RunResult resumed = kill_and_resume(cfg, split, dir.str(), 3);
  EXPECT_TRUE(same_bits(baseline.final_parameters, resumed.final_parameters));
  EXPECT_EQ(baseline.traffic.drops, resumed.traffic.drops);
  EXPECT_EQ(baseline.traffic.duplicates, resumed.traffic.duplicates);
  EXPECT_EQ(baseline.traffic.corruptions, resumed.traffic.corruptions);
  EXPECT_EQ(baseline.traffic.crc_failures, resumed.traffic.crc_failures);
  EXPECT_EQ(baseline.traffic.retries, resumed.traffic.retries);
  EXPECT_EQ(baseline.traffic.messages_up, resumed.traffic.messages_up);
}

TEST(Resume, DpBudgetMonotoneAndRestartInvariant) {
  const auto split = make_split();
  RunConfig cfg = base_config(Algorithm::kFedAvg);
  cfg.epsilon = 0.5;  // per-round budget, basic composition
  cfg.clip = 1.0F;
  const RunResult baseline = appfl::core::run_federated(cfg, split);
  EXPECT_NEAR(baseline.dp_epsilon_spent, 0.5 * 6, 1e-12);

  TempDir dir("appfl_resume_dp");
  RunConfig killed = cfg;
  killed.checkpoint_dir = dir.str();
  killed.halt_after_round = 4;
  const RunResult partial = appfl::core::run_federated(killed, split);

  // The on-disk accountant state never decreases across the kill.
  CheckpointStore store(dir.str());
  const auto rc = appfl::core::load_latest_round_checkpoint(store);
  ASSERT_TRUE(rc.has_value());
  for (const auto& c : rc->clients) {
    EXPECT_NEAR(c.dp_spent, 0.5 * 4, 1e-12);
  }
  EXPECT_NEAR(partial.dp_epsilon_spent, 0.5 * 4, 1e-12);

  RunConfig resumed_cfg = cfg;
  resumed_cfg.checkpoint_dir = dir.str();
  resumed_cfg.resume_from = dir.str();
  const RunResult resumed = appfl::core::run_federated(resumed_cfg, split);
  EXPECT_GE(resumed.dp_epsilon_spent, partial.dp_epsilon_spent);
  EXPECT_NEAR(resumed.dp_epsilon_spent, baseline.dp_epsilon_spent, 1e-12);
  EXPECT_TRUE(same_bits(baseline.final_parameters, resumed.final_parameters));
}

TEST(Resume, CheckpointingItselfChangesNothing) {
  // Writing checkpoints must be pure observation: a run with the store on
  // ends bit-identical to one with it off.
  const auto split = make_split();
  const RunConfig cfg = base_config(Algorithm::kIceAdmm);
  const RunResult plain = appfl::core::run_federated(cfg, split);
  TempDir dir("appfl_resume_observer");
  RunConfig observed = cfg;
  observed.checkpoint_dir = dir.str();
  const RunResult with_ckpt = appfl::core::run_federated(observed, split);
  EXPECT_EQ(with_ckpt.checkpoints_written, cfg.rounds);
  EXPECT_TRUE(same_bits(plain.final_parameters, with_ckpt.final_parameters));
  EXPECT_EQ(plain.final_accuracy, with_ckpt.final_accuracy);
}

TEST(Resume, CheckpointCadenceResumesFromLastMultiple)  {
  const auto split = make_split();
  RunConfig cfg = base_config(Algorithm::kFedAvg);
  cfg.checkpoint_every_n_rounds = 2;
  const RunResult baseline = appfl::core::run_federated(cfg, split);

  TempDir dir("appfl_resume_cadence");
  RunConfig killed = cfg;
  killed.checkpoint_dir = dir.str();
  killed.halt_after_round = 3;  // halt boundary forces a snapshot at 3
  (void)appfl::core::run_federated(killed, split);
  RunConfig resumed_cfg = cfg;
  resumed_cfg.checkpoint_dir = dir.str();
  resumed_cfg.resume_from = dir.str();
  const RunResult resumed = appfl::core::run_federated(resumed_cfg, split);
  EXPECT_EQ(resumed.resumed_from_round, 3U);
  EXPECT_TRUE(same_bits(baseline.final_parameters, resumed.final_parameters));
}

TEST(Resume, FingerprintMismatchIsRejected) {
  const auto split = make_split();
  RunConfig cfg = base_config(Algorithm::kFedAvg);
  TempDir dir("appfl_resume_fingerprint");
  cfg.checkpoint_dir = dir.str();
  cfg.halt_after_round = 2;
  (void)appfl::core::run_federated(cfg, split);

  RunConfig other = base_config(Algorithm::kFedAvg);
  other.resume_from = dir.str();
  other.seed = cfg.seed + 1;  // different run
  EXPECT_THROW(appfl::core::run_federated(other, split), appfl::Error);
  other.seed = cfg.seed;
  other.rounds = cfg.rounds + 1;  // lr schedule would differ
  EXPECT_THROW(appfl::core::run_federated(other, split), appfl::Error);

  // Wrong server kind: an ICEADMM run must refuse a FedAvg checkpoint.
  RunConfig wrong_alg = base_config(Algorithm::kIceAdmm);
  wrong_alg.resume_from = dir.str();
  EXPECT_THROW(appfl::core::run_federated(wrong_alg, split), appfl::Error);
}

TEST(Resume, PopulationEngineKillAtEveryRoundBitIdentical) {
  // Event-engine runs: the v2 checkpoint carries the sampler stream, the
  // sparse participation ledger, and the fault-link counters, so a kill at
  // ANY round boundary resumes to the same final bytes AND the same
  // participant sets in every remaining round.
  appfl::data::FemnistSpec spec;
  spec.num_writers = 300;
  spec.mean_samples_per_writer = 16;
  spec.test_size = 64;
  spec.seed = 7;
  const appfl::data::SyntheticPopulation pop(spec);

  RunConfig cfg;
  cfg.algorithm = Algorithm::kFedAvg;
  cfg.model = ModelKind::kLogistic;
  cfg.rounds = 5;
  cfg.local_steps = 1;
  cfg.batch_size = 8;
  cfg.population = 300;
  cfg.participants_per_round = 20;
  cfg.tree_fan_out = 4;
  cfg.seed = 7;
  cfg.validate_every_round = false;
  cfg.faults.drop = 0.2;  // the fault schedule must resume seamlessly too

  const auto baseline = appfl::core::run_population(cfg, pop);
  ASSERT_FALSE(baseline.run.final_parameters.empty());
  ASSERT_EQ(baseline.participants_by_round.size(), 5U);

  for (std::uint32_t k = 1; k < cfg.rounds; ++k) {
    TempDir dir("appfl_resume_population_" + std::to_string(k));
    RunConfig killed = cfg;
    killed.checkpoint_dir = dir.str();
    killed.halt_after_round = k;
    const auto partial = appfl::core::run_population(killed, pop);
    EXPECT_EQ(partial.run.rounds.size(), k);
    EXPECT_GE(partial.run.checkpoints_written, 1U);

    RunConfig resumed_cfg = cfg;
    resumed_cfg.checkpoint_dir = dir.str();
    resumed_cfg.resume_from = dir.str();
    const auto resumed = appfl::core::run_population(resumed_cfg, pop);
    EXPECT_EQ(resumed.run.resumed_from_round, k);
    EXPECT_TRUE(same_bits(baseline.run.final_parameters,
                          resumed.run.final_parameters))
        << "population engine diverged after kill at round " << k;
    EXPECT_EQ(baseline.run.final_accuracy, resumed.run.final_accuracy);
    // The resumed process replays none of the first k rounds and samples
    // exactly the cohorts the uninterrupted run would have.
    ASSERT_EQ(resumed.participants_by_round.size(), cfg.rounds - k);
    for (std::size_t r = 0; r < resumed.participants_by_round.size(); ++r) {
      EXPECT_EQ(baseline.participants_by_round[k + r],
                resumed.participants_by_round[r])
          << "cohort mismatch in resumed round " << k + r + 1;
    }
    // DP ledger: cumulative spend must match the uninterrupted run.
    EXPECT_EQ(baseline.run.dp_epsilon_spent, resumed.run.dp_epsilon_spent);
  }
}

TEST(Resume, PopulationEngineRejectsMismatchedFingerprints) {
  appfl::data::FemnistSpec spec;
  spec.num_writers = 100;
  spec.mean_samples_per_writer = 16;
  spec.test_size = 64;
  spec.seed = 7;
  const appfl::data::SyntheticPopulation pop(spec);

  RunConfig cfg;
  cfg.algorithm = Algorithm::kFedAvg;
  cfg.model = ModelKind::kLogistic;
  cfg.rounds = 3;
  cfg.local_steps = 1;
  cfg.batch_size = 8;
  cfg.population = 100;
  cfg.participants_per_round = 10;
  cfg.seed = 7;
  cfg.validate_every_round = false;
  TempDir dir("appfl_resume_population_fingerprint");
  cfg.checkpoint_dir = dir.str();
  cfg.halt_after_round = 1;
  (void)appfl::core::run_population(cfg, pop);

  RunConfig other = cfg;
  other.halt_after_round = 0;
  other.checkpoint_dir.clear();
  other.resume_from = dir.str();
  other.participants_per_round = 11;  // different cohort size = different run
  EXPECT_THROW(appfl::core::run_population(other, pop), appfl::Error);

  // A classic sync-runner must refuse a population checkpoint (and not
  // crash on the empty clients[] it carries).
  RunConfig sync_cfg = base_config(Algorithm::kFedAvg);
  sync_cfg.resume_from = dir.str();
  EXPECT_THROW(appfl::core::run_federated(sync_cfg, make_split()),
               appfl::Error);
}

TEST(Resume, AsyncRunSurvivesKillAndRestartBitIdentical) {
  const auto split = make_split();
  appfl::core::AsyncConfig acfg;
  acfg.run = base_config(Algorithm::kFedAvg);
  acfg.run.rounds = 4;  // 4 × 3 clients = 12 applied updates
  const auto baseline = appfl::core::run_async(acfg, split);
  ASSERT_FALSE(baseline.final_w.empty());

  for (const std::uint64_t k : {1ULL, 5ULL, 11ULL}) {
    TempDir dir("appfl_resume_async_" + std::to_string(k));
    appfl::core::AsyncConfig killed = acfg;
    killed.run.checkpoint_dir = dir.str();
    killed.run.halt_after_round = k;  // applied-update granularity
    const auto partial = appfl::core::run_async(killed, split);
    EXPECT_EQ(partial.applied_updates, k);

    appfl::core::AsyncConfig resumed_cfg = acfg;
    resumed_cfg.run.checkpoint_dir = dir.str();
    resumed_cfg.run.resume_from = dir.str();
    const auto resumed = appfl::core::run_async(resumed_cfg, split);
    EXPECT_EQ(resumed.resumed_from_update, k);
    EXPECT_TRUE(same_bits(baseline.final_w, resumed.final_w))
        << "async run diverged after kill at update " << k;
    EXPECT_EQ(baseline.sim_seconds, resumed.sim_seconds);
  }
}

// ---------------------------------------------------------------------------
// CheckpointStore: the crash-consistency substrate.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> payload_of(char fill, std::size_t n = 64) {
  return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(fill));
}

void write_raw(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointStore, AlternatesSlotsAndLoadsNewest) {
  TempDir dir("appfl_store_ab");
  CheckpointStore store(dir.str());
  store.save(payload_of('a'), 1);
  store.save(payload_of('b'), 2);
  EXPECT_TRUE(fs::exists(dir.path / CheckpointStore::kSlotA));
  EXPECT_TRUE(fs::exists(dir.path / CheckpointStore::kSlotB));
  store.save(payload_of('c'), 3);

  CheckpointStore fresh(dir.str());
  const auto loaded = fresh.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 3U);
  EXPECT_EQ(loaded->payload, payload_of('c'));
  EXPECT_EQ(fresh.report().corrupt_quarantined, 0U);
}

TEST(CheckpointStore, SaveAfterRecoveryOverwritesTheOtherSlot) {
  TempDir dir("appfl_store_ab_resume");
  {
    CheckpointStore store(dir.str());
    store.save(payload_of('a'), 1);
    store.save(payload_of('b'), 2);
  }
  CheckpointStore recovered(dir.str());
  const auto loaded = recovered.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 2U);
  // The next save must overwrite the slot we did NOT load from (seq 1's),
  // so seq 2 stays on disk until seq 3 is fully committed.
  recovered.save(payload_of('c'), 3);
  CheckpointStore verify(dir.str());
  const auto newest = verify.load_latest();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->sequence, 3U);
  EXPECT_EQ(newest->payload, payload_of('c'));
}

TEST(CheckpointStore, TornSlotIsQuarantinedNeverFatal) {
  TempDir dir("appfl_store_torn");
  {
    CheckpointStore store(dir.str());
    store.save(payload_of('a'), 1);
    store.save(payload_of('b'), 2);
  }
  // Simulate a crash mid-write: slot B (the newer one) is truncated to a
  // prefix, as if the machine died before the final blocks hit disk.
  const fs::path slot_b = dir.path / CheckpointStore::kSlotB;
  std::vector<std::uint8_t> torn(8, 0x55);
  write_raw(slot_b, torn);

  CheckpointStore recovered(dir.str());
  const auto loaded = recovered.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 1U);  // falls back to the older good slot
  EXPECT_EQ(loaded->payload, payload_of('a'));
  EXPECT_EQ(recovered.report().corrupt_quarantined, 1U);
  EXPECT_FALSE(recovered.report().diagnostics.empty());
  EXPECT_FALSE(fs::exists(slot_b));
  EXPECT_TRUE(fs::exists(dir.path / (std::string(CheckpointStore::kSlotB) +
                                     ".quarantined")));
}

TEST(CheckpointStore, LeftoverTempAndGarbageSlotsAreHarmless) {
  TempDir dir("appfl_store_tmp");
  {
    CheckpointStore store(dir.str());
    store.save(payload_of('a'), 1);
  }
  // A crash exactly mid-save leaves a dangling temp file; a bit-rotted
  // second slot holds noise. Both must be shrugged off.
  write_raw(dir.path / "slot_b.ckpt.tmp", payload_of('x', 13));
  write_raw(dir.path / CheckpointStore::kSlotB, payload_of('y', 200));

  CheckpointStore recovered(dir.str());
  const auto loaded = recovered.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sequence, 1U);
  EXPECT_EQ(recovered.report().corrupt_quarantined, 1U);
}

TEST(CheckpointStore, EmptyDirectoryLoadsNothing) {
  TempDir dir("appfl_store_empty");
  CheckpointStore store(dir.str());
  EXPECT_FALSE(store.load_latest().has_value());
  EXPECT_EQ(store.report().corrupt_quarantined, 0U);
}

TEST(CheckpointStore, ValidatorRejectionQuarantines) {
  TempDir dir("appfl_store_validator");
  {
    CheckpointStore store(dir.str());
    store.save(payload_of('a'), 1);
  }
  CheckpointStore picky(dir.str());
  const auto loaded = picky.load_latest(
      [](std::span<const std::uint8_t>) { return false; });
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(picky.report().corrupt_quarantined, 1U);
}

TEST(Resume, CrashDuringSaveAlwaysLeavesLoadableCheckpoint) {
  // End-to-end mid-save crash: run to round 4 (checkpoints at 1..4), then
  // clobber the most recent slot with a partial write. Recovery must land
  // on round 3's snapshot and continue to a full-length run whose final
  // model equals the baseline killed-at-3 resume.
  const auto split = make_split();
  const RunConfig cfg = base_config(Algorithm::kFedAvg);
  const RunResult baseline = appfl::core::run_federated(cfg, split);

  TempDir dir("appfl_resume_midsave");
  RunConfig killed = cfg;
  killed.checkpoint_dir = dir.str();
  killed.halt_after_round = 4;
  (void)appfl::core::run_federated(killed, split);

  // Find the newest slot (sequence 4) and tear it.
  CheckpointStore probe(dir.str());
  const auto newest = probe.load_latest();
  ASSERT_TRUE(newest.has_value());
  ASSERT_EQ(newest->sequence, 4U);
  const fs::path torn_path = dir.path / newest->slot;
  std::ifstream in(torn_path, std::ios::binary);
  std::vector<char> full((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();
  full.resize(full.size() / 3);  // the crash point
  std::ofstream out(torn_path, std::ios::binary | std::ios::trunc);
  out.write(full.data(), static_cast<std::streamsize>(full.size()));
  out.close();

  RunConfig resumed_cfg = cfg;
  resumed_cfg.checkpoint_dir = dir.str();
  resumed_cfg.resume_from = dir.str();
  const RunResult resumed = appfl::core::run_federated(resumed_cfg, split);
  EXPECT_EQ(resumed.resumed_from_round, 3U);
  EXPECT_TRUE(same_bits(baseline.final_parameters, resumed.final_parameters));
}

TEST(Resume, ObservabilityCountersContinueAndSpansRestart) {
  // The obs×resume contract: (a) enabling the plane changes no result bits;
  // (b) traffic counters CONTINUE across the resume (they ride the
  // checkpointed TrafficStats, so the resumed run's totals equal the
  // straight run's); (c) spans RESTART — the resumed run's trace covers only
  // the rounds this process executed.
  const auto split = make_split();
  const RunConfig cfg_off = base_config(Algorithm::kFedAvg);
  const RunResult baseline_off = appfl::core::run_federated(cfg_off, split);

  TempDir dir("appfl_resume_obs");
  fs::create_directories(dir.path);
  const std::string trace_path = (dir.path / "trace.json").string();
  const std::string jsonl_path = (dir.path / "metrics.jsonl").string();

  RunConfig cfg = cfg_off;
  cfg.obs_level = "trace";

  // (a) full instrumented run: bit-identical to the obs-off baseline.
  const RunResult straight = appfl::core::run_federated(cfg, split);
  ASSERT_TRUE(same_bits(baseline_off.final_parameters,
                        straight.final_parameters))
      << "enabling observability changed the result";

  // Kill at round 3, then resume with trace + metrics stream on.
  const std::uint32_t k = 3;
  RunConfig killed = cfg;
  killed.checkpoint_dir = (dir.path / "ckpt").string();
  killed.halt_after_round = k;
  (void)appfl::core::run_federated(killed, split);

  RunConfig resumed_cfg = cfg;
  resumed_cfg.checkpoint_dir = killed.checkpoint_dir;
  resumed_cfg.resume_from = killed.checkpoint_dir;
  resumed_cfg.trace_out = trace_path;
  resumed_cfg.metrics_out = jsonl_path;
  const RunResult resumed = appfl::core::run_federated(resumed_cfg, split);
  ASSERT_EQ(resumed.resumed_from_round, k);
  EXPECT_TRUE(same_bits(baseline_off.final_parameters,
                        resumed.final_parameters));

  // (b) counters continue: the resumed run's traffic totals (restored from
  // the checkpoint, then grown) equal the straight run's. The checkpointed
  // leg also wrote checkpoints, so only the comm-plane ledger must match.
  EXPECT_EQ(straight.traffic.bytes_up, resumed.traffic.bytes_up);
  EXPECT_EQ(straight.traffic.bytes_down, resumed.traffic.bytes_down);
  EXPECT_EQ(straight.traffic.messages_up, resumed.traffic.messages_up);
  EXPECT_EQ(straight.traffic.messages_down, resumed.traffic.messages_down);

  const auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const auto count_occurrences = [](const std::string& text,
                                    const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };

  // (c) spans restart: exactly rounds − k fl.round spans in the trace.
  const std::string trace = slurp(trace_path);
  ASSERT_FALSE(trace.empty()) << "trace file was not written";
  EXPECT_EQ(count_occurrences(trace, "\"name\":\"fl.round\""),
            cfg.rounds - k);

  // The JSONL stream covers only the resumed rounds (first line is round
  // k+1) and its summary reports the CONTINUED traffic totals.
  const std::string jsonl = slurp(jsonl_path);
  ASSERT_FALSE(jsonl.empty()) << "metrics stream was not written";
  EXPECT_NE(jsonl.find("\"type\":\"round\",\"round\":" + std::to_string(k + 1)),
            std::string::npos);
  EXPECT_EQ(jsonl.find("\"type\":\"round\",\"round\":1,"), std::string::npos);
  EXPECT_NE(
      jsonl.find("\"bytes_up\":" + std::to_string(straight.traffic.bytes_up)),
      std::string::npos);
}

}  // namespace
