// Communication cost models: pins the paper's calibration anchors.
#include <gtest/gtest.h>

#include "util/check.hpp"

#include <algorithm>
#include <cmath>

#include "comm/cost_model.hpp"
#include "rng/rng.hpp"

namespace {

using appfl::comm::GrpcCostModel;
using appfl::comm::kFemnistModelBytes;
using appfl::comm::MpiCostModel;

std::size_t payload_per_rank(std::size_t ranks) {
  // 203 clients divided over `ranks` processes, each client's update being
  // one FEMNIST model bundle (§IV-C).
  return static_cast<std::size_t>(203.0 / static_cast<double>(ranks) *
                                  static_cast<double>(kFemnistModelBytes));
}

TEST(MpiModel, PaperAnchor40xPayloadGivesOnly8xTime) {
  // §IV-C: "the size of data to send has reduced by more than a factor of 40
  // (5 vs 203 MPI processes), its communication time has decreased only by a
  // factor of 8".
  const MpiCostModel model;
  const double t5 = model.gather_seconds(5, payload_per_rank(5));
  const double t203 = model.gather_seconds(203, payload_per_rank(203));
  const double payload_ratio = static_cast<double>(payload_per_rank(5)) /
                               static_cast<double>(payload_per_rank(203));
  EXPECT_GT(payload_ratio, 40.0);
  EXPECT_NEAR(t5 / t203, 8.0, 0.5);
}

TEST(MpiModel, GatherTimeShrinksThenFlattens) {
  // Payload-dominated regime: time falls steeply with more ranks; past the
  // U-shape minimum (≈100 ranks for the FEMNIST payload) the per-rank
  // overhead creeps back — but never close to the 5-rank time.
  const MpiCostModel model;
  double prev = 1e99;
  for (std::size_t ranks : {5, 11, 21, 41, 102}) {
    const double t = model.gather_seconds(ranks, payload_per_rank(ranks));
    EXPECT_LT(t, prev) << ranks;
    prev = t;
  }
  const double t5 = model.gather_seconds(5, payload_per_rank(5));
  const double t203 = model.gather_seconds(203, payload_per_rank(203));
  EXPECT_LT(t203, t5 / 6.0);
}

TEST(MpiModel, FewRankBundleGathersBeatGrpc) {
  // The per-rank formulation extrapolates below cluster scale: an RDMA
  // gather of the FEMNIST bundle over 4 ranks must beat 4 TCP transfers
  // (with the old constant-overhead calibration it did not).
  const MpiCostModel mpi;
  const GrpcCostModel grpc;
  const double mpi_t = mpi.gather_seconds(4, kFemnistModelBytes);
  appfl::rng::Rng r(3);
  std::vector<double> times(4);
  for (auto& t : times) t = grpc.transfer_seconds(kFemnistModelBytes, r);
  EXPECT_LT(mpi_t, grpc.round_seconds(times));
}

TEST(MpiModel, CommFractionRisesWithRanks) {
  // Fig 3b's shape: compute scales perfectly (∝ 203/P) while gather does
  // not, so the gather share of local-update time grows monotonically.
  const MpiCostModel model;
  const double per_client_compute = 6.96;  // V100 local update, §IV-E
  auto frac_at = [&](std::size_t ranks) {
    const double compute =
        per_client_compute * std::ceil(203.0 / static_cast<double>(ranks));
    const double gather = model.gather_seconds(ranks, payload_per_rank(ranks));
    return gather / (gather + compute);
  };
  // Overall rise (small local dips near the U-shape minimum are allowed —
  // the equal-division ceil() makes compute itself step-wise).
  EXPECT_LT(frac_at(5), frac_at(41));
  EXPECT_LT(frac_at(41), frac_at(203));
  EXPECT_GT(frac_at(203), 0.10);  // visible share at 203 ranks
  EXPECT_LT(frac_at(203), 0.50);
}

TEST(MpiModel, GatherMonotoneInPayload) {
  const MpiCostModel model;
  EXPECT_LT(model.gather_seconds(10, 1000), model.gather_seconds(10, 1000000));
}

TEST(MpiModel, BroadcastCheaperThanGatherAtSamePayload) {
  const MpiCostModel model;
  EXPECT_LT(model.broadcast_seconds(203, kFemnistModelBytes),
            model.gather_seconds(203, kFemnistModelBytes));
}

TEST(GrpcModel, BaseTransferDecomposition) {
  const GrpcCostModel model;
  const std::size_t b = 1000000;
  const double expected = b / model.serialize_bytes_per_s +
                          b / model.copy_bytes_per_s + model.net_latency_s +
                          b / model.net_bandwidth_bytes_per_s;
  EXPECT_DOUBLE_EQ(model.base_transfer_seconds(b), expected);
}

TEST(GrpcModel, JitterIsCenteredAboveBaseAndSpreads) {
  const GrpcCostModel model;
  appfl::rng::Rng r(5);
  const std::size_t bytes = kFemnistModelBytes;
  const double base = model.base_transfer_seconds(bytes);
  double mn = 1e99, mx = 0.0, sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double t = model.transfer_seconds(bytes, r);
    mn = std::min(mn, t);
    mx = std::max(mx, t);
    sum += t;
  }
  EXPECT_GT(sum / n, base);        // heavy tail pulls the mean above base
  EXPECT_GT(mx / mn, 8.0);         // Fig 4b's inter-round spread (~30× peak)
  EXPECT_LT(mx / mn, 500.0);       // but not absurd
}

TEST(GrpcModel, PerRoundSpreadMatchesFig4bScale) {
  // One client, 49 rounds (paper Fig 4b): max/min per-round time should
  // reach the order of the paper's "factor of 30 between rounds".
  const GrpcCostModel model;
  double global_max_ratio = 0.0;
  for (std::uint64_t client = 0; client < 5; ++client) {
    appfl::rng::Rng r(appfl::rng::derive_seed(7, {client}));
    double mn = 1e99, mx = 0.0;
    for (int round = 0; round < 49; ++round) {
      const double t = model.transfer_seconds(kFemnistModelBytes, r);
      mn = std::min(mn, t);
      mx = std::max(mx, t);
    }
    global_max_ratio = std::max(global_max_ratio, mx / mn);
  }
  EXPECT_GT(global_max_ratio, 10.0);
}

TEST(GrpcModel, RoundAggregationUsesStreamsAndStraggler) {
  const GrpcCostModel model;
  const std::vector<double> times(16, 1.0);
  // sum/streams + max = 16/8 + 1 = 3.
  EXPECT_DOUBLE_EQ(model.round_seconds(times), 3.0);
  EXPECT_THROW(model.round_seconds({}), appfl::Error);
}

TEST(GrpcVsMpi, GrpcIsAboutAnOrderOfMagnitudeSlowerPerRound) {
  // Fig 4a: over 49 rounds with 203 clients, MPI is "up to 10 times faster".
  const MpiCostModel mpi;
  const GrpcCostModel grpc;
  appfl::rng::Rng r(11);
  double mpi_total = 0.0, grpc_total = 0.0;
  for (int round = 0; round < 49; ++round) {
    mpi_total += mpi.gather_seconds(203, kFemnistModelBytes);
    std::vector<double> client_times(203);
    for (auto& t : client_times) {
      t = grpc.transfer_seconds(kFemnistModelBytes, r);
    }
    grpc_total += grpc.round_seconds(client_times);
  }
  const double ratio = grpc_total / mpi_total;
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(GrpcModel, DeterministicGivenSeed) {
  const GrpcCostModel model;
  appfl::rng::Rng r1(3), r2(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.transfer_seconds(1000, r1),
              model.transfer_seconds(1000, r2));
  }
}

}  // namespace
