// Matmul kernels vs a naive reference, across transpose variants, sizes,
// and engine backends (reference vs tiled vs parallel tiled).
#include <gtest/gtest.h>

#include "scoped_kernel_config.hpp"
#include "util/check.hpp"

#include "rng/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matmul.hpp"

namespace {

using appfl::tensor::Tensor;

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at({i, kk})) * b.at({kk, j});
      }
      c.at({i, j}) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t({a.dim(1), a.dim(0)});
  for (std::size_t i = 0; i < a.dim(0); ++i) {
    for (std::size_t j = 0; j < a.dim(1); ++j) t.at({j, i}) = a.at({i, j});
  }
  return t;
}

TEST(Matmul, KnownSmallCase) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = appfl::tensor::matmul(a, b);
  EXPECT_TRUE(c.equals(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(Matmul, IdentityIsNeutral) {
  appfl::rng::Rng r(1);
  const Tensor a = Tensor::randn({4, 4}, r);
  Tensor id({4, 4});
  for (std::size_t i = 0; i < 4; ++i) id.at({i, i}) = 1.0F;
  EXPECT_TRUE(appfl::tensor::matmul(a, id).allclose(a, 1e-6F));
  EXPECT_TRUE(appfl::tensor::matmul(id, a).allclose(a, 1e-6F));
}

TEST(Matmul, ShapeMismatchThrows) {
  EXPECT_THROW(appfl::tensor::matmul(Tensor({2, 3}), Tensor({2, 3})),
               appfl::Error);
  EXPECT_THROW(appfl::tensor::matmul(Tensor({2}), Tensor({2, 3})),
               appfl::Error);
}

struct MatmulSize {
  std::size_t m, k, n;
};

class MatmulSizeTest : public testing::TestWithParam<MatmulSize> {};

TEST_P(MatmulSizeTest, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  appfl::rng::Rng r(m * 1000 + k * 100 + n);
  const Tensor a = Tensor::randn({m, k}, r);
  const Tensor b = Tensor::randn({k, n}, r);
  const Tensor expected = naive_matmul(a, b);
  EXPECT_TRUE(appfl::tensor::matmul(a, b).allclose(expected, 1e-3F));
}

TEST_P(MatmulSizeTest, TransposeBMatchesPlain) {
  const auto [m, k, n] = GetParam();
  appfl::rng::Rng r(m + k + n);
  const Tensor a = Tensor::randn({m, k}, r);
  const Tensor b = Tensor::randn({k, n}, r);
  // A·B == matmul_bt(A, Bᵀ)
  EXPECT_TRUE(appfl::tensor::matmul_bt(a, transpose(b))
                  .allclose(naive_matmul(a, b), 1e-3F));
}

TEST_P(MatmulSizeTest, TransposeAMatchesPlain) {
  const auto [m, k, n] = GetParam();
  appfl::rng::Rng r(m * 7 + k * 3 + n);
  const Tensor a = Tensor::randn({m, k}, r);
  const Tensor b = Tensor::randn({k, n}, r);
  // A·B == matmul_at(Aᵀ, B)
  EXPECT_TRUE(appfl::tensor::matmul_at(transpose(a), b)
                  .allclose(naive_matmul(a, b), 1e-3F));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatmulSizeTest,
    testing::Values(MatmulSize{1, 1, 1}, MatmulSize{1, 5, 3},
                    MatmulSize{3, 1, 4}, MatmulSize{8, 8, 8},
                    MatmulSize{17, 33, 9},   // odd sizes cross block edges
                    MatmulSize{64, 64, 64},  // exactly one block
                    MatmulSize{65, 70, 66},  // straddles the 64-block
                    MatmulSize{2, 128, 2}),
    [](const testing::TestParamInfo<MatmulSize>& info) {
      return std::to_string(info.param.m) + "x" + std::to_string(info.param.k) +
             "x" + std::to_string(info.param.n);
    });

// -- Engine backend parity ---------------------------------------------------
//
// The shapes the model zoo actually runs: the paper CNN's post-pool linear
// layers on MNIST/CIFAR10 (batch × flattened-features × hidden/classes) and
// the im2col products of its 3×3 convs. Each must agree across reference,
// tiled-serial, and tiled-parallel within float tolerance, and the tiled
// results must be bitwise identical across 1/2/8 kernel threads.

class BackendParityTest : public testing::TestWithParam<MatmulSize> {};

TEST_P(BackendParityTest, BackendsAgreeOnAllVariants) {
  const auto [m, k, n] = GetParam();
  appfl::rng::Rng r(m * 131 + k * 17 + n);
  const Tensor a = Tensor::randn({m, k}, r);
  const Tensor b = Tensor::randn({k, n}, r);
  const Tensor bt = transpose(b);
  const Tensor at = transpose(a);

  // Entries are N(0,1), so C entries are ~N(0, √k); float rounding error
  // across backends grows with the same √k — scale the tolerance with it.
  const float tol = std::max(1e-3F, 1e-5F * static_cast<float>(k));

  const Tensor ref = appfl::tensor::matmul_reference(a, b);
  const Tensor ref_bt = appfl::tensor::matmul_bt_reference(a, bt);
  const Tensor ref_at = appfl::tensor::matmul_at_reference(at, b);
  EXPECT_TRUE(ref_bt.allclose(ref, tol));
  EXPECT_TRUE(ref_at.allclose(ref, tol));

  for (const std::size_t threads : {1UL, 8UL}) {
    appfl::testutil::ScopedKernelConfig guard(
        appfl::tensor::KernelBackend::kTiled, threads);
    EXPECT_TRUE(appfl::tensor::matmul(a, b).allclose(ref, tol))
        << "threads=" << threads;
    EXPECT_TRUE(appfl::tensor::matmul_bt(a, bt).allclose(ref, tol))
        << "threads=" << threads;
    EXPECT_TRUE(appfl::tensor::matmul_at(at, b).allclose(ref, tol))
        << "threads=" << threads;
  }
}

TEST_P(BackendParityTest, TiledIsBitwiseDeterministicAcrossThreads) {
  const auto [m, k, n] = GetParam();
  appfl::rng::Rng r(m * 313 + k * 7 + n);
  const Tensor a = Tensor::randn({m, k}, r);
  const Tensor b = Tensor::randn({k, n}, r);
  const Tensor bt = transpose(b);
  const Tensor at = transpose(a);

  Tensor base, base_bt, base_at;
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    appfl::testutil::ScopedKernelConfig guard(
        appfl::tensor::KernelBackend::kTiled, threads);
    const Tensor c = appfl::tensor::matmul(a, b);
    const Tensor c_bt = appfl::tensor::matmul_bt(a, bt);
    const Tensor c_at = appfl::tensor::matmul_at(at, b);
    if (threads == 1) {
      base = c;
      base_bt = c_bt;
      base_at = c_at;
    } else {
      EXPECT_TRUE(c.equals(base)) << "threads=" << threads;
      EXPECT_TRUE(c_bt.equals(base_bt)) << "threads=" << threads;
      EXPECT_TRUE(c_at.equals(base_at)) << "threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelZooShapes, BackendParityTest,
    testing::Values(MatmulSize{64, 6272, 128},  // MNIST flatten → hidden
                    MatmulSize{64, 128, 10},    // hidden → classes
                    MatmulSize{32, 16384, 128}, // CIFAR10 flatten → hidden
                    MatmulSize{6272, 288, 32},  // conv2 im2col product
                    MatmulSize{97, 101, 103},   // primes: every edge ragged
                    MatmulSize{300, 160, 130}), // spans multiple MC blocks
    [](const testing::TestParamInfo<MatmulSize>& info) {
      return std::to_string(info.param.m) + "x" + std::to_string(info.param.k) +
             "x" + std::to_string(info.param.n);
    });

}  // namespace
