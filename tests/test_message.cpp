// FL message encodings: raw (MPI path) and proto (gRPC path).
#include <gtest/gtest.h>

#include "util/check.hpp"

#include "comm/message.hpp"
#include "rng/rng.hpp"

namespace {

using appfl::comm::Message;
using appfl::comm::MessageKind;

Message sample_message(std::size_t m, bool with_dual) {
  Message msg;
  msg.kind = MessageKind::kLocalUpdate;
  msg.sender = 7;
  msg.receiver = 0;
  msg.round = 12;
  msg.sample_count = 1234;
  msg.loss = 0.725;
  msg.rho = 2.5;  // adaptive-rho metadata rides along
  appfl::rng::Rng r(5);
  msg.primal.resize(m);
  for (auto& v : msg.primal) v = static_cast<float>(r.uniform01()) - 0.5F;
  if (with_dual) {
    msg.dual.resize(m);
    for (auto& v : msg.dual) v = static_cast<float>(r.uniform01());
  }
  return msg;
}

class MessageRoundTrip : public testing::TestWithParam<bool> {};

TEST_P(MessageRoundTrip, RawEncodingIsLossless) {
  const Message msg = sample_message(257, GetParam());
  const auto bytes = appfl::comm::encode_raw(msg);
  EXPECT_EQ(bytes.size(), appfl::comm::raw_encoded_size(msg));
  EXPECT_EQ(appfl::comm::decode_raw(bytes), msg);
}

TEST_P(MessageRoundTrip, ProtoEncodingIsLossless) {
  const Message msg = sample_message(257, GetParam());
  const auto bytes = appfl::comm::encode_proto(msg);
  EXPECT_EQ(bytes.size(), appfl::comm::proto_encoded_size(msg));
  EXPECT_EQ(appfl::comm::decode_proto(bytes), msg);
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutDual, MessageRoundTrip,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& i) {
                           return i.param ? "with_dual" : "primal_only";
                         });

TEST(Message, EmptyVectorsRoundTrip) {
  Message msg;
  msg.kind = MessageKind::kShutdown;
  EXPECT_EQ(appfl::comm::decode_raw(appfl::comm::encode_raw(msg)), msg);
  EXPECT_EQ(appfl::comm::decode_proto(appfl::comm::encode_proto(msg)), msg);
}

TEST(Message, DualDoublesTheRawPayload) {
  // The §III-A traffic claim at the wire level: ICEADMM-style messages
  // (primal + dual) carry ~2× the bytes of IIADMM-style (primal only).
  const std::size_t m = 100000;
  const Message primal_only = sample_message(m, false);
  const Message with_dual = sample_message(m, true);
  const double ratio =
      static_cast<double>(appfl::comm::raw_encoded_size(with_dual)) /
      static_cast<double>(appfl::comm::raw_encoded_size(primal_only));
  EXPECT_NEAR(ratio, 2.0, 0.01);
}

TEST(Message, ProtoOverheadIsSmallForLargePayloads) {
  const Message msg = sample_message(100000, false);
  const double raw = static_cast<double>(appfl::comm::raw_encoded_size(msg));
  const double proto =
      static_cast<double>(appfl::comm::proto_encoded_size(msg));
  // Same order: the float payload dominates both; proto adds tags/varints,
  // raw adds fixed headers.
  EXPECT_NEAR(proto / raw, 1.0, 0.01);
}

TEST(Message, RawDecodeRejectsCorruption) {
  const Message msg = sample_message(8, true);
  auto bytes = appfl::comm::encode_raw(msg);
  bytes[0] = 200;  // invalid kind
  EXPECT_THROW(appfl::comm::decode_raw(bytes), appfl::Error);
  auto truncated = appfl::comm::encode_raw(msg);
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(appfl::comm::decode_raw(truncated), appfl::Error);
}

TEST(Message, KindNames) {
  EXPECT_EQ(appfl::comm::to_string(MessageKind::kGlobalModel), "global_model");
  EXPECT_EQ(appfl::comm::to_string(MessageKind::kLocalUpdate), "local_update");
  EXPECT_EQ(appfl::comm::to_string(MessageKind::kInit), "init");
  EXPECT_EQ(appfl::comm::to_string(MessageKind::kShutdown), "shutdown");
}

TEST(Message, FloatPayloadBitExactThroughBothEncodings) {
  // Dual-consistency of IIADMM requires float vectors to survive the wire
  // bit-for-bit. Exercise denormals, infinities, and exact values.
  Message msg;
  msg.kind = MessageKind::kLocalUpdate;
  msg.sender = 1;
  msg.primal = {0.0F, -0.0F, 1e-45F, std::numeric_limits<float>::infinity(),
                -std::numeric_limits<float>::max(), 0.1F};
  const Message raw_back = appfl::comm::decode_raw(appfl::comm::encode_raw(msg));
  const Message proto_back =
      appfl::comm::decode_proto(appfl::comm::encode_proto(msg));
  for (std::size_t i = 0; i < msg.primal.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(raw_back.primal[i]),
              std::bit_cast<std::uint32_t>(msg.primal[i]));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(proto_back.primal[i]),
              std::bit_cast<std::uint32_t>(msg.primal[i]));
  }
}

TEST(Message, NanPayloadsCompareEqualAfterRoundTrip) {
  // operator== compares float fields bitwise: a NaN loss (divergent client)
  // or NaN parameters must round-trip as "equal", not poison every
  // comparison with NaN != NaN.
  Message msg = sample_message(6, true);
  msg.loss = std::numeric_limits<double>::quiet_NaN();
  msg.rho = std::numeric_limits<float>::quiet_NaN();
  msg.primal[2] = std::numeric_limits<float>::quiet_NaN();
  msg.dual[0] = -std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(msg, msg);  // reflexive even with NaNs present
  EXPECT_EQ(appfl::comm::decode_raw(appfl::comm::encode_raw(msg)), msg);
  EXPECT_EQ(appfl::comm::decode_proto(appfl::comm::encode_proto(msg)), msg);
  // Bitwise means different payloads still differ.
  Message other = msg;
  other.primal[0] += 1.0F;
  EXPECT_FALSE(msg == other);
}

}  // namespace
