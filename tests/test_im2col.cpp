// im2col/col2im and the GEMM convolution path: structural checks plus
// equivalence with the direct kernels over a shape sweep.
#include <gtest/gtest.h>

#include "scoped_kernel_config.hpp"
#include "util/check.hpp"

#include "rng/rng.hpp"
#include "tensor/conv.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/workspace.hpp"
#include "nn/conv2d.hpp"
#include "tensor/im2col.hpp"

namespace {

using appfl::tensor::Conv2dSpec;
using appfl::tensor::Shape;
using appfl::tensor::Tensor;

TEST(Im2col, PatchLayoutForKnownInput) {
  // 1×1×3×3 input 0..8, k=2, stride 1, no padding ⇒ 4 patches of 4.
  Conv2dSpec spec{1, 1, 2, 1, 0};
  Tensor x({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  const Tensor cols = appfl::tensor::im2col(x, spec);
  ASSERT_EQ(cols.shape(), (Shape{4, 4}));
  // Patch at (0,0): 0 1 3 4; at (0,1): 1 2 4 5; at (1,0): 3 4 6 7.
  EXPECT_TRUE(cols.reshaped({16}).equals(
      Tensor({16}, {0, 1, 3, 4, 1, 2, 4, 5, 3, 4, 6, 7, 4, 5, 7, 8})));
}

TEST(Im2col, PaddingYieldsZeros) {
  Conv2dSpec spec{1, 1, 3, 1, 1};
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor cols = appfl::tensor::im2col(x, spec);
  ASSERT_EQ(cols.shape(), (Shape{4, 9}));
  // The top-left patch has its first row and column padded with zeros.
  EXPECT_EQ(cols.at({0, 0}), 0.0F);
  EXPECT_EQ(cols.at({0, 4}), 1.0F);  // center = input(0,0)
}

TEST(Col2im, IsAdjointOfIm2col) {
  // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint property that
  // makes the GEMM backward correct.
  Conv2dSpec spec{2, 1, 3, 2, 1};
  appfl::rng::Rng r(5);
  const Tensor x = Tensor::randn({2, 2, 5, 6}, r);
  const Tensor cols = appfl::tensor::im2col(x, spec);
  const Tensor y = Tensor::randn(cols.shape(), r);
  const Tensor folded = appfl::tensor::col2im(y, x.shape(), spec);
  EXPECT_NEAR(appfl::tensor::dot(cols.data(), y.data()),
              appfl::tensor::dot(x.data(), folded.data()), 1e-2);
}

struct GemmCase {
  std::size_t cin, cout, k, stride, pad, h, w, n;
};

class GemmEquivalenceTest : public testing::TestWithParam<GemmCase> {};

TEST_P(GemmEquivalenceTest, ForwardMatchesDirectKernel) {
  const auto& c = GetParam();
  Conv2dSpec spec{c.cin, c.cout, c.k, c.stride, c.pad};
  appfl::rng::Rng r(c.k * 31 + c.cin);
  const Tensor x = Tensor::randn({c.n, c.cin, c.h, c.w}, r);
  const Tensor w = Tensor::randn({c.cout, c.cin, c.k, c.k}, r);
  const Tensor b = Tensor::randn({c.cout}, r);
  const Tensor direct = appfl::tensor::conv2d_forward(x, w, b, spec);
  const Tensor gemm = appfl::tensor::conv2d_forward_gemm(x, w, b, spec);
  EXPECT_TRUE(gemm.allclose(direct, 1e-4F));
}

TEST_P(GemmEquivalenceTest, BackwardWeightMatchesDirectKernel) {
  const auto& c = GetParam();
  Conv2dSpec spec{c.cin, c.cout, c.k, c.stride, c.pad};
  appfl::rng::Rng r(c.k * 37 + c.cout);
  const Tensor x = Tensor::randn({c.n, c.cin, c.h, c.w}, r);
  const Tensor w = Tensor::randn({c.cout, c.cin, c.k, c.k}, r);
  const Tensor b = Tensor::randn({c.cout}, r);
  const Tensor y = appfl::tensor::conv2d_forward(x, w, b, spec);
  const Tensor gy = Tensor::randn(y.shape(), r);
  const Tensor direct = appfl::tensor::conv2d_backward_weight(gy, x, spec);
  const Tensor gemm = appfl::tensor::conv2d_backward_weight_gemm(gy, x, spec);
  EXPECT_EQ(gemm.shape(), direct.shape());
  EXPECT_TRUE(gemm.allclose(direct, 1e-3F));
}

TEST_P(GemmEquivalenceTest, BackwardInputMatchesDirectKernel) {
  const auto& c = GetParam();
  Conv2dSpec spec{c.cin, c.cout, c.k, c.stride, c.pad};
  appfl::rng::Rng r(c.k * 41 + c.h);
  const Tensor x = Tensor::randn({c.n, c.cin, c.h, c.w}, r);
  const Tensor w = Tensor::randn({c.cout, c.cin, c.k, c.k}, r);
  const Tensor b = Tensor::randn({c.cout}, r);
  const Tensor y = appfl::tensor::conv2d_forward(x, w, b, spec);
  const Tensor gy = Tensor::randn(y.shape(), r);
  const Tensor direct =
      appfl::tensor::conv2d_backward_input(gy, w, x.shape(), spec);
  const Tensor gemm =
      appfl::tensor::conv2d_backward_input_gemm(gy, w, x.shape(), spec);
  EXPECT_TRUE(gemm.allclose(direct, 1e-4F));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmEquivalenceTest,
    testing::Values(GemmCase{1, 1, 3, 1, 0, 5, 5, 1},
                    GemmCase{1, 8, 3, 1, 1, 12, 12, 2},
                    GemmCase{3, 4, 3, 2, 1, 9, 11, 2},
                    GemmCase{2, 5, 5, 1, 2, 8, 8, 1},
                    GemmCase{4, 2, 1, 1, 0, 6, 6, 3},
                    GemmCase{2, 3, 3, 3, 0, 10, 10, 1}),
    [](const testing::TestParamInfo<GemmCase>& i) {
      const auto& c = i.param;
      return "c" + std::to_string(c.cin) + "o" + std::to_string(c.cout) + "k" +
             std::to_string(c.k) + "s" + std::to_string(c.stride) + "p" +
             std::to_string(c.pad) + "h" + std::to_string(c.h);
    });

TEST(Conv2dLayer, GemmBackendMatchesDirectBackend) {
  // The layer-level toggle: identical weights, identical outputs and grads.
  appfl::rng::Rng r1(77), r2(77);
  appfl::nn::Conv2d direct(2, 3, 3, r1, 1, 1, appfl::nn::Conv2d::Backend::kDirect);
  appfl::nn::Conv2d gemm(2, 3, 3, r2, 1, 1, appfl::nn::Conv2d::Backend::kGemm);
  ASSERT_EQ(direct.flat_parameters(), gemm.flat_parameters());

  appfl::rng::Rng rx(78);
  const Tensor x = Tensor::randn({2, 2, 7, 7}, rx);
  const Tensor yd = direct.forward(x);
  const Tensor yg = gemm.forward(x);
  EXPECT_TRUE(yg.allclose(yd, 1e-4F));

  const Tensor gy = Tensor::randn(yd.shape(), rx);
  const Tensor gxd = direct.backward(gy);
  const Tensor gxg = gemm.backward(gy);
  EXPECT_TRUE(gxg.allclose(gxd, 1e-4F));
  const auto gd = direct.flat_gradients();
  const auto gg = gemm.flat_gradients();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    EXPECT_NEAR(gd[i], gg[i], 1e-3F) << i;
  }
  // clone() preserves the backend.
  auto copy = gemm.clone();
  auto* conv_copy = dynamic_cast<appfl::nn::Conv2d*>(copy.get());
  ASSERT_NE(conv_copy, nullptr);
  EXPECT_EQ(conv_copy->backend(), appfl::nn::Conv2d::Backend::kGemm);
}

// The full GEMM-vs-direct sweep above runs under every engine backend: the
// padding/stride edge cases must hold whether the products go through the
// reference loops, the serial tiled kernel, or the parallel tiled kernel.
TEST_P(GemmEquivalenceTest, HoldsUnderEveryEngineBackend) {
  const auto& c = GetParam();
  Conv2dSpec spec{c.cin, c.cout, c.k, c.stride, c.pad};
  appfl::rng::Rng r(c.k * 53 + c.cin * 7 + c.h);
  const Tensor x = Tensor::randn({c.n, c.cin, c.h, c.w}, r);
  const Tensor w = Tensor::randn({c.cout, c.cin, c.k, c.k}, r);
  const Tensor b = Tensor::randn({c.cout}, r);
  const Tensor y = appfl::tensor::conv2d_forward(x, w, b, spec);
  const Tensor gy = Tensor::randn(y.shape(), r);
  const Tensor dw_direct = appfl::tensor::conv2d_backward_weight(gy, x, spec);
  const Tensor dx_direct =
      appfl::tensor::conv2d_backward_input(gy, w, x.shape(), spec);

  const appfl::tensor::KernelConfig configs[] = {
      {appfl::tensor::KernelBackend::kReference, 1},
      {appfl::tensor::KernelBackend::kTiled, 1},
      {appfl::tensor::KernelBackend::kTiled, 8},
  };
  for (const auto& config : configs) {
    appfl::testutil::ScopedKernelConfig guard(config);
    EXPECT_TRUE(appfl::tensor::conv2d_forward_gemm(x, w, b, spec)
                    .allclose(y, 1e-4F));
    EXPECT_TRUE(appfl::tensor::conv2d_backward_weight_gemm(gy, x, spec)
                    .allclose(dw_direct, 1e-3F));
    EXPECT_TRUE(
        appfl::tensor::conv2d_backward_input_gemm(gy, w, x.shape(), spec)
            .allclose(dx_direct, 1e-4F));
  }
}

TEST(ConvEngine, DeterministicAcrossKernelThreadCounts) {
  // A CIFAR10-ish layer big enough to engage the parallel row-panel split:
  // forward and both backward products must be bit-identical for 1/2/8
  // kernel threads.
  Conv2dSpec spec{16, 32, 3, 1, 1};
  appfl::rng::Rng r(91);
  const Tensor x = Tensor::randn({4, 16, 16, 16}, r);
  const Tensor w = Tensor::randn({32, 16, 3, 3}, r);
  const Tensor b = Tensor::randn({32}, r);
  appfl::rng::Rng rg(92);

  Tensor y1, dw1, dx1, gy;
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    appfl::testutil::ScopedKernelConfig guard(
        appfl::tensor::KernelBackend::kTiled, threads);
    const Tensor y = appfl::tensor::conv2d_forward_gemm(x, w, b, spec);
    if (threads == 1) gy = Tensor::randn(y.shape(), rg);
    const Tensor dw = appfl::tensor::conv2d_backward_weight_gemm(gy, x, spec);
    const Tensor dx =
        appfl::tensor::conv2d_backward_input_gemm(gy, w, x.shape(), spec);
    if (threads == 1) {
      y1 = y;
      dw1 = dw;
      dx1 = dx;
    } else {
      EXPECT_TRUE(y.equals(y1)) << "threads=" << threads;
      EXPECT_TRUE(dw.equals(dw1)) << "threads=" << threads;
      EXPECT_TRUE(dx.equals(dx1)) << "threads=" << threads;
    }
  }
}

TEST(ConvEngine, WorkspaceIsReusedAcrossSteps) {
  // The arena amortization claim at the conv level: after one full
  // forward+backward warm-up, further steps at the same shapes allocate
  // nothing new on this thread.
  appfl::testutil::ScopedKernelConfig guard(
      appfl::tensor::KernelBackend::kTiled, 1);
  Conv2dSpec spec{8, 16, 3, 1, 1};
  appfl::rng::Rng r(17);
  const Tensor x = Tensor::randn({2, 8, 12, 12}, r);
  const Tensor w = Tensor::randn({16, 8, 3, 3}, r);
  const Tensor b = Tensor::randn({16}, r);
  const Tensor y = appfl::tensor::conv2d_forward_gemm(x, w, b, spec);
  const Tensor gy = Tensor::randn(y.shape(), r);
  appfl::tensor::conv2d_backward_weight_gemm(gy, x, spec);
  appfl::tensor::conv2d_backward_input_gemm(gy, w, x.shape(), spec);

  const std::size_t warm = appfl::tensor::Workspace::tls().allocations();
  for (int step = 0; step < 3; ++step) {
    appfl::tensor::conv2d_forward_gemm(x, w, b, spec);
    appfl::tensor::conv2d_backward_weight_gemm(gy, x, spec);
    appfl::tensor::conv2d_backward_input_gemm(gy, w, x.shape(), spec);
  }
  EXPECT_EQ(appfl::tensor::Workspace::tls().allocations(), warm);
}

TEST(Conv2dLayer, AutoBackendFollowsEngineConfig) {
  appfl::rng::Rng r(5);
  appfl::nn::Conv2d layer(1, 2, 3, r);  // default backend: kAuto
  EXPECT_EQ(layer.backend(), appfl::nn::Conv2d::Backend::kAuto);
  {
    appfl::testutil::ScopedKernelConfig guard(
        appfl::tensor::KernelBackend::kTiled, 1);
    EXPECT_EQ(layer.resolved_backend(), appfl::nn::Conv2d::Backend::kGemm);
  }
  {
    appfl::testutil::ScopedKernelConfig guard(
        appfl::tensor::KernelBackend::kReference, 1);
    EXPECT_EQ(layer.resolved_backend(), appfl::nn::Conv2d::Backend::kDirect);
  }
  // Explicit backends are not second-guessed.
  appfl::rng::Rng r2(5);
  appfl::nn::Conv2d direct(1, 2, 3, r2, 1, 0,
                           appfl::nn::Conv2d::Backend::kDirect);
  appfl::testutil::ScopedKernelConfig guard(
      appfl::tensor::KernelBackend::kTiled, 1);
  EXPECT_EQ(direct.resolved_backend(), appfl::nn::Conv2d::Backend::kDirect);
}

TEST(Im2col, IntoMatchesAllocatingFlavor) {
  Conv2dSpec spec{2, 1, 3, 2, 1};
  appfl::rng::Rng r(6);
  const Tensor x = Tensor::randn({2, 2, 7, 9}, r);
  const Tensor cols = appfl::tensor::im2col(x, spec);
  std::vector<float> buf(cols.size(), -1.0F);
  appfl::tensor::im2col_into(x, spec, buf.data());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(buf[i], cols[i]) << i;
  }
}

TEST(Im2col, RejectsBadShapes) {
  Conv2dSpec spec{2, 1, 3, 1, 0};
  EXPECT_THROW(appfl::tensor::im2col(Tensor({1, 1, 5, 5}), spec), appfl::Error);
  EXPECT_THROW(appfl::tensor::im2col(Tensor({5, 5}), spec), appfl::Error);
  EXPECT_THROW(
      appfl::tensor::col2im(Tensor({3, 3}), {1, 2, 5, 5}, spec),
      appfl::Error);
}

}  // namespace
